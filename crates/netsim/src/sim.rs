//! A deterministic discrete-event simulator of point-to-point links.
//!
//! The UniInt benchmarks sweep link conditions (wired, WLAN, Bluetooth,
//! cellular) reproducibly: all randomness (jitter, loss) comes from a
//! seeded generator, so a given seed always produces identical timings.
//!
//! Links can additionally carry a scripted [`FaultSchedule`] — flaps,
//! burst loss, latency spikes, reorder, duplication. Hard faults (flaps
//! and burst drops) model a broken transport connection: the link goes
//! down, in-flight packets are purged, and traffic flows again only
//! after a successful [`Simulator::reconnect`]. See [`crate::fault`] for
//! the full fault model.

use crate::fault::{DropCause, FaultSchedule, TraceEvent, TraceKind};
use crate::link::LinkProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use uniint_telemetry::histogram::Histogram;
use uniint_telemetry::registry::{Counter, Registry};

/// Identifies one end of a simulated link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint(usize);

impl Endpoint {
    /// The endpoint's index, as it appears in [`TraceEvent`]s.
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug)]
struct EndpointState {
    peer: usize,
    profile: LinkProfile,
    /// When the transmitter is next free (serialization queueing).
    tx_free_at: u64,
    inbox: VecDeque<Vec<u8>>,
    bytes_sent: u64,
    messages_sent: u64,
    /// Scripted faults applying to traffic sent from this endpoint.
    faults: FaultSchedule,
    /// Gilbert–Elliott chain state (true = bad/bursty).
    ge_bad: bool,
    /// Whether the connection through this endpoint is up.
    up: bool,
}

#[derive(Debug)]
struct Delivery {
    to: usize,
    payload: Vec<u8>,
    /// Virtual time the payload was handed to [`Simulator::send`];
    /// delivery latency histograms are `arrival - sent_at`.
    sent_at: u64,
}

/// Telemetry handles for one link (both directions share them).
#[derive(Debug)]
struct LinkTelemetry {
    sends: Counter,
    delivered: Counter,
    dropped: Counter,
    delivery_us: Histogram,
}

impl LinkTelemetry {
    fn new(registry: &Registry, link_id: usize) -> LinkTelemetry {
        LinkTelemetry {
            sends: registry.counter(&format!("netsim.link{link_id}.sends")),
            delivered: registry.counter(&format!("netsim.link{link_id}.delivered")),
            dropped: registry.counter(&format!("netsim.link{link_id}.dropped")),
            delivery_us: registry.histogram(&format!("netsim.link{link_id}.delivery_us")),
        }
    }
}

/// Pre-registered handles for the whole simulator. Updates on the send
/// and delivery paths are atomic operations only; the registry lock is
/// touched exclusively here, at registration.
#[derive(Debug)]
struct SimTelemetry {
    registry: Registry,
    sends: Counter,
    delivered: Counter,
    drop_flap: Counter,
    drop_burst: Counter,
    drop_link_down: Counter,
    drop_purged: Counter,
    link_downs: Counter,
    reconnects: Counter,
    reconnects_failed: Counter,
    links: Vec<LinkTelemetry>,
}

impl SimTelemetry {
    fn new(registry: Registry) -> SimTelemetry {
        SimTelemetry {
            sends: registry.counter("netsim.sends"),
            delivered: registry.counter("netsim.delivered"),
            drop_flap: registry.counter("netsim.drops.flap"),
            drop_burst: registry.counter("netsim.drops.burst"),
            drop_link_down: registry.counter("netsim.drops.link_down"),
            drop_purged: registry.counter("netsim.drops.purged"),
            link_downs: registry.counter("netsim.link_downs"),
            reconnects: registry.counter("netsim.reconnects"),
            reconnects_failed: registry.counter("netsim.reconnects_failed"),
            links: Vec::new(),
            registry,
        }
    }

    fn drop_counter(&self, cause: DropCause) -> &Counter {
        match cause {
            DropCause::Flap => &self.drop_flap,
            DropCause::Burst => &self.drop_burst,
            DropCause::LinkDown => &self.drop_link_down,
            DropCause::Purged => &self.drop_purged,
        }
    }
}

/// The simulator: owns all endpoints, a virtual clock and the in-flight
/// message queue.
///
/// ```
/// use uniint_netsim::prelude::*;
/// let mut sim = Simulator::new(42);
/// let (a, b) = sim.link(LinkProfile::wifi80211b());
/// sim.send(a, b"hello".to_vec());
/// sim.run_until_idle();
/// assert_eq!(sim.recv(b), Some(b"hello".to_vec()));
/// ```
#[derive(Debug)]
pub struct Simulator {
    now_us: u64,
    endpoints: Vec<EndpointState>,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    deliveries: std::collections::HashMap<u64, Delivery>,
    seq: u64,
    rng: StdRng,
    trace: Vec<TraceEvent>,
    tracing: bool,
    telemetry: Option<SimTelemetry>,
}

impl Simulator {
    /// Creates a simulator; `seed` fixes all jitter/loss decisions.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now_us: 0,
            endpoints: Vec::new(),
            queue: BinaryHeap::new(),
            deliveries: std::collections::HashMap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            trace: Vec::new(),
            tracing: false,
            telemetry: None,
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Attaches a telemetry registry. From here on the simulator drives
    /// the registry's virtual clock (the determinism anchor for every
    /// other instrumented subsystem) and records per-link send/deliver/
    /// drop counters plus delivery-latency histograms. Links created
    /// before or after attachment are both covered.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        let mut telemetry = SimTelemetry::new(registry.clone());
        for link_id in 0..self.endpoints.len() / 2 {
            telemetry.links.push(LinkTelemetry::new(registry, link_id));
        }
        registry.clock().set_us(self.now_us);
        self.telemetry = Some(telemetry);
    }

    /// Advances the attached registry clock to the simulator clock.
    fn drive_clock(&self) {
        if let Some(t) = &self.telemetry {
            t.registry.clock().set_us(self.now_us);
        }
    }

    /// Counts a drop on `to`'s link under `cause`.
    fn tele_drop(&self, to: usize, cause: DropCause) {
        if let Some(t) = &self.telemetry {
            t.drop_counter(cause).inc();
            t.links[to / 2].dropped.inc();
        }
    }

    /// Creates a bidirectional link, returning its two endpoints.
    pub fn link(&mut self, profile: LinkProfile) -> (Endpoint, Endpoint) {
        let a = self.endpoints.len();
        let b = a + 1;
        for peer in [b, a] {
            self.endpoints.push(EndpointState {
                peer,
                profile,
                tx_free_at: 0,
                inbox: VecDeque::new(),
                bytes_sent: 0,
                messages_sent: 0,
                faults: FaultSchedule::default(),
                ge_bad: false,
                up: true,
            });
        }
        if let Some(t) = &mut self.telemetry {
            let registry = t.registry.clone();
            t.links.push(LinkTelemetry::new(&registry, a / 2));
        }
        (Endpoint(a), Endpoint(b))
    }

    /// Attaches `schedule` to the link containing `ep` (both directions).
    pub fn set_link_faults(&mut self, ep: Endpoint, schedule: FaultSchedule) {
        let peer = self.endpoints[ep.0].peer;
        self.endpoints[ep.0].faults = schedule.clone();
        self.endpoints[peer].faults = schedule;
    }

    /// Enables or disables event tracing (see [`Simulator::take_trace`]).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Drains and returns the recorded event trace.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    fn trace_push(&mut self, kind: TraceKind) {
        if self.tracing {
            self.trace.push(TraceEvent {
                t_us: self.now_us,
                kind,
            });
        }
    }

    /// Whether the connection through `ep`'s link is currently up.
    pub fn link_up(&self, ep: Endpoint) -> bool {
        self.endpoints[ep.0].up
    }

    /// Tears the connection down: purges all in-flight packets on `ep`'s
    /// link and drops later sends until [`Simulator::reconnect`].
    fn break_link(&mut self, idx: usize) {
        let peer = self.endpoints[idx].peer;
        if !self.endpoints[idx].up && !self.endpoints[peer].up {
            return;
        }
        self.endpoints[idx].up = false;
        self.endpoints[peer].up = false;
        // Purge in-flight packets towards either end, in deterministic
        // (send) order.
        let mut purged: Vec<u64> = self
            .deliveries
            .iter()
            .filter(|(_, d)| d.to == idx || d.to == peer)
            .map(|(&s, _)| s)
            .collect();
        purged.sort_unstable();
        for s in purged {
            let d = self.deliveries.remove(&s).expect("purged seq exists");
            self.trace_push(TraceKind::Drop {
                to: d.to,
                cause: DropCause::Purged,
            });
            self.tele_drop(d.to, DropCause::Purged);
        }
        let (a, b) = (idx.min(peer), idx.max(peer));
        self.trace_push(TraceKind::LinkDown { a, b });
        if let Some(t) = &self.telemetry {
            t.link_downs.inc();
            t.registry
                .journal()
                .record("netsim.link_down", format!("link {}", a / 2));
        }
    }

    /// Attempts to restore a torn-down connection. Fails (returning
    /// `false`) while the current time is inside a flap window; on
    /// success the Gilbert–Elliott chain resets to the good state.
    pub fn reconnect(&mut self, ep: Endpoint) -> bool {
        let idx = ep.0;
        let peer = self.endpoints[idx].peer;
        let (a, b) = (idx.min(peer), idx.max(peer));
        let now = self.now_us;
        if self.endpoints[idx].faults.in_flap(now) || self.endpoints[peer].faults.in_flap(now) {
            self.trace_push(TraceKind::ReconnectFailed { a, b });
            if let Some(t) = &self.telemetry {
                t.reconnects_failed.inc();
            }
            return false;
        }
        for i in [idx, peer] {
            self.endpoints[i].up = true;
            self.endpoints[i].ge_bad = false;
            self.endpoints[i].tx_free_at = self.endpoints[i].tx_free_at.max(now);
        }
        self.trace_push(TraceKind::Reconnect { a, b });
        if let Some(t) = &self.telemetry {
            t.reconnects.inc();
            t.registry
                .journal()
                .record("netsim.reconnect", format!("link {}", a / 2));
        }
        true
    }

    /// Earliest time a reconnect on `ep`'s link can succeed, if the
    /// current instant is inside a flap window.
    pub fn flap_clears_at(&self, ep: Endpoint) -> Option<u64> {
        self.endpoints[ep.0].faults.flap_end_after(self.now_us)
    }

    /// Queues `payload` for delivery to the peer of `from`. Delivery time
    /// accounts for serialization (bandwidth), propagation (latency),
    /// jitter, and loss-induced retransmissions. Absent hard faults the
    /// link is reliable and in-order; flap or burst faults break the
    /// connection (the payload and everything in flight is dropped).
    pub fn send(&mut self, from: Endpoint, payload: Vec<u8>) {
        let size = payload.len();
        let to = self.endpoints[from.0].peer;
        self.trace_push(TraceKind::Send {
            from: from.0,
            bytes: size,
        });
        {
            let ep = &mut self.endpoints[from.0];
            ep.bytes_sent += size as u64;
            ep.messages_sent += 1;
        }
        if let Some(t) = &self.telemetry {
            t.sends.inc();
            t.links[from.0 / 2].sends.inc();
        }
        if !self.endpoints[from.0].up {
            self.trace_push(TraceKind::Drop {
                to,
                cause: DropCause::LinkDown,
            });
            self.tele_drop(to, DropCause::LinkDown);
            return;
        }
        if self.endpoints[from.0].faults.in_flap(self.now_us) {
            self.trace_push(TraceKind::Drop {
                to,
                cause: DropCause::Flap,
            });
            self.tele_drop(to, DropCause::Flap);
            self.break_link(from.0);
            return;
        }
        // Advance the Gilbert–Elliott chain once per send.
        if let Some(ge) = self.endpoints[from.0].faults.burst {
            let bad = self.endpoints[from.0].ge_bad;
            let flip = if bad {
                self.rng.gen_bool(ge.p_exit)
            } else {
                self.rng.gen_bool(ge.p_enter)
            };
            let bad = bad ^ flip;
            self.endpoints[from.0].ge_bad = bad;
            if bad && self.rng.gen_bool(ge.drop_prob) {
                self.trace_push(TraceKind::Drop {
                    to,
                    cause: DropCause::Burst,
                });
                self.tele_drop(to, DropCause::Burst);
                self.break_link(from.0);
                return;
            }
        }
        let mut arrival = {
            let ep = &mut self.endpoints[from.0];
            let p = ep.profile;
            let tx_start = ep.tx_free_at.max(self.now_us);
            let tx_time = p.tx_time_us(size);
            ep.tx_free_at = tx_start + tx_time;
            let mut arrival = tx_start + tx_time + p.latency_us;
            if p.jitter_us > 0 {
                arrival += self.rng.gen_range(0..=p.jitter_us);
            }
            // Each loss costs one RTT before the retransmission lands.
            while p.loss > 0.0 && self.rng.gen_bool(p.loss) {
                arrival += 2 * p.latency_us + tx_time;
            }
            arrival
        };
        arrival += self.endpoints[from.0].faults.spike_extra(self.now_us);
        // In-order guarantee: never deliver before anything already queued
        // towards the same endpoint — unless the reorder fault fires.
        let reordered = match self.endpoints[from.0].faults.reorder {
            Some(r) if self.rng.gen_bool(r.prob) => {
                arrival = arrival.saturating_sub(r.skew_us).max(self.now_us);
                self.trace_push(TraceKind::Reorder { to });
                true
            }
            _ => false,
        };
        if !reordered {
            arrival = arrival.max(self.last_arrival_to(to));
        }
        self.seq += 1;
        self.deliveries.insert(
            self.seq,
            Delivery {
                to,
                payload: payload.clone(),
                sent_at: self.now_us,
            },
        );
        self.queue.push(Reverse((arrival, self.seq)));
        let dup = self.endpoints[from.0].faults.duplicate_prob;
        if dup > 0.0 && self.rng.gen_bool(dup) {
            self.trace_push(TraceKind::Duplicate { to });
            self.seq += 1;
            self.deliveries.insert(
                self.seq,
                Delivery {
                    to,
                    payload,
                    sent_at: self.now_us,
                },
            );
            self.queue.push(Reverse((arrival + 1, self.seq)));
        }
    }

    fn last_arrival_to(&self, to: usize) -> u64 {
        self.queue
            .iter()
            .filter(|Reverse((_, s))| self.deliveries.get(s).map(|d| d.to) == Some(to))
            .map(|Reverse((t, _))| *t)
            .max()
            .unwrap_or(0)
    }

    /// Pops one delivered message from `ep`'s inbox.
    pub fn recv(&mut self, ep: Endpoint) -> Option<Vec<u8>> {
        self.endpoints[ep.0].inbox.pop_front()
    }

    /// Number of messages waiting in `ep`'s inbox.
    pub fn pending(&self, ep: Endpoint) -> usize {
        self.endpoints[ep.0].inbox.len()
    }

    /// Number of packets currently in flight (all links).
    pub fn in_flight(&self) -> usize {
        self.deliveries.len()
    }

    /// Bytes sent from `ep` since creation (attempted sends included).
    pub fn bytes_sent(&self, ep: Endpoint) -> u64 {
        self.endpoints[ep.0].bytes_sent
    }

    /// Messages sent from `ep` since creation (attempted sends included).
    pub fn messages_sent(&self, ep: Endpoint) -> u64 {
        self.endpoints[ep.0].messages_sent
    }

    /// Processes the next in-flight message, advancing the clock to its
    /// arrival. Returns the new time, or `None` when nothing is in flight.
    /// A message whose arrival lands inside a flap window is dropped (and
    /// breaks the connection) instead of delivered; the clock still
    /// advances and `Some` is returned.
    pub fn step(&mut self) -> Option<u64> {
        loop {
            let Reverse((t, seq)) = self.queue.pop()?;
            // Purged entries stay in the heap; skip without advancing time.
            let Some(d) = self.deliveries.remove(&seq) else {
                continue;
            };
            self.now_us = self.now_us.max(t);
            self.drive_clock();
            if self.endpoints[d.to].faults.in_flap(self.now_us) {
                self.trace_push(TraceKind::Drop {
                    to: d.to,
                    cause: DropCause::Flap,
                });
                self.tele_drop(d.to, DropCause::Flap);
                self.break_link(d.to);
                return Some(self.now_us);
            }
            let bytes = d.payload.len();
            self.endpoints[d.to].inbox.push_back(d.payload);
            self.trace_push(TraceKind::Deliver { to: d.to, bytes });
            if let Some(tele) = &self.telemetry {
                tele.delivered.inc();
                let link = &tele.links[d.to / 2];
                link.delivered.inc();
                link.delivery_us
                    .record(self.now_us.saturating_sub(d.sent_at));
            }
            return Some(self.now_us);
        }
    }

    /// Runs until no messages are in flight.
    pub fn run_until_idle(&mut self) {
        while self.step().is_some() {}
    }

    /// Runs until virtual time reaches `t_us` (messages arriving later
    /// stay in flight). The clock always ends at `t_us` or later.
    pub fn run_until(&mut self, t_us: u64) {
        while let Some(&Reverse((t, _))) = self.queue.peek() {
            if t > t_us {
                break;
            }
            self.step();
        }
        self.now_us = self.now_us.max(t_us);
        self.drive_clock();
    }

    /// Advances the clock without delivering anything earlier.
    pub fn advance(&mut self, dt_us: u64) {
        let target = self.now_us + dt_us;
        self.run_until(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_latency_matches_profile() {
        let mut sim = Simulator::new(1);
        let (a, b) = sim.link(LinkProfile::ethernet100());
        sim.send(a, vec![0u8; 125]); // 125B at 100Mb/s = 10us tx
        sim.run_until_idle();
        // latency 200 + tx 10 + jitter 0..=50
        assert!((210..=260).contains(&sim.now_us()), "{}", sim.now_us());
        assert_eq!(sim.recv(b), Some(vec![0u8; 125]));
    }

    #[test]
    fn in_order_delivery() {
        let mut sim = Simulator::new(7);
        let (a, b) = sim.link(LinkProfile::wifi80211b());
        for i in 0..20u8 {
            sim.send(a, vec![i]);
        }
        sim.run_until_idle();
        let got: Vec<u8> = std::iter::from_fn(|| sim.recv(b)).map(|v| v[0]).collect();
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let (a, _b) = sim.link(LinkProfile::cellular_gprs());
            for _ in 0..10 {
                sim.send(a, vec![0u8; 100]);
            }
            sim.run_until_idle();
            sim.now_us()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn bandwidth_queueing_serializes() {
        let mut sim = Simulator::new(1);
        let (a, _b) = sim.link(LinkProfile::bluetooth());
        // Two 1 KB messages back-to-back: second waits for first's tx.
        sim.send(a, vec![0u8; 1000]);
        sim.send(a, vec![0u8; 1000]);
        sim.run_until_idle();
        let one_tx = LinkProfile::bluetooth().tx_time_us(1000);
        assert!(
            sim.now_us() >= 2 * one_tx,
            "{} < {}",
            sim.now_us(),
            2 * one_tx
        );
    }

    #[test]
    fn both_directions_work() {
        let mut sim = Simulator::new(1);
        let (a, b) = sim.link(LinkProfile::ideal());
        sim.send(a, b"to-b".to_vec());
        sim.send(b, b"to-a".to_vec());
        sim.run_until_idle();
        assert_eq!(sim.recv(b), Some(b"to-b".to_vec()));
        assert_eq!(sim.recv(a), Some(b"to-a".to_vec()));
    }

    #[test]
    fn run_until_leaves_late_messages_in_flight() {
        let mut sim = Simulator::new(1);
        let (a, b) = sim.link(LinkProfile::cellular_gprs());
        sim.send(a, vec![1]);
        sim.run_until(10); // far before the 300ms latency
        assert_eq!(sim.pending(b), 0);
        assert_eq!(sim.now_us(), 10);
        sim.run_until_idle();
        assert_eq!(sim.pending(b), 1);
    }

    #[test]
    fn stats_track_traffic() {
        let mut sim = Simulator::new(1);
        let (a, _b) = sim.link(LinkProfile::ideal());
        sim.send(a, vec![0u8; 10]);
        sim.send(a, vec![0u8; 20]);
        assert_eq!(sim.bytes_sent(a), 30);
        assert_eq!(sim.messages_sent(a), 2);
    }

    #[test]
    fn multiple_links_independent() {
        let mut sim = Simulator::new(1);
        let (a1, b1) = sim.link(LinkProfile::ideal());
        let (a2, b2) = sim.link(LinkProfile::ideal());
        sim.send(a1, vec![1]);
        sim.send(a2, vec![2]);
        sim.run_until_idle();
        assert_eq!(sim.recv(b1), Some(vec![1]));
        assert_eq!(sim.recv(b2), Some(vec![2]));
        assert_eq!(sim.recv(b1), None);
    }

    #[test]
    fn lossy_link_still_reliable() {
        let mut sim = Simulator::new(9);
        let (a, b) = sim.link(LinkProfile {
            loss: 0.5,
            ..LinkProfile::bluetooth()
        });
        for i in 0..50u8 {
            sim.send(a, vec![i]);
        }
        sim.run_until_idle();
        let got: Vec<u8> = std::iter::from_fn(|| sim.recv(b)).map(|v| v[0]).collect();
        assert_eq!(got.len(), 50, "reliable despite loss");
        assert_eq!(got, (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn advance_moves_clock() {
        let mut sim = Simulator::new(1);
        sim.advance(1_000);
        assert_eq!(sim.now_us(), 1_000);
    }

    #[test]
    fn flap_breaks_connection_and_drops_prefix_cleanly() {
        let mut sim = Simulator::new(3);
        let (a, b) = sim.link(LinkProfile::ideal());
        sim.set_link_faults(a, FaultSchedule::new().flap(1_000, 2_000));
        sim.send(a, vec![0]); // t=0: delivered
        sim.run_until_idle();
        sim.advance(1_500); // inside flap window
        sim.send(a, vec![1]); // dropped, breaks link
        assert!(!sim.link_up(a));
        sim.send(a, vec![2]); // dropped: link down
        sim.advance(1_000); // t=2500, flap over
        assert!(!sim.link_up(a), "stays down until explicit reconnect");
        assert!(sim.reconnect(a));
        sim.send(a, vec![3]);
        sim.run_until_idle();
        let got: Vec<u8> = std::iter::from_fn(|| sim.recv(b)).map(|v| v[0]).collect();
        assert_eq!(got, vec![0, 3], "receiver sees an exact prefix + resumed");
    }

    #[test]
    fn reconnect_fails_inside_flap_window() {
        let mut sim = Simulator::new(3);
        let (a, _b) = sim.link(LinkProfile::ideal());
        sim.set_link_faults(a, FaultSchedule::new().flap(0, 5_000));
        sim.send(a, vec![1]); // breaks immediately
        assert!(!sim.link_up(a));
        assert!(!sim.reconnect(a), "still inside flap");
        assert_eq!(sim.flap_clears_at(a), Some(5_000));
        sim.advance(5_000);
        assert!(sim.reconnect(a));
        assert!(sim.link_up(a));
    }

    #[test]
    fn in_flight_packets_purged_on_break() {
        let mut sim = Simulator::new(3);
        let (a, b) = sim.link(LinkProfile::cellular_gprs());
        sim.set_link_faults(a, FaultSchedule::new().flap(10_000, 20_000));
        // Sent at t=0 but 300ms latency means arrival is inside... no —
        // arrival ~300ms is after the flap. Arrange arrivals in flight at
        // break time instead: send, then advance into the window and send
        // again, breaking the link while the first is still in flight.
        sim.send(a, vec![1]);
        sim.run_until(15_000); // inside flap; first packet still in flight
        sim.send(a, vec![2]); // hard fault: break + purge
        sim.run_until_idle();
        assert_eq!(sim.pending(b), 0, "in-flight packet was purged");
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn arrival_inside_flap_window_breaks_link() {
        let mut sim = Simulator::new(3);
        let (a, b) = sim.link(LinkProfile {
            latency_us: 10_000,
            jitter_us: 0,
            ..LinkProfile::ideal()
        });
        sim.set_link_faults(a, FaultSchedule::new().flap(9_000, 12_000));
        sim.send(a, vec![1]); // sent at t=0 (link fine), arrives t=10_000
        sim.run_until_idle();
        assert_eq!(sim.pending(b), 0, "arrival in flap is dropped");
        assert!(!sim.link_up(a));
    }

    #[test]
    fn burst_loss_is_deterministic_and_breaks_link() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let (a, b) = sim.link(LinkProfile::ideal());
            sim.set_link_faults(a, FaultSchedule::new().burst_loss(0.2, 0.3, 1.0));
            let mut delivered = 0u32;
            for i in 0..100u8 {
                if !sim.link_up(a) {
                    sim.reconnect(a);
                }
                sim.send(a, vec![i]);
                sim.run_until_idle();
                delivered += sim.recv(b).is_some() as u32;
            }
            delivered
        };
        let d = run(11);
        assert!(d < 100, "some bursts must drop");
        assert!(d > 10, "chain must recover");
        assert_eq!(run(11), d, "same seed, same drops");
    }

    #[test]
    fn latency_spike_delays_packets_in_window() {
        let mut sim = Simulator::new(1);
        let (a, b) = sim.link(LinkProfile::ideal());
        sim.set_link_faults(a, FaultSchedule::new().latency_spike(0, 10, 100_000));
        sim.send(a, vec![1]); // inside spike
        sim.run_until_idle();
        assert!(sim.now_us() >= 100_000, "{}", sim.now_us());
        assert_eq!(sim.recv(b), Some(vec![1]));
        // Outside the window there is no extra delay.
        let before = sim.now_us();
        sim.send(a, vec![2]);
        sim.run_until_idle();
        assert_eq!(sim.now_us(), before);
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let mut sim = Simulator::new(1);
        let (a, b) = sim.link(LinkProfile::ideal());
        sim.set_link_faults(a, FaultSchedule::new().duplicate(1.0));
        sim.send(a, vec![9]);
        sim.run_until_idle();
        assert_eq!(sim.recv(b), Some(vec![9]));
        assert_eq!(sim.recv(b), Some(vec![9]));
        assert_eq!(sim.recv(b), None);
    }

    #[test]
    fn reorder_fault_can_break_fifo() {
        let mut sim = Simulator::new(5);
        let (a, b) = sim.link(LinkProfile {
            latency_us: 10_000,
            ..LinkProfile::ideal()
        });
        sim.set_link_faults(a, FaultSchedule::new().reorder(0.5, 9_000));
        let mut out_of_order = false;
        let mut last = None;
        for round in 0..20 {
            for i in 0..5u8 {
                sim.send(a, vec![round * 5 + i]);
            }
            sim.run_until_idle();
            while let Some(v) = sim.recv(b) {
                if let Some(prev) = last {
                    if v[0] < prev {
                        out_of_order = true;
                    }
                }
                last = Some(v[0]);
            }
        }
        assert!(out_of_order, "reorder fault should break FIFO sometimes");
    }

    #[test]
    fn trace_is_identical_across_identical_runs() {
        let run = || {
            let mut sim = Simulator::new(77);
            sim.set_tracing(true);
            let (a, b) = sim.link(LinkProfile::wifi80211b());
            sim.set_link_faults(
                a,
                FaultSchedule::new()
                    .flap(50_000, 80_000)
                    .burst_loss(0.1, 0.4, 0.8)
                    .latency_spike(100_000, 120_000, 30_000),
            );
            for i in 0..40u8 {
                if !sim.link_up(a) {
                    sim.reconnect(a);
                }
                sim.send(a, vec![i; 64]);
                sim.advance(5_000);
            }
            sim.run_until_idle();
            while sim.recv(b).is_some() {}
            sim.take_trace()
        };
        let t1 = run();
        let t2 = run();
        assert!(!t1.is_empty());
        assert_eq!(t1, t2, "same seed + schedule must reproduce the trace");
        assert!(t1
            .iter()
            .any(|e| matches!(e.kind, TraceKind::LinkDown { .. })));
    }

    #[test]
    fn telemetry_tracks_links_and_drives_clock() {
        let registry = Registry::new();
        let mut sim = Simulator::new(5);
        let (a, _b) = sim.link(LinkProfile::ideal());
        sim.attach_telemetry(&registry);
        let (c, _d) = sim.link(LinkProfile::ideal()); // created after attach
        sim.set_link_faults(a, FaultSchedule::new().flap(1_000, 2_000));
        sim.send(a, vec![0u8; 64]);
        sim.send(c, vec![0u8; 64]);
        sim.run_until_idle();
        sim.run_until(1_500); // inside the flap window
        sim.send(a, vec![1]); // inside flap: dropped, breaks link
        let snap = registry.snapshot();
        assert_eq!(snap.counters["netsim.sends"], 3);
        assert_eq!(snap.counters["netsim.delivered"], 2);
        assert_eq!(snap.counters["netsim.drops.flap"], 1);
        assert_eq!(snap.counters["netsim.link_downs"], 1);
        assert_eq!(snap.counters["netsim.link0.sends"], 2);
        assert_eq!(snap.counters["netsim.link1.sends"], 1);
        assert_eq!(snap.histograms["netsim.link1.delivery_us"].count, 1);
        assert_eq!(registry.now_us(), sim.now_us());
    }

    #[test]
    fn telemetry_snapshot_is_byte_identical_across_runs() {
        let run = || {
            let registry = Registry::new();
            let mut sim = Simulator::new(21);
            sim.attach_telemetry(&registry);
            let (a, b) = sim.link(LinkProfile::cellular_gprs());
            sim.set_link_faults(a, FaultSchedule::new().burst_loss(0.1, 0.4, 0.9));
            for i in 0..30u8 {
                if !sim.link_up(a) {
                    sim.reconnect(a);
                }
                sim.send(a, vec![i; 40]);
                sim.advance(2_000);
            }
            sim.run_until_idle();
            while sim.recv(b).is_some() {}
            registry.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut sim = Simulator::new(1);
        let (a, _b) = sim.link(LinkProfile::ideal());
        sim.send(a, vec![1]);
        sim.run_until_idle();
        assert!(sim.take_trace().is_empty());
    }
}
