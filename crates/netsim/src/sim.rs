//! A deterministic discrete-event simulator of point-to-point links.
//!
//! The UniInt benchmarks sweep link conditions (wired, WLAN, Bluetooth,
//! cellular) reproducibly: all randomness (jitter, loss) comes from a
//! seeded generator, so a given seed always produces identical timings.

use crate::link::LinkProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Identifies one end of a simulated link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint(usize);

#[derive(Debug)]
struct EndpointState {
    peer: usize,
    profile: LinkProfile,
    /// When the transmitter is next free (serialization queueing).
    tx_free_at: u64,
    inbox: VecDeque<Vec<u8>>,
    bytes_sent: u64,
    messages_sent: u64,
}

#[derive(Debug)]
struct Delivery {
    to: usize,
    payload: Vec<u8>,
}

/// The simulator: owns all endpoints, a virtual clock and the in-flight
/// message queue.
///
/// ```
/// use uniint_netsim::prelude::*;
/// let mut sim = Simulator::new(42);
/// let (a, b) = sim.link(LinkProfile::wifi80211b());
/// sim.send(a, b"hello".to_vec());
/// sim.run_until_idle();
/// assert_eq!(sim.recv(b), Some(b"hello".to_vec()));
/// ```
#[derive(Debug)]
pub struct Simulator {
    now_us: u64,
    endpoints: Vec<EndpointState>,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    deliveries: std::collections::HashMap<u64, Delivery>,
    seq: u64,
    rng: StdRng,
}

impl Simulator {
    /// Creates a simulator; `seed` fixes all jitter/loss decisions.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now_us: 0,
            endpoints: Vec::new(),
            queue: BinaryHeap::new(),
            deliveries: std::collections::HashMap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Creates a bidirectional link, returning its two endpoints.
    pub fn link(&mut self, profile: LinkProfile) -> (Endpoint, Endpoint) {
        let a = self.endpoints.len();
        let b = a + 1;
        self.endpoints.push(EndpointState {
            peer: b,
            profile,
            tx_free_at: 0,
            inbox: VecDeque::new(),
            bytes_sent: 0,
            messages_sent: 0,
        });
        self.endpoints.push(EndpointState {
            peer: a,
            profile,
            tx_free_at: 0,
            inbox: VecDeque::new(),
            bytes_sent: 0,
            messages_sent: 0,
        });
        (Endpoint(a), Endpoint(b))
    }

    /// Queues `payload` for delivery to the peer of `from`. Delivery time
    /// accounts for serialization (bandwidth), propagation (latency),
    /// jitter, and loss-induced retransmissions. The link is reliable and
    /// in-order.
    pub fn send(&mut self, from: Endpoint, payload: Vec<u8>) {
        let size = payload.len();
        let (arrival, to) = {
            let ep = &mut self.endpoints[from.0];
            ep.bytes_sent += size as u64;
            ep.messages_sent += 1;
            let p = ep.profile;
            let tx_start = ep.tx_free_at.max(self.now_us);
            let tx_time = p.tx_time_us(size);
            ep.tx_free_at = tx_start + tx_time;
            let mut arrival = tx_start + tx_time + p.latency_us;
            if p.jitter_us > 0 {
                arrival += self.rng.gen_range(0..=p.jitter_us);
            }
            // Each loss costs one RTT before the retransmission lands.
            while p.loss > 0.0 && self.rng.gen_bool(p.loss) {
                arrival += 2 * p.latency_us + tx_time;
            }
            (arrival, ep.peer)
        };
        // In-order guarantee: never deliver before anything already queued
        // towards the same endpoint.
        let arrival = arrival.max(self.last_arrival_to(to));
        self.seq += 1;
        self.deliveries.insert(self.seq, Delivery { to, payload });
        self.queue.push(Reverse((arrival, self.seq)));
    }

    fn last_arrival_to(&self, to: usize) -> u64 {
        self.queue
            .iter()
            .filter(|Reverse((_, s))| self.deliveries.get(s).map(|d| d.to) == Some(to))
            .map(|Reverse((t, _))| *t)
            .max()
            .unwrap_or(0)
    }

    /// Pops one delivered message from `ep`'s inbox.
    pub fn recv(&mut self, ep: Endpoint) -> Option<Vec<u8>> {
        self.endpoints[ep.0].inbox.pop_front()
    }

    /// Number of messages waiting in `ep`'s inbox.
    pub fn pending(&self, ep: Endpoint) -> usize {
        self.endpoints[ep.0].inbox.len()
    }

    /// Bytes sent from `ep` since creation.
    pub fn bytes_sent(&self, ep: Endpoint) -> u64 {
        self.endpoints[ep.0].bytes_sent
    }

    /// Messages sent from `ep` since creation.
    pub fn messages_sent(&self, ep: Endpoint) -> u64 {
        self.endpoints[ep.0].messages_sent
    }

    /// Processes the next in-flight message, advancing the clock to its
    /// arrival. Returns the new time, or `None` when nothing is in flight.
    pub fn step(&mut self) -> Option<u64> {
        let Reverse((t, seq)) = self.queue.pop()?;
        let d = self
            .deliveries
            .remove(&seq)
            .expect("delivery for queued seq");
        self.now_us = self.now_us.max(t);
        self.endpoints[d.to].inbox.push_back(d.payload);
        Some(self.now_us)
    }

    /// Runs until no messages are in flight.
    pub fn run_until_idle(&mut self) {
        while self.step().is_some() {}
    }

    /// Runs until virtual time reaches `t_us` (messages arriving later
    /// stay in flight). The clock always ends at `t_us` or later.
    pub fn run_until(&mut self, t_us: u64) {
        while let Some(&Reverse((t, _))) = self.queue.peek() {
            if t > t_us {
                break;
            }
            self.step();
        }
        self.now_us = self.now_us.max(t_us);
    }

    /// Advances the clock without delivering anything earlier.
    pub fn advance(&mut self, dt_us: u64) {
        let target = self.now_us + dt_us;
        self.run_until(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_latency_matches_profile() {
        let mut sim = Simulator::new(1);
        let (a, b) = sim.link(LinkProfile::ethernet100());
        sim.send(a, vec![0u8; 125]); // 125B at 100Mb/s = 10us tx
        sim.run_until_idle();
        // latency 200 + tx 10 + jitter 0..=50
        assert!((210..=260).contains(&sim.now_us()), "{}", sim.now_us());
        assert_eq!(sim.recv(b), Some(vec![0u8; 125]));
    }

    #[test]
    fn in_order_delivery() {
        let mut sim = Simulator::new(7);
        let (a, b) = sim.link(LinkProfile::wifi80211b());
        for i in 0..20u8 {
            sim.send(a, vec![i]);
        }
        sim.run_until_idle();
        let got: Vec<u8> = std::iter::from_fn(|| sim.recv(b)).map(|v| v[0]).collect();
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let (a, _b) = sim.link(LinkProfile::cellular_gprs());
            for _ in 0..10 {
                sim.send(a, vec![0u8; 100]);
            }
            sim.run_until_idle();
            sim.now_us()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn bandwidth_queueing_serializes() {
        let mut sim = Simulator::new(1);
        let (a, _b) = sim.link(LinkProfile::bluetooth());
        // Two 1 KB messages back-to-back: second waits for first's tx.
        sim.send(a, vec![0u8; 1000]);
        sim.send(a, vec![0u8; 1000]);
        sim.run_until_idle();
        let one_tx = LinkProfile::bluetooth().tx_time_us(1000);
        assert!(
            sim.now_us() >= 2 * one_tx,
            "{} < {}",
            sim.now_us(),
            2 * one_tx
        );
    }

    #[test]
    fn both_directions_work() {
        let mut sim = Simulator::new(1);
        let (a, b) = sim.link(LinkProfile::ideal());
        sim.send(a, b"to-b".to_vec());
        sim.send(b, b"to-a".to_vec());
        sim.run_until_idle();
        assert_eq!(sim.recv(b), Some(b"to-b".to_vec()));
        assert_eq!(sim.recv(a), Some(b"to-a".to_vec()));
    }

    #[test]
    fn run_until_leaves_late_messages_in_flight() {
        let mut sim = Simulator::new(1);
        let (a, b) = sim.link(LinkProfile::cellular_gprs());
        sim.send(a, vec![1]);
        sim.run_until(10); // far before the 300ms latency
        assert_eq!(sim.pending(b), 0);
        assert_eq!(sim.now_us(), 10);
        sim.run_until_idle();
        assert_eq!(sim.pending(b), 1);
    }

    #[test]
    fn stats_track_traffic() {
        let mut sim = Simulator::new(1);
        let (a, _b) = sim.link(LinkProfile::ideal());
        sim.send(a, vec![0u8; 10]);
        sim.send(a, vec![0u8; 20]);
        assert_eq!(sim.bytes_sent(a), 30);
        assert_eq!(sim.messages_sent(a), 2);
    }

    #[test]
    fn multiple_links_independent() {
        let mut sim = Simulator::new(1);
        let (a1, b1) = sim.link(LinkProfile::ideal());
        let (a2, b2) = sim.link(LinkProfile::ideal());
        sim.send(a1, vec![1]);
        sim.send(a2, vec![2]);
        sim.run_until_idle();
        assert_eq!(sim.recv(b1), Some(vec![1]));
        assert_eq!(sim.recv(b2), Some(vec![2]));
        assert_eq!(sim.recv(b1), None);
    }

    #[test]
    fn lossy_link_still_reliable() {
        let mut sim = Simulator::new(9);
        let (a, b) = sim.link(LinkProfile {
            loss: 0.5,
            ..LinkProfile::bluetooth()
        });
        for i in 0..50u8 {
            sim.send(a, vec![i]);
        }
        sim.run_until_idle();
        let got: Vec<u8> = std::iter::from_fn(|| sim.recv(b)).map(|v| v[0]).collect();
        assert_eq!(got.len(), 50, "reliable despite loss");
        assert_eq!(got, (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn advance_moves_clock() {
        let mut sim = Simulator::new(1);
        sim.advance(1_000);
        assert_eq!(sim.now_us(), 1_000);
    }
}
