//! Link profiles: the home-network media a 2002 deployment would see.

use serde::{Deserialize, Serialize};

/// Physical characteristics of a (simulated) link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// One-way propagation + processing latency, microseconds.
    pub latency_us: u64,
    /// Usable bandwidth, bits per second.
    pub bandwidth_bps: u64,
    /// Max symmetric random jitter added per packet, microseconds.
    pub jitter_us: u64,
    /// Packet loss probability in `0..=1`; lost packets are retransmitted
    /// after one RTT (the link stays reliable, it just stalls).
    pub loss: f64,
    /// Human-readable name.
    pub name: &'static str,
}

impl LinkProfile {
    /// Switched 100 Mb/s Ethernet (wired home backbone).
    pub const fn ethernet100() -> LinkProfile {
        LinkProfile {
            latency_us: 200,
            bandwidth_bps: 100_000_000,
            jitter_us: 50,
            loss: 0.0,
            name: "ethernet-100",
        }
    }

    /// 802.11b WLAN as a 2002 PDA would use (11 Mb/s nominal, ~5 usable).
    pub const fn wifi80211b() -> LinkProfile {
        LinkProfile {
            latency_us: 2_000,
            bandwidth_bps: 5_000_000,
            jitter_us: 1_500,
            loss: 0.01,
            name: "wifi-802.11b",
        }
    }

    /// Bluetooth 1.1 (723 kb/s asymmetric).
    pub const fn bluetooth() -> LinkProfile {
        LinkProfile {
            latency_us: 15_000,
            bandwidth_bps: 723_000,
            jitter_us: 5_000,
            loss: 0.02,
            name: "bluetooth-1.1",
        }
    }

    /// Cellular GPRS uplink, the cellular-phone path of the paper.
    pub const fn cellular_gprs() -> LinkProfile {
        LinkProfile {
            latency_us: 300_000,
            bandwidth_bps: 40_000,
            jitter_us: 80_000,
            loss: 0.03,
            name: "cellular-gprs",
        }
    }

    /// An ideal zero-cost link, useful as a baseline.
    pub const fn ideal() -> LinkProfile {
        LinkProfile {
            latency_us: 0,
            bandwidth_bps: u64::MAX,
            jitter_us: 0,
            loss: 0.0,
            name: "ideal",
        }
    }

    /// All realistic presets, slowest last.
    pub fn presets() -> [LinkProfile; 4] {
        [
            LinkProfile::ethernet100(),
            LinkProfile::wifi80211b(),
            LinkProfile::bluetooth(),
            LinkProfile::cellular_gprs(),
        ]
    }

    /// Microseconds to serialize `bytes` onto this link.
    pub fn tx_time_us(&self, bytes: usize) -> u64 {
        if self.bandwidth_bps == u64::MAX {
            return 0;
        }
        (bytes as u128 * 8 * 1_000_000 / self.bandwidth_bps as u128) as u64
    }
}

impl core::fmt::Display for LinkProfile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_scales_with_size() {
        let l = LinkProfile::bluetooth();
        assert!(l.tx_time_us(1000) > l.tx_time_us(100));
        // 1000 bytes at 723 kb/s ≈ 11ms.
        let t = l.tx_time_us(1000);
        assert!((10_000..13_000).contains(&t), "{t}");
    }

    #[test]
    fn ideal_link_is_free() {
        let l = LinkProfile::ideal();
        assert_eq!(l.tx_time_us(1_000_000), 0);
        assert_eq!(l.latency_us, 0);
    }

    #[test]
    fn presets_ordered_by_speed() {
        let p = LinkProfile::presets();
        for w in p.windows(2) {
            assert!(w[0].bandwidth_bps > w[1].bandwidth_bps);
            assert!(w[0].latency_us < w[1].latency_us);
        }
    }
}
