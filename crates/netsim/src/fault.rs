//! Scriptable fault schedules and the event trace they produce.
//!
//! A [`FaultSchedule`] attaches to a link (see
//! [`Simulator::set_link_faults`](crate::sim::Simulator::set_link_faults))
//! and scripts when that link misbehaves:
//!
//! * **Link flaps** — scheduled `[start, end)` windows of virtual time in
//!   which the link is physically down. Traffic hitting a flap window
//!   breaks the connection (see below).
//! * **Burst loss** — a Gilbert–Elliott two-state chain. Each send
//!   advances the chain; in the *bad* state packets drop with
//!   `drop_prob`, producing correlated loss bursts rather than
//!   independent drops.
//! * **Latency spikes** — windows adding a fixed extra delay to every
//!   packet sent while they are open.
//! * **Reorder / duplication** — raw datagram-level faults: a packet may
//!   bypass the in-order clamp (arriving up to `skew_us` early) or be
//!   delivered twice.
//!
//! Flap and burst drops are *hard* faults: they model a broken transport
//! connection, so the simulator tears the link down — every in-flight
//! packet on the link is purged and later sends are dropped until
//! [`Simulator::reconnect`](crate::sim::Simulator::reconnect) succeeds.
//! This gives the session layer a crisp invariant: the receiver always
//! holds an exact *prefix* of what the sender pushed, which is what makes
//! count-based resume (`ClientMessage::Resume`) sound.
//!
//! All randomness comes from the simulator's seeded generator, so one
//! seed plus one schedule reproduces the exact same [`TraceEvent`]
//! sequence every run.

/// Parameters of a Gilbert–Elliott two-state loss chain.
///
/// The chain starts in the *good* state. On every send it transitions:
/// good→bad with `p_enter`, bad→good with `p_exit`. While bad, each
/// packet drops with `drop_prob` (a hard fault, breaking the link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability per send of entering the bad (bursty) state.
    pub p_enter: f64,
    /// Probability per send of leaving the bad state.
    pub p_exit: f64,
    /// Drop probability per packet while in the bad state.
    pub drop_prob: f64,
}

/// A scheduled window of extra one-way delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySpike {
    /// Window start, inclusive, microseconds of virtual time.
    pub start_us: u64,
    /// Window end, exclusive.
    pub end_us: u64,
    /// Extra delay added to packets sent inside the window.
    pub extra_us: u64,
}

/// Datagram reorder fault: packets may bypass the in-order clamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reorder {
    /// Probability per packet of being reordered.
    pub prob: f64,
    /// How much earlier (microseconds) a reordered packet may arrive.
    pub skew_us: u64,
}

/// A deterministic script of link faults.
///
/// Build one with the fluent constructors and attach it with
/// [`Simulator::set_link_faults`](crate::sim::Simulator::set_link_faults):
///
/// ```
/// use uniint_netsim::prelude::*;
/// let sched = FaultSchedule::new()
///     .flap(1_000_000, 3_000_000)          // down from t=1s to t=3s
///     .burst_loss(0.05, 0.5, 0.9)          // Gilbert–Elliott bursts
///     .latency_spike(5_000_000, 5_500_000, 200_000);
/// let mut sim = Simulator::new(7);
/// let (a, _b) = sim.link(LinkProfile::wifi80211b());
/// sim.set_link_faults(a, sched);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Link-down windows `[start, end)` in virtual microseconds.
    pub flaps: Vec<(u64, u64)>,
    /// Optional Gilbert–Elliott burst-loss chain.
    pub burst: Option<GilbertElliott>,
    /// Scheduled latency spikes.
    pub spikes: Vec<LatencySpike>,
    /// Optional datagram reorder fault.
    pub reorder: Option<Reorder>,
    /// Probability per packet of duplicate delivery.
    pub duplicate_prob: f64,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Adds a link-down window `[start_us, end_us)`.
    pub fn flap(mut self, start_us: u64, end_us: u64) -> FaultSchedule {
        assert!(start_us < end_us, "empty flap window");
        self.flaps.push((start_us, end_us));
        self
    }

    /// Enables Gilbert–Elliott burst loss.
    pub fn burst_loss(mut self, p_enter: f64, p_exit: f64, drop_prob: f64) -> FaultSchedule {
        self.burst = Some(GilbertElliott {
            p_enter,
            p_exit,
            drop_prob,
        });
        self
    }

    /// Adds a latency-spike window `[start_us, end_us)` with `extra_us`
    /// additional one-way delay.
    pub fn latency_spike(mut self, start_us: u64, end_us: u64, extra_us: u64) -> FaultSchedule {
        assert!(start_us < end_us, "empty spike window");
        self.spikes.push(LatencySpike {
            start_us,
            end_us,
            extra_us,
        });
        self
    }

    /// Enables datagram reorder with probability `prob` and up to
    /// `skew_us` of early arrival.
    pub fn reorder(mut self, prob: f64, skew_us: u64) -> FaultSchedule {
        self.reorder = Some(Reorder { prob, skew_us });
        self
    }

    /// Enables duplicate delivery with probability `prob` per packet.
    pub fn duplicate(mut self, prob: f64) -> FaultSchedule {
        self.duplicate_prob = prob;
        self
    }

    /// Whether `t_us` falls inside any flap window.
    pub fn in_flap(&self, t_us: u64) -> bool {
        self.flaps.iter().any(|&(s, e)| (s..e).contains(&t_us))
    }

    /// Extra latency applying to a packet sent at `t_us`.
    pub fn spike_extra(&self, t_us: u64) -> u64 {
        self.spikes
            .iter()
            .filter(|s| (s.start_us..s.end_us).contains(&t_us))
            .map(|s| s.extra_us)
            .sum()
    }

    /// End of the flap window containing `t_us`, if any — the earliest
    /// time a reconnect can succeed.
    pub fn flap_end_after(&self, t_us: u64) -> Option<u64> {
        self.flaps
            .iter()
            .filter(|&&(s, e)| (s..e).contains(&t_us))
            .map(|&(_, e)| e)
            .max()
    }
}

/// Why a packet (or connection) was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Sent or arriving inside a scheduled flap window.
    Flap,
    /// Dropped by the Gilbert–Elliott bad state.
    Burst,
    /// Sent while the connection was already torn down.
    LinkDown,
    /// Was in flight when the connection broke.
    Purged,
}

/// What happened at one instant of the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A payload was handed to the simulator for transmission.
    Send {
        /// Sending endpoint index.
        from: usize,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A payload reached its destination inbox.
    Deliver {
        /// Receiving endpoint index.
        to: usize,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A payload was dropped.
    Drop {
        /// Intended receiving endpoint index.
        to: usize,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// The connection between endpoints `a` and `b` broke.
    LinkDown {
        /// Lower endpoint index of the link.
        a: usize,
        /// Higher endpoint index of the link.
        b: usize,
    },
    /// A reconnect attempt succeeded, restoring the link.
    Reconnect {
        /// Lower endpoint index of the link.
        a: usize,
        /// Higher endpoint index of the link.
        b: usize,
    },
    /// A reconnect attempt failed (still inside a flap window).
    ReconnectFailed {
        /// Lower endpoint index of the link.
        a: usize,
        /// Higher endpoint index of the link.
        b: usize,
    },
    /// A packet was delivered a second time (duplicate fault).
    Duplicate {
        /// Receiving endpoint index.
        to: usize,
    },
    /// A packet bypassed the in-order clamp (reorder fault).
    Reorder {
        /// Receiving endpoint index.
        to: usize,
    },
}

/// One timestamped simulation event.
///
/// Traces from two runs with the same seed and schedule compare equal —
/// the determinism tests assert exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event, microseconds.
    pub t_us: u64,
    /// What happened.
    pub kind: TraceKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_windows_are_half_open() {
        let s = FaultSchedule::new().flap(100, 200);
        assert!(!s.in_flap(99));
        assert!(s.in_flap(100));
        assert!(s.in_flap(199));
        assert!(!s.in_flap(200));
    }

    #[test]
    fn spike_extra_sums_overlapping_windows() {
        let s = FaultSchedule::new()
            .latency_spike(0, 100, 10)
            .latency_spike(50, 150, 5);
        assert_eq!(s.spike_extra(25), 10);
        assert_eq!(s.spike_extra(75), 15);
        assert_eq!(s.spike_extra(125), 5);
        assert_eq!(s.spike_extra(200), 0);
    }

    #[test]
    fn flap_end_after_reports_latest_containing_window() {
        let s = FaultSchedule::new().flap(0, 100).flap(50, 300);
        assert_eq!(s.flap_end_after(60), Some(300));
        assert_eq!(s.flap_end_after(150), Some(300));
        assert_eq!(s.flap_end_after(400), None);
    }

    #[test]
    fn builder_composes() {
        let s = FaultSchedule::new()
            .flap(1, 2)
            .burst_loss(0.1, 0.5, 0.9)
            .latency_spike(3, 4, 5)
            .reorder(0.2, 1000)
            .duplicate(0.1);
        assert_eq!(s.flaps.len(), 1);
        assert!(s.burst.is_some());
        assert_eq!(s.spikes.len(), 1);
        assert!(s.reorder.is_some());
        assert!(s.duplicate_prob > 0.0);
    }
}
