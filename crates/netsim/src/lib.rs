//! # uniint-netsim
//!
//! Network substrate for the universal-interaction reproduction: a
//! deterministic discrete-event [`sim::Simulator`] of point-to-point home
//! links (Ethernet, 802.11b, Bluetooth, GPRS — the media a 2002 PDA or
//! cellular phone actually had), plus a live in-process duplex
//! [`transport::Pipe`] for threaded examples.
//!
//! The benchmarks use the simulator so link sweeps are exactly
//! reproducible: all jitter and loss derives from an explicit seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod link;
pub mod sim;
pub mod transport;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::fault::{
        DropCause, FaultSchedule, GilbertElliott, LatencySpike, Reorder, TraceEvent, TraceKind,
    };
    pub use crate::link::LinkProfile;
    pub use crate::sim::{Endpoint, Simulator};
    pub use crate::transport::{duplex, Pipe, PipeError};
}
