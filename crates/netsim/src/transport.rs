//! A live in-process transport for threaded examples: a reliable,
//! in-order duplex byte-message pipe built on crossbeam channels.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::Duration;

/// One end of a duplex message pipe.
#[derive(Debug)]
pub struct Pipe {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Why a receive failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeError {
    /// The peer end was dropped.
    Disconnected,
    /// No message available (non-blocking/timeout receive).
    Empty,
}

impl core::fmt::Display for PipeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PipeError::Disconnected => f.write_str("peer disconnected"),
            PipeError::Empty => f.write_str("no message available"),
        }
    }
}

impl std::error::Error for PipeError {}

impl Pipe {
    /// Sends a message; returns false when the peer is gone.
    pub fn send(&self, msg: Vec<u8>) -> bool {
        self.tx.send(msg).is_ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Vec<u8>, PipeError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => PipeError::Empty,
            TryRecvError::Disconnected => PipeError::Disconnected,
        })
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, PipeError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => PipeError::Empty,
            RecvTimeoutError::Disconnected => PipeError::Disconnected,
        })
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Ok(m) = self.rx.try_recv() {
            out.push(m);
        }
        out
    }
}

/// Creates a connected pair of pipes.
pub fn duplex() -> (Pipe, Pipe) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (Pipe { tx: atx, rx: arx }, Pipe { tx: btx, rx: brx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_roundtrip() {
        let (a, b) = duplex();
        assert!(a.send(b"ping".to_vec()));
        assert_eq!(b.try_recv().unwrap(), b"ping");
        assert!(b.send(b"pong".to_vec()));
        assert_eq!(a.try_recv().unwrap(), b"pong");
    }

    #[test]
    fn empty_and_disconnected() {
        let (a, b) = duplex();
        assert_eq!(a.try_recv(), Err(PipeError::Empty));
        drop(b);
        assert_eq!(a.try_recv(), Err(PipeError::Disconnected));
        assert!(!a.send(vec![1]), "send to dropped peer fails");
    }

    #[test]
    fn drain_collects_all() {
        let (a, b) = duplex();
        a.send(vec![1]);
        a.send(vec![2]);
        a.send(vec![3]);
        assert_eq!(b.drain(), vec![vec![1], vec![2], vec![3]]);
        assert!(b.drain().is_empty());
    }

    #[test]
    fn works_across_threads() {
        let (a, b) = duplex();
        let handle = std::thread::spawn(move || {
            let msg = b.recv_timeout(Duration::from_secs(1)).unwrap();
            b.send(msg.iter().rev().copied().collect());
        });
        a.send(vec![1, 2, 3]);
        let back = a.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(back, vec![3, 2, 1]);
        handle.join().unwrap();
    }
}
