//! Property tests for the network simulator: determinism, in-order
//! reliable delivery, and conservation of messages.

use proptest::prelude::*;
use uniint_netsim::link::LinkProfile;
use uniint_netsim::sim::Simulator;

fn arb_profile() -> impl Strategy<Value = LinkProfile> {
    (0u64..500_000, 1u64..100_000_000, 0u64..50_000, 0.0f64..0.4).prop_map(
        |(latency_us, bandwidth_bps, jitter_us, loss)| LinkProfile {
            latency_us,
            bandwidth_bps,
            jitter_us,
            loss,
            name: "arb",
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_messages_delivered_in_order(
        profile in arb_profile(),
        seed in any::<u64>(),
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..40),
    ) {
        let mut sim = Simulator::new(seed);
        let (a, b) = sim.link(profile);
        for m in &msgs {
            sim.send(a, m.clone());
        }
        sim.run_until_idle();
        let got: Vec<Vec<u8>> = std::iter::from_fn(|| sim.recv(b)).collect();
        prop_assert_eq!(got, msgs, "reliable, in-order, complete");
    }

    #[test]
    fn virtual_time_is_deterministic(profile in arb_profile(), seed in any::<u64>(), n in 1usize..20) {
        let run = || {
            let mut sim = Simulator::new(seed);
            let (a, _b) = sim.link(profile);
            for i in 0..n {
                sim.send(a, vec![i as u8; (i * 13) % 64 + 1]);
            }
            sim.run_until_idle();
            sim.now_us()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn time_never_goes_backwards(
        profile in arb_profile(),
        seed in any::<u64>(),
        n in 1usize..30,
    ) {
        let mut sim = Simulator::new(seed);
        let (a, b) = sim.link(profile);
        for i in 0..n {
            if i % 2 == 0 {
                sim.send(a, vec![1]);
            } else {
                sim.send(b, vec![2]);
            }
        }
        let mut last = sim.now_us();
        while let Some(t) = sim.step() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn delivery_no_earlier_than_latency(profile in arb_profile(), seed in any::<u64>()) {
        let mut sim = Simulator::new(seed);
        let (a, _b) = sim.link(profile);
        sim.send(a, vec![0u8; 32]);
        sim.run_until_idle();
        let min = profile.latency_us + profile.tx_time_us(32);
        prop_assert!(sim.now_us() >= min, "{} < {}", sim.now_us(), min);
    }

    #[test]
    fn bidirectional_links_isolate_directions(
        profile in arb_profile(),
        seed in any::<u64>(),
        na in 0usize..10,
        nb in 0usize..10,
    ) {
        let mut sim = Simulator::new(seed);
        let (a, b) = sim.link(profile);
        for _ in 0..na {
            sim.send(a, vec![b'a']);
        }
        for _ in 0..nb {
            sim.send(b, vec![b'b']);
        }
        sim.run_until_idle();
        let at_b: Vec<_> = std::iter::from_fn(|| sim.recv(b)).collect();
        let at_a: Vec<_> = std::iter::from_fn(|| sim.recv(a)).collect();
        prop_assert_eq!(at_b.len(), na);
        prop_assert_eq!(at_a.len(), nb);
        prop_assert!(at_b.iter().all(|m| m == &vec![b'a']));
        prop_assert!(at_a.iter().all(|m| m == &vec![b'b']));
    }
}
