//! # uniint-apps
//!
//! Home-appliance applications for the universal-interaction
//! reproduction: a control-panel generator that discovers FCMs through
//! the HAVi registry and composes one window from per-appliance sections
//! ([`panels`]), with typed widget→command [`binding`]s and live state
//! mirroring ([`app::ControlPanelApp`]).
//!
//! Crucially, the application is written against the ordinary widget
//! toolkit only — it contains no knowledge of PDAs, phones or voice.
//! That separation is the paper's point: the same unmodified panel is
//! operated from every interaction device through the UniInt proxy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod binding;
pub mod monitor;
pub mod panels;
pub mod scenes;
pub mod scheduler;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::app::{ControlPanelApp, ProcessReport, PANEL_WIDTH};
    pub use crate::binding::{Binding, ControlKind, AIRCON_MODES};
    pub use crate::monitor::{summarize, StatusMonitorApp};
    pub use crate::panels::{
        apply_state, build_section, fmt_time, section_height, state_key, PanelSection, StateKey,
    };
    pub use crate::scenes::{standard_scenes, Scene, ScenePanelApp, SceneReport, SceneStep};
    pub use crate::scheduler::{Recording, RecordingScheduler, RecordingState, ScheduleError};
}
