//! Per-appliance panel sections: given an FCM's class and state, add the
//! widgets that control it and report their bindings.
//!
//! This is the paper's "home appliance application generates a control
//! panel for currently available appliances": one section per discovered
//! FCM, composed vertically into a single window.

use crate::binding::{Binding, ControlKind, AIRCON_MODES};
use uniint_havi::fcm::{FcmClass, StateVar, Transport};
use uniint_havi::id::Seid;
use uniint_raster::color::Color;
use uniint_raster::framebuffer::Framebuffer;
use uniint_raster::geom::Rect;
use uniint_wsys::layout::{columns, rows, Cell};
use uniint_wsys::ui::Ui;
use uniint_wsys::widgets::{
    Align, Button, ImageView, Label, ListBox, ProgressBar, Slider, Spinner, TextField, Toggle,
};

/// Which piece of FCM state a status widget displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateKey {
    /// Power state (toggle).
    Power,
    /// Volume (slider).
    Volume,
    /// Mute (toggle).
    Mute,
    /// Channel number (label).
    Channel,
    /// Transport state (label).
    Transport,
    /// Tape position (progress bar).
    TapePos,
    /// Brightness (slider).
    Brightness,
    /// Dimmer (slider).
    Dimmer,
    /// Target temperature (slider).
    TargetTemp,
    /// Room temperature (label).
    RoomTemp,
    /// Time of day (label).
    Time,
    /// Aircon mode (list).
    Mode,
    /// Display input source (label).
    Input,
    /// Camera frame counter (image view).
    Frame,
}

/// The widgets a section created: command bindings plus status displays.
#[derive(Debug, Default)]
pub struct PanelSection {
    /// Widget → FCM command bindings.
    pub bindings: Vec<(uniint_wsys::event::WidgetId, Binding)>,
    /// (FCM, state key) → widget displaying it.
    pub status: Vec<((Seid, StateKey), uniint_wsys::event::WidgetId)>,
}

impl PanelSection {
    fn bind(&mut self, id: uniint_wsys::event::WidgetId, seid: Seid, control: ControlKind) {
        self.bindings.push((id, Binding { seid, control }));
    }

    fn track(&mut self, id: uniint_wsys::event::WidgetId, seid: Seid, key: StateKey) {
        self.status.push(((seid, key), id));
    }
}

/// Pixel height of the section for a given FCM class (including header).
pub fn section_height(class: FcmClass) -> u32 {
    match class {
        FcmClass::Tuner => 44,
        FcmClass::Display => 44,
        FcmClass::Vcr => 70,
        FcmClass::Amplifier => 44,
        FcmClass::Light => 44,
        FcmClass::AirConditioner => 100,
        FcmClass::Clock => 30,
        FcmClass::Camera => 110,
    }
}

fn state_bool(status: &[StateVar], pick: impl Fn(&StateVar) -> Option<bool>) -> bool {
    status.iter().find_map(pick).unwrap_or(false)
}

fn state_i32(status: &[StateVar], pick: impl Fn(&StateVar) -> Option<i32>, dflt: i32) -> i32 {
    status.iter().find_map(pick).unwrap_or(dflt)
}

/// Builds the section for one FCM inside `area`, seeded from its current
/// `status` snapshot. Returns the widget bindings.
pub fn build_section(
    ui: &mut Ui,
    area: Rect,
    seid: Seid,
    class: FcmClass,
    name: &str,
    status: &[StateVar],
) -> PanelSection {
    let mut sec = PanelSection::default();
    let parts = rows(area, &[Cell::Fixed(14), Cell::Weight(1)], 0);
    let (header, body) = (parts[0], parts[1]);
    ui.add(
        Label::with_align(format!("{name} [{class}]"), Align::Left),
        header,
    );

    let power_on = state_bool(status, |v| match v {
        StateVar::Power(b) => Some(*b),
        _ => None,
    });

    match class {
        FcmClass::Tuner => {
            let cells = columns(
                body.inset(2),
                &[
                    Cell::Fixed(56),
                    Cell::Fixed(34),
                    Cell::Fixed(44),
                    Cell::Fixed(34),
                    Cell::Weight(1),
                ],
                4,
            );
            let power = ui.add(Toggle::new("Power", power_on), cells[0]);
            sec.bind(power, seid, ControlKind::Power);
            sec.track(power, seid, StateKey::Power);
            let down = ui.add(Button::new("Ch-"), cells[1]);
            sec.bind(down, seid, ControlKind::ChannelDown);
            let ch = state_i32(
                status,
                |v| match v {
                    StateVar::Channel(c) => Some(*c as i32),
                    _ => None,
                },
                1,
            );
            let ch_label = ui.add(Label::new(format!("{ch}")), cells[2]);
            sec.track(ch_label, seid, StateKey::Channel);
            let up = ui.add(Button::new("Ch+"), cells[3]);
            sec.bind(up, seid, ControlKind::ChannelUp);
            let entry = ui.add(TextField::new("").with_max_len(3), cells[4]);
            sec.bind(entry, seid, ControlKind::ChannelEntry);
        }
        FcmClass::Display => {
            let cells = columns(body.inset(2), &[Cell::Fixed(56), Cell::Weight(1)], 4);
            let power = ui.add(Toggle::new("Power", power_on), cells[0]);
            sec.bind(power, seid, ControlKind::Power);
            sec.track(power, seid, StateKey::Power);
            let b = state_i32(
                status,
                |v| match v {
                    StateVar::Brightness(x) => Some(*x),
                    _ => None,
                },
                70,
            );
            let bright = ui.add(Slider::new(0, 100, b, 10), cells[1]);
            sec.bind(bright, seid, ControlKind::Brightness);
            sec.track(bright, seid, StateKey::Brightness);
        }
        FcmClass::Vcr => {
            let body_rows = rows(body.inset(2), &[Cell::Fixed(26), Cell::Fixed(22)], 2);
            let cells = columns(
                body_rows[0],
                &[
                    Cell::Fixed(56),
                    Cell::Weight(1),
                    Cell::Weight(1),
                    Cell::Weight(1),
                    Cell::Weight(1),
                    Cell::Weight(1),
                ],
                3,
            );
            let power = ui.add(Toggle::new("Power", power_on), cells[0]);
            sec.bind(power, seid, ControlKind::Power);
            sec.track(power, seid, StateKey::Power);
            for (i, (cap, t)) in [
                ("<<", Transport::Rewind),
                ("Play", Transport::Play),
                ("Stop", Transport::Stop),
                (">>", Transport::FastForward),
                ("Rec", Transport::Record),
            ]
            .into_iter()
            .enumerate()
            {
                let btn = ui.add(Button::new(cap), cells[i + 1]);
                sec.bind(btn, seid, ControlKind::Transport(t));
            }
            let lower = columns(body_rows[1], &[Cell::Fixed(70), Cell::Weight(1)], 4);
            let t_label = ui.add(Label::with_align("stop", Align::Left), lower[0]);
            sec.track(t_label, seid, StateKey::Transport);
            let pos = state_i32(
                status,
                |v| match v {
                    StateVar::TapePos(p) => Some(*p as i32),
                    _ => None,
                },
                0,
            );
            let tape = ui.add(ProgressBar::new(0, 3600, pos), lower[1]);
            sec.track(tape, seid, StateKey::TapePos);
        }
        FcmClass::Amplifier => {
            let cells = columns(
                body.inset(2),
                &[Cell::Fixed(56), Cell::Fixed(52), Cell::Weight(1)],
                4,
            );
            let power = ui.add(Toggle::new("Power", power_on), cells[0]);
            sec.bind(power, seid, ControlKind::Power);
            sec.track(power, seid, StateKey::Power);
            let muted = state_bool(status, |v| match v {
                StateVar::Mute(m) => Some(*m),
                _ => None,
            });
            let mute = ui.add(Toggle::new("Mute", muted), cells[1]);
            sec.bind(mute, seid, ControlKind::Mute);
            sec.track(mute, seid, StateKey::Mute);
            let vol = state_i32(
                status,
                |v| match v {
                    StateVar::Volume(x) => Some(*x),
                    _ => None,
                },
                30,
            );
            let slider = ui.add(Slider::new(0, 100, vol, 5), cells[2]);
            sec.bind(slider, seid, ControlKind::Volume);
            sec.track(slider, seid, StateKey::Volume);
        }
        FcmClass::Light => {
            let cells = columns(body.inset(2), &[Cell::Fixed(56), Cell::Weight(1)], 4);
            let power = ui.add(Toggle::new("Power", power_on), cells[0]);
            sec.bind(power, seid, ControlKind::Power);
            sec.track(power, seid, StateKey::Power);
            let dim = state_i32(
                status,
                |v| match v {
                    StateVar::Dimmer(x) => Some(*x),
                    _ => None,
                },
                100,
            );
            let slider = ui.add(Slider::new(0, 100, dim, 10), cells[1]);
            sec.bind(slider, seid, ControlKind::Dimmer);
            sec.track(slider, seid, StateKey::Dimmer);
        }
        FcmClass::AirConditioner => {
            let body_rows = rows(body.inset(2), &[Cell::Fixed(26), Cell::Weight(1)], 2);
            let cells = columns(
                body_rows[0],
                &[Cell::Fixed(56), Cell::Weight(1), Cell::Fixed(60)],
                4,
            );
            let power = ui.add(Toggle::new("Power", power_on), cells[0]);
            sec.bind(power, seid, ControlKind::Power);
            sec.track(power, seid, StateKey::Power);
            let target = state_i32(
                status,
                |v| match v {
                    StateVar::TargetTemp(t) => Some(*t),
                    _ => None,
                },
                250,
            );
            let spinner = ui.add(
                Spinner::new(160, 320, target, 5).with_suffix(" x0.1C"),
                cells[1],
            );
            sec.bind(spinner, seid, ControlKind::TargetTemp);
            sec.track(spinner, seid, StateKey::TargetTemp);
            let room = state_i32(
                status,
                |v| match v {
                    StateVar::RoomTemp(t) => Some(*t),
                    _ => None,
                },
                250,
            );
            let room_label = ui.add(
                Label::new(format!("{}.{}C", room / 10, room % 10)),
                cells[2],
            );
            sec.track(room_label, seid, StateKey::RoomTemp);
            let modes = ui.add(
                ListBox::new(AIRCON_MODES.iter().map(|m| m.to_string()).collect()),
                body_rows[1],
            );
            sec.bind(modes, seid, ControlKind::AirconMode);
            sec.track(modes, seid, StateKey::Mode);
        }
        FcmClass::Clock => {
            let secs = state_i32(
                status,
                |v| match v {
                    StateVar::TimeOfDay(t) => Some(*t as i32),
                    _ => None,
                },
                0,
            );
            let label = ui.add(Label::new(fmt_time(secs as u32)), body.inset(2));
            sec.track(label, seid, StateKey::Time);
        }
        FcmClass::Camera => {
            let body_rows = rows(body.inset(2), &[Cell::Fixed(22), Cell::Weight(1)], 2);
            let power = ui.add(Toggle::new("Power", power_on), body_rows[0]);
            sec.bind(power, seid, ControlKind::Power);
            sec.track(power, seid, StateKey::Power);
            let counter = state_i32(
                status,
                |v| match v {
                    StateVar::FrameCounter(c) => Some(*c as i32),
                    _ => None,
                },
                0,
            );
            let view = if power_on {
                ImageView::with_image(camera_frame(counter as u32))
            } else {
                ImageView::new()
            };
            let img = ui.add(view, body_rows[1]);
            sec.track(img, seid, StateKey::Frame);
        }
    }
    sec
}

/// Synthesizes the camera's current frame from its counter: a moving
/// diagonal gradient with a bouncing "subject" square. Deterministic per
/// counter so viewers on different devices render identical frames (the
/// middleware carries control state, not video; see `CameraFcm`).
pub fn camera_frame(counter: u32) -> Framebuffer {
    let (w, h) = (96u32, 72u32);
    let mut fb = Framebuffer::new(w, h, Color::BLACK);
    let t = counter as i32;
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let v = (((x + y + t * 3) % 64) * 4) as u8;
            fb.set_pixel(
                uniint_raster::geom::Point::new(x, y),
                Color::rgb(v / 2, v, v / 3 + 60),
            );
        }
    }
    // The bouncing subject.
    let px = (t * 5) % (2 * (w as i32 - 16));
    let sx = if px < w as i32 - 16 {
        px
    } else {
        2 * (w as i32 - 16) - px
    };
    let sy = ((t * 3) % (2 * (h as i32 - 16)) - (h as i32 - 16)).abs();
    fb.fill_rect(Rect::new(sx, sy.min(h as i32 - 16), 16, 16), Color::WHITE);
    fb
}

/// Formats seconds-since-midnight as `HH:MM:SS`.
pub fn fmt_time(secs: u32) -> String {
    format!(
        "{:02}:{:02}:{:02}",
        secs / 3600 % 24,
        secs / 60 % 60,
        secs % 60
    )
}

/// Applies one state variable to the widget registered for it.
pub fn apply_state(ui: &mut Ui, widget: uniint_wsys::event::WidgetId, var: &StateVar) {
    match var {
        StateVar::Power(on) | StateVar::Mute(on) => {
            if let Some(t) = ui.widget_mut::<Toggle>(widget) {
                t.set_on(*on);
            }
        }
        StateVar::Volume(v)
        | StateVar::Brightness(v)
        | StateVar::Dimmer(v)
        | StateVar::TargetTemp(v) => {
            if let Some(s) = ui.widget_mut::<Slider>(widget) {
                s.set_value(*v);
            } else if let Some(s) = ui.widget_mut::<Spinner>(widget) {
                s.set_value(*v);
            }
        }
        StateVar::Channel(c) => {
            if let Some(l) = ui.widget_mut::<Label>(widget) {
                l.set_text(format!("{c}"));
            }
        }
        StateVar::Transport(t) => {
            if let Some(l) = ui.widget_mut::<Label>(widget) {
                l.set_text(t.to_string());
            }
        }
        StateVar::TapePos(p) => {
            if let Some(b) = ui.widget_mut::<ProgressBar>(widget) {
                b.set_value(*p as i32);
            }
        }
        StateVar::RoomTemp(t) => {
            if let Some(l) = ui.widget_mut::<Label>(widget) {
                l.set_text(format!("{}.{}C", t / 10, t % 10));
            }
        }
        StateVar::TimeOfDay(t) => {
            if let Some(l) = ui.widget_mut::<Label>(widget) {
                l.set_text(fmt_time(*t));
            }
        }
        StateVar::AirconMode(m) => {
            if let Some(list) = ui.widget_mut::<ListBox>(widget) {
                let idx = AIRCON_MODES.iter().position(|x| x == m);
                list.set_selected(idx);
            }
        }
        StateVar::Input(i) => {
            if let Some(l) = ui.widget_mut::<Label>(widget) {
                l.set_text(format!("in {i}"));
            }
        }
        StateVar::FrameCounter(c) => {
            if let Some(v) = ui.widget_mut::<ImageView>(widget) {
                v.set_image(camera_frame(*c));
            }
        }
    }
}

/// The [`StateKey`] a state variable updates.
pub fn state_key(var: &StateVar) -> StateKey {
    match var {
        StateVar::Power(_) => StateKey::Power,
        StateVar::Volume(_) => StateKey::Volume,
        StateVar::Mute(_) => StateKey::Mute,
        StateVar::Channel(_) => StateKey::Channel,
        StateVar::Transport(_) => StateKey::Transport,
        StateVar::TapePos(_) => StateKey::TapePos,
        StateVar::Brightness(_) => StateKey::Brightness,
        StateVar::Dimmer(_) => StateKey::Dimmer,
        StateVar::TargetTemp(_) => StateKey::TargetTemp,
        StateVar::RoomTemp(_) => StateKey::RoomTemp,
        StateVar::TimeOfDay(_) => StateKey::Time,
        StateVar::AirconMode(_) => StateKey::Mode,
        StateVar::Input(_) => StateKey::Input,
        StateVar::FrameCounter(_) => StateKey::Frame,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_havi::id::Guid;
    use uniint_wsys::theme::Theme;

    fn seid() -> Seid {
        Seid::new(Guid(1), 1)
    }

    fn ui() -> Ui {
        Ui::new(320, 400, Theme::classic(), "t")
    }

    #[test]
    fn tuner_section_widgets_and_bindings() {
        let mut ui = ui();
        let sec = build_section(
            &mut ui,
            Rect::new(0, 0, 320, section_height(FcmClass::Tuner)),
            seid(),
            FcmClass::Tuner,
            "TV Tuner",
            &[StateVar::Power(true), StateVar::Channel(7)],
        );
        assert_eq!(sec.bindings.len(), 4, "power, ch-, ch+, entry");
        assert_eq!(sec.status.len(), 2, "power, channel label");
        // Power toggle reflects initial state.
        let (power_id, _) = sec.bindings[0];
        assert!(ui.widget::<Toggle>(power_id).unwrap().is_on());
    }

    #[test]
    fn amplifier_slider_seeded_with_volume() {
        let mut ui = ui();
        let sec = build_section(
            &mut ui,
            Rect::new(0, 0, 320, 44),
            seid(),
            FcmClass::Amplifier,
            "Amp",
            &[StateVar::Volume(65)],
        );
        let slider_id = sec
            .bindings
            .iter()
            .find(|(_, b)| b.control == ControlKind::Volume)
            .unwrap()
            .0;
        assert_eq!(ui.widget::<Slider>(slider_id).unwrap().value(), 65);
    }

    #[test]
    fn vcr_has_five_transport_buttons() {
        let mut ui = ui();
        let sec = build_section(
            &mut ui,
            Rect::new(0, 0, 320, 70),
            seid(),
            FcmClass::Vcr,
            "Deck",
            &[],
        );
        let transports = sec
            .bindings
            .iter()
            .filter(|(_, b)| matches!(b.control, ControlKind::Transport(_)))
            .count();
        assert_eq!(transports, 5);
    }

    #[test]
    fn every_class_builds_without_panic() {
        for class in FcmClass::ALL {
            let mut ui = ui();
            let h = section_height(class);
            let sec = build_section(&mut ui, Rect::new(0, 0, 320, h), seid(), class, "X", &[]);
            // All section widgets fit in the given area.
            for id in ui.widget_ids() {
                let r = ui.widget_rect(id).unwrap();
                assert!(
                    Rect::new(0, 0, 320, h).contains_rect(r),
                    "{class}: widget {r} overflows section"
                );
            }
            drop(sec);
        }
    }

    #[test]
    fn apply_state_updates_widgets() {
        let mut ui = ui();
        let sec = build_section(
            &mut ui,
            Rect::new(0, 0, 320, 44),
            seid(),
            FcmClass::Amplifier,
            "Amp",
            &[],
        );
        let ((_, _), slider_id) = *sec
            .status
            .iter()
            .find(|((_, k), _)| *k == StateKey::Volume)
            .unwrap();
        apply_state(&mut ui, slider_id, &StateVar::Volume(88));
        assert_eq!(ui.widget::<Slider>(slider_id).unwrap().value(), 88);
    }

    #[test]
    fn fmt_time_wraps() {
        assert_eq!(fmt_time(0), "00:00:00");
        assert_eq!(fmt_time(3661), "01:01:01");
        assert_eq!(fmt_time(86_400), "00:00:00");
    }

    #[test]
    fn state_key_total() {
        // Every StateVar maps to a key (compile-time exhaustive match, but
        // exercise a few).
        assert_eq!(state_key(&StateVar::Power(true)), StateKey::Power);
        assert_eq!(state_key(&StateVar::TapePos(3)), StateKey::TapePos);
        assert_eq!(
            state_key(&StateVar::AirconMode(uniint_havi::fcm::AirconMode::Dry)),
            StateKey::Mode
        );
    }
}

#[cfg(test)]
mod camera_tests {
    use super::*;
    use uniint_havi::id::Guid;
    use uniint_wsys::theme::Theme;
    use uniint_wsys::ui::Ui;

    #[test]
    fn camera_section_has_power_and_image() {
        let mut ui = Ui::new(320, 200, Theme::classic(), "t");
        let sec = build_section(
            &mut ui,
            Rect::new(0, 0, 320, section_height(FcmClass::Camera)),
            Seid::new(Guid(1), 1),
            FcmClass::Camera,
            "Door Cam",
            &[StateVar::Power(true), StateVar::FrameCounter(5)],
        );
        assert_eq!(sec.bindings.len(), 1, "power only");
        assert_eq!(sec.status.len(), 2, "power + frame");
        let img_id = sec
            .status
            .iter()
            .find(|((_, k), _)| *k == StateKey::Frame)
            .unwrap()
            .1;
        assert!(ui.widget::<ImageView>(img_id).unwrap().has_image());
    }

    #[test]
    fn camera_frames_differ_over_time() {
        let a = camera_frame(0);
        let b = camera_frame(7);
        assert_ne!(a, b);
        // Deterministic.
        assert_eq!(camera_frame(7), b);
    }

    #[test]
    fn apply_frame_counter_updates_image() {
        let mut ui = Ui::new(320, 200, Theme::classic(), "t");
        let sec = build_section(
            &mut ui,
            Rect::new(0, 0, 320, section_height(FcmClass::Camera)),
            Seid::new(Guid(1), 1),
            FcmClass::Camera,
            "Cam",
            &[],
        );
        let img_id = sec
            .status
            .iter()
            .find(|((_, k), _)| *k == StateKey::Frame)
            .unwrap()
            .1;
        assert!(!ui.widget::<ImageView>(img_id).unwrap().has_image());
        apply_state(&mut ui, img_id, &StateVar::FrameCounter(3));
        assert!(ui.widget::<ImageView>(img_id).unwrap().has_image());
    }
}
