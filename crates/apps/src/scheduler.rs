//! Timer recording: a headless "havlet" that programs VCR recordings —
//! the classic home-computing coordination task (clock FCM + tuner FCM +
//! VCR FCM working together with no user present).

use uniint_havi::fcm::{FcmClass, FcmCommand, StateVar, Transport};
use uniint_havi::id::Seid;
use uniint_havi::network::HomeNetwork;
use uniint_havi::registry::Query;

/// One programmed recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recording {
    /// Start, seconds since midnight.
    pub start_s: u32,
    /// End, seconds since midnight (must be after start; no overnight
    /// wrap in this model).
    pub end_s: u32,
    /// Channel to record.
    pub channel: u32,
}

/// Lifecycle state of one programmed entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordingState {
    /// Waiting for its start time.
    Armed,
    /// Currently recording.
    Recording,
    /// Completed (or aborted past its window).
    Done,
}

#[derive(Debug)]
struct Entry {
    rec: Recording,
    state: RecordingState,
}

/// Drives VCR recordings from the home clock. Call
/// [`process`](Self::process) periodically (e.g. after `net.tick`).
#[derive(Debug)]
pub struct RecordingScheduler {
    entries: Vec<Entry>,
    clock: Seid,
    tuner: Seid,
    vcr: Seid,
}

/// Errors from scheduler construction/programming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A required FCM class is missing from the network.
    MissingFcm(FcmClass),
    /// `end_s <= start_s` or times out of the day range.
    InvalidWindow,
}

impl core::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScheduleError::MissingFcm(c) => write!(f, "no {c} fcm on the network"),
            ScheduleError::InvalidWindow => f.write_str("invalid recording window"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl RecordingScheduler {
    /// Creates a scheduler bound to the first clock, tuner and VCR found.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::MissingFcm`] when any of the three is absent.
    pub fn new(net: &HomeNetwork) -> Result<RecordingScheduler, ScheduleError> {
        let find = |class: FcmClass| {
            net.registry()
                .find(&Query::new().class(class))
                .map(|r| r.seid)
                .ok_or(ScheduleError::MissingFcm(class))
        };
        Ok(RecordingScheduler {
            entries: Vec::new(),
            clock: find(FcmClass::Clock)?,
            tuner: find(FcmClass::Tuner)?,
            vcr: find(FcmClass::Vcr)?,
        })
    }

    /// Programs a recording.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidWindow`] for empty or out-of-day windows.
    pub fn program(&mut self, rec: Recording) -> Result<(), ScheduleError> {
        if rec.end_s <= rec.start_s || rec.end_s > 86_400 {
            return Err(ScheduleError::InvalidWindow);
        }
        self.entries.push(Entry {
            rec,
            state: RecordingState::Armed,
        });
        Ok(())
    }

    /// States of all programmed entries, in programming order.
    pub fn states(&self) -> Vec<RecordingState> {
        self.entries.iter().map(|e| e.state).collect()
    }

    /// Reads the clock and starts/stops recordings accordingly. Returns
    /// the number of FCM commands issued.
    pub fn process(&mut self, net: &mut HomeNetwork) -> u32 {
        let Ok(vars) = net.status(self.clock) else {
            return 0;
        };
        let Some(now) = vars.iter().find_map(|v| match v {
            StateVar::TimeOfDay(t) => Some(*t),
            _ => None,
        }) else {
            return 0;
        };
        let mut sent = 0;
        for e in &mut self.entries {
            match e.state {
                RecordingState::Armed if now >= e.rec.start_s && now < e.rec.end_s => {
                    // Start: power up, tune, roll tape.
                    for cmd in [
                        FcmCommand::SetPower(true),
                        FcmCommand::SetChannel(e.rec.channel),
                    ] {
                        if net.send(self.tuner, &cmd).is_ok() {
                            sent += 1;
                        }
                    }
                    for cmd in [
                        FcmCommand::SetPower(true),
                        FcmCommand::Transport(Transport::Record),
                    ] {
                        if net.send(self.vcr, &cmd).is_ok() {
                            sent += 1;
                        }
                    }
                    e.state = RecordingState::Recording;
                }
                RecordingState::Armed if now >= e.rec.end_s => {
                    // Missed entirely (clock jumped past the window).
                    e.state = RecordingState::Done;
                }
                RecordingState::Recording if now >= e.rec.end_s => {
                    if net
                        .send(self.vcr, &FcmCommand::Transport(Transport::Stop))
                        .is_ok()
                    {
                        sent += 1;
                    }
                    e.state = RecordingState::Done;
                }
                _ => {}
            }
        }
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_havi::fcms::{ClockFcm, TunerFcm, VcrFcm};
    use uniint_havi::network::DeviceSpec;

    fn home(start_time: u32) -> HomeNetwork {
        let mut net = HomeNetwork::new();
        net.attach(DeviceSpec::new("Clock", "hall").with_fcm(ClockFcm::new("Clock", start_time)));
        net.attach(DeviceSpec::new("TV", "lr").with_fcm(TunerFcm::new("Tuner", 12)));
        net.attach(DeviceSpec::new("VCR", "lr").with_fcm(VcrFcm::new("Deck", 7200)));
        net
    }

    #[test]
    fn missing_fcm_reported() {
        let mut net = HomeNetwork::new();
        net.attach(DeviceSpec::new("Clock", "hall").with_fcm(ClockFcm::new("Clock", 0)));
        assert_eq!(
            RecordingScheduler::new(&net).unwrap_err(),
            ScheduleError::MissingFcm(FcmClass::Tuner)
        );
    }

    #[test]
    fn invalid_window_rejected() {
        let net = home(0);
        let mut s = RecordingScheduler::new(&net).unwrap();
        assert_eq!(
            s.program(Recording {
                start_s: 100,
                end_s: 100,
                channel: 1
            }),
            Err(ScheduleError::InvalidWindow)
        );
        assert_eq!(
            s.program(Recording {
                start_s: 100,
                end_s: 90_000,
                channel: 1
            }),
            Err(ScheduleError::InvalidWindow)
        );
    }

    #[test]
    fn full_recording_lifecycle() {
        let mut net = home(990);
        let mut s = RecordingScheduler::new(&net).unwrap();
        s.program(Recording {
            start_s: 1_000,
            end_s: 1_060,
            channel: 7,
        })
        .unwrap();
        assert_eq!(s.process(&mut net), 0, "not started yet");

        // 15 simulated seconds pass: inside the window.
        net.tick(15_000);
        let sent = s.process(&mut net);
        assert_eq!(sent, 4, "tuner power+channel, vcr power+record");
        assert_eq!(s.states(), vec![RecordingState::Recording]);
        let vcr = net.find_fcms(&Query::new().class(FcmClass::Vcr))[0];
        let tuner = net.find_fcms(&Query::new().class(FcmClass::Tuner))[0];
        assert!(net
            .status(vcr)
            .unwrap()
            .contains(&StateVar::Transport(Transport::Record)));
        assert!(net.status(tuner).unwrap().contains(&StateVar::Channel(7)));

        // Recording proceeds; the tape moves.
        net.tick(60_000);
        s.process(&mut net);
        assert_eq!(s.states(), vec![RecordingState::Done]);
        let vars = net.status(vcr).unwrap();
        assert!(
            vars.contains(&StateVar::Transport(Transport::Stop)),
            "{vars:?}"
        );
        // ~55-60s of tape used (started ~5s into the minute).
        let pos = vars
            .iter()
            .find_map(|v| match v {
                StateVar::TapePos(p) => Some(*p),
                _ => None,
            })
            .unwrap();
        assert!((50..=61).contains(&pos), "tape pos {pos}");
    }

    #[test]
    fn window_fully_missed_marks_done_without_commands() {
        let mut net = home(2_000);
        let mut s = RecordingScheduler::new(&net).unwrap();
        s.program(Recording {
            start_s: 1_000,
            end_s: 1_500,
            channel: 3,
        })
        .unwrap();
        let sent = s.process(&mut net);
        assert_eq!(sent, 0);
        assert_eq!(s.states(), vec![RecordingState::Done]);
    }

    #[test]
    fn overlapping_recordings_both_tracked() {
        let mut net = home(0);
        let mut s = RecordingScheduler::new(&net).unwrap();
        s.program(Recording {
            start_s: 10,
            end_s: 50,
            channel: 1,
        })
        .unwrap();
        s.program(Recording {
            start_s: 30,
            end_s: 80,
            channel: 2,
        })
        .unwrap();
        net.tick(35_000);
        s.process(&mut net);
        assert_eq!(
            s.states(),
            vec![RecordingState::Recording, RecordingState::Recording]
        );
        net.tick(60_000); // t = 95
        s.process(&mut net);
        assert_eq!(s.states(), vec![RecordingState::Done, RecordingState::Done]);
    }
}
