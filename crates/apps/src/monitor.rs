//! A second appliance application: a read-only status monitor.
//!
//! Demonstrates the paper's third characteristic from the other side:
//! *any* application written against the ordinary toolkit is reachable
//! from every interaction device, not just the control panel. The
//! monitor composes one status line per FCM and live-updates from
//! network events, with no command bindings at all.

use crate::panels::fmt_time;
use crossbeam::channel::Receiver;
use std::collections::HashMap;
use uniint_havi::events::HaviEvent;
use uniint_havi::fcm::{FcmClass, StateVar};
use uniint_havi::id::Seid;
use uniint_havi::network::HomeNetwork;
use uniint_havi::registry::{ElementKind, Query};
use uniint_raster::geom::Rect;
use uniint_wsys::event::WidgetId;
use uniint_wsys::theme::Theme;
use uniint_wsys::ui::Ui;
use uniint_wsys::widgets::{Align, Label};

/// Height of one status row.
const ROW_H: u32 = 14;
/// Monitor window width.
const WIDTH: u32 = 300;

/// A live, read-only dashboard of every FCM on the network.
pub struct StatusMonitorApp {
    ui: Ui,
    rows: HashMap<Seid, WidgetId>,
    /// Last known state per FCM (merged from events).
    state: HashMap<Seid, Vec<StateVar>>,
    names: HashMap<Seid, (String, FcmClass)>,
    events: Receiver<HaviEvent>,
}

impl core::fmt::Debug for StatusMonitorApp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StatusMonitorApp")
            .field("rows", &self.rows.len())
            .finish()
    }
}

/// Renders a one-line summary of an FCM's state.
pub fn summarize(class: FcmClass, vars: &[StateVar]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for v in vars {
        match v {
            StateVar::Power(on) => parts.push(if *on { "on".into() } else { "off".into() }),
            StateVar::Volume(x) => parts.push(format!("vol {x}")),
            StateVar::Mute(true) => parts.push("muted".into()),
            StateVar::Mute(false) => {}
            StateVar::Channel(c) => parts.push(format!("ch {c}")),
            StateVar::Transport(t) => parts.push(t.to_string()),
            StateVar::TapePos(p) => parts.push(format!("{p}s")),
            StateVar::Brightness(b) => parts.push(format!("bri {b}")),
            StateVar::Input(i) => parts.push(format!("in {i}")),
            StateVar::Dimmer(d) => parts.push(format!("dim {d}")),
            StateVar::TargetTemp(t) => parts.push(format!("set {}.{}C", t / 10, t % 10)),
            StateVar::RoomTemp(t) => parts.push(format!("room {}.{}C", t / 10, t % 10)),
            StateVar::AirconMode(m) => parts.push(m.to_string()),
            StateVar::TimeOfDay(t) => parts.push(fmt_time(*t)),
            StateVar::FrameCounter(c) => parts.push(format!("frame {c}")),
        }
    }
    format!("{class}: {}", parts.join(", "))
}

impl StatusMonitorApp {
    /// Creates the monitor over the current network contents.
    pub fn new(net: &mut HomeNetwork, theme: Theme) -> StatusMonitorApp {
        let events = net.subscribe();
        let mut app = StatusMonitorApp {
            ui: Ui::new(WIDTH, 40, theme, "Status Monitor"),
            rows: HashMap::new(),
            state: HashMap::new(),
            names: HashMap::new(),
            events,
        };
        app.rebuild(net);
        app
    }

    /// The monitor window.
    pub fn ui(&self) -> &Ui {
        &self.ui
    }

    /// Mutable window access for the UniInt server.
    pub fn ui_mut(&mut self) -> &mut Ui {
        &mut self.ui
    }

    /// Number of monitored FCMs.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The current summary text shown for `seid`, if monitored.
    pub fn row_text(&self, seid: Seid) -> Option<&str> {
        let id = self.rows.get(&seid)?;
        self.ui.widget::<Label>(*id).map(|l| l.text())
    }

    fn rebuild(&mut self, net: &mut HomeNetwork) {
        let fcms: Vec<(Seid, FcmClass, String)> = net
            .registry()
            .query(&Query::new().kind(ElementKind::Fcm))
            .into_iter()
            .filter_map(|r| r.class.map(|c| (r.seid, c, r.name.clone())))
            .collect();
        let h = (fcms.len() as u32 * ROW_H + 8).max(40);
        let theme = self.ui.theme().clone();
        self.ui = Ui::new(WIDTH, h, theme, "Status Monitor");
        self.rows.clear();
        self.names.clear();
        for (i, (seid, class, name)) in fcms.into_iter().enumerate() {
            let vars = net.status(seid).unwrap_or_default();
            let text = format!("{name} — {}", summarize(class, &vars));
            let id = self.ui.add(
                Label::with_align(text, Align::Left),
                Rect::new(4, (i as u32 * ROW_H + 4) as i32, WIDTH - 8, ROW_H),
            );
            self.rows.insert(seid, id);
            self.state.insert(seid, vars);
            self.names.insert(seid, (name, class));
        }
        self.ui.render();
    }

    /// Drains network events into the display. Returns true when the
    /// window was rebuilt (hot-plug) and the server must announce a
    /// resize.
    pub fn process(&mut self, net: &mut HomeNetwork) -> bool {
        let mut rebuilt = false;
        let events: Vec<HaviEvent> = self.events.try_iter().collect();
        for ev in events {
            match ev {
                HaviEvent::DeviceAdded(_)
                | HaviEvent::DeviceRemoved(_)
                | HaviEvent::NetworkReset => {
                    self.rebuild(net);
                    rebuilt = true;
                }
                HaviEvent::StateChanged(change) => {
                    let entry = self.state.entry(change.seid).or_default();
                    for var in &change.vars {
                        // Merge: replace same-discriminant vars.
                        entry
                            .retain(|v| core::mem::discriminant(v) != core::mem::discriminant(var));
                        entry.push(var.clone());
                    }
                    if let (Some(&id), Some((name, class))) =
                        (self.rows.get(&change.seid), self.names.get(&change.seid))
                    {
                        let text =
                            format!("{name} — {}", summarize(*class, &self.state[&change.seid]));
                        if let Some(l) = self.ui.widget_mut::<Label>(id) {
                            l.set_text(text);
                        }
                    }
                }
            }
        }
        self.ui.render();
        rebuilt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_havi::fcm::FcmCommand;
    use uniint_havi::fcms::{AmplifierFcm, TunerFcm};
    use uniint_havi::network::DeviceSpec;

    fn net() -> (HomeNetwork, Seid) {
        let mut net = HomeNetwork::new();
        let tv = net
            .attach(DeviceSpec::new("TV", "living-room").with_fcm(TunerFcm::new("TV Tuner", 12)));
        (net, Seid::new(tv, 1))
    }

    #[test]
    fn monitor_shows_one_row_per_fcm() {
        let (mut net, _) = net();
        let app = StatusMonitorApp::new(&mut net, Theme::classic());
        assert_eq!(app.row_count(), 1);
    }

    #[test]
    fn state_change_updates_row() {
        let (mut net, tuner) = net();
        let mut app = StatusMonitorApp::new(&mut net, Theme::classic());
        assert!(app.row_text(tuner).unwrap().contains("off"));
        net.send(tuner, &FcmCommand::SetPower(true)).unwrap();
        net.send(tuner, &FcmCommand::SetChannel(7)).unwrap();
        app.process(&mut net);
        let text = app.row_text(tuner).unwrap();
        assert!(text.contains("on"), "{text}");
        assert!(text.contains("ch 7"), "{text}");
    }

    #[test]
    fn hotplug_rebuilds() {
        let (mut net, _) = net();
        let mut app = StatusMonitorApp::new(&mut net, Theme::classic());
        net.attach(DeviceSpec::new("Amp", "den").with_fcm(AmplifierFcm::new("Amp")));
        assert!(app.process(&mut net));
        assert_eq!(app.row_count(), 2);
    }

    #[test]
    fn summarize_formats() {
        let s = summarize(
            FcmClass::Amplifier,
            &[
                StateVar::Power(true),
                StateVar::Volume(40),
                StateVar::Mute(true),
            ],
        );
        assert_eq!(s, "amplifier: on, vol 40, muted");
        let s = summarize(FcmClass::Clock, &[StateVar::TimeOfDay(3600)]);
        assert!(s.contains("01:00:00"));
    }

    #[test]
    fn monitor_window_is_drivable_through_session() {
        // The monitor, like any toolkit app, exports through UniInt.
        let (mut net, tuner) = net();
        let mut app = StatusMonitorApp::new(&mut net, Theme::classic());
        let mut session = uniint_core::session::LocalSession::connect(app.ui_mut());
        net.send(tuner, &FcmCommand::SetPower(true)).unwrap();
        app.process(&mut net);
        session.pump(app.ui_mut());
        let remote = session.proxy.server_frame().unwrap();
        assert_eq!(remote, app.ui().framebuffer());
    }
}
