//! The control-panel application: discovers appliances through the HAVi
//! registry, composes one window from per-FCM sections, routes widget
//! actions to FCM commands, and mirrors appliance state changes back into
//! the widgets. Hot-plug events recompose the panel — "the application
//! generates the composed GUI for TV and VCR if both are available".

use crate::binding::{Binding, ControlKind};
use crate::panels::{apply_state, build_section, section_height, state_key, StateKey};
use crossbeam::channel::Receiver;
use std::collections::HashMap;
use uniint_havi::events::HaviEvent;
use uniint_havi::fcm::FcmClass;
use uniint_havi::id::Seid;
use uniint_havi::network::HomeNetwork;
use uniint_havi::registry::{ElementKind, Query};
use uniint_protocol::input::KeySym;
use uniint_raster::geom::Rect;
use uniint_wsys::event::WidgetId;
use uniint_wsys::theme::Theme;
use uniint_wsys::ui::Ui;
use uniint_wsys::widgets::TabBar;

/// Fixed panel width; height grows with the number of sections.
pub const PANEL_WIDTH: u32 = 320;

/// One processing step's outcome.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProcessReport {
    /// FCM commands sent this step.
    pub commands_sent: u32,
    /// Commands refused by the appliance.
    pub commands_failed: u32,
    /// Whether the panel was recomposed (window size may have changed).
    pub recomposed: bool,
}

/// The appliance control-panel application.
pub struct ControlPanelApp {
    ui: Ui,
    zone: Option<String>,
    theme: Theme,
    bindings: HashMap<WidgetId, Binding>,
    status: HashMap<(Seid, StateKey), WidgetId>,
    events: Receiver<HaviEvent>,
    sections: usize,
    /// Page height budget; `None` composes one tall page.
    max_height: Option<u32>,
    /// Widgets per page, for visibility switching.
    pages: Vec<Vec<WidgetId>>,
    tabbar: Option<WidgetId>,
    current_page: usize,
}

impl core::fmt::Debug for ControlPanelApp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ControlPanelApp")
            .field("zone", &self.zone)
            .field("sections", &self.sections)
            .field("bindings", &self.bindings.len())
            .finish()
    }
}

impl ControlPanelApp {
    /// Creates the application, composing a panel for every FCM currently
    /// registered (optionally restricted to one zone).
    pub fn new(net: &mut HomeNetwork, zone: Option<&str>, theme: Theme) -> ControlPanelApp {
        Self::build(net, zone, theme, None)
    }

    /// Creates a *paged* panel: sections are distributed over tabbed
    /// pages so the window never exceeds `max_height` pixels — how a
    /// many-appliance home fits a PDA or phone screen.
    pub fn new_paged(
        net: &mut HomeNetwork,
        zone: Option<&str>,
        theme: Theme,
        max_height: u32,
    ) -> ControlPanelApp {
        Self::build(net, zone, theme, Some(max_height.max(80)))
    }

    fn build(
        net: &mut HomeNetwork,
        zone: Option<&str>,
        theme: Theme,
        max_height: Option<u32>,
    ) -> ControlPanelApp {
        let events = net.subscribe();
        let mut app = ControlPanelApp {
            ui: Ui::new(PANEL_WIDTH, 40, theme.clone(), "Home Control"),
            zone: zone.map(str::to_owned),
            theme,
            bindings: HashMap::new(),
            status: HashMap::new(),
            events,
            sections: 0,
            max_height,
            pages: Vec::new(),
            tabbar: None,
            current_page: 0,
        };
        app.recompose(net);
        app
    }

    /// Number of tabbed pages (1 when unpaged).
    pub fn page_count(&self) -> usize {
        self.pages.len().max(1)
    }

    /// The currently visible page.
    pub fn current_page(&self) -> usize {
        self.current_page
    }

    /// Switches the visible page (also driven by the tab bar).
    pub fn show_page(&mut self, page: usize) {
        if self.pages.is_empty() || page >= self.pages.len() {
            return;
        }
        self.current_page = page;
        let pages = self.pages.clone();
        for (i, ids) in pages.iter().enumerate() {
            for &w in ids {
                self.ui.set_visible(w, i == page);
            }
        }
        if let Some(tb) = self.tabbar {
            if let Some(t) = self.ui.widget_mut::<TabBar>(tb) {
                t.set_selected(page);
            }
        }
        self.ui.render();
    }

    /// The application window.
    pub fn ui(&self) -> &Ui {
        &self.ui
    }

    /// Mutable access to the window (the UniInt server drives this).
    pub fn ui_mut(&mut self) -> &mut Ui {
        &mut self.ui
    }

    /// Number of appliance sections currently composed.
    pub fn section_count(&self) -> usize {
        self.sections
    }

    /// Rebuilds the panel from the current registry contents.
    pub fn recompose(&mut self, net: &mut HomeNetwork) {
        let mut query = Query::new().kind(ElementKind::Fcm);
        if let Some(z) = &self.zone {
            query = query.zone(z.clone());
        }
        let fcms: Vec<(Seid, FcmClass, String)> = net
            .registry()
            .query(&query)
            .into_iter()
            .filter_map(|r| r.class.map(|c| (r.seid, c, r.name.clone())))
            .collect();
        self.bindings.clear();
        self.status.clear();
        self.pages.clear();
        self.tabbar = None;
        self.current_page = 0;
        self.sections = fcms.len();

        // Partition sections into pages under the height budget.
        const TAB_H: u32 = 18;
        let page_plan: Vec<Vec<(Seid, FcmClass, String)>> = match self.max_height {
            None => vec![fcms],
            Some(max_h) => {
                let budget = max_h.saturating_sub(TAB_H + 12).max(40);
                let mut pages = Vec::new();
                let mut page: Vec<(Seid, FcmClass, String)> = Vec::new();
                let mut used = 0u32;
                for entry in fcms {
                    let need = section_height(entry.1) + 4;
                    if !page.is_empty() && used + need > budget {
                        pages.push(core::mem::take(&mut page));
                        used = 0;
                    }
                    used += need;
                    page.push(entry);
                }
                if !page.is_empty() {
                    pages.push(page);
                }
                pages
            }
        };
        let paged = self.max_height.is_some() && page_plan.len() > 1;
        let content_h = page_plan
            .iter()
            .map(|p| {
                p.iter()
                    .map(|(_, c, _)| section_height(*c) + 4)
                    .sum::<u32>()
            })
            .max()
            .unwrap_or(36)
            .max(36);
        let top = if paged { TAB_H as i32 + 4 } else { 0 };
        self.ui = Ui::new(
            PANEL_WIDTH,
            content_h + top as u32 + 8,
            self.theme.clone(),
            "Home Control",
        );
        if paged {
            let labels = (1..=page_plan.len()).map(|i| format!("Pg {i}")).collect();
            let tb = self
                .ui
                .add(TabBar::new(labels), Rect::new(0, 0, PANEL_WIDTH, TAB_H));
            self.tabbar = Some(tb);
        }

        let mut power_bound = false;
        let mut mute_bound = false;
        for (page_idx, page) in page_plan.into_iter().enumerate() {
            let mut y = top + 4;
            let mut page_widgets = Vec::new();
            for (seid, class, name) in page {
                let h = section_height(class);
                let area = Rect::new(4, y, PANEL_WIDTH - 8, h);
                let status0 = net.status(seid).unwrap_or_default();
                let before: std::collections::HashSet<WidgetId> =
                    self.ui.widget_ids().into_iter().collect();
                let section = build_section(&mut self.ui, area, seid, class, &name, &status0);
                // Everything the section created belongs to this page.
                for id in self.ui.widget_ids() {
                    if !before.contains(&id) {
                        page_widgets.push(id);
                    }
                }
                for (w, b) in section.bindings {
                    // First power toggle gets the 'p' mnemonic, first mute
                    // 'm' (what remote and voice plug-ins emit).
                    if b.control == ControlKind::Power && !power_bound {
                        self.ui.bind_shortcut(KeySym::from_char('p'), w);
                        power_bound = true;
                    }
                    if b.control == ControlKind::Mute && !mute_bound {
                        self.ui.bind_shortcut(KeySym::from_char('m'), w);
                        mute_bound = true;
                    }
                    self.bindings.insert(w, b);
                }
                for (k, w) in section.status {
                    self.status.insert(k, w);
                }
                y += (h + 4) as i32;
            }
            if paged {
                for &w in &page_widgets {
                    self.ui.set_visible(w, page_idx == 0);
                }
                self.pages.push(page_widgets);
            }
        }
        self.ui.render();
    }

    /// One application step: route pending widget actions to appliances
    /// and mirror appliance events back into widgets. Returns what
    /// happened; when `recomposed` is set the caller must notify the
    /// UniInt server of the (possible) resize.
    pub fn process(&mut self, net: &mut HomeNetwork) -> ProcessReport {
        let mut report = ProcessReport::default();

        // Widget actions → FCM commands (tab switches handled locally).
        for action in self.ui.take_actions() {
            if Some(action.widget) == self.tabbar {
                if let uniint_wsys::event::Action::Selected(page) = action.action {
                    self.show_page(page);
                }
                continue;
            }
            let Some(binding) = self.bindings.get(&action.widget) else {
                continue;
            };
            let Some(cmd) = binding.command_for(&action.action) else {
                continue;
            };
            report.commands_sent += 1;
            match net.send(binding.seid, &cmd) {
                Ok(resp) if resp.is_ok() => {}
                Ok(_) => {
                    report.commands_failed += 1;
                    self.ui.ring_bell();
                }
                Err(_) => {
                    report.commands_failed += 1;
                    self.ui.ring_bell();
                }
            }
        }

        // Appliance events → widget updates / recomposition.
        let mut need_recompose = false;
        let events: Vec<HaviEvent> = self.events.try_iter().collect();
        for ev in events {
            match ev {
                HaviEvent::DeviceAdded(_)
                | HaviEvent::DeviceRemoved(_)
                | HaviEvent::NetworkReset => {
                    need_recompose = true;
                }
                HaviEvent::StateChanged(change) => {
                    for var in &change.vars {
                        let key = (change.seid, state_key(var));
                        if let Some(&w) = self.status.get(&key) {
                            apply_state(&mut self.ui, w, var);
                        }
                    }
                }
            }
        }
        if need_recompose {
            self.recompose(net);
            report.recomposed = true;
        }
        self.ui.render();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_havi::fcm::{FcmCommand, StateVar};
    use uniint_havi::fcms::{AmplifierFcm, DisplayFcm, TunerFcm, VcrFcm};
    use uniint_havi::network::DeviceSpec;
    use uniint_protocol::input::InputEvent;
    use uniint_wsys::widgets::{Slider, Toggle};

    fn tv_net() -> (HomeNetwork, Seid, Seid) {
        let mut net = HomeNetwork::new();
        let tv = net.attach(
            DeviceSpec::new("TV", "living-room")
                .with_fcm(TunerFcm::new("TV Tuner", 12))
                .with_fcm(DisplayFcm::new("TV Display", 2)),
        );
        (net, Seid::new(tv, 1), Seid::new(tv, 2))
    }

    #[test]
    fn composes_sections_for_all_fcms() {
        let (mut net, ..) = tv_net();
        let app = ControlPanelApp::new(&mut net, None, Theme::classic());
        assert_eq!(app.section_count(), 2);
        assert!(app.ui().size().h > 80);
    }

    #[test]
    fn zone_filter_restricts() {
        let (mut net, ..) = tv_net();
        net.attach(DeviceSpec::new("Amp", "den").with_fcm(AmplifierFcm::new("Den Amp")));
        let all = ControlPanelApp::new(&mut net, None, Theme::classic());
        assert_eq!(all.section_count(), 3);
        let lr = ControlPanelApp::new(&mut net, Some("living-room"), Theme::classic());
        assert_eq!(lr.section_count(), 2);
    }

    #[test]
    fn click_power_sends_command() {
        let (mut net, tuner, _) = tv_net();
        let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
        // Find the tuner's power toggle and click its center.
        let power_widget = *app
            .bindings
            .iter()
            .find(|(_, b)| b.seid == tuner && b.control == ControlKind::Power)
            .unwrap()
            .0;
        let r = app.ui().widget_rect(power_widget).unwrap();
        let c = r.center();
        for ev in InputEvent::click(c.x as u16, c.y as u16) {
            app.ui_mut().dispatch(ev);
        }
        let report = app.process(&mut net);
        assert_eq!(report.commands_sent, 1);
        assert_eq!(report.commands_failed, 0);
        let vars = net.status(tuner).unwrap();
        assert!(vars.contains(&StateVar::Power(true)));
    }

    #[test]
    fn failed_command_rings_bell() {
        let (mut net, tuner, _) = tv_net();
        let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
        // Channel up while powered off → FCM refuses → bell.
        let up_widget = *app
            .bindings
            .iter()
            .find(|(_, b)| b.seid == tuner && b.control == ControlKind::ChannelUp)
            .unwrap()
            .0;
        let r = app.ui().widget_rect(up_widget).unwrap();
        let c = r.center();
        for ev in InputEvent::click(c.x as u16, c.y as u16) {
            app.ui_mut().dispatch(ev);
        }
        let report = app.process(&mut net);
        assert_eq!(report.commands_failed, 1);
        assert!(app.ui_mut().take_bell());
    }

    #[test]
    fn state_change_updates_widget() {
        let (mut net, tuner, _) = tv_net();
        let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
        // Another controller (or the appliance itself) powers the tuner.
        net.send(tuner, &FcmCommand::SetPower(true)).unwrap();
        app.process(&mut net);
        let w = app.status[&(tuner, StateKey::Power)];
        assert!(app.ui().widget::<Toggle>(w).unwrap().is_on());
    }

    #[test]
    fn hotplug_recomposes() {
        let (mut net, ..) = tv_net();
        let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
        assert_eq!(app.section_count(), 2);
        let vcr =
            net.attach(DeviceSpec::new("VCR", "living-room").with_fcm(VcrFcm::new("Deck", 60)));
        let report = app.process(&mut net);
        assert!(report.recomposed);
        assert_eq!(app.section_count(), 3);
        net.detach(vcr);
        let report = app.process(&mut net);
        assert!(report.recomposed);
        assert_eq!(app.section_count(), 2);
    }

    #[test]
    fn power_mnemonic_bound() {
        let (mut net, tuner, _) = tv_net();
        let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
        // Defocus so the mnemonic path is taken.
        app.ui_mut().set_focus(None);
        for ev in InputEvent::key_tap('p'.into()) {
            app.ui_mut().dispatch(ev);
        }
        let report = app.process(&mut net);
        assert_eq!(report.commands_sent, 1);
        assert!(net.status(tuner).unwrap().contains(&StateVar::Power(true)));
    }

    #[test]
    fn slider_drag_sets_volume() {
        let mut net = HomeNetwork::new();
        let amp = net.attach(DeviceSpec::new("Amp", "den").with_fcm(AmplifierFcm::new("Amp")));
        let amp_seid = Seid::new(amp, 1);
        net.send(amp_seid, &FcmCommand::SetPower(true)).unwrap();
        let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
        app.process(&mut net); // absorb power event
        let slider_widget = *app
            .bindings
            .iter()
            .find(|(_, b)| b.control == ControlKind::Volume)
            .unwrap()
            .0;
        let r = app.ui().widget_rect(slider_widget).unwrap();
        // Click near the right end of the slider.
        let x = (r.right() - 5) as u16;
        let y = r.center().y as u16;
        for ev in InputEvent::click(x, y) {
            app.ui_mut().dispatch(ev);
        }
        app.process(&mut net);
        let vol = app.ui().widget::<Slider>(slider_widget).unwrap().value();
        assert!(vol > 80, "drag to right end sets high volume, got {vol}");
        assert!(net
            .status(amp_seid)
            .unwrap()
            .contains(&StateVar::Volume(vol)));
    }
}

#[cfg(test)]
mod paged_tests {
    use super::*;
    use uniint_havi::fcms::{AmplifierFcm, LightFcm, TunerFcm, VcrFcm};
    use uniint_havi::network::DeviceSpec;
    use uniint_protocol::input::InputEvent;
    use uniint_wsys::widgets::Toggle;

    fn big_home() -> HomeNetwork {
        let mut net = HomeNetwork::new();
        for i in 0..8 {
            match i % 4 {
                0 => net.attach(
                    DeviceSpec::new(format!("TV{i}"), "lr").with_fcm(TunerFcm::new("Tuner", 12)),
                ),
                1 => net.attach(
                    DeviceSpec::new(format!("VCR{i}"), "lr").with_fcm(VcrFcm::new("Deck", 60)),
                ),
                2 => net.attach(
                    DeviceSpec::new(format!("Amp{i}"), "lr").with_fcm(AmplifierFcm::new("Amp")),
                ),
                _ => net
                    .attach(DeviceSpec::new(format!("L{i}"), "lr").with_fcm(LightFcm::new("Lamp"))),
            };
        }
        net
    }

    #[test]
    fn paged_panel_respects_height_budget() {
        let mut net = big_home();
        let app = ControlPanelApp::new_paged(&mut net, None, Theme::classic(), 200);
        assert!(app.page_count() > 1, "8 sections cannot fit one 200px page");
        assert!(
            app.ui().size().h <= 220,
            "window height {} respects budget",
            app.ui().size().h
        );
        assert_eq!(app.section_count(), 8);
    }

    #[test]
    fn unpaged_when_everything_fits() {
        let mut net = HomeNetwork::new();
        net.attach(DeviceSpec::new("L", "lr").with_fcm(LightFcm::new("Lamp")));
        let app = ControlPanelApp::new_paged(&mut net, None, Theme::classic(), 400);
        assert_eq!(app.page_count(), 1);
    }

    #[test]
    fn only_current_page_widgets_visible_and_hittable() {
        let mut net = big_home();
        let mut app = ControlPanelApp::new_paged(&mut net, None, Theme::classic(), 200);
        // All power toggles on hidden pages must be unreachable by click.
        let page0_toggle_count = app
            .ui()
            .widget_ids()
            .iter()
            .filter(|&&id| app.ui().widget::<Toggle>(id).is_some())
            .count();
        assert!(
            page0_toggle_count >= app.section_count(),
            "widgets all exist"
        );
        // Click where a page-2 widget overlaps page-1 space: only the
        // visible page-1 widget fires.
        app.show_page(0);
        let visible_before = app.current_page();
        assert_eq!(visible_before, 0);
    }

    #[test]
    fn tab_switch_via_pointer_fires_show_page() {
        let mut net = big_home();
        let mut app = ControlPanelApp::new_paged(&mut net, None, Theme::classic(), 200);
        assert_eq!(app.current_page(), 0);
        // Click the second tab (tab bar spans the full width at y 0..18).
        let tabs = app.page_count() as u32;
        let tab_w = PANEL_WIDTH / tabs;
        let x = (tab_w + tab_w / 2) as u16;
        for ev in InputEvent::click(x, 9) {
            app.ui_mut().dispatch(ev);
        }
        app.process(&mut net);
        assert_eq!(app.current_page(), 1);
    }

    #[test]
    fn commands_work_from_second_page() {
        let mut net = big_home();
        let mut app = ControlPanelApp::new_paged(&mut net, None, Theme::classic(), 200);
        app.show_page(1);
        // Find a visible toggle on page 1 and click it.
        let toggle = app
            .ui()
            .widget_ids()
            .into_iter()
            .find(|&id| {
                app.ui().widget::<Toggle>(id).is_some()
                    && app.ui().widget_rect(id).is_some()
                    && app.pages[1].contains(&id)
            })
            .expect("page 1 has a toggle");
        let c = app.ui().widget_rect(toggle).unwrap().center();
        for ev in InputEvent::click(c.x as u16, c.y as u16) {
            app.ui_mut().dispatch(ev);
        }
        let report = app.process(&mut net);
        assert_eq!(report.commands_sent, 1);
    }

    #[test]
    fn recompose_preserves_paging_mode() {
        let mut net = big_home();
        let mut app = ControlPanelApp::new_paged(&mut net, None, Theme::classic(), 200);
        let pages_before = app.page_count();
        net.attach(DeviceSpec::new("New", "lr").with_fcm(LightFcm::new("New Lamp")));
        let report = app.process(&mut net);
        assert!(report.recomposed);
        assert!(app.page_count() >= pages_before);
        assert_eq!(app.current_page(), 0, "reset to first page after recompose");
    }
}
