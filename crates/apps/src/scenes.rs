//! Scene macros: one-touch buttons that drive several appliances at once
//! ("Movie night" = TV on + lights dimmed + amplifier to 60).
//!
//! A third application on the same stack: scenes are plain data, the
//! panel is plain widgets, and every interaction device can fire them
//! through the universal pipeline.

use crossbeam::channel::Receiver;
use std::collections::HashMap;
use uniint_havi::events::HaviEvent;
use uniint_havi::fcm::{FcmClass, FcmCommand};
use uniint_havi::network::HomeNetwork;
use uniint_havi::registry::Query;
use uniint_protocol::input::KeySym;
use uniint_raster::geom::Rect;
use uniint_wsys::event::{Action, WidgetId};
use uniint_wsys::theme::Theme;
use uniint_wsys::ui::Ui;
use uniint_wsys::widgets::{Align, Button, Label};

/// One step of a scene: a command sent to every FCM of a class
/// (optionally restricted to a zone).
#[derive(Debug, Clone, PartialEq)]
pub struct SceneStep {
    /// Target FCM class.
    pub class: FcmClass,
    /// Restrict to one zone, or everywhere when `None`.
    pub zone: Option<String>,
    /// The command to send.
    pub command: FcmCommand,
}

/// A named scene: an ordered list of steps plus an optional mnemonic.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// Button caption.
    pub name: String,
    /// Steps executed in order.
    pub steps: Vec<SceneStep>,
    /// Keyboard mnemonic (what remote/voice plug-ins emit).
    pub mnemonic: Option<char>,
}

impl Scene {
    /// Starts a scene definition.
    pub fn new(name: impl Into<String>) -> Scene {
        Scene {
            name: name.into(),
            steps: Vec::new(),
            mnemonic: None,
        }
    }

    /// Adds a step targeting a class everywhere.
    pub fn step(mut self, class: FcmClass, command: FcmCommand) -> Scene {
        self.steps.push(SceneStep {
            class,
            zone: None,
            command,
        });
        self
    }

    /// Adds a step restricted to one zone.
    pub fn step_in(
        mut self,
        class: FcmClass,
        zone: impl Into<String>,
        command: FcmCommand,
    ) -> Scene {
        self.steps.push(SceneStep {
            class,
            zone: Some(zone.into()),
            command,
        });
        self
    }

    /// Sets the mnemonic key.
    pub fn with_mnemonic(mut self, c: char) -> Scene {
        self.mnemonic = Some(c);
        self
    }
}

/// The classic demo scenes.
pub fn standard_scenes() -> Vec<Scene> {
    vec![
        Scene::new("Movie night")
            .step(FcmClass::Tuner, FcmCommand::SetPower(true))
            .step(FcmClass::Display, FcmCommand::SetPower(true))
            .step(FcmClass::Amplifier, FcmCommand::SetPower(true))
            .step(FcmClass::Amplifier, FcmCommand::SetVolume(60))
            .step(FcmClass::Light, FcmCommand::SetDimmer(20))
            .with_mnemonic('v'),
        Scene::new("Good night")
            .step(FcmClass::Tuner, FcmCommand::SetPower(false))
            .step(FcmClass::Display, FcmCommand::SetPower(false))
            .step(FcmClass::Amplifier, FcmCommand::SetPower(false))
            .step(FcmClass::Vcr, FcmCommand::SetPower(false))
            .step(FcmClass::Light, FcmCommand::SetPower(false))
            .with_mnemonic('g'),
        Scene::new("Wake up")
            .step(FcmClass::Light, FcmCommand::SetPower(true))
            .step(FcmClass::Light, FcmCommand::SetDimmer(100))
            .step(FcmClass::AirConditioner, FcmCommand::SetPower(true))
            .with_mnemonic('w'),
    ]
}

/// Result of one scene activation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SceneReport {
    /// Commands attempted.
    pub sent: u32,
    /// Commands refused or unroutable.
    pub failed: u32,
}

/// A one-touch scene panel application.
pub struct ScenePanelApp {
    ui: Ui,
    scenes: Vec<Scene>,
    buttons: HashMap<WidgetId, usize>,
    events: Receiver<HaviEvent>,
    last_report: SceneReport,
}

impl core::fmt::Debug for ScenePanelApp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ScenePanelApp")
            .field("scenes", &self.scenes.len())
            .finish()
    }
}

impl ScenePanelApp {
    /// Creates the panel with the given scenes.
    pub fn new(net: &mut HomeNetwork, scenes: Vec<Scene>, theme: Theme) -> ScenePanelApp {
        let events = net.subscribe();
        let h = scenes.len() as u32 * 30 + 28;
        let mut ui = Ui::new(220, h, theme, "Scenes");
        ui.add(
            Label::with_align("One-touch scenes", Align::Left),
            Rect::new(6, 4, 200, 14),
        );
        let mut buttons = HashMap::new();
        for (i, scene) in scenes.iter().enumerate() {
            let id = ui.add(
                Button::new(scene.name.clone()),
                Rect::new(6, 22 + (i as i32) * 30, 208, 24),
            );
            if let Some(c) = scene.mnemonic {
                ui.bind_shortcut(KeySym::from_char(c), id);
            }
            buttons.insert(id, i);
        }
        ui.render();
        ScenePanelApp {
            ui,
            scenes,
            buttons,
            events,
            last_report: SceneReport::default(),
        }
    }

    /// The panel window.
    pub fn ui(&self) -> &Ui {
        &self.ui
    }

    /// Mutable window access.
    pub fn ui_mut(&mut self) -> &mut Ui {
        &mut self.ui
    }

    /// The report of the most recent scene execution.
    pub fn last_report(&self) -> SceneReport {
        self.last_report
    }

    /// Executes a scene by index against the network.
    pub fn run_scene(&mut self, net: &mut HomeNetwork, index: usize) -> SceneReport {
        let mut report = SceneReport::default();
        let Some(scene) = self.scenes.get(index) else {
            return report;
        };
        for step in &scene.steps {
            let mut q = Query::new().class(step.class);
            if let Some(z) = &step.zone {
                q = q.zone(z.clone());
            }
            let targets = net.find_fcms(&q);
            for seid in targets {
                report.sent += 1;
                match net.send(seid, &step.command) {
                    Ok(resp) if resp.is_ok() => {}
                    _ => report.failed += 1,
                }
            }
        }
        self.last_report = report;
        report
    }

    /// Routes pending button actions to scene executions. Drains (and
    /// ignores) hot-plug events: scenes re-query targets on every run, so
    /// no recomposition is needed.
    pub fn process(&mut self, net: &mut HomeNetwork) -> SceneReport {
        let mut total = SceneReport::default();
        for action in self.ui.take_actions() {
            if action.action != Action::Clicked {
                continue;
            }
            if let Some(&idx) = self.buttons.get(&action.widget) {
                let r = self.run_scene(net, idx);
                total.sent += r.sent;
                total.failed += r.failed;
            }
        }
        let _ = self.events.try_iter().count();
        self.ui.render();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_havi::fcm::StateVar;
    use uniint_havi::fcms::{AmplifierFcm, DisplayFcm, LightFcm, TunerFcm};
    use uniint_havi::network::DeviceSpec;
    use uniint_protocol::input::InputEvent;

    fn full_home() -> HomeNetwork {
        let mut net = HomeNetwork::new();
        net.attach(
            DeviceSpec::new("TV", "living-room")
                .with_fcm(TunerFcm::new("Tuner", 12))
                .with_fcm(DisplayFcm::new("Display", 2)),
        );
        net.attach(DeviceSpec::new("Amp", "living-room").with_fcm(AmplifierFcm::new("Amp")));
        net.attach(DeviceSpec::new("Lamp", "living-room").with_fcm(LightFcm::new("Lamp")));
        net.attach(DeviceSpec::new("Hall Lamp", "hall").with_fcm(LightFcm::new("Hall Lamp")));
        net
    }

    #[test]
    fn movie_night_sets_everything() {
        let mut net = full_home();
        let mut app = ScenePanelApp::new(&mut net, standard_scenes(), Theme::classic());
        let report = app.run_scene(&mut net, 0);
        assert_eq!(report.failed, 0, "{report:?}");
        // tuner+display+amp power, amp volume, two lights dimmer = 6.
        assert_eq!(report.sent, 6);
        let amp = net.find_fcms(&Query::new().class(FcmClass::Amplifier))[0];
        let vars = net.status(amp).unwrap();
        assert!(vars.contains(&StateVar::Power(true)));
        assert!(vars.contains(&StateVar::Volume(60)));
        for light in net.find_fcms(&Query::new().class(FcmClass::Light)) {
            assert!(net.status(light).unwrap().contains(&StateVar::Dimmer(20)));
        }
    }

    #[test]
    fn zone_restricted_step() {
        let mut net = full_home();
        let scene =
            Scene::new("hall only").step_in(FcmClass::Light, "hall", FcmCommand::SetPower(true));
        let mut app = ScenePanelApp::new(&mut net, vec![scene], Theme::classic());
        let report = app.run_scene(&mut net, 0);
        assert_eq!(report.sent, 1);
        let hall = net.find_fcms(&Query::new().class(FcmClass::Light).zone("hall"))[0];
        assert!(net.status(hall).unwrap().contains(&StateVar::Power(true)));
        let lr = net.find_fcms(&Query::new().class(FcmClass::Light).zone("living-room"))[0];
        assert!(net.status(lr).unwrap().contains(&StateVar::Power(false)));
    }

    #[test]
    fn button_click_runs_scene() {
        let mut net = full_home();
        let mut app = ScenePanelApp::new(&mut net, standard_scenes(), Theme::classic());
        // Click the first scene button.
        let btn = *app.buttons.iter().find(|(_, &i)| i == 0).unwrap().0;
        let c = app.ui().widget_rect(btn).unwrap().center();
        for ev in InputEvent::click(c.x as u16, c.y as u16) {
            app.ui_mut().dispatch(ev);
        }
        let report = app.process(&mut net);
        assert_eq!(report.sent, 6);
    }

    #[test]
    fn mnemonic_fires_scene() {
        let mut net = full_home();
        let mut app = ScenePanelApp::new(&mut net, standard_scenes(), Theme::classic());
        app.ui_mut().set_focus(None);
        for ev in InputEvent::key_tap('g'.into()) {
            app.ui_mut().dispatch(ev);
        }
        let report = app.process(&mut net);
        assert!(report.sent >= 5, "{report:?}");
        let tuner = net.find_fcms(&Query::new().class(FcmClass::Tuner))[0];
        assert!(net.status(tuner).unwrap().contains(&StateVar::Power(false)));
    }

    #[test]
    fn missing_targets_are_skipped_not_failed() {
        let mut net = HomeNetwork::new();
        net.attach(DeviceSpec::new("Lamp", "x").with_fcm(LightFcm::new("Lamp")));
        let mut app = ScenePanelApp::new(&mut net, standard_scenes(), Theme::classic());
        // Movie night in a home with only a light: only dimmer runs.
        let report = app.run_scene(&mut net, 0);
        assert_eq!(report.sent, 1);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn out_of_range_scene_is_noop() {
        let mut net = full_home();
        let mut app = ScenePanelApp::new(&mut net, vec![], Theme::classic());
        assert_eq!(app.run_scene(&mut net, 9), SceneReport::default());
    }
}
