//! Bindings between panel widgets and appliance FCM commands.

use uniint_havi::fcm::{AirconMode, FcmCommand, Transport};
use uniint_havi::id::Seid;
use uniint_wsys::event::Action;

/// What a bound widget controls on its FCM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// Power toggle (any class).
    Power,
    /// Volume slider (amplifier).
    Volume,
    /// Mute toggle (amplifier).
    Mute,
    /// Channel up button (tuner).
    ChannelUp,
    /// Channel down button (tuner).
    ChannelDown,
    /// Direct channel entry field (tuner).
    ChannelEntry,
    /// VCR transport button.
    Transport(Transport),
    /// Brightness slider (display).
    Brightness,
    /// Dimmer slider (light).
    Dimmer,
    /// Target temperature slider (aircon), value in tenths of °C.
    TargetTemp,
    /// Aircon mode list.
    AirconMode,
}

/// The modes shown by the aircon mode list, in row order.
pub const AIRCON_MODES: [AirconMode; 4] = [
    AirconMode::Cool,
    AirconMode::Heat,
    AirconMode::Dry,
    AirconMode::Fan,
];

/// A widget→FCM binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// The FCM the widget controls.
    pub seid: Seid,
    /// What aspect it controls.
    pub control: ControlKind,
}

impl Binding {
    /// Translates a widget action through this binding into an FCM
    /// command, or `None` when the action does not produce one (e.g.
    /// intermediate text edits).
    pub fn command_for(&self, action: &Action) -> Option<FcmCommand> {
        match (self.control, action) {
            (ControlKind::Power, Action::Toggled(on)) => Some(FcmCommand::SetPower(*on)),
            (ControlKind::Mute, Action::Toggled(on)) => Some(FcmCommand::SetMute(*on)),
            (ControlKind::Volume, Action::ValueChanged(v)) => Some(FcmCommand::SetVolume(*v)),
            (ControlKind::Brightness, Action::ValueChanged(v)) => {
                Some(FcmCommand::SetBrightness(*v))
            }
            (ControlKind::Dimmer, Action::ValueChanged(v)) => Some(FcmCommand::SetDimmer(*v)),
            (ControlKind::TargetTemp, Action::ValueChanged(v)) => {
                Some(FcmCommand::SetTargetTemp(*v))
            }
            (ControlKind::ChannelUp, Action::Clicked) => Some(FcmCommand::StepChannel(1)),
            (ControlKind::ChannelDown, Action::Clicked) => Some(FcmCommand::StepChannel(-1)),
            (ControlKind::ChannelEntry, Action::Submitted(text)) => {
                text.trim().parse::<u32>().ok().map(FcmCommand::SetChannel)
            }
            (ControlKind::Transport(t), Action::Clicked) => Some(FcmCommand::Transport(t)),
            (ControlKind::AirconMode, Action::Selected(i)) => {
                AIRCON_MODES.get(*i).copied().map(FcmCommand::SetAirconMode)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_havi::id::Guid;

    fn b(control: ControlKind) -> Binding {
        Binding {
            seid: Seid::new(Guid(1), 1),
            control,
        }
    }

    #[test]
    fn power_toggle_maps() {
        assert_eq!(
            b(ControlKind::Power).command_for(&Action::Toggled(true)),
            Some(FcmCommand::SetPower(true))
        );
    }

    #[test]
    fn sliders_map_values() {
        assert_eq!(
            b(ControlKind::Volume).command_for(&Action::ValueChanged(42)),
            Some(FcmCommand::SetVolume(42))
        );
        assert_eq!(
            b(ControlKind::TargetTemp).command_for(&Action::ValueChanged(235)),
            Some(FcmCommand::SetTargetTemp(235))
        );
    }

    #[test]
    fn channel_buttons_step() {
        assert_eq!(
            b(ControlKind::ChannelUp).command_for(&Action::Clicked),
            Some(FcmCommand::StepChannel(1))
        );
        assert_eq!(
            b(ControlKind::ChannelDown).command_for(&Action::Clicked),
            Some(FcmCommand::StepChannel(-1))
        );
    }

    #[test]
    fn channel_entry_parses_digits() {
        assert_eq!(
            b(ControlKind::ChannelEntry).command_for(&Action::Submitted(" 7 ".into())),
            Some(FcmCommand::SetChannel(7))
        );
        assert_eq!(
            b(ControlKind::ChannelEntry).command_for(&Action::Submitted("abc".into())),
            None
        );
        assert_eq!(
            b(ControlKind::ChannelEntry).command_for(&Action::TextChanged("7".into())),
            None,
            "only submit fires"
        );
    }

    #[test]
    fn transport_buttons() {
        assert_eq!(
            b(ControlKind::Transport(Transport::Play)).command_for(&Action::Clicked),
            Some(FcmCommand::Transport(Transport::Play))
        );
    }

    #[test]
    fn aircon_mode_selection() {
        assert_eq!(
            b(ControlKind::AirconMode).command_for(&Action::Selected(1)),
            Some(FcmCommand::SetAirconMode(AirconMode::Heat))
        );
        assert_eq!(
            b(ControlKind::AirconMode).command_for(&Action::Selected(99)),
            None
        );
    }

    #[test]
    fn mismatched_action_yields_none() {
        assert_eq!(b(ControlKind::Power).command_for(&Action::Clicked), None);
        assert_eq!(
            b(ControlKind::Volume).command_for(&Action::Toggled(true)),
            None
        );
    }
}
