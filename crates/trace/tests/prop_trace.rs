//! Trace codec property tests: arbitrary record streams round-trip
//! writer→reader byte-identically (and twice-serialized traces are
//! byte-identical), while truncated or corrupted files are rejected
//! with typed [`TraceError`]s — the parser never panics on garbage.

use proptest::prelude::*;
use uniint_trace::prelude::*;

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::ToServer), Just(Direction::ToClient)]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        arb_direction(),
        proptest::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(t, channel, dir, payload)| TraceRecord {
            t_us: t as u64,
            channel,
            dir,
            payload,
        })
}

fn arb_records() -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec(arb_record(), 0..60)
}

/// Small chunk sizes so multi-chunk layouts are exercised constantly.
fn arb_config() -> impl Strategy<Value = TraceConfig> {
    (64usize..2048).prop_map(|chunk_bytes| TraceConfig {
        chunk_bytes,
        max_trace_bytes: usize::MAX,
    })
}

fn arb_header() -> impl Strategy<Value = TraceHeader> {
    (any::<u64>(), any::<u16>()).prop_map(|(seed, protocol_version)| TraceHeader {
        seed,
        protocol_version,
        pixel_format: uniint_raster::pixel::PixelFormat::Rgb888,
    })
}

fn serialize(header: TraceHeader, config: &TraceConfig, records: &[TraceRecord]) -> Vec<u8> {
    let mut w = TraceWriter::with_config(header, config.clone());
    for r in records {
        w.record(r.t_us, r.channel, r.dir, &r.payload);
    }
    w.finish()
}

proptest! {
    /// Writer → reader round-trips every record exactly, whatever the
    /// chunking, and serialization is deterministic.
    #[test]
    fn roundtrip_is_exact_and_deterministic(
        header in arb_header(),
        config in arb_config(),
        records in arb_records(),
    ) {
        let bytes = serialize(header, &config, &records);
        let again = serialize(header, &config, &records);
        prop_assert_eq!(&bytes, &again, "same records, same bytes");

        let reader = TraceReader::parse(bytes).expect("own output parses");
        prop_assert_eq!(reader.header(), &header);
        prop_assert!(reader.has_index());
        prop_assert_eq!(reader.record_count(), records.len() as u64);
        let back: Result<Vec<TraceRecord>, TraceError> = reader.records().collect();
        let back = back.expect("own records decode");
        prop_assert_eq!(back, records);
    }

    /// Every strict prefix of a trace is rejected with a typed error —
    /// never a panic, never silent acceptance of a cut-short file.
    #[test]
    fn truncation_is_rejected(
        header in arb_header(),
        config in arb_config(),
        records in arb_records(),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = serialize(header, &config, &records);
        let cut = (((bytes.len() as f64) * cut_frac) as usize).min(bytes.len() - 1);
        let err = TraceReader::parse(bytes[..cut].to_vec()).expect_err("prefix must not parse");
        prop_assert!(matches!(
            err,
            TraceError::Truncated { .. }
                | TraceError::Malformed { .. }
                | TraceError::BadMagic
                | TraceError::CrcMismatch { .. }
        ), "typed rejection, got {}", err);
    }

    /// Single-byte corruption anywhere in the file either fails with a
    /// typed error (usually a chunk CRC mismatch) at parse or record
    /// iteration time, or leaves the trace readable — it never panics
    /// and never half-works.
    #[test]
    fn corruption_never_panics(
        header in arb_header(),
        config in arb_config(),
        records in arb_records(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = serialize(header, &config, &records);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= flip;
        match TraceReader::parse(bytes) {
            Err(_) => {} // typed rejection is the expected outcome
            Ok(reader) => {
                // Corruption in ignorable bytes (e.g. the seed) can
                // still parse; iterating must stay panic-free.
                for item in reader.records() {
                    if item.is_err() {
                        break;
                    }
                }
            }
        }
    }

    /// Payload corruption inside a chunk is always caught by the CRC.
    #[test]
    fn payload_corruption_is_caught(
        header in arb_header(),
        records in proptest::collection::vec(arb_record(), 1..60),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        // One big chunk: everything lands in a single payload.
        let config = TraceConfig { chunk_bytes: usize::MAX, max_trace_bytes: usize::MAX };
        let bytes = serialize(header, &config, &records);
        let payload_len: usize = records.iter().map(|r| r.encoded_len()).sum();
        let payload_start = bytes.len() - payload_len - index_len(1);
        let pos = payload_start + ((payload_len as f64) * pos_frac) as usize % payload_len;
        let mut corrupt = bytes;
        corrupt[pos] ^= flip;
        let err = TraceReader::parse(corrupt).expect_err("corruption caught");
        prop_assert!(matches!(err, TraceError::CrcMismatch { chunk: 0 }), "{}", err);
    }
}

/// Serialized size of a tail index over `n` chunks (see format docs).
fn index_len(n: usize) -> usize {
    4 + 4 + 8 + n * 20 + 4 + 4 + 8
}
