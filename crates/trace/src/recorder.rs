//! Shared-handle recorder wiring a [`TraceWriter`] to session tap
//! points.
//!
//! A [`Recorder`] is the gluing object callers hold: it owns the writer
//! behind a mutex, hands out [`SharedTap`]s to any number of sessions
//! or gateway configs, and yields the finished trace bytes at the end.

use std::path::Path;
use std::sync::{Arc, Mutex};

use uniint_core::tap::{Direction, SessionTap, SharedTap};
use uniint_telemetry::registry::Registry;

use crate::format::{TraceConfig, TraceError, TraceHeader, TraceWriter};

/// Owns a [`TraceWriter`] and exposes it as a [`SharedTap`].
///
/// Cloning is cheap; all clones (and all taps) feed the same writer.
/// After [`Recorder::finish`] further records are silently discarded,
/// so sessions still holding taps need no teardown coordination.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Mutex<Option<TraceWriter>>>,
}

impl Recorder {
    /// Creates a recorder with default [`TraceConfig`].
    pub fn new(header: TraceHeader) -> Recorder {
        Recorder::with_config(header, TraceConfig::default())
    }

    /// Creates a recorder with explicit chunking/retention bounds.
    pub fn with_config(header: TraceHeader, config: TraceConfig) -> Recorder {
        Recorder {
            inner: Arc::new(Mutex::new(Some(TraceWriter::with_config(header, config)))),
        }
    }

    /// Mirrors writer activity into `registry` (`trace.records`,
    /// `trace.dropped_chunks`).
    pub fn attach_telemetry(&self, registry: &Registry) {
        if let Ok(mut w) = self.inner.lock() {
            if let Some(w) = w.as_mut() {
                w.attach_telemetry(registry);
            }
        }
    }

    /// A tap handle to plug into a session or gateway config.
    pub fn tap(&self) -> SharedTap {
        SharedTap::new(RecorderTap {
            inner: self.inner.clone(),
        })
    }

    /// Records seen so far (0 once finished).
    pub fn records_written(&self) -> u64 {
        self.inner
            .lock()
            .ok()
            .and_then(|w| w.as_ref().map(|w| w.records_written()))
            .unwrap_or(0)
    }

    /// Chunks evicted by the retention ring so far (0 once finished).
    pub fn dropped_chunks(&self) -> u64 {
        self.inner
            .lock()
            .ok()
            .and_then(|w| w.as_ref().map(|w| w.dropped_chunks()))
            .unwrap_or(0)
    }

    /// Seals and serializes the trace. Returns `None` if some clone of
    /// this recorder already finished it.
    pub fn finish(&self) -> Option<Vec<u8>> {
        self.inner.lock().ok()?.take().map(TraceWriter::finish)
    }

    /// [`Recorder::finish`] straight to a file.
    pub fn finish_to(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let bytes = self
            .finish()
            .ok_or_else(|| TraceError::Io(std::io::Error::other("trace already finished")))?;
        std::fs::write(path, bytes)?;
        Ok(())
    }
}

#[derive(Debug)]
struct RecorderTap {
    inner: Arc<Mutex<Option<TraceWriter>>>,
}

impl SessionTap for RecorderTap {
    fn record(&mut self, t_us: u64, channel: u32, dir: Direction, bytes: &[u8]) {
        if let Ok(mut w) = self.inner.lock() {
            if let Some(w) = w.as_mut() {
                w.record(t_us, channel, dir, bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceReader;
    use uniint_raster::pixel::PixelFormat;

    fn header() -> TraceHeader {
        TraceHeader {
            seed: 9,
            protocol_version: 1,
            pixel_format: PixelFormat::Rgb565,
        }
    }

    #[test]
    fn tap_feeds_writer_and_finish_is_once() {
        let rec = Recorder::new(header());
        let tap = rec.tap();
        tap.record(5, 0, Direction::ToServer, &[1]);
        tap.record(6, 0, Direction::ToClient, &[2, 3]);
        assert_eq!(rec.records_written(), 2);
        let bytes = rec.finish().expect("first finish yields the trace");
        assert!(rec.finish().is_none(), "second finish is None");
        // Late records after finish are dropped, not panicking.
        tap.record(7, 0, Direction::ToServer, &[4]);
        let reader = TraceReader::parse(bytes).unwrap();
        assert_eq!(reader.record_count(), 2);
        assert_eq!(reader.header(), &header());
    }

    #[test]
    fn telemetry_counters_track_records() {
        let registry = Registry::new();
        let rec = Recorder::new(header());
        rec.attach_telemetry(&registry);
        let tap = rec.tap();
        for i in 0..5 {
            tap.record(i, 0, Direction::ToClient, &[0; 8]);
        }
        assert_eq!(registry.counter("trace.records").get(), 5);
        assert_eq!(registry.counter("trace.dropped_chunks").get(), 0);
    }
}
