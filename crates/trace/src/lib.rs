//! # uniint-trace
//!
//! Session flight recorder for the universal interaction protocol.
//!
//! Because every UniInt session is completely described by its ordered
//! wire-message stream (bitmaps out, universal input in — the paper's
//! whole point), a session can be captured as a compact binary trace
//! and replayed later, deterministically, onto fresh endpoints:
//!
//! - [`format`](mod@format) — the chunked, CRC-protected on-disk format with
//!   [`TraceWriter`](format::TraceWriter) /
//!   [`TraceReader`](format::TraceReader) and bounded-memory
//!   flight-recorder retention (`max_trace_bytes`, oldest chunk
//!   evicted first);
//! - [`recorder`] — a [`Recorder`](recorder::Recorder) handle that
//!   plugs into the capture hooks exposed by
//!   [`SimSession::connect_recorded`](uniint_core::session::SimSession::connect_recorded)
//!   and the gateway's `GatewayConfig::recorder`;
//! - [`replay`] — a [`Replayer`](replay::Replayer) that re-runs a
//!   trace on the telemetry virtual clock, plus the divergence checker
//!   that byte-compares a fresh server's regenerated stream against
//!   the recording and pinpoints the first mismatching record.
//!
//! The `trace_dump` binary prints a human-readable summary of any
//! trace file (message histogram, bytes by encoding, inter-arrival
//! percentiles).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod recorder;
pub mod replay;

/// Convenient re-exports of the whole trace surface.
pub mod prelude {
    pub use crate::format::{
        TraceConfig, TraceError, TraceHeader, TraceReader, TraceRecord, TraceWriter,
    };
    pub use crate::recorder::Recorder;
    pub use crate::replay::{Divergence, ReplayError, ReplayOutcome, Replayer};
    pub use uniint_core::tap::{Direction, SessionTap, SharedTap};
}
