//! Deterministic trace replay and divergence checking.
//!
//! Traces are recorded server-side ([`uniint_core::tap`]): the
//! `ToServer` half is the exact sequence of client messages the server
//! consumed, the `ToClient` half the exact sequence it produced. That
//! gives two replay modes:
//!
//! - [`Replayer::replay`] drives a **fresh proxy alone** from the
//!   `ToClient` half: every recorded server message is applied in
//!   order on the telemetry [`VirtualClock`](uniint_telemetry::clock::VirtualClock), rebuilding the remote
//!   framebuffer bit-for-bit and yielding the
//!   [`Framebuffer::digest`](uniint_raster::framebuffer::Framebuffer::digest)
//!   after every update. Two replays of one trace are byte-identical
//!   (digest sequence and telemetry snapshot), which is what the CI
//!   record/replay job checks.
//! - [`Replayer::verify`] additionally drives a **fresh server** over a
//!   caller-provided [`Ui`] (in the same initial state as the recorded
//!   run): the `ToServer` half is fed in, and every message the server
//!   regenerates is byte-compared against the recorded `ToClient`
//!   record at the same position. The first mismatch is reported as a
//!   [`Divergence`] carrying the record index, timestamp and reason —
//!   pinpointing exactly where a mutated trace (or a behaviour change
//!   in the server) departs from the recording.
//!
//! Verification requires the recorded run's UI to have changed only
//! through the protocol (inputs, resumes, repaints) — the rule every
//! session in this workspace follows; application-side mutations made
//! between messages would need their own journal to reproduce.

use std::collections::VecDeque;

use uniint_core::plugin::OutputPlugin;
use uniint_core::proxy::UniIntProxy;
use uniint_core::server::UniIntServer;
use uniint_core::tap::Direction;
use uniint_protocol::error::ProtocolError;
use uniint_protocol::message::{encode_server, ClientMessage, ServerMessage};
use uniint_telemetry::registry::Registry;
use uniint_telemetry::snapshot::Snapshot;
use uniint_wsys::ui::Ui;

use crate::format::{TraceError, TraceReader, TraceRecord};

/// The first point where a replay departed from the recorded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based index of the first diverging record (== total record
    /// count when the server produced *extra* trailing messages).
    pub record_index: usize,
    /// Timestamp of that record, microseconds.
    pub t_us: u64,
    /// Human-readable explanation of the mismatch.
    pub reason: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "diverged at record {} (t={}us): {}",
            self.record_index, self.t_us, self.reason
        )
    }
}

/// Why a replay failed.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace itself could not be read.
    Trace(TraceError),
    /// A recorded message body failed protocol decoding.
    Protocol {
        /// Index of the undecodable record.
        record_index: usize,
        /// The decode error.
        error: ProtocolError,
    },
    /// The regenerated stream departed from the recording.
    Diverged(Divergence),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "replay: {e}"),
            ReplayError::Protocol {
                record_index,
                error,
            } => write!(f, "replay: record {record_index} undecodable: {error}"),
            ReplayError::Diverged(d) => write!(f, "replay {d}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Trace(e) => Some(e),
            ReplayError::Protocol { error, .. } => Some(error),
            ReplayError::Diverged(_) => None,
        }
    }
}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> ReplayError {
        ReplayError::Trace(e)
    }
}

/// Everything a replay produced, for determinism checks and benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Total records consumed.
    pub records: u64,
    /// Client→server records seen.
    pub to_server: u64,
    /// Server→client records seen (applied to the replay proxy).
    pub to_client: u64,
    /// `ServerMessage::Update`s applied.
    pub updates_applied: u64,
    /// Sum of recorded message body bytes.
    pub payload_bytes: u64,
    /// Virtual time between first and last record, microseconds.
    pub virtual_elapsed_us: u64,
    /// `(record index, framebuffer digest)` after every applied update.
    pub digests: Vec<(usize, u64)>,
    /// Final telemetry snapshot of the replay registry (virtual-clocked,
    /// so byte-identical across replays of one trace).
    pub snapshot: Snapshot,
}

impl ReplayOutcome {
    /// The framebuffer digest after the last applied update.
    pub fn final_digest(&self) -> Option<u64> {
        self.digests.last().map(|&(_, d)| d)
    }

    /// Compares two replays of (nominally) the same trace: the first
    /// differing per-update digest wins, then the telemetry snapshots.
    /// `None` means the replays are identical.
    pub fn diff(&self, other: &ReplayOutcome) -> Option<Divergence> {
        for (i, (a, b)) in self.digests.iter().zip(&other.digests).enumerate() {
            if a != b {
                return Some(Divergence {
                    record_index: a.0,
                    t_us: 0,
                    reason: format!(
                        "update #{i} digest {:016x} vs {:016x} (records {} vs {})",
                        a.1, b.1, a.0, b.0
                    ),
                });
            }
        }
        if self.digests.len() != other.digests.len() {
            let longer = if self.digests.len() > other.digests.len() {
                &self.digests
            } else {
                &other.digests
            };
            let extra = longer[self.digests.len().min(other.digests.len())];
            return Some(Divergence {
                record_index: extra.0,
                t_us: 0,
                reason: format!(
                    "update counts differ: {} vs {}",
                    self.digests.len(),
                    other.digests.len()
                ),
            });
        }
        if self.snapshot != other.snapshot {
            return Some(Divergence {
                record_index: self.records.min(other.records) as usize,
                t_us: 0,
                reason: "final telemetry snapshots differ".into(),
            });
        }
        None
    }
}

/// Replays a trace onto fresh protocol endpoints driven by the
/// telemetry virtual clock.
pub struct Replayer {
    registry: Registry,
    output: Option<Box<dyn OutputPlugin>>,
}

impl std::fmt::Debug for Replayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replayer")
            .field("output", &self.output.as_ref().map(|p| p.kind()))
            .finish_non_exhaustive()
    }
}

impl Default for Replayer {
    fn default() -> Replayer {
        Replayer::new()
    }
}

impl Replayer {
    /// A replayer with a fresh telemetry registry and no output device.
    pub fn new() -> Replayer {
        Replayer {
            registry: Registry::new(),
            output: None,
        }
    }

    /// Attaches an output plug-in to the replay proxy, so frame
    /// adaptation runs during replay too (used by the replay bench to
    /// measure decode+adapt throughput on recorded traffic).
    pub fn with_output(plugin: Box<dyn OutputPlugin>) -> Replayer {
        Replayer {
            registry: Registry::new(),
            output: Some(plugin),
        }
    }

    /// The registry the replayed endpoints are instrumented into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Drives a fresh proxy from the trace's server→client half,
    /// collecting the digest after every applied update. `ToServer`
    /// records are counted but not interpreted (there is no server).
    pub fn replay(self, reader: &TraceReader) -> Result<ReplayOutcome, ReplayError> {
        self.run(reader, None)
    }

    /// Full divergence check: drives a fresh server over `ui` (which
    /// must be in the recorded run's *initial* state) with the
    /// client→server half, comparing every regenerated message
    /// byte-for-byte against the recorded server→client half, while a
    /// shadow proxy applies the recorded updates for digests. Returns
    /// [`ReplayError::Diverged`] at the first mismatch.
    pub fn verify(self, reader: &TraceReader, ui: &mut Ui) -> Result<ReplayOutcome, ReplayError> {
        self.run(reader, Some(ui))
    }

    fn run(
        self,
        reader: &TraceReader,
        mut ui: Option<&mut Ui>,
    ) -> Result<ReplayOutcome, ReplayError> {
        let registry = self.registry;
        let mut proxy = UniIntProxy::with_telemetry("replay-proxy", registry.clone());
        if let Some(plugin) = self.output {
            // The renegotiation messages an attach would send are
            // already part of the recorded conversation; drop them.
            let _ = proxy.attach_output(plugin);
        }
        let mut server = ui
            .as_deref()
            .map(|ui| UniIntServer::with_telemetry(ui, registry.clone()));
        // Server messages regenerated by `server` but not yet matched
        // against a recorded ToClient record (bodies, no length prefix).
        let mut pending: VecDeque<Vec<u8>> = VecDeque::new();

        let mut outcome = ReplayOutcome {
            records: 0,
            to_server: 0,
            to_client: 0,
            updates_applied: 0,
            payload_bytes: 0,
            virtual_elapsed_us: 0,
            digests: Vec::new(),
            snapshot: registry.snapshot(),
        };
        let mut first_t = None;
        let mut last_t = 0;

        for (index, record) in reader.records().enumerate() {
            let record = record?;
            registry.clock().set_us(record.t_us);
            first_t.get_or_insert(record.t_us);
            last_t = record.t_us;
            outcome.records += 1;
            outcome.payload_bytes += record.payload.len() as u64;
            match record.dir {
                Direction::ToServer => {
                    outcome.to_server += 1;
                    if let (Some(server), Some(ui)) = (server.as_mut(), ui.as_deref_mut()) {
                        let msg = decode_client(index, &record)?;
                        for reply in server.handle_message(ui, msg) {
                            pending.push_back(body(&reply));
                        }
                    }
                }
                Direction::ToClient => {
                    outcome.to_client += 1;
                    if let (Some(server), Some(ui)) = (server.as_mut(), ui.as_deref_mut()) {
                        if pending.is_empty() {
                            // The recorded message came from a pump
                            // (application damage flush), not a reply:
                            // pump the fresh server at the same point.
                            for m in server.pump(ui) {
                                pending.push_back(body(&m));
                            }
                        }
                        match pending.pop_front() {
                            None => {
                                return Err(ReplayError::Diverged(Divergence {
                                    record_index: index,
                                    t_us: record.t_us,
                                    reason: "server regenerated no message here".into(),
                                }))
                            }
                            Some(expected) if expected != record.payload => {
                                return Err(ReplayError::Diverged(Divergence {
                                    record_index: index,
                                    t_us: record.t_us,
                                    reason: mismatch_reason(&expected, &record.payload),
                                }))
                            }
                            Some(_) => {}
                        }
                    }
                    let msg = decode_server(index, &record)?;
                    let is_update = matches!(msg, ServerMessage::Update { .. });
                    let _ = proxy
                        .handle_server(&msg)
                        .map_err(|error| ReplayError::Protocol {
                            record_index: index,
                            error,
                        })?;
                    if is_update {
                        outcome.updates_applied += 1;
                        if let Some(fb) = proxy.server_frame() {
                            outcome.digests.push((index, fb.digest()));
                        }
                    }
                }
            }
        }

        if !pending.is_empty() {
            return Err(ReplayError::Diverged(Divergence {
                record_index: outcome.records as usize,
                t_us: last_t,
                reason: format!(
                    "server regenerated {} message(s) past the end of the trace",
                    pending.len()
                ),
            }));
        }

        outcome.virtual_elapsed_us = last_t - first_t.unwrap_or(last_t);
        outcome.snapshot = registry.snapshot();
        Ok(outcome)
    }
}

/// Encodes a server message body (no length prefix), as recorded.
fn body(m: &ServerMessage) -> Vec<u8> {
    encode_server(m)[4..].to_vec()
}

fn decode_client(index: usize, record: &TraceRecord) -> Result<ClientMessage, ReplayError> {
    ClientMessage::decode_body(&mut record.payload.as_slice()).map_err(|error| {
        ReplayError::Protocol {
            record_index: index,
            error,
        }
    })
}

fn decode_server(index: usize, record: &TraceRecord) -> Result<ServerMessage, ReplayError> {
    ServerMessage::decode_body(&mut record.payload.as_slice()).map_err(|error| {
        ReplayError::Protocol {
            record_index: index,
            error,
        }
    })
}

/// Describes the first differing byte between a regenerated and a
/// recorded message body.
fn mismatch_reason(expected: &[u8], recorded: &[u8]) -> String {
    let at = expected
        .iter()
        .zip(recorded)
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| expected.len().min(recorded.len()));
    format!(
        "regenerated message differs from recording at byte {at} \
         (regenerated {} bytes, recorded {} bytes)",
        expected.len(),
        recorded.len()
    )
}
