//! Human-readable summary of a recorded session trace.
//!
//! ```text
//! trace_dump FILE
//! ```
//!
//! Prints the header (seed, protocol version, pixel format), chunk and
//! record totals, a message-type histogram per direction, bytes by
//! rectangle encoding, and inter-arrival-time percentiles computed with
//! the telemetry histogram (so the numbers match what instrumented
//! sessions report).

use std::collections::BTreeMap;

use uniint_core::tap::Direction;
use uniint_protocol::message::{ClientMessage, ServerMessage};
use uniint_telemetry::histogram::Histogram;
use uniint_trace::format::TraceReader;

fn client_kind(m: &ClientMessage) -> &'static str {
    match m {
        ClientMessage::Hello { .. } => "Hello",
        ClientMessage::SetPixelFormat(_) => "SetPixelFormat",
        ClientMessage::SetEncodings(_) => "SetEncodings",
        ClientMessage::UpdateRequest { .. } => "UpdateRequest",
        ClientMessage::Input(_) => "Input",
        ClientMessage::CutText(_) => "CutText",
        ClientMessage::Resume { .. } => "Resume",
        ClientMessage::DeviceHealth { .. } => "DeviceHealth",
    }
}

fn server_kind(m: &ServerMessage) -> &'static str {
    match m {
        ServerMessage::Init { .. } => "Init",
        ServerMessage::Update { .. } => "Update",
        ServerMessage::Bell => "Bell",
        ServerMessage::CutText(_) => "CutText",
        ServerMessage::Resize { .. } => "Resize",
        ServerMessage::ResumeAck { .. } => "ResumeAck",
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: trace_dump FILE");
        std::process::exit(2);
    };
    let reader = match TraceReader::open(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_dump: {path}: {e}");
            std::process::exit(1);
        }
    };

    let h = reader.header();
    println!("trace {path}");
    println!(
        "  header: seed {} protocol v{} pixel format {:?} (format v1)",
        h.seed, h.protocol_version, h.pixel_format
    );
    println!(
        "  chunks: {} ({} dropped by retention ring), records: {}, index: {}",
        reader.chunk_count(),
        reader.dropped_chunks(),
        reader.record_count(),
        if reader.has_index() {
            "yes"
        } else {
            "no (unfinished trace)"
        },
    );

    let mut kinds: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // kind -> (count, bytes)
    let mut enc_bytes: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // encoding -> (rects, bytes)
    let mut channels: BTreeMap<u32, u64> = BTreeMap::new();
    let inter_arrival = Histogram::new();
    let mut last_t: Option<u64> = None;
    let (mut first_t, mut end_t) = (None, 0u64);

    for item in reader.records() {
        let rec = match item {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace_dump: {path}: {e}");
                std::process::exit(1);
            }
        };
        if let Some(prev) = last_t {
            inter_arrival.record(rec.t_us.saturating_sub(prev));
        }
        last_t = Some(rec.t_us);
        first_t.get_or_insert(rec.t_us);
        end_t = rec.t_us;
        *channels.entry(rec.channel).or_default() += 1;

        let (arrow, kind) = match rec.dir {
            Direction::ToServer => (
                "c->s",
                ClientMessage::decode_body(&mut rec.payload.as_slice())
                    .map(|m| client_kind(&m))
                    .unwrap_or("<undecodable>"),
            ),
            Direction::ToClient => match ServerMessage::decode_body(&mut rec.payload.as_slice()) {
                Ok(m) => {
                    if let ServerMessage::Update { rects, .. } = &m {
                        for ru in rects {
                            let e = enc_bytes.entry(format!("{:?}", ru.encoding)).or_default();
                            e.0 += 1;
                            e.1 += ru.payload.len() as u64;
                        }
                    }
                    ("s->c", server_kind(&m))
                }
                Err(_) => ("s->c", "<undecodable>"),
            },
        };
        let slot = kinds.entry(format!("{arrow} {kind}")).or_default();
        slot.0 += 1;
        slot.1 += rec.payload.len() as u64;
    }

    let span_us = end_t - first_t.unwrap_or(end_t);
    println!("  span: {span_us} us across {} channel(s)", channels.len());
    for (ch, n) in &channels {
        println!("    channel {ch}: {n} records");
    }

    println!("  messages:");
    for (kind, (count, bytes)) in &kinds {
        println!("    {kind:<22} {count:>8} msgs {bytes:>12} bytes");
    }

    if !enc_bytes.is_empty() {
        println!("  update payload by encoding:");
        for (enc, (rects, bytes)) in &enc_bytes {
            println!("    {enc:<22} {rects:>8} rects {bytes:>12} bytes");
        }
    }

    let ia = inter_arrival.snapshot();
    if ia.count > 0 {
        println!(
            "  inter-arrival us: p50 {} p95 {} p99 {} (min {} max {} over {} gaps)",
            ia.p50, ia.p95, ia.p99, ia.min, ia.max, ia.count
        );
    }
}
