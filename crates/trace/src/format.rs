//! The binary trace format: chunked, CRC-protected, seekable.
//!
//! # Layout
//!
//! ```text
//! header   "UITRACE1" | format version u16 | protocol version u16
//!          | pixel format wire id u8 | reserved u8 | seed u64
//! chunk*   "CHNK" | payload_len u32 | record_count u32
//!          | first_t_us u64 | crc32(payload) u32 | payload
//! index    "INDX" | entry_count u32 | dropped_chunks u64
//!          | (chunk offset u64, first_t_us u64, record_count u32)*
//!          | crc32(block) u32 | index_len u32 | "UITRIDX1"
//! ```
//!
//! All integers are big-endian. Each chunk payload is a dense run of
//! records:
//!
//! ```text
//! record   t_us u64 | channel u32 | direction u8 | len u32 | bytes
//! ```
//!
//! where `bytes` is one protocol message **body** (tag + payload,
//! without the 4-byte wire length prefix) and `direction` is 0 for
//! client→server, 1 for server→client.
//!
//! The tail index repeats each chunk's file offset, first timestamp and
//! record count so a reader can seek by time without scanning payloads,
//! and doubles as an end-of-trace marker: a file that stops mid-chunk
//! (recorder crashed) is rejected with [`TraceError::Truncated`]. The
//! `index_len` field sits just before the trailing magic so the whole
//! index is parseable backwards from EOF.
//!
//! [`TraceWriter`] keeps bounded memory: records accumulate into one
//! open chunk (sealed at [`TraceConfig::chunk_bytes`]), and sealed
//! chunks live in a ring capped at [`TraceConfig::max_trace_bytes`] —
//! when full, the *oldest* chunk is evicted flight-recorder style and
//! counted in `dropped_chunks` (and the `trace.dropped_chunks`
//! telemetry counter when attached).

use std::collections::VecDeque;
use std::path::Path;

use uniint_core::tap::Direction;
use uniint_raster::pixel::PixelFormat;
use uniint_telemetry::registry::{Counter, Registry};

/// Leading file magic.
pub const TRACE_MAGIC: &[u8; 8] = b"UITRACE1";
/// Chunk magic.
pub const CHUNK_MAGIC: &[u8; 4] = b"CHNK";
/// Index block magic.
pub const INDEX_MAGIC: &[u8; 4] = b"INDX";
/// Trailing file magic (after the index).
pub const TRAILER_MAGIC: &[u8; 8] = b"UITRIDX1";
/// Trace format version written by this crate.
pub const FORMAT_VERSION: u16 = 1;

const HEADER_LEN: usize = 8 + 2 + 2 + 1 + 1 + 8;
const CHUNK_HEADER_LEN: usize = 4 + 4 + 4 + 8 + 4;
const RECORD_HEADER_LEN: usize = 8 + 4 + 1 + 4;
const INDEX_ENTRY_LEN: usize = 8 + 8 + 4;

/// Why a trace could not be written or parsed.
#[derive(Debug)]
pub enum TraceError {
    /// Reading or writing the trace file failed.
    Io(std::io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The trace was written by a newer format version.
    UnsupportedVersion(u16),
    /// The file ends in the middle of a structure.
    Truncated {
        /// Byte offset where parsing stopped.
        offset: usize,
        /// The structure that was cut short.
        what: &'static str,
    },
    /// A chunk's payload does not match its checksum.
    CrcMismatch {
        /// Zero-based index of the bad chunk.
        chunk: usize,
    },
    /// A structurally invalid field (bad magic mid-file, unknown pixel
    /// format or direction, inconsistent counts…).
    Malformed {
        /// Byte offset of the offending structure.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a UniInt trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::Truncated { offset, what } => {
                write!(f, "trace truncated at byte {offset} (inside {what})")
            }
            TraceError::CrcMismatch { chunk } => {
                write!(f, "crc mismatch in chunk {chunk}")
            }
            TraceError::Malformed { offset, what } => {
                write!(f, "malformed trace at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`, as used for chunk and index checksums.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Metadata identifying the run a trace was captured from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// The seed of the recorded run (simulator seed, or 0 for wall-clock
    /// gateway captures).
    pub seed: u64,
    /// Protocol version spoken during the run.
    pub protocol_version: u16,
    /// Transport pixel format at recording time (informational; updates
    /// carry their own format per message).
    pub pixel_format: PixelFormat,
}

/// One recorded protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Timestamp, microseconds (virtual time for simulated sessions,
    /// time since gateway start for socket sessions).
    pub t_us: u64,
    /// Session/link id (0 for `SimSession`, connection id for the
    /// gateway).
    pub channel: u32,
    /// Which way the message travelled.
    pub dir: Direction,
    /// The message body: tag byte + payload, no length prefix.
    pub payload: Vec<u8>,
}

impl TraceRecord {
    /// Encoded size of this record inside a chunk payload.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER_LEN + self.payload.len()
    }
}

/// Writer tuning knobs.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Target chunk payload size; a chunk is sealed once it reaches
    /// this many bytes. Default 64 KiB.
    pub chunk_bytes: usize,
    /// Retained-trace bound across sealed chunks. When exceeded the
    /// oldest sealed chunk is evicted (ring behaviour) and counted as
    /// dropped. Default 64 MiB.
    pub max_trace_bytes: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            chunk_bytes: 64 * 1024,
            max_trace_bytes: 64 * 1024 * 1024,
        }
    }
}

#[derive(Debug)]
struct SealedChunk {
    payload: Vec<u8>,
    records: u32,
    first_t_us: u64,
}

/// Accumulates records into the chunked binary format with bounded
/// memory, then emits the complete trace with [`TraceWriter::finish`].
#[derive(Debug)]
pub struct TraceWriter {
    header: TraceHeader,
    config: TraceConfig,
    open: Vec<u8>,
    open_records: u32,
    open_first_t: u64,
    sealed: VecDeque<SealedChunk>,
    sealed_bytes: usize,
    records_written: u64,
    dropped_chunks: u64,
    dropped_counter: Option<Counter>,
    records_counter: Option<Counter>,
}

impl TraceWriter {
    /// Creates a writer with default [`TraceConfig`].
    pub fn new(header: TraceHeader) -> TraceWriter {
        TraceWriter::with_config(header, TraceConfig::default())
    }

    /// Creates a writer with explicit chunking/retention bounds.
    pub fn with_config(header: TraceHeader, config: TraceConfig) -> TraceWriter {
        TraceWriter {
            header,
            config,
            open: Vec::new(),
            open_records: 0,
            open_first_t: 0,
            sealed: VecDeque::new(),
            sealed_bytes: 0,
            records_written: 0,
            dropped_chunks: 0,
            dropped_counter: None,
            records_counter: None,
        }
    }

    /// Mirrors writer activity into `registry`: `trace.records` counts
    /// recorded messages, `trace.dropped_chunks` counts ring evictions.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.dropped_counter = Some(registry.counter("trace.dropped_chunks"));
        self.records_counter = Some(registry.counter("trace.records"));
    }

    /// The header this writer stamps on the trace.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records written so far (including any since evicted).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Chunks evicted to stay under
    /// [`max_trace_bytes`](TraceConfig::max_trace_bytes).
    pub fn dropped_chunks(&self) -> u64 {
        self.dropped_chunks
    }

    /// Appends one record.
    pub fn record(&mut self, t_us: u64, channel: u32, dir: Direction, payload: &[u8]) {
        if self.open.is_empty() {
            self.open_first_t = t_us;
        }
        self.open.extend_from_slice(&t_us.to_be_bytes());
        self.open.extend_from_slice(&channel.to_be_bytes());
        self.open.push(match dir {
            Direction::ToServer => 0,
            Direction::ToClient => 1,
        });
        self.open
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.open.extend_from_slice(payload);
        self.open_records += 1;
        self.records_written += 1;
        if let Some(c) = &self.records_counter {
            c.inc();
        }
        if self.open.len() >= self.config.chunk_bytes {
            self.seal();
        }
    }

    /// Moves the open chunk into the sealed ring, evicting from the
    /// front if the retention bound is exceeded.
    fn seal(&mut self) {
        if self.open.is_empty() {
            return;
        }
        let payload = std::mem::take(&mut self.open);
        self.sealed_bytes += payload.len();
        self.sealed.push_back(SealedChunk {
            payload,
            records: self.open_records,
            first_t_us: self.open_first_t,
        });
        self.open_records = 0;
        while self.sealed_bytes > self.config.max_trace_bytes && self.sealed.len() > 1 {
            let evicted = self.sealed.pop_front().expect("len > 1");
            self.sealed_bytes -= evicted.payload.len();
            self.dropped_chunks += 1;
            if let Some(c) = &self.dropped_counter {
                c.inc();
            }
        }
    }

    /// Seals the open chunk and serializes header, chunks and tail
    /// index into one buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.seal();
        let total: usize = HEADER_LEN
            + self
                .sealed
                .iter()
                .map(|c| CHUNK_HEADER_LEN + c.payload.len())
                .sum::<usize>();
        let mut out = Vec::with_capacity(total + 64);
        out.extend_from_slice(TRACE_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_be_bytes());
        out.extend_from_slice(&self.header.protocol_version.to_be_bytes());
        out.push(self.header.pixel_format.wire_id());
        out.push(0);
        out.extend_from_slice(&self.header.seed.to_be_bytes());

        let mut entries: Vec<(u64, u64, u32)> = Vec::with_capacity(self.sealed.len());
        for chunk in &self.sealed {
            entries.push((out.len() as u64, chunk.first_t_us, chunk.records));
            out.extend_from_slice(CHUNK_MAGIC);
            out.extend_from_slice(&(chunk.payload.len() as u32).to_be_bytes());
            out.extend_from_slice(&chunk.records.to_be_bytes());
            out.extend_from_slice(&chunk.first_t_us.to_be_bytes());
            out.extend_from_slice(&crc32(&chunk.payload).to_be_bytes());
            out.extend_from_slice(&chunk.payload);
        }

        let index_start = out.len();
        out.extend_from_slice(INDEX_MAGIC);
        out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.dropped_chunks.to_be_bytes());
        for (offset, first_t, records) in &entries {
            out.extend_from_slice(&offset.to_be_bytes());
            out.extend_from_slice(&first_t.to_be_bytes());
            out.extend_from_slice(&records.to_be_bytes());
        }
        let crc = crc32(&out[index_start..]);
        out.extend_from_slice(&crc.to_be_bytes());
        let index_len = (out.len() - index_start) as u32;
        out.extend_from_slice(&index_len.to_be_bytes());
        out.extend_from_slice(TRAILER_MAGIC);
        out
    }
}

#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    payload_start: usize,
    payload_len: usize,
    records: u32,
    first_t_us: u64,
}

/// Parses and iterates a complete trace held in memory.
///
/// Chunk structure and checksums are validated eagerly in
/// [`TraceReader::parse`]; record decoding is lazy (one record at a
/// time while iterating), so memory stays bounded by the input buffer.
#[derive(Debug)]
pub struct TraceReader {
    header: TraceHeader,
    data: Vec<u8>,
    chunks: Vec<ChunkMeta>,
    dropped_chunks: u64,
    has_index: bool,
}

impl TraceReader {
    /// Reads and parses a trace file.
    pub fn open(path: impl AsRef<Path>) -> Result<TraceReader, TraceError> {
        TraceReader::parse(std::fs::read(path)?)
    }

    /// Parses a serialized trace, validating header, chunk framing and
    /// every chunk CRC (and the tail index when present).
    pub fn parse(data: Vec<u8>) -> Result<TraceReader, TraceError> {
        if data.len() < HEADER_LEN {
            if data.len() >= 8 && &data[..8] != TRACE_MAGIC {
                return Err(TraceError::BadMagic);
            }
            return Err(TraceError::Truncated {
                offset: data.len(),
                what: "file header",
            });
        }
        if &data[..8] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_be_bytes([data[8], data[9]]);
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let protocol_version = u16::from_be_bytes([data[10], data[11]]);
        let pixel_format = PixelFormat::from_wire_id(data[12]).ok_or(TraceError::Malformed {
            offset: 12,
            what: "unknown pixel format id",
        })?;
        let seed = u64::from_be_bytes(data[14..22].try_into().expect("8 bytes"));
        let header = TraceHeader {
            seed,
            protocol_version,
            pixel_format,
        };

        let mut chunks = Vec::new();
        let mut dropped_chunks = 0u64;
        let mut has_index = false;
        let mut pos = HEADER_LEN;
        loop {
            if pos == data.len() {
                break; // Unfinished but chunk-aligned trace: usable.
            }
            if data.len() - pos < 4 {
                return Err(TraceError::Truncated {
                    offset: pos,
                    what: "chunk magic",
                });
            }
            let magic = &data[pos..pos + 4];
            if magic == INDEX_MAGIC {
                Self::parse_index(&data, pos, &chunks, &mut dropped_chunks)?;
                has_index = true;
                break;
            }
            if magic != CHUNK_MAGIC {
                return Err(TraceError::Malformed {
                    offset: pos,
                    what: "expected chunk or index magic",
                });
            }
            if data.len() - pos < CHUNK_HEADER_LEN {
                return Err(TraceError::Truncated {
                    offset: pos,
                    what: "chunk header",
                });
            }
            let payload_len =
                u32::from_be_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            let records = u32::from_be_bytes(data[pos + 8..pos + 12].try_into().expect("4 bytes"));
            let first_t_us =
                u64::from_be_bytes(data[pos + 12..pos + 20].try_into().expect("8 bytes"));
            let crc = u32::from_be_bytes(data[pos + 20..pos + 24].try_into().expect("4 bytes"));
            let payload_start = pos + CHUNK_HEADER_LEN;
            if data.len() - payload_start < payload_len {
                return Err(TraceError::Truncated {
                    offset: pos,
                    what: "chunk payload",
                });
            }
            let payload = &data[payload_start..payload_start + payload_len];
            if crc32(payload) != crc {
                return Err(TraceError::CrcMismatch {
                    chunk: chunks.len(),
                });
            }
            chunks.push(ChunkMeta {
                payload_start,
                payload_len,
                records,
                first_t_us,
            });
            pos = payload_start + payload_len;
        }

        Ok(TraceReader {
            header,
            data,
            chunks,
            dropped_chunks,
            has_index,
        })
    }

    /// Validates the tail index at `pos` against the chunks scanned so
    /// far and extracts `dropped_chunks`.
    fn parse_index(
        data: &[u8],
        pos: usize,
        chunks: &[ChunkMeta],
        dropped_chunks: &mut u64,
    ) -> Result<(), TraceError> {
        let need = |n: usize, at: usize, what: &'static str| -> Result<(), TraceError> {
            if data.len() - at < n {
                Err(TraceError::Truncated { offset: at, what })
            } else {
                Ok(())
            }
        };
        need(16, pos, "index header")?;
        let entry_count =
            u32::from_be_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
        let dropped = u64::from_be_bytes(data[pos + 8..pos + 16].try_into().expect("8 bytes"));
        let entries_start = pos + 16;
        let Some(entries_len) = entry_count.checked_mul(INDEX_ENTRY_LEN) else {
            return Err(TraceError::Malformed {
                offset: pos + 4,
                what: "index entry count overflows",
            });
        };
        need(entries_len + 4, entries_start, "index entries")?;
        let crc_at = entries_start + entries_len;
        let crc = u32::from_be_bytes(data[crc_at..crc_at + 4].try_into().expect("4 bytes"));
        if crc32(&data[pos..crc_at]) != crc {
            return Err(TraceError::Malformed {
                offset: pos,
                what: "index checksum mismatch",
            });
        }
        need(12, crc_at + 4, "index trailer")?;
        let index_len =
            u32::from_be_bytes(data[crc_at + 4..crc_at + 8].try_into().expect("4 bytes")) as usize;
        if index_len != crc_at + 4 - pos {
            return Err(TraceError::Malformed {
                offset: crc_at + 4,
                what: "index length disagrees with layout",
            });
        }
        if &data[crc_at + 8..crc_at + 16] != TRAILER_MAGIC {
            return Err(TraceError::Malformed {
                offset: crc_at + 8,
                what: "bad trailer magic",
            });
        }
        if crc_at + 16 != data.len() {
            return Err(TraceError::Malformed {
                offset: crc_at + 16,
                what: "bytes after trailer",
            });
        }
        if entry_count != chunks.len() {
            return Err(TraceError::Malformed {
                offset: pos + 4,
                what: "index entry count disagrees with chunks",
            });
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let at = entries_start + i * INDEX_ENTRY_LEN;
            let offset = u64::from_be_bytes(data[at..at + 8].try_into().expect("8 bytes"));
            let first_t = u64::from_be_bytes(data[at + 8..at + 16].try_into().expect("8 bytes"));
            let records = u32::from_be_bytes(data[at + 16..at + 20].try_into().expect("4 bytes"));
            if offset as usize != chunk.payload_start - CHUNK_HEADER_LEN
                || first_t != chunk.first_t_us
                || records != chunk.records
            {
                return Err(TraceError::Malformed {
                    offset: at,
                    what: "index entry disagrees with chunk",
                });
            }
        }
        *dropped_chunks = dropped;
        Ok(())
    }

    /// The trace's identifying header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Number of chunks in the trace.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total records across all chunks (from chunk headers).
    pub fn record_count(&self) -> u64 {
        self.chunks.iter().map(|c| c.records as u64).sum()
    }

    /// Chunks the writer evicted before `finish` (flight-recorder ring
    /// overflow); 0 for complete traces.
    pub fn dropped_chunks(&self) -> u64 {
        self.dropped_chunks
    }

    /// Whether the trace carries a valid tail index (i.e. was cleanly
    /// finished).
    pub fn has_index(&self) -> bool {
        self.has_index
    }

    /// Iterates every record in order. Each item re-validates record
    /// framing, so a corrupt (but CRC-consistent) payload yields an
    /// `Err` item and then stops.
    pub fn records(&self) -> Records<'_> {
        Records {
            reader: self,
            chunk: 0,
            pos: 0,
            emitted: 0,
            done: false,
        }
    }

    /// Iterates records with `t_us >= from_t_us`, seeking by chunk
    /// first-timestamps so earlier chunks are skipped without decoding.
    pub fn records_from(
        &self,
        from_t_us: u64,
    ) -> impl Iterator<Item = Result<TraceRecord, TraceError>> + '_ {
        let start = self
            .chunks
            .iter()
            .rposition(|c| c.first_t_us <= from_t_us)
            .unwrap_or(0);
        Records {
            reader: self,
            chunk: start,
            pos: 0,
            emitted: 0,
            done: false,
        }
        .filter(move |r| match r {
            Ok(rec) => rec.t_us >= from_t_us,
            Err(_) => true,
        })
    }
}

/// Iterator over [`TraceRecord`]s; fuses after the first error.
#[derive(Debug)]
pub struct Records<'a> {
    reader: &'a TraceReader,
    chunk: usize,
    pos: usize,
    emitted: u32,
    done: bool,
}

impl Records<'_> {
    fn fail(&mut self, e: TraceError) -> Option<Result<TraceRecord, TraceError>> {
        self.done = true;
        Some(Err(e))
    }
}

impl Iterator for Records<'_> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let meta = *self.reader.chunks.get(self.chunk)?;
            if self.pos == meta.payload_len {
                if self.emitted != meta.records {
                    return self.fail(TraceError::Malformed {
                        offset: meta.payload_start + self.pos,
                        what: "chunk record count disagrees with payload",
                    });
                }
                self.chunk += 1;
                self.pos = 0;
                self.emitted = 0;
                continue;
            }
            let payload =
                &self.reader.data[meta.payload_start..meta.payload_start + meta.payload_len];
            let abs = meta.payload_start + self.pos;
            if meta.payload_len - self.pos < RECORD_HEADER_LEN {
                return self.fail(TraceError::Malformed {
                    offset: abs,
                    what: "record header past chunk end",
                });
            }
            let p = self.pos;
            let t_us = u64::from_be_bytes(payload[p..p + 8].try_into().expect("8 bytes"));
            let channel = u32::from_be_bytes(payload[p + 8..p + 12].try_into().expect("4 bytes"));
            let dir = match payload[p + 12] {
                0 => Direction::ToServer,
                1 => Direction::ToClient,
                _ => {
                    return self.fail(TraceError::Malformed {
                        offset: abs + 12,
                        what: "unknown direction",
                    })
                }
            };
            let len =
                u32::from_be_bytes(payload[p + 13..p + 17].try_into().expect("4 bytes")) as usize;
            if meta.payload_len - (p + RECORD_HEADER_LEN) < len {
                return self.fail(TraceError::Malformed {
                    offset: abs,
                    what: "record payload past chunk end",
                });
            }
            if self.emitted == meta.records {
                return self.fail(TraceError::Malformed {
                    offset: abs,
                    what: "more records than chunk header claims",
                });
            }
            let start = p + RECORD_HEADER_LEN;
            self.pos = start + len;
            self.emitted += 1;
            return Some(Ok(TraceRecord {
                t_us,
                channel,
                dir,
                payload: payload[start..start + len].to_vec(),
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> TraceHeader {
        TraceHeader {
            seed: 42,
            protocol_version: 1,
            pixel_format: PixelFormat::Rgb888,
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                t_us: 10,
                channel: 0,
                dir: Direction::ToServer,
                payload: vec![1, 2, 3],
            },
            TraceRecord {
                t_us: 20,
                channel: 0,
                dir: Direction::ToClient,
                payload: vec![],
            },
            TraceRecord {
                t_us: 30,
                channel: 7,
                dir: Direction::ToClient,
                payload: vec![0xFF; 100],
            },
        ]
    }

    fn write(records: &[TraceRecord], config: TraceConfig) -> Vec<u8> {
        let mut w = TraceWriter::with_config(header(), config);
        for r in records {
            w.record(r.t_us, r.channel, r.dir, &r.payload);
        }
        w.finish()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_records_and_header() {
        let records = sample_records();
        let bytes = write(&records, TraceConfig::default());
        let reader = TraceReader::parse(bytes).unwrap();
        assert_eq!(reader.header(), &header());
        assert!(reader.has_index());
        assert_eq!(reader.record_count(), 3);
        assert_eq!(reader.dropped_chunks(), 0);
        let back: Vec<TraceRecord> = reader.records().map(|r| r.unwrap()).collect();
        assert_eq!(back, records);
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = write(&sample_records(), TraceConfig::default());
        let b = write(&sample_records(), TraceConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn chunking_splits_and_preserves_order() {
        let records: Vec<TraceRecord> = (0..50)
            .map(|i| TraceRecord {
                t_us: i as u64 * 5,
                channel: 0,
                dir: Direction::ToClient,
                payload: vec![i as u8; 40],
            })
            .collect();
        let bytes = write(
            &records,
            TraceConfig {
                chunk_bytes: 128,
                ..TraceConfig::default()
            },
        );
        let reader = TraceReader::parse(bytes).unwrap();
        assert!(reader.chunk_count() > 5, "{} chunks", reader.chunk_count());
        let back: Vec<TraceRecord> = reader.records().map(|r| r.unwrap()).collect();
        assert_eq!(back, records);
    }

    #[test]
    fn ring_evicts_oldest_chunks() {
        let mut w = TraceWriter::with_config(
            header(),
            TraceConfig {
                chunk_bytes: 128,
                max_trace_bytes: 512,
            },
        );
        for i in 0..200u64 {
            w.record(i, 0, Direction::ToClient, &[0xAB; 40]);
        }
        assert!(w.dropped_chunks() > 0);
        let dropped = w.dropped_chunks();
        let written = w.records_written();
        let reader = TraceReader::parse(w.finish()).unwrap();
        assert_eq!(reader.dropped_chunks(), dropped);
        assert!(reader.record_count() < written);
        // The *newest* records survive; the first remaining timestamp
        // is late in the run.
        let first = reader.records().next().unwrap().unwrap();
        assert!(first.t_us > 0);
        let last = reader.records().last().unwrap().unwrap();
        assert_eq!(last.t_us, 199);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let bytes = write(&sample_records(), TraceConfig::default());
        for cut in [3, HEADER_LEN + 2, bytes.len() - 5] {
            let err = TraceReader::parse(bytes[..cut].to_vec()).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated { .. } | TraceError::Malformed { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_chunk_payload_is_rejected() {
        let mut bytes = write(&sample_records(), TraceConfig::default());
        // Flip a byte inside the first chunk payload.
        let at = HEADER_LEN + CHUNK_HEADER_LEN + 9;
        bytes[at] ^= 0x40;
        let err = TraceReader::parse(bytes).unwrap_err();
        assert!(matches!(err, TraceError::CrcMismatch { chunk: 0 }), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write(&sample_records(), TraceConfig::default());
        bytes[0] = b'X';
        assert!(matches!(
            TraceReader::parse(bytes).unwrap_err(),
            TraceError::BadMagic
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = write(&sample_records(), TraceConfig::default());
        bytes[9] = 99;
        assert!(matches!(
            TraceReader::parse(bytes).unwrap_err(),
            TraceError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn records_from_seeks_by_time() {
        let records: Vec<TraceRecord> = (0..50)
            .map(|i| TraceRecord {
                t_us: i as u64 * 10,
                channel: 0,
                dir: Direction::ToClient,
                payload: vec![i as u8; 40],
            })
            .collect();
        let bytes = write(
            &records,
            TraceConfig {
                chunk_bytes: 128,
                ..TraceConfig::default()
            },
        );
        let reader = TraceReader::parse(bytes).unwrap();
        let from: Vec<TraceRecord> = reader.records_from(305).map(|r| r.unwrap()).collect();
        assert_eq!(from.first().unwrap().t_us, 310);
        assert_eq!(from.len(), records.iter().filter(|r| r.t_us >= 305).count());
    }
}
