//! Property tests for the selection policy and situation tracker:
//! determinism, zone gating, and hands-busy safety.

use proptest::prelude::*;
use uniint_core::context::{
    Activity, DeviceDescriptor, InputModality, Noise, OutputProfile, SelectionPolicy, Situation,
    UserProfile,
};
use uniint_core::sensors::{SensorReading, SituationTracker};
use uniint_raster::geom::Size;

fn arb_zone() -> impl Strategy<Value = String> {
    proptest::sample::select(vec![
        "kitchen".to_string(),
        "living-room".to_string(),
        "bedroom".to_string(),
        "hall".to_string(),
    ])
}

fn arb_modality() -> impl Strategy<Value = InputModality> {
    proptest::sample::select(InputModality::ALL.to_vec())
}

fn arb_device(i: usize) -> impl Strategy<Value = DeviceDescriptor> {
    (
        proptest::option::of(arb_zone()),
        proptest::option::of(arb_modality()),
        proptest::option::of((16u32..800, 16u32..800, 1u32..25, any::<bool>())),
    )
        .prop_map(move |(zone, input, output)| {
            let mut d = DeviceDescriptor {
                id: format!("dev-{i}"),
                name: format!("Device {i}"),
                zone,
                input: None,
                output: None,
            };
            d.input = input;
            d.output = output.map(|(w, h, depth, far)| OutputProfile {
                size: Size::new(w, h),
                depth_bits: depth,
                far_readable: far,
            });
            d
        })
}

fn arb_devices() -> impl Strategy<Value = Vec<DeviceDescriptor>> {
    (1usize..8).prop_flat_map(|n| {
        let mut strategies = Vec::new();
        for i in 0..n {
            strategies.push(arb_device(i).boxed());
        }
        strategies
    })
}

fn arb_situation() -> impl Strategy<Value = Situation> {
    (
        arb_zone(),
        proptest::sample::select(vec![
            Activity::Idle,
            Activity::Cooking,
            Activity::WatchingTv,
            Activity::Working,
            Activity::Walking,
            Activity::Sleeping,
        ]),
        any::<bool>(),
        proptest::sample::select(vec![Noise::Quiet, Noise::Moderate, Noise::Loud]),
    )
        .prop_map(|(zone, activity, hands_busy, noise)| Situation {
            zone,
            activity,
            hands_busy,
            noise,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn selection_is_deterministic(devices in arb_devices(), sit in arb_situation()) {
        let user = UserProfile::neutral("u");
        let a = SelectionPolicy.select_input(&devices, &sit, &user).map(|d| d.id.clone());
        let b = SelectionPolicy.select_input(&devices, &sit, &user).map(|d| d.id.clone());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn selected_devices_have_capability(devices in arb_devices(), sit in arb_situation()) {
        let user = UserProfile::neutral("u");
        if let Some(d) = SelectionPolicy.select_input(&devices, &sit, &user) {
            prop_assert!(d.input.is_some());
        }
        if let Some(d) = SelectionPolicy.select_output(&devices, &sit, &user) {
            prop_assert!(d.output.is_some());
        }
    }

    #[test]
    fn fixed_devices_never_selected_in_other_rooms(devices in arb_devices(), sit in arb_situation()) {
        let user = UserProfile::neutral("u");
        for sel in [
            SelectionPolicy.select_input(&devices, &sit, &user),
            SelectionPolicy.select_output(&devices, &sit, &user),
        ]
        .into_iter()
        .flatten()
        {
            if let Some(z) = &sel.zone {
                prop_assert_eq!(z, &sit.zone, "fixed device selected outside its room");
            }
        }
    }

    #[test]
    fn ranking_scores_are_sorted(devices in arb_devices(), sit in arb_situation()) {
        let user = UserProfile::neutral("u");
        let ranked = SelectionPolicy.rank_inputs(&devices, &sit, &user);
        for w in ranked.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn preference_never_overrides_reachability(sit in arb_situation(), m in arb_modality()) {
        // A massively preferred device in another room still loses to any
        // reachable one.
        let far = DeviceDescriptor::fixed("far", "Far", "nowhere-zone").with_input(m);
        let near = DeviceDescriptor::carried("near", "Near").with_input(InputModality::Stylus);
        let mut user = UserProfile::neutral("u");
        user.input_ranking = vec![m];
        let devices = vec![far, near];
        let best = SelectionPolicy.select_input(&devices, &sit, &user).unwrap();
        prop_assert_eq!(best.id.as_str(), "near");
    }

    #[test]
    fn tracker_committed_is_always_a_derivable_state(
        readings in proptest::collection::vec(
            prop_oneof![
                arb_zone().prop_map(|zone| SensorReading::Badge { zone }),
                proptest::sample::select(vec![Noise::Quiet, Noise::Moderate, Noise::Loud])
                    .prop_map(SensorReading::NoiseLevel),
                any::<bool>().prop_map(SensorReading::StoveActive),
                any::<bool>().prop_map(SensorReading::SofaOccupied),
                any::<bool>().prop_map(SensorReading::BedroomDark),
                any::<bool>().prop_map(SensorReading::Walking),
                any::<bool>().prop_map(SensorReading::HandsBusy),
            ],
            1..40,
        ),
        hysteresis in 0u64..5_000,
    ) {
        let mut t = SituationTracker::new("hall", hysteresis);
        let mut now = 0u64;
        for r in readings {
            now += 700;
            let _ = t.observe(now, r);
        }
        // Let everything settle; committed must equal pending.
        let _ = t.tick(now + hysteresis + 1);
        prop_assert_eq!(t.situation(), t.pending());
    }

    #[test]
    fn tracker_never_commits_before_hysteresis(hysteresis in 100u64..10_000) {
        let mut t = SituationTracker::new("hall", hysteresis);
        let changed = t.observe(0, SensorReading::Walking(true));
        prop_assert!(changed.is_none());
        prop_assert!(t.tick(hysteresis - 1).is_none());
        prop_assert!(t.tick(hysteresis).is_some());
    }
}
