//! The UniInt server: exports a window as universal-interaction bitmap
//! updates and injects universal input events into it.
//!
//! The paper stresses that *existing thin-client servers are used
//! unmodified*; accordingly this server knows nothing about interaction
//! devices. It speaks only the universal protocol: damage-driven
//! framebuffer updates out, keyboard/pointer events in.

use std::collections::VecDeque;
use uniint_protocol::encoding::{choose_encoding, encode_rect, Encoding};
use uniint_protocol::message::{ClientMessage, RectUpdate, ServerMessage, PROTOCOL_VERSION};
use uniint_raster::geom::Rect;
use uniint_raster::pixel::PixelFormat;
use uniint_raster::region::Region;
use uniint_telemetry::histogram::Histogram;
use uniint_telemetry::registry::{Counter, Registry};
use uniint_wsys::ui::Ui;

/// How many sent updates the server retains for incremental resume. A
/// `Resume` pointing further back than this falls back to full damage.
pub const RESUME_RETENTION: usize = 64;

/// Per-client protocol state.
#[derive(Debug)]
struct ClientState {
    format: PixelFormat,
    encodings: Vec<Encoding>,
    /// Pending update request: `(incremental, rect)`.
    pending: Option<(bool, Rect)>,
    /// Damage accumulated since the client's last update.
    damage: Region,
    /// Client messages received this session (`Resume` not counted), so
    /// a reattaching client learns how much of its send stream was lost.
    msgs_received: u64,
    /// Sequence number the next update will carry (from 1).
    next_update_seq: u64,
    /// Regions of the last [`RESUME_RETENTION`] updates, by sequence —
    /// the replay log incremental resume re-damages from.
    sent_log: VecDeque<(u64, Region)>,
}

/// Statistics the benchmarks read from a server.
///
/// A snapshot view reconstructed from registry counters by
/// [`UniIntServer::stats`]; the `Copy` by-value API is unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Update messages sent.
    pub updates_sent: u64,
    /// Rectangles sent across all updates.
    pub rects_sent: u64,
    /// Total payload bytes across all rectangles.
    pub payload_bytes: u64,
    /// Input events injected into the window system.
    pub inputs_injected: u64,
    /// Device-health notifications received from the proxy's supervisor.
    pub health_reports: u64,
}

/// Pre-registered metric handles for one server; updates on the
/// damage/encode hot path are lock-free atomics.
#[derive(Debug)]
struct ServerMetrics {
    registry: Registry,
    updates_sent: Counter,
    rects_sent: Counter,
    payload_bytes: Counter,
    inputs_injected: Counter,
    health_reports: Counter,
    update_payload_bytes: Histogram,
}

impl ServerMetrics {
    fn new(registry: Registry) -> ServerMetrics {
        ServerMetrics {
            updates_sent: registry.counter("server.updates_sent"),
            rects_sent: registry.counter("server.rects_sent"),
            payload_bytes: registry.counter("server.payload_bytes"),
            inputs_injected: registry.counter("server.inputs_injected"),
            health_reports: registry.counter("server.health_reports"),
            update_payload_bytes: registry.histogram("server.update_payload_bytes"),
            registry,
        }
    }
}

/// The UniInt server endpoint for one window.
///
/// The server does not own the [`Ui`] — the appliance application does —
/// so every call that touches the window takes `&mut Ui`.
#[derive(Debug)]
pub struct UniIntServer {
    client: Option<ClientState>,
    size: (u16, u16),
    metrics: ServerMetrics,
}

impl UniIntServer {
    /// Creates a server for a window of the given size, with its own
    /// private registry.
    pub fn new(ui: &Ui) -> UniIntServer {
        UniIntServer::with_telemetry(ui, Registry::new())
    }

    /// Creates a server recording into a shared session `registry`.
    pub fn with_telemetry(ui: &Ui, registry: Registry) -> UniIntServer {
        UniIntServer {
            client: None,
            size: (ui.size().w as u16, ui.size().h as u16),
            metrics: ServerMetrics::new(registry),
        }
    }

    /// The registry this server records into.
    pub fn telemetry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Whether a client session is established.
    pub fn has_client(&self) -> bool {
        self.client.is_some()
    }

    /// Accumulated statistics, reconstructed from the registry counters.
    pub fn stats(&self) -> ServerStats {
        let m = &self.metrics;
        ServerStats {
            updates_sent: m.updates_sent.get(),
            rects_sent: m.rects_sent.get(),
            payload_bytes: m.payload_bytes.get(),
            inputs_injected: m.inputs_injected.get(),
            health_reports: m.health_reports.get(),
        }
    }

    /// Handles one client message, possibly producing replies.
    pub fn handle_message(&mut self, ui: &mut Ui, msg: ClientMessage) -> Vec<ServerMessage> {
        // Count every client message except Resume, which sits outside
        // the session's message stream (it describes the stream itself).
        if !matches!(msg, ClientMessage::Resume { .. }) {
            if let Some(c) = &mut self.client {
                c.msgs_received += 1;
            }
        }
        match msg {
            ClientMessage::Hello { version, name: _ } => {
                let version = version.min(PROTOCOL_VERSION);
                self.client = Some(ClientState {
                    format: PixelFormat::Rgb888,
                    encodings: vec![Encoding::Raw],
                    pending: None,
                    // A new session owes the client the whole screen.
                    damage: Region::from_rect(ui.framebuffer().bounds()),
                    msgs_received: 1,
                    next_update_seq: 1,
                    sent_log: VecDeque::new(),
                });
                vec![ServerMessage::Init {
                    version,
                    width: self.size.0,
                    height: self.size.1,
                    format: PixelFormat::Rgb888,
                    name: ui.title().to_owned(),
                }]
            }
            ClientMessage::SetPixelFormat(format) => {
                if let Some(c) = &mut self.client {
                    c.format = format;
                    // Everything must be resent in the new format.
                    c.damage = Region::from_rect(ui.framebuffer().bounds());
                }
                Vec::new()
            }
            ClientMessage::SetEncodings(encs) => {
                if let Some(c) = &mut self.client {
                    c.encodings = if encs.is_empty() {
                        vec![Encoding::Raw]
                    } else {
                        encs
                    };
                }
                Vec::new()
            }
            ClientMessage::UpdateRequest { incremental, rect } => {
                if let Some(c) = &mut self.client {
                    if !incremental {
                        c.damage.add(
                            rect.intersect(ui.framebuffer().bounds())
                                .unwrap_or(Rect::EMPTY),
                        );
                    }
                    c.pending = Some((incremental, rect));
                }
                self.pump(ui)
            }
            ClientMessage::Input(ev) => {
                self.metrics.inputs_injected.inc();
                ui.dispatch(ev);
                // Input often causes repaints; let the caller pump.
                Vec::new()
            }
            ClientMessage::CutText(_) => Vec::new(),
            ClientMessage::DeviceHealth { .. } => {
                // Telemetry only: the appliance side may surface it to the
                // user, but the session state does not depend on it.
                self.metrics.health_reports.inc();
                Vec::new()
            }
            ClientMessage::Resume { last_update_seq } => {
                let Some(c) = &mut self.client else {
                    // No session to resume (e.g. the server restarted);
                    // the client must fall back to a fresh Hello.
                    return vec![ServerMessage::ResumeAck {
                        client_msgs_received: 0,
                        replayed: false,
                    }];
                };
                let newest = c.next_update_seq - 1;
                let mut replayed = true;
                if last_update_seq < newest {
                    // The log must cover every update past the client's
                    // last applied one; otherwise retention was exceeded
                    // and the whole screen is owed again.
                    let covered = c
                        .sent_log
                        .front()
                        .is_some_and(|(s, _)| *s <= last_update_seq + 1);
                    if covered {
                        let ClientState {
                            sent_log, damage, ..
                        } = c;
                        for (s, region) in sent_log.iter() {
                            if *s > last_update_seq {
                                damage.union_with(region);
                            }
                        }
                    } else {
                        replayed = false;
                        c.damage = Region::from_rect(ui.framebuffer().bounds());
                    }
                }
                // Answer the re-damaged area on the next pump even if the
                // client's own UpdateRequest was among the lost messages.
                c.pending = Some((true, ui.framebuffer().bounds()));
                let msgs_received = c.msgs_received;
                vec![
                    // Geometry may have changed while the client was gone;
                    // a same-size Resize is a no-op client-side.
                    ServerMessage::Resize {
                        width: self.size.0,
                        height: self.size.1,
                    },
                    ServerMessage::ResumeAck {
                        client_msgs_received: msgs_received,
                        replayed,
                    },
                ]
            }
        }
    }

    /// Renders the window, folds new damage into the client's account and
    /// answers any pending update request. Also surfaces the bell.
    pub fn pump(&mut self, ui: &mut Ui) -> Vec<ServerMessage> {
        ui.render();
        let mut out = Vec::new();
        if ui.take_bell() {
            out.push(ServerMessage::Bell);
        }
        let new_damage = ui.framebuffer_mut().take_damage();
        self.add_damage(&new_damage);
        out.extend(self.answer_pending(ui));
        out
    }

    /// Folds externally drained damage into this client's account. Used
    /// by [`crate::multi::MultiServer`], which drains the framebuffer
    /// once and distributes the region to every connected client.
    pub fn add_damage(&mut self, damage: &Region) {
        if let Some(c) = &mut self.client {
            c.damage.union_with(damage);
        }
    }

    /// Answers the client's pending update request from the already
    /// rendered framebuffer, without draining new damage.
    pub fn answer_pending(&mut self, ui: &Ui) -> Vec<ServerMessage> {
        let mut out = Vec::new();
        let Some(c) = &mut self.client else {
            return out;
        };
        let Some((_incremental, rect)) = c.pending else {
            return out;
        };
        // Only the area the client asked about.
        let mut to_send = c.damage.clone();
        to_send.intersect_rect(rect);
        if to_send.is_empty() {
            return out;
        }
        for r in to_send.rects() {
            c.damage.subtract(*r);
        }
        c.pending = None;
        let fb = ui.framebuffer();
        let mut rects = Vec::with_capacity(to_send.rect_count());
        let mut update_bytes = 0u64;
        for &r in to_send.rects() {
            let (clipped, pixels) = fb.read_rect(r);
            if clipped.is_empty() {
                continue;
            }
            let encoding = choose_encoding(&pixels, clipped, &c.encodings);
            let payload = encode_rect(&pixels, clipped, encoding, c.format);
            self.metrics.rects_sent.inc();
            self.metrics.payload_bytes.add(payload.len() as u64);
            update_bytes += payload.len() as u64;
            rects.push(RectUpdate {
                rect: clipped,
                encoding,
                payload,
            });
        }
        if !rects.is_empty() {
            self.metrics.updates_sent.inc();
            self.metrics.update_payload_bytes.record(update_bytes);
            let seq = c.next_update_seq;
            c.next_update_seq += 1;
            c.sent_log.push_back((seq, to_send));
            if c.sent_log.len() > RESUME_RETENTION {
                c.sent_log.pop_front();
            }
            out.push(ServerMessage::Update {
                seq,
                format: c.format,
                rects,
            });
        }
        out
    }

    /// Notifies the client that the window was recomposed to a new size.
    pub fn notify_resize(&mut self, ui: &mut Ui) -> Vec<ServerMessage> {
        self.size = (ui.size().w as u16, ui.size().h as u16);
        if let Some(c) = &mut self.client {
            c.damage = Region::from_rect(ui.framebuffer().bounds());
            // Pre-resize updates describe a dead geometry: never replay
            // them. A resume across a resize degrades to full damage.
            c.sent_log.clear();
            vec![ServerMessage::Resize {
                width: self.size.0,
                height: self.size.1,
            }]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_protocol::input::InputEvent;
    use uniint_wsys::prelude::*;

    fn session() -> (Ui, UniIntServer) {
        let mut ui = Ui::new(160, 120, Theme::classic(), "test-panel");
        ui.add(Button::new("Power"), Rect::new(10, 10, 60, 20));
        let server = UniIntServer::new(&ui);
        (ui, server)
    }

    fn connect(ui: &mut Ui, server: &mut UniIntServer) {
        let replies = server.handle_message(
            ui,
            ClientMessage::Hello {
                version: 1,
                name: "t".into(),
            },
        );
        assert!(matches!(
            replies[0],
            ServerMessage::Init {
                width: 160,
                height: 120,
                ..
            }
        ));
        server.handle_message(ui, ClientMessage::SetEncodings(Encoding::ALL.to_vec()));
    }

    #[test]
    fn hello_yields_init() {
        let (mut ui, mut server) = session();
        assert!(!server.has_client());
        connect(&mut ui, &mut server);
        assert!(server.has_client());
    }

    #[test]
    fn full_update_covers_screen() {
        let (mut ui, mut server) = session();
        connect(&mut ui, &mut server);
        let replies = server.handle_message(
            &mut ui,
            ClientMessage::UpdateRequest {
                incremental: false,
                rect: Rect::new(0, 0, 160, 120),
            },
        );
        let ServerMessage::Update { rects, .. } = &replies[0] else {
            panic!("expected update, got {replies:?}");
        };
        let covered: u64 = rects.iter().map(|r| r.rect.area()).sum();
        assert_eq!(covered, 160 * 120);
    }

    #[test]
    fn incremental_update_waits_for_damage() {
        let (mut ui, mut server) = session();
        connect(&mut ui, &mut server);
        // Drain the initial full screen.
        server.handle_message(
            &mut ui,
            ClientMessage::UpdateRequest {
                incremental: false,
                rect: Rect::new(0, 0, 160, 120),
            },
        );
        // Incremental request with no damage: no reply yet.
        let replies = server.handle_message(
            &mut ui,
            ClientMessage::UpdateRequest {
                incremental: true,
                rect: Rect::new(0, 0, 160, 120),
            },
        );
        assert!(replies.is_empty());
        // An input event presses the button, causing damage.
        server.handle_message(
            &mut ui,
            ClientMessage::Input(InputEvent::Pointer {
                x: 20,
                y: 20,
                buttons: uniint_protocol::input::ButtonMask::LEFT,
            }),
        );
        let replies = server.pump(&mut ui);
        let ServerMessage::Update { rects, .. } = &replies[0] else {
            panic!("expected update after damage");
        };
        assert!(!rects.is_empty());
        // Damaged area is just the button, not the whole screen.
        let covered: u64 = rects.iter().map(|r| r.rect.area()).sum();
        assert!(
            covered < 160 * 120 / 2,
            "incremental should be small: {covered}"
        );
    }

    #[test]
    fn update_respects_requested_rect() {
        let (mut ui, mut server) = session();
        connect(&mut ui, &mut server);
        let replies = server.handle_message(
            &mut ui,
            ClientMessage::UpdateRequest {
                incremental: false,
                rect: Rect::new(0, 0, 50, 50),
            },
        );
        let ServerMessage::Update { rects, .. } = &replies[0] else {
            panic!()
        };
        for r in rects {
            assert!(Rect::new(0, 0, 50, 50).contains_rect(r.rect));
        }
    }

    #[test]
    fn set_pixel_format_resends_everything() {
        let (mut ui, mut server) = session();
        connect(&mut ui, &mut server);
        server.handle_message(
            &mut ui,
            ClientMessage::UpdateRequest {
                incremental: false,
                rect: Rect::new(0, 0, 160, 120),
            },
        );
        server.handle_message(&mut ui, ClientMessage::SetPixelFormat(PixelFormat::Mono1));
        let replies = server.handle_message(
            &mut ui,
            ClientMessage::UpdateRequest {
                incremental: true,
                rect: Rect::new(0, 0, 160, 120),
            },
        );
        let ServerMessage::Update { format, rects, .. } = &replies[0] else {
            panic!("format change must resend");
        };
        assert_eq!(*format, PixelFormat::Mono1);
        let covered: u64 = rects.iter().map(|r| r.rect.area()).sum();
        assert_eq!(covered, 160 * 120);
    }

    #[test]
    fn input_reaches_widgets() {
        let (mut ui, mut server) = session();
        connect(&mut ui, &mut server);
        for ev in InputEvent::click(20, 20) {
            server.handle_message(&mut ui, ClientMessage::Input(ev));
        }
        let actions = ui.take_actions();
        assert_eq!(actions.len(), 1);
        assert_eq!(server.stats().inputs_injected, 2);
    }

    #[test]
    fn bell_is_forwarded() {
        let (mut ui, mut server) = session();
        connect(&mut ui, &mut server);
        ui.ring_bell();
        let replies = server.pump(&mut ui);
        assert!(replies.contains(&ServerMessage::Bell));
    }

    #[test]
    fn resize_notification() {
        let (mut ui, mut server) = session();
        connect(&mut ui, &mut server);
        ui.resize(320, 240);
        let replies = server.notify_resize(&mut ui);
        assert_eq!(
            replies,
            vec![ServerMessage::Resize {
                width: 320,
                height: 240
            }]
        );
    }

    #[test]
    fn stats_accumulate() {
        let (mut ui, mut server) = session();
        connect(&mut ui, &mut server);
        server.handle_message(
            &mut ui,
            ClientMessage::UpdateRequest {
                incremental: false,
                rect: Rect::new(0, 0, 160, 120),
            },
        );
        let s = server.stats();
        assert_eq!(s.updates_sent, 1);
        assert!(s.rects_sent >= 1);
        assert!(s.payload_bytes > 0);
    }

    #[test]
    fn no_client_pump_is_quiet() {
        let (mut ui, mut server) = session();
        assert!(server.pump(&mut ui).is_empty());
    }
}
