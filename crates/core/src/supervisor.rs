//! Device supervision: plug-in fault isolation, health tracking and
//! automatic failover.
//!
//! The paper's proxy hosts plug-in modules *uploaded by the interaction
//! devices themselves* — which only works in practice if the proxy
//! survives misbehaving plug-ins and silently-dead devices. This module
//! is the device-boundary dual of `uniint_netsim::fault` (which hardens
//! the *link*): every supervised plug-in call runs inside a fault
//! isolating shim, and a per-device health state machine drives
//! quarantine, probation and failover.
//!
//! # Health state machine
//!
//! ```text
//!             clean streak                consecutive faults
//!   Healthy ◄──────────────── Degraded ◄──────────────────────┐
//!      │                         │  ▲                         │
//!      │ fault / missed          │  │ probation expires       │ faults
//!      │ heartbeat               │  │ (seeded backoff)        │ keep
//!      ▼                         ▼  │                         │ coming
//!   Degraded ────────────► Quarantined ────────────────────► Dead
//!         consecutive faults          quarantined too often,
//!         reach the threshold         or heartbeats stop
//! ```
//!
//! - **Healthy** — calls flow through the shim unimpeded.
//! - **Degraded** — recent faults or a missed heartbeat; the device is
//!   still selectable but one more burst away from quarantine.
//! - **Quarantined** — excluded from selection; readmitted on probation
//!   after an escalating, seeded backoff (mirroring the session-level
//!   reconnect backoff from `crate::session`).
//! - **Dead** — terminal: too many quarantines, or heartbeats stopped
//!   long enough to declare the hardware gone.
//!
//! When the *active* device is quarantined or dies, [`Supervisor::tick`]
//! drives [`Coordinator::reselect`] to fail over to the best remaining
//! device without touching session state — the server never notices, so
//! the PR 1 resume machinery keeps working underneath. If no output
//! device remains at all, a built-in [`FallbackTerminal`] keeps the
//! interaction alive on an 80×24 text screen.
//!
//! # Fault isolation
//!
//! [`Supervisor::supervise`] wraps a device's plug-in factories so every
//! produced plug-in is shimmed:
//!
//! - `catch_unwind` contains panics (the panic hook is silenced around
//!   supervised calls so injected panics do not spam test output);
//! - a per-call **step budget** bounds runaway work: cooperative plug-in
//!   loops call [`consume_fuel`] and abort when it returns `false`, and
//!   a call that drains its whole budget is recorded as a timeout;
//! - returned values are validated: out-of-range pointer events and
//!   oversized frames count as garbage faults and are dropped/replaced.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex, Once};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniint_protocol::input::InputEvent;
use uniint_protocol::message::{ClientMessage, DeviceHealthState};
use uniint_raster::color::Color;
use uniint_raster::dither::{dither_to_format, DitherMode};
use uniint_raster::framebuffer::Framebuffer;
use uniint_raster::geom::Size;
use uniint_raster::pixel::PixelFormat;
use uniint_raster::scale::{scale_to_fit, ScaleFilter};
use uniint_telemetry::registry::{Counter, Gauge, Registry};

use crate::coordinator::Coordinator;
use crate::coordinator::InteractionDevice;
use crate::plugin::{DeviceFrame, InputContext, InputPlugin, OutputCaps, OutputPlugin};
use crate::proxy::UniIntProxy;

// ---------------------------------------------------------------------------
// Step budget ("fuel") for supervised calls.
// ---------------------------------------------------------------------------

thread_local! {
    /// Remaining step budget of the supervised call running on this
    /// thread; `None` outside supervised calls.
    static FUEL: Cell<Option<u64>> = const { Cell::new(None) };
    /// Silences the panic hook while a supervised call is in flight.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Burns `units` from the supervised call's step budget.
///
/// Long-running plug-in work should call this periodically and abort
/// when it returns `false`. Outside a supervised call there is no budget
/// and the function returns `false` immediately — unsupervised code must
/// not spin on it.
pub fn consume_fuel(units: u64) -> bool {
    FUEL.with(|f| match f.get() {
        None => false,
        Some(rem) if rem > 0 && rem >= units => {
            f.set(Some(rem - units));
            true
        }
        Some(_) => {
            f.set(Some(0));
            false
        }
    })
}

fn arm_fuel(budget: u64) {
    FUEL.with(|f| f.set(Some(budget)));
}

/// Clears the budget; returns true when the call drained it completely.
fn disarm_fuel() -> bool {
    FUEL.with(|f| {
        let exhausted = f.get() == Some(0);
        f.set(None);
        exhausted
    })
}

/// Installs (once per process) a panic hook that stays silent while a
/// supervised call is unwinding — contained plug-in panics are expected
/// events, not diagnostics.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

// ---------------------------------------------------------------------------
// Health model.
// ---------------------------------------------------------------------------

/// Per-device health as tracked by the [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Operating normally.
    #[default]
    Healthy,
    /// Recent faults or a missed heartbeat; still selectable.
    Degraded,
    /// Excluded from selection until probation expires.
    Quarantined,
    /// Gone for good (too many quarantines or heartbeats stopped).
    Dead,
}

impl HealthState {
    /// The wire representation for health notifications.
    pub fn wire(self) -> DeviceHealthState {
        match self {
            HealthState::Healthy => DeviceHealthState::Healthy,
            HealthState::Degraded => DeviceHealthState::Degraded,
            HealthState::Quarantined => DeviceHealthState::Quarantined,
            HealthState::Dead => DeviceHealthState::Dead,
        }
    }
}

impl core::fmt::Display for HealthState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Dead => "dead",
        };
        f.write_str(s)
    }
}

/// What a supervised call did, as recorded by the shims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallOutcome {
    /// Completed and returned sane data.
    Clean,
    /// Unwound with a panic.
    Panic,
    /// Drained its whole step budget (stall / runaway loop).
    Timeout,
    /// Returned out-of-range events or an oversized frame.
    Garbage,
}

/// Why a health transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionCause {
    /// A plug-in call panicked.
    Panic,
    /// A plug-in call exhausted its step budget.
    Timeout,
    /// A plug-in call returned invalid data.
    Garbage,
    /// Heartbeats stopped arriving.
    HeartbeatSilence,
    /// Probation backoff expired; the device gets another chance.
    Probation,
    /// A streak of clean calls restored full health.
    CleanStreak,
}

impl core::fmt::Display for TransitionCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            TransitionCause::Panic => "panic",
            TransitionCause::Timeout => "timeout",
            TransitionCause::Garbage => "garbage",
            TransitionCause::HeartbeatSilence => "heartbeat silence",
            TransitionCause::Probation => "probation",
            TransitionCause::CleanStreak => "clean streak",
        };
        f.write_str(s)
    }
}

/// One health transition observed during a [`Supervisor::tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthEvent {
    /// The device whose health changed.
    pub device: String,
    /// State before the transition.
    pub from: HealthState,
    /// State after the transition.
    pub to: HealthState,
    /// What drove the transition.
    pub cause: TransitionCause,
}

/// Thresholds and budgets of the supervision policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Step budget per supervised plug-in call.
    pub call_fuel: u64,
    /// Consecutive faults before `Healthy` drops to `Degraded`.
    pub degrade_after: u32,
    /// Consecutive faults before the device is quarantined.
    pub quarantine_after: u32,
    /// Quarantines before the device is declared `Dead`.
    pub max_quarantines: u32,
    /// First probation backoff, microseconds (doubles per quarantine).
    pub probation_base_us: u64,
    /// Probation backoff ceiling, microseconds.
    pub probation_cap_us: u64,
    /// Clean calls on probation before the device is `Healthy` again.
    pub probation_successes: u32,
    /// Heartbeat silence counting as one miss, microseconds.
    pub heartbeat_timeout_us: u64,
    /// Missed heartbeats before the device is declared `Dead`.
    pub heartbeat_dead_misses: u32,
    /// Attach the built-in [`FallbackTerminal`] when a failover leaves
    /// the proxy with no output plug-in at all.
    pub fallback_terminal: bool,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            call_fuel: 1_000_000,
            degrade_after: 1,
            quarantine_after: 3,
            max_quarantines: 3,
            probation_base_us: 200_000,
            probation_cap_us: 5_000_000,
            probation_successes: 8,
            heartbeat_timeout_us: 500_000,
            heartbeat_dead_misses: 3,
            fallback_terminal: true,
        }
    }
}

/// Counters accumulated by the supervisor.
///
/// A snapshot view reconstructed from registry counters by
/// [`Supervisor::stats`]; the `Copy` by-value API is unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Plug-in calls that panicked (contained by the shim).
    pub plugin_panics: u64,
    /// Plug-in calls that exhausted their step budget.
    pub plugin_timeouts: u64,
    /// Plug-in calls that returned out-of-range events or frames.
    pub garbage_events: u64,
    /// Heartbeat misses observed.
    pub heartbeat_misses: u64,
    /// Devices placed in quarantine (counted per transition).
    pub quarantines: u64,
    /// Active input/output roles failed over to another device.
    pub failovers: u64,
    /// Quarantined devices readmitted on probation.
    pub readmissions: u64,
    /// Devices declared dead.
    pub deaths: u64,
    /// Times the built-in fallback terminal was attached.
    pub fallback_activations: u64,
}

/// Pre-registered metric handles for one supervisor.
#[derive(Debug)]
struct SupervisorMetrics {
    registry: Registry,
    plugin_panics: Counter,
    plugin_timeouts: Counter,
    garbage_events: Counter,
    heartbeat_misses: Counter,
    quarantines: Counter,
    failovers: Counter,
    readmissions: Counter,
    deaths: Counter,
    fallback_activations: Counter,
    quarantined_now: Gauge,
    dead_now: Gauge,
}

impl SupervisorMetrics {
    fn new(registry: Registry) -> SupervisorMetrics {
        SupervisorMetrics {
            plugin_panics: registry.counter("supervisor.plugin_panics"),
            plugin_timeouts: registry.counter("supervisor.plugin_timeouts"),
            garbage_events: registry.counter("supervisor.garbage_events"),
            heartbeat_misses: registry.counter("supervisor.heartbeat_misses"),
            quarantines: registry.counter("supervisor.quarantines"),
            failovers: registry.counter("supervisor.failovers"),
            readmissions: registry.counter("supervisor.readmissions"),
            deaths: registry.counter("supervisor.deaths"),
            fallback_activations: registry.counter("supervisor.fallback_activations"),
            quarantined_now: registry.gauge("supervisor.devices_quarantined"),
            dead_now: registry.gauge("supervisor.devices_dead"),
            registry,
        }
    }
}

#[derive(Debug, Default)]
struct DeviceRecord {
    state: HealthState,
    consecutive_faults: u32,
    clean_streak: u32,
    quarantine_count: u32,
    probation_until_us: u64,
    on_probation: bool,
    last_heartbeat_us: Option<u64>,
    hb_misses_seen: u32,
}

type SharedLedger = Arc<Mutex<Vec<(String, CallOutcome)>>>;

fn record_outcome(ledger: &SharedLedger, id: &str, outcome: CallOutcome) {
    if let Ok(mut l) = ledger.lock() {
        l.push((id.to_owned(), outcome));
    }
}

/// What one [`Supervisor::tick`] did.
#[derive(Debug, Default)]
pub struct SupervisorReport {
    /// Health transitions applied this tick, in order.
    pub events: Vec<HealthEvent>,
    /// Protocol messages to send: health notifications plus any
    /// renegotiation a failover produced.
    pub messages: Vec<ClientMessage>,
    /// New active input device id, when a failover switched it.
    pub input_switched_to: Option<String>,
    /// New active output device id, when a failover switched it.
    pub output_switched_to: Option<String>,
    /// The built-in fallback terminal was attached this tick.
    pub fallback_attached: bool,
}

impl SupervisorReport {
    /// Whether this tick changed anything observable.
    pub fn changed(&self) -> bool {
        !self.events.is_empty()
            || self.input_switched_to.is_some()
            || self.output_switched_to.is_some()
            || self.fallback_attached
    }
}

// ---------------------------------------------------------------------------
// The fault-isolating shims.
// ---------------------------------------------------------------------------

/// Runs one plug-in call under panic containment and a step budget.
/// `Err` means the call failed (already recorded); `Ok` still needs
/// result validation by the caller.
fn guarded_call<T>(
    id: &str,
    ledger: &SharedLedger,
    fuel: u64,
    call: impl FnOnce() -> T,
) -> Result<T, ()> {
    install_quiet_hook();
    arm_fuel(fuel);
    QUIET_PANICS.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(call));
    QUIET_PANICS.with(|q| q.set(false));
    let exhausted = disarm_fuel();
    match result {
        Err(_) => {
            record_outcome(ledger, id, CallOutcome::Panic);
            Err(())
        }
        Ok(_) if exhausted => {
            // The call returned only because its budget ran dry; its
            // result is not trustworthy.
            record_outcome(ledger, id, CallOutcome::Timeout);
            Err(())
        }
        Ok(v) => Ok(v),
    }
}

#[derive(Debug)]
struct IsolatedInput {
    device: String,
    kind: &'static str,
    fuel: u64,
    ledger: SharedLedger,
    inner: Box<dyn InputPlugin>,
}

impl InputPlugin for IsolatedInput {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn translate(
        &mut self,
        ev: &crate::plugin::DeviceEvent,
        ctx: &InputContext,
    ) -> Vec<InputEvent> {
        let inner = &mut self.inner;
        let Ok(mut events) = guarded_call(&self.device, &self.ledger, self.fuel, || {
            inner.translate(ev, ctx)
        }) else {
            return Vec::new();
        };
        // Validate: pointer events must land inside the server space the
        // plug-in was handed. Out-of-range events are garbage — dropped,
        // with the fault recorded; valid events still pass through.
        let (max_x, max_y) = (ctx.server_size.w.max(1), ctx.server_size.h.max(1));
        let before = events.len();
        events.retain(|e| match e {
            InputEvent::Pointer { x, y, .. } => (*x as u32) < max_x && (*y as u32) < max_y,
            InputEvent::Key { .. } => true,
        });
        let outcome = if events.len() < before {
            CallOutcome::Garbage
        } else {
            CallOutcome::Clean
        };
        record_outcome(&self.ledger, &self.device, outcome);
        events
    }
}

#[derive(Debug)]
struct IsolatedOutput {
    device: String,
    kind: &'static str,
    caps: OutputCaps,
    fuel: u64,
    ledger: SharedLedger,
    inner: Box<dyn OutputPlugin>,
    last_good: Option<DeviceFrame>,
}

impl IsolatedOutput {
    /// A frame that is always safe to hand the device: the last good one,
    /// or a black frame at device resolution.
    fn safe_frame(&self) -> DeviceFrame {
        if let Some(f) = &self.last_good {
            return f.clone();
        }
        let size = Size::new(self.caps.size.w.max(1), self.caps.size.h.max(1));
        let fb = Framebuffer::new(size.w, size.h, Color::BLACK);
        let wire = self.caps.format.buffer_bytes(size.w, size.h);
        DeviceFrame::new(fb, self.caps.format, wire)
    }
}

impl OutputPlugin for IsolatedOutput {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn caps(&self) -> OutputCaps {
        self.caps
    }

    fn adapt(&mut self, server_frame: &Framebuffer) -> DeviceFrame {
        let inner = &mut self.inner;
        let Ok(frame) = guarded_call(&self.device, &self.ledger, self.fuel, || {
            inner.adapt(server_frame)
        }) else {
            return self.safe_frame();
        };
        // Validate: the frame must fit the declared device screen.
        let s = frame.frame.size();
        if s.is_empty() || s.w > self.caps.size.w || s.h > self.caps.size.h {
            record_outcome(&self.ledger, &self.device, CallOutcome::Garbage);
            return self.safe_frame();
        }
        record_outcome(&self.ledger, &self.device, CallOutcome::Clean);
        self.last_good = Some(frame.clone());
        frame
    }
}

// ---------------------------------------------------------------------------
// The built-in fallback output device.
// ---------------------------------------------------------------------------

/// Columns of the built-in fallback terminal.
pub const FALLBACK_COLS: u32 = 80;
/// Rows of the built-in fallback terminal.
pub const FALLBACK_ROWS: u32 = 24;

/// The output device of last resort: an 80×24 grayscale text terminal
/// the proxy itself provides, attached when a failover leaves no real
/// output device. The paper's interaction must *continue*, however
/// degraded, when every screen in the room has died.
#[derive(Debug, Default)]
pub struct FallbackTerminal;

impl OutputPlugin for FallbackTerminal {
    fn kind(&self) -> &'static str {
        "fallback-terminal"
    }

    fn caps(&self) -> OutputCaps {
        OutputCaps {
            size: Size::new(FALLBACK_COLS, FALLBACK_ROWS),
            format: PixelFormat::Gray8,
            dither: DitherMode::None,
            scale: ScaleFilter::Nearest,
        }
    }

    fn adapt(&mut self, server_frame: &Framebuffer) -> DeviceFrame {
        let caps = self.caps();
        let scaled = scale_to_fit(server_frame, caps.size, caps.scale);
        let frame = dither_to_format(&scaled, caps.format, caps.dither);
        let wire = caps.format.buffer_bytes(frame.width(), frame.height());
        DeviceFrame::new(frame, caps.format, wire)
    }
}

// ---------------------------------------------------------------------------
// The supervisor.
// ---------------------------------------------------------------------------

/// Tracks per-device health from shim fault records and heartbeats, and
/// fails the session over when the active device goes bad. See the
/// module docs for the state machine.
pub struct Supervisor {
    cfg: SupervisorConfig,
    ledger: SharedLedger,
    records: BTreeMap<String, DeviceRecord>,
    metrics: SupervisorMetrics,
    /// Seeded jitter for probation backoff, so recovery timelines are
    /// exactly reproducible (mirrors the session backoff RNG).
    rng: StdRng,
}

impl core::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Supervisor")
            .field("devices", &self.records.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Supervisor {
    /// Creates a supervisor with the default policy and a private
    /// registry.
    pub fn new(seed: u64) -> Supervisor {
        Supervisor::with_config(seed, SupervisorConfig::default())
    }

    /// Creates a supervisor with an explicit policy.
    pub fn with_config(seed: u64, cfg: SupervisorConfig) -> Supervisor {
        Supervisor::with_telemetry(seed, cfg, Registry::new())
    }

    /// Creates a supervisor recording into a shared session `registry`.
    pub fn with_telemetry(seed: u64, cfg: SupervisorConfig, registry: Registry) -> Supervisor {
        install_quiet_hook();
        Supervisor {
            cfg,
            ledger: Arc::new(Mutex::new(Vec::new())),
            records: BTreeMap::new(),
            metrics: SupervisorMetrics::new(registry),
            rng: StdRng::seed_from_u64(seed ^ 0x5afe_0de7_ec70_ca11),
        }
    }

    /// The registry this supervisor records into.
    pub fn telemetry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// The active policy.
    pub fn config(&self) -> SupervisorConfig {
        self.cfg
    }

    /// Accumulated counters, reconstructed from the registry.
    pub fn stats(&self) -> SupervisorStats {
        let m = &self.metrics;
        SupervisorStats {
            plugin_panics: m.plugin_panics.get(),
            plugin_timeouts: m.plugin_timeouts.get(),
            garbage_events: m.garbage_events.get(),
            heartbeat_misses: m.heartbeat_misses.get(),
            quarantines: m.quarantines.get(),
            failovers: m.failovers.get(),
            readmissions: m.readmissions.get(),
            deaths: m.deaths.get(),
            fallback_activations: m.fallback_activations.get(),
        }
    }

    /// Current health of a device, when it is tracked.
    pub fn health(&self, id: &str) -> Option<HealthState> {
        self.records.get(id).map(|r| r.state)
    }

    /// Whether a device may be selected (unknown devices are usable).
    pub fn is_usable(&self, id: &str) -> bool {
        !matches!(
            self.health(id),
            Some(HealthState::Quarantined) | Some(HealthState::Dead)
        )
    }

    /// Wraps a device registration so every plug-in it uploads runs
    /// inside the fault-isolating shim, and starts tracking its health.
    pub fn supervise(&mut self, device: InteractionDevice) -> InteractionDevice {
        let id = device.descriptor().id.clone();
        self.records.entry(id.clone()).or_default();
        let fuel = self.cfg.call_fuel;
        let (in_id, in_ledger) = (id.clone(), self.ledger.clone());
        let device = device.map_input_factory(move |f| {
            let (id, ledger) = (in_id.clone(), in_ledger.clone());
            Box::new(move || isolate_input(&id, &ledger, fuel, f()))
        });
        let (out_id, out_ledger) = (id, self.ledger.clone());
        device.map_output_factory(move |f| {
            let (id, ledger) = (out_id.clone(), out_ledger.clone());
            Box::new(move || isolate_output(&id, &ledger, fuel, f()))
        })
    }

    /// Shims a bare input plug-in under `id` (for sessions that attach
    /// plug-ins directly, without a coordinator).
    pub fn wrap_input(&mut self, id: &str, plugin: Box<dyn InputPlugin>) -> Box<dyn InputPlugin> {
        self.records.entry(id.to_owned()).or_default();
        isolate_input(id, &self.ledger, self.cfg.call_fuel, plugin)
    }

    /// Shims a bare output plug-in under `id`.
    pub fn wrap_output(
        &mut self,
        id: &str,
        plugin: Box<dyn OutputPlugin>,
    ) -> Box<dyn OutputPlugin> {
        self.records.entry(id.to_owned()).or_default();
        isolate_output(id, &self.ledger, self.cfg.call_fuel, plugin)
    }

    /// Records a liveness heartbeat from `id` at virtual time `now_us`.
    /// The first heartbeat opts the device into silence tracking.
    pub fn heartbeat(&mut self, id: &str, now_us: u64) {
        let rec = self.records.entry(id.to_owned()).or_default();
        if rec.state == HealthState::Dead {
            return;
        }
        rec.last_heartbeat_us = Some(now_us);
        rec.hb_misses_seen = 0;
        // Silence was the only complaint: hearing from the device again
        // restores it (fault-driven degradation heals via clean calls).
        if rec.state == HealthState::Degraded && rec.consecutive_faults == 0 && !rec.on_probation {
            rec.state = HealthState::Healthy;
        }
    }

    /// Applies pending fault records and heartbeat deadlines, transitions
    /// device health, updates the coordinator's availability view, and
    /// fails over when the active device went bad. Call after every
    /// interaction step (the tick is cheap when nothing happened).
    pub fn tick(
        &mut self,
        now_us: u64,
        coord: &mut Coordinator,
        proxy: &mut UniIntProxy,
    ) -> SupervisorReport {
        let mut report = SupervisorReport::default();

        // 1. Drain call outcomes recorded by the shims, in call order.
        let outcomes: Vec<(String, CallOutcome)> = match self.ledger.lock() {
            Ok(mut l) => l.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for (id, outcome) in outcomes {
            self.apply_outcome(&id, outcome, now_us, &mut report.events);
        }

        // 2. Heartbeat deadlines (only devices that ever heartbeated).
        for (id, rec) in self.records.iter_mut() {
            let Some(last) = rec.last_heartbeat_us else {
                continue;
            };
            if rec.state == HealthState::Dead || self.cfg.heartbeat_timeout_us == 0 {
                continue;
            }
            let misses = (now_us.saturating_sub(last) / self.cfg.heartbeat_timeout_us) as u32;
            if misses > rec.hb_misses_seen {
                self.metrics
                    .heartbeat_misses
                    .add((misses - rec.hb_misses_seen) as u64);
                rec.hb_misses_seen = misses;
            }
            if misses >= self.cfg.heartbeat_dead_misses {
                let from = rec.state;
                rec.state = HealthState::Dead;
                self.metrics.deaths.inc();
                report.events.push(HealthEvent {
                    device: id.clone(),
                    from,
                    to: HealthState::Dead,
                    cause: TransitionCause::HeartbeatSilence,
                });
            } else if misses >= 1 && rec.state == HealthState::Healthy {
                rec.state = HealthState::Degraded;
                report.events.push(HealthEvent {
                    device: id.clone(),
                    from: HealthState::Healthy,
                    to: HealthState::Degraded,
                    cause: TransitionCause::HeartbeatSilence,
                });
            }
        }

        // 3. Probation: quarantine backoff expired → readmit degraded.
        let mut readmitted = false;
        for (id, rec) in self.records.iter_mut() {
            if rec.state == HealthState::Quarantined && now_us >= rec.probation_until_us {
                rec.state = HealthState::Degraded;
                rec.on_probation = true;
                rec.consecutive_faults = 0;
                rec.clean_streak = 0;
                self.metrics.readmissions.inc();
                readmitted = true;
                report.events.push(HealthEvent {
                    device: id.clone(),
                    from: HealthState::Quarantined,
                    to: HealthState::Degraded,
                    cause: TransitionCause::Probation,
                });
            }
        }

        // 4. Push availability into the coordinator. Re-asserted fully on
        // every tick so a re-registered device cannot sneak out of an
        // unexpired quarantine.
        for (id, rec) in &self.records {
            let usable = !matches!(rec.state, HealthState::Quarantined | HealthState::Dead);
            coord.set_available(id, usable);
        }

        // 5. Failover: the active device lost its role, or a readmission
        // may have produced a better candidate.
        let active_in = coord.active_input().map(str::to_owned);
        let active_out = coord.active_output().map(str::to_owned);
        let in_lost = active_in.as_deref().is_some_and(|id| !self.is_usable(id));
        let out_lost = active_out.as_deref().is_some_and(|id| !self.is_usable(id));
        let had_output = proxy.attached().1.is_some();
        if in_lost || out_lost || readmitted {
            let sw = coord.reselect(proxy);
            if in_lost {
                self.metrics.failovers.inc();
            }
            if out_lost {
                self.metrics.failovers.inc();
            }
            report.input_switched_to = sw.input_switched_to;
            report.output_switched_to = sw.output_switched_to;
            report.messages.extend(sw.messages);
        }

        // 6. Last resort: the session had a screen and now has none.
        if self.cfg.fallback_terminal && had_output && proxy.attached().1.is_none() {
            self.metrics.fallback_activations.inc();
            report.fallback_attached = true;
            self.metrics
                .registry
                .journal()
                .record("supervisor.fallback", "attached built-in terminal");
            report
                .messages
                .extend(proxy.attach_output(Box::new(FallbackTerminal)));
        }

        // 7. Health notifications, ahead of any renegotiation traffic.
        let notices: Vec<ClientMessage> = report
            .events
            .iter()
            .map(|e| ClientMessage::DeviceHealth {
                device: e.device.clone(),
                state: e.to.wire(),
            })
            .collect();
        report.messages.splice(0..0, notices);

        // Journal every transition and refresh the health gauges.
        for e in &report.events {
            self.metrics.registry.journal().record(
                "supervisor.transition",
                format!("{}: {} -> {} ({})", e.device, e.from, e.to, e.cause),
            );
        }
        if !report.events.is_empty() {
            let quarantined = self
                .records
                .values()
                .filter(|r| r.state == HealthState::Quarantined)
                .count();
            let dead = self
                .records
                .values()
                .filter(|r| r.state == HealthState::Dead)
                .count();
            self.metrics.quarantined_now.set(quarantined as i64);
            self.metrics.dead_now.set(dead as i64);
        }
        report
    }

    fn apply_outcome(
        &mut self,
        id: &str,
        outcome: CallOutcome,
        now_us: u64,
        events: &mut Vec<HealthEvent>,
    ) {
        let cfg = self.cfg;
        let Some(rec) = self.records.get_mut(id) else {
            return;
        };
        if rec.state == HealthState::Dead {
            return;
        }
        match outcome {
            CallOutcome::Clean => {
                rec.consecutive_faults = 0;
                rec.clean_streak += 1;
                if rec.state == HealthState::Degraded && rec.clean_streak >= cfg.probation_successes
                {
                    rec.state = HealthState::Healthy;
                    rec.on_probation = false;
                    // A full recovery wipes the quarantine history: the
                    // device earned a fresh backoff schedule.
                    rec.quarantine_count = 0;
                    events.push(HealthEvent {
                        device: id.to_owned(),
                        from: HealthState::Degraded,
                        to: HealthState::Healthy,
                        cause: TransitionCause::CleanStreak,
                    });
                }
            }
            fault => {
                let cause = match fault {
                    CallOutcome::Panic => {
                        self.metrics.plugin_panics.inc();
                        TransitionCause::Panic
                    }
                    CallOutcome::Timeout => {
                        self.metrics.plugin_timeouts.inc();
                        TransitionCause::Timeout
                    }
                    _ => {
                        self.metrics.garbage_events.inc();
                        TransitionCause::Garbage
                    }
                };
                rec.clean_streak = 0;
                rec.consecutive_faults += 1;
                if rec.state == HealthState::Quarantined {
                    return; // Stale record from before the exclusion took.
                }
                let relapse = rec.on_probation; // Any fault on probation re-quarantines.
                if relapse || rec.consecutive_faults >= cfg.quarantine_after {
                    let from = rec.state;
                    rec.quarantine_count += 1;
                    if rec.quarantine_count > cfg.max_quarantines {
                        rec.state = HealthState::Dead;
                        self.metrics.deaths.inc();
                        events.push(HealthEvent {
                            device: id.to_owned(),
                            from,
                            to: HealthState::Dead,
                            cause,
                        });
                    } else {
                        rec.state = HealthState::Quarantined;
                        rec.on_probation = false;
                        rec.consecutive_faults = 0;
                        self.metrics.quarantines.inc();
                        let shift = rec.quarantine_count.saturating_sub(1).min(20);
                        let backoff = cfg
                            .probation_base_us
                            .saturating_mul(1u64 << shift)
                            .min(cfg.probation_cap_us);
                        let jitter = self.rng.gen_range(0..=backoff / 4);
                        rec.probation_until_us = now_us + backoff + jitter;
                        events.push(HealthEvent {
                            device: id.to_owned(),
                            from,
                            to: HealthState::Quarantined,
                            cause,
                        });
                    }
                } else if rec.consecutive_faults >= cfg.degrade_after
                    && rec.state == HealthState::Healthy
                {
                    rec.state = HealthState::Degraded;
                    events.push(HealthEvent {
                        device: id.to_owned(),
                        from: HealthState::Healthy,
                        to: HealthState::Degraded,
                        cause,
                    });
                }
            }
        }
    }
}

fn isolate_input(
    id: &str,
    ledger: &SharedLedger,
    fuel: u64,
    inner: Box<dyn InputPlugin>,
) -> Box<dyn InputPlugin> {
    install_quiet_hook();
    // Even `kind()` runs hostile code: probe it once, contained.
    QUIET_PANICS.with(|q| q.set(true));
    let kind = panic::catch_unwind(AssertUnwindSafe(|| inner.kind())).unwrap_or("unknown-plugin");
    QUIET_PANICS.with(|q| q.set(false));
    Box::new(IsolatedInput {
        device: id.to_owned(),
        kind,
        fuel,
        ledger: ledger.clone(),
        inner,
    })
}

fn isolate_output(
    id: &str,
    ledger: &SharedLedger,
    fuel: u64,
    inner: Box<dyn OutputPlugin>,
) -> Box<dyn OutputPlugin> {
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let kind = panic::catch_unwind(AssertUnwindSafe(|| inner.kind())).unwrap_or("unknown-plugin");
    let caps = panic::catch_unwind(AssertUnwindSafe(|| inner.caps())).unwrap_or(OutputCaps {
        size: Size::new(FALLBACK_COLS, FALLBACK_ROWS),
        format: PixelFormat::Gray8,
        dither: DitherMode::None,
        scale: ScaleFilter::Nearest,
    });
    QUIET_PANICS.with(|q| q.set(false));
    Box::new(IsolatedOutput {
        device: id.to_owned(),
        kind,
        caps,
        fuel,
        ledger: ledger.clone(),
        inner,
        last_good: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{DeviceDescriptor, InputModality, Situation, UserProfile};
    use crate::plugin::DeviceEvent;
    use uniint_protocol::input::ButtonMask;
    use uniint_raster::geom::Rect;

    #[derive(Debug)]
    struct PanicInput;
    impl InputPlugin for PanicInput {
        fn kind(&self) -> &'static str {
            "panic-input"
        }
        fn translate(&mut self, _: &DeviceEvent, _: &InputContext) -> Vec<InputEvent> {
            panic!("injected");
        }
    }

    #[derive(Debug)]
    struct StallInput;
    impl InputPlugin for StallInput {
        fn kind(&self) -> &'static str {
            "stall-input"
        }
        fn translate(&mut self, _: &DeviceEvent, _: &InputContext) -> Vec<InputEvent> {
            while consume_fuel(64) {}
            Vec::new()
        }
    }

    #[derive(Debug)]
    struct GarbageInput;
    impl InputPlugin for GarbageInput {
        fn kind(&self) -> &'static str {
            "garbage-input"
        }
        fn translate(&mut self, _: &DeviceEvent, _: &InputContext) -> Vec<InputEvent> {
            vec![
                InputEvent::Pointer {
                    x: u16::MAX,
                    y: u16::MAX,
                    buttons: ButtonMask::NONE,
                },
                InputEvent::Key {
                    down: true,
                    sym: 'a'.into(),
                },
            ]
        }
    }

    #[derive(Debug)]
    struct GoodInput;
    impl InputPlugin for GoodInput {
        fn kind(&self) -> &'static str {
            "good-input"
        }
        fn translate(&mut self, _: &DeviceEvent, _: &InputContext) -> Vec<InputEvent> {
            InputEvent::key_tap('x'.into()).to_vec()
        }
    }

    fn connected_proxy() -> UniIntProxy {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&uniint_protocol::message::ServerMessage::Init {
            version: 1,
            width: 64,
            height: 48,
            format: PixelFormat::Rgb888,
            name: "t".into(),
        })
        .unwrap();
        p
    }

    fn coord() -> Coordinator {
        Coordinator::new(UserProfile::neutral("u"), Situation::idle("kitchen"))
    }

    fn device(
        id: &str,
        plugin: impl Fn() -> Box<dyn InputPlugin> + Send + 'static,
    ) -> InteractionDevice {
        InteractionDevice::new(DeviceDescriptor::carried(id, id).with_input(InputModality::Keypad))
            .with_input_factory(Box::new(plugin))
    }

    #[test]
    fn panic_is_contained_and_counted() {
        let mut sup = Supervisor::new(1);
        let mut proxy = connected_proxy();
        let mut c = coord();
        proxy.attach_input(sup.wrap_input("bad", Box::new(PanicInput)));
        let msgs = proxy.device_input(&DeviceEvent::KeypadSelect);
        assert!(msgs.is_empty(), "panic yields no events");
        sup.tick(0, &mut c, &mut proxy);
        assert_eq!(sup.stats().plugin_panics, 1);
        assert_eq!(sup.health("bad"), Some(HealthState::Degraded));
    }

    #[test]
    fn stall_burns_budget_and_counts_timeout() {
        let mut sup = Supervisor::new(2);
        let mut proxy = connected_proxy();
        let mut c = coord();
        proxy.attach_input(sup.wrap_input("slow", Box::new(StallInput)));
        assert!(proxy.device_input(&DeviceEvent::KeypadSelect).is_empty());
        sup.tick(0, &mut c, &mut proxy);
        assert_eq!(sup.stats().plugin_timeouts, 1);
    }

    #[test]
    fn consume_fuel_without_budget_is_false() {
        assert!(!consume_fuel(1), "no budget outside supervised calls");
    }

    #[test]
    fn garbage_events_filtered_but_valid_pass() {
        let mut sup = Supervisor::new(3);
        let mut proxy = connected_proxy();
        let mut c = coord();
        proxy.attach_input(sup.wrap_input("junk", Box::new(GarbageInput)));
        let msgs = proxy.device_input(&DeviceEvent::KeypadSelect);
        assert_eq!(msgs.len(), 1, "in-range key event passes; pointer dropped");
        sup.tick(0, &mut c, &mut proxy);
        assert_eq!(sup.stats().garbage_events, 1);
    }

    #[test]
    fn consecutive_faults_quarantine_then_probation_readmits() {
        let mut sup = Supervisor::new(4);
        let mut proxy = connected_proxy();
        let mut c = coord();
        c.register(
            sup.supervise(device("flaky", || Box::new(PanicInput))),
            &mut proxy,
        );
        assert_eq!(proxy.attached().0, Some("panic-input"));
        for _ in 0..sup.config().quarantine_after {
            proxy.device_input(&DeviceEvent::KeypadSelect);
        }
        let report = sup.tick(1_000, &mut c, &mut proxy);
        assert_eq!(sup.health("flaky"), Some(HealthState::Quarantined));
        assert_eq!(sup.stats().quarantines, 1);
        assert_eq!(sup.stats().failovers, 1, "active input role was lost");
        assert_eq!(proxy.attached().0, None, "no other device to select");
        assert!(report
            .events
            .iter()
            .any(|e| e.to == HealthState::Quarantined));
        // Well past the probation backoff the device is readmitted and,
        // being the only candidate, reselected.
        let report = sup.tick(60_000_000, &mut c, &mut proxy);
        assert_eq!(sup.stats().readmissions, 1);
        assert_eq!(sup.health("flaky"), Some(HealthState::Degraded));
        assert_eq!(report.input_switched_to.as_deref(), Some("flaky"));
    }

    #[test]
    fn probation_relapse_requarantines_with_longer_backoff() {
        let mut sup = Supervisor::new(5);
        let mut proxy = connected_proxy();
        let mut c = coord();
        c.register(
            sup.supervise(device("flaky", || Box::new(PanicInput))),
            &mut proxy,
        );
        let mut now = 0u64;
        let mut windows = Vec::new();
        for _ in 0..2 {
            for _ in 0..sup.config().quarantine_after {
                proxy.device_input(&DeviceEvent::KeypadSelect);
            }
            sup.tick(now, &mut c, &mut proxy);
            let until = sup.records["flaky"].probation_until_us;
            windows.push(until - now);
            now = until + 1;
            sup.tick(now, &mut c, &mut proxy); // readmission
        }
        assert!(windows[1] > windows[0], "backoff escalates: {windows:?}");
    }

    #[test]
    fn clean_streak_restores_health() {
        let mut sup = Supervisor::new(6);
        let mut proxy = connected_proxy();
        let mut c = coord();
        let flip = Arc::new(Mutex::new(0u32));
        let flip2 = flip.clone();
        // One panic, then clean forever.
        #[derive(Debug)]
        struct FlipInput(Arc<Mutex<u32>>);
        impl InputPlugin for FlipInput {
            fn kind(&self) -> &'static str {
                "flip"
            }
            fn translate(&mut self, _: &DeviceEvent, _: &InputContext) -> Vec<InputEvent> {
                let first = {
                    // Drop the guard before panicking or the mutex poisons.
                    let mut n = self.0.lock().unwrap();
                    *n += 1;
                    *n == 1
                };
                if first {
                    panic!("first call only");
                }
                InputEvent::key_tap('x'.into()).to_vec()
            }
        }
        proxy.attach_input(sup.wrap_input("flip", Box::new(FlipInput(flip2))));
        proxy.device_input(&DeviceEvent::KeypadSelect);
        sup.tick(0, &mut c, &mut proxy);
        assert_eq!(sup.health("flip"), Some(HealthState::Degraded));
        for _ in 0..sup.config().probation_successes {
            proxy.device_input(&DeviceEvent::KeypadSelect);
        }
        sup.tick(1, &mut c, &mut proxy);
        assert_eq!(sup.health("flip"), Some(HealthState::Healthy));
        drop(flip);
    }

    #[test]
    fn heartbeat_silence_degrades_then_kills() {
        let mut sup = Supervisor::new(7);
        let mut proxy = connected_proxy();
        let mut c = coord();
        c.register(
            sup.supervise(device("hb", || Box::new(GoodInput))),
            &mut proxy,
        );
        sup.heartbeat("hb", 0);
        let to = sup.config().heartbeat_timeout_us;
        sup.tick(to + 1, &mut c, &mut proxy);
        assert_eq!(sup.health("hb"), Some(HealthState::Degraded));
        // Heartbeat resumes: healthy again.
        sup.heartbeat("hb", to + 2);
        assert_eq!(sup.health("hb"), Some(HealthState::Healthy));
        // Then silence long enough to die.
        let deadline = to + 2 + to * sup.config().heartbeat_dead_misses as u64 + 1;
        let report = sup.tick(deadline, &mut c, &mut proxy);
        assert_eq!(sup.health("hb"), Some(HealthState::Dead));
        assert_eq!(sup.stats().deaths, 1);
        assert!(sup.stats().heartbeat_misses >= 1);
        assert!(report
            .messages
            .iter()
            .any(|m| matches!(m, ClientMessage::DeviceHealth { state, .. }
                if *state == DeviceHealthState::Dead)));
    }

    #[test]
    fn dead_devices_stay_dead() {
        let mut sup = Supervisor::new(8);
        let mut proxy = connected_proxy();
        let mut c = coord();
        c.register(
            sup.supervise(device("d", || Box::new(GoodInput))),
            &mut proxy,
        );
        sup.heartbeat("d", 0);
        let to = sup.config().heartbeat_timeout_us;
        sup.tick(to * 10, &mut c, &mut proxy);
        assert_eq!(sup.health("d"), Some(HealthState::Dead));
        sup.heartbeat("d", to * 10 + 1); // Ignored.
        sup.tick(to * 20, &mut c, &mut proxy);
        assert_eq!(sup.health("d"), Some(HealthState::Dead));
        assert_eq!(sup.stats().deaths, 1, "death counted once");
    }

    #[test]
    fn fallback_terminal_attaches_when_output_dies() {
        #[derive(Debug)]
        struct PanicScreen;
        impl OutputPlugin for PanicScreen {
            fn kind(&self) -> &'static str {
                "panic-screen"
            }
            fn caps(&self) -> OutputCaps {
                OutputCaps {
                    size: Size::new(32, 32),
                    format: PixelFormat::Rgb888,
                    dither: DitherMode::None,
                    scale: ScaleFilter::Nearest,
                }
            }
            fn adapt(&mut self, _: &Framebuffer) -> DeviceFrame {
                panic!("screen controller crashed");
            }
        }
        let mut sup = Supervisor::new(9);
        let mut proxy = connected_proxy();
        let mut c = coord();
        let dev =
            InteractionDevice::new(DeviceDescriptor::carried("screen", "Screen").with_output(
                crate::context::OutputProfile {
                    size: Size::new(32, 32),
                    depth_bits: 24,
                    far_readable: false,
                },
            ))
            .with_output_factory(Box::new(|| Box::new(PanicScreen)));
        c.register(sup.supervise(dev), &mut proxy);
        assert_eq!(proxy.attached().1, Some("panic-screen"));
        // Three faulting adapts → quarantine; frames were safe blanks.
        for _ in 0..sup.config().quarantine_after {
            let f = proxy.adapt_current().expect("safe frame substituted");
            assert_eq!(f.frame.size(), Size::new(32, 32));
        }
        let report = sup.tick(0, &mut c, &mut proxy);
        assert!(report.fallback_attached);
        assert_eq!(proxy.attached().1, Some("fallback-terminal"));
        assert_eq!(sup.stats().fallback_activations, 1);
        // The fallback produces a real frame.
        let f = proxy.adapt_current().expect("fallback frame");
        assert!(f.frame.width() <= FALLBACK_COLS && f.frame.height() <= FALLBACK_ROWS);
        // Renegotiation happened exactly once (one non-incremental request).
        let full_requests = report
            .messages
            .iter()
            .filter(|m| {
                matches!(
                    m,
                    ClientMessage::UpdateRequest {
                        incremental: false,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(full_requests, 1);
    }

    #[test]
    fn same_seed_same_stats() {
        let run = |seed: u64| {
            let mut sup = Supervisor::new(seed);
            let mut proxy = connected_proxy();
            let mut c = coord();
            c.register(
                sup.supervise(device("flaky", || Box::new(PanicInput))),
                &mut proxy,
            );
            let mut now = 0;
            for round in 0..30 {
                proxy.device_input(&DeviceEvent::KeypadSelect);
                now += 100_000 * (round % 3 + 1);
                sup.tick(now, &mut c, &mut proxy);
            }
            sup.stats()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn oversized_frame_is_garbage_and_substituted() {
        #[derive(Debug)]
        struct HugeScreen;
        impl OutputPlugin for HugeScreen {
            fn kind(&self) -> &'static str {
                "huge"
            }
            fn caps(&self) -> OutputCaps {
                OutputCaps {
                    size: Size::new(16, 16),
                    format: PixelFormat::Rgb888,
                    dither: DitherMode::None,
                    scale: ScaleFilter::Nearest,
                }
            }
            fn adapt(&mut self, _: &Framebuffer) -> DeviceFrame {
                // Twice the declared size: must be rejected.
                DeviceFrame::new(
                    Framebuffer::new(32, 32, Color::WHITE),
                    PixelFormat::Rgb888,
                    0,
                )
            }
        }
        let mut sup = Supervisor::new(10);
        let mut proxy = connected_proxy();
        let mut c = coord();
        proxy.attach_output(sup.wrap_output("huge", Box::new(HugeScreen)));
        let f = proxy.adapt_current().expect("substitute");
        assert_eq!(f.frame.size(), Size::new(16, 16), "safe frame at caps size");
        sup.tick(0, &mut c, &mut proxy);
        assert_eq!(sup.stats().garbage_events, 1);
    }

    #[test]
    fn fallback_terminal_adapts_any_size() {
        let mut t = FallbackTerminal;
        for (w, h) in [(1, 1), (640, 480), (3, 200)] {
            let fb = Framebuffer::new(w, h, Color::WHITE);
            let f = t.adapt(&fb);
            assert!(f.frame.width() <= FALLBACK_COLS);
            assert!(f.frame.height() <= FALLBACK_ROWS);
            assert_eq!(f.format, PixelFormat::Gray8);
        }
        let _ = Rect::EMPTY; // silence unused import on some cfgs
    }
}
