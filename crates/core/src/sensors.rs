//! Situation inference from home sensors.
//!
//! The paper assumes "the most appropriate interaction device should be
//! dynamically chosen according to a user's current situation" but leaves
//! situation sensing to context-aware systems (its reference \[2\], the
//! AT&T Active Bat work). This module supplies that missing piece: a
//! [`SituationTracker`] fusing discrete sensor readings — location
//! beacons, noise level, activity heuristics — into the
//! [`crate::context::Situation`] the selection policy consumes, with
//! hysteresis so momentary sensor blips do not thrash device switches.

use crate::context::{Activity, Noise, Situation};
use serde::{Deserialize, Serialize};

/// A discrete sensor reading, timestamped by the caller's clock (ms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SensorReading {
    /// A location beacon saw the user's badge in a zone.
    Badge {
        /// Zone the badge was seen in.
        zone: String,
    },
    /// Ambient microphone noise estimate.
    NoiseLevel(Noise),
    /// The stove is on/off (kitchen activity cue).
    StoveActive(bool),
    /// A pressure sensor in the sofa.
    SofaOccupied(bool),
    /// The bedroom light master switch.
    BedroomDark(bool),
    /// Wearable accelerometer says the user is walking.
    Walking(bool),
    /// Both of the user's hands grip something instrumented (cooking
    /// tools, cleaning gear).
    HandsBusy(bool),
}

/// Fuses sensor readings into a stable [`Situation`].
///
/// Readings are applied with [`observe`](Self::observe); the derived
/// situation only *commits* after the same derivation has been stable
/// for `hysteresis_ms`, preventing device-switch thrash.
#[derive(Debug, Clone)]
pub struct SituationTracker {
    zone: String,
    noise: Noise,
    stove: bool,
    sofa: bool,
    dark: bool,
    walking: bool,
    hands_busy: bool,
    hysteresis_ms: u64,
    committed: Situation,
    candidate: Situation,
    candidate_since_ms: u64,
    now_ms: u64,
}

impl SituationTracker {
    /// Creates a tracker starting idle in `zone` with the given
    /// commitment delay.
    pub fn new(zone: impl Into<String>, hysteresis_ms: u64) -> SituationTracker {
        let zone = zone.into();
        let initial = Situation::idle(zone.clone());
        SituationTracker {
            zone,
            noise: Noise::Quiet,
            stove: false,
            sofa: false,
            dark: false,
            walking: false,
            hands_busy: false,
            hysteresis_ms,
            committed: initial.clone(),
            candidate: initial,
            candidate_since_ms: 0,
            now_ms: 0,
        }
    }

    /// The currently committed situation.
    pub fn situation(&self) -> &Situation {
        &self.committed
    }

    /// The derivation that will commit once stable (may equal the
    /// committed situation).
    pub fn pending(&self) -> &Situation {
        &self.candidate
    }

    /// Applies one reading at time `now_ms`. Returns `Some(situation)`
    /// when the committed situation changed.
    pub fn observe(&mut self, now_ms: u64, reading: SensorReading) -> Option<Situation> {
        self.now_ms = now_ms;
        match reading {
            SensorReading::Badge { zone } => self.zone = zone,
            SensorReading::NoiseLevel(n) => self.noise = n,
            SensorReading::StoveActive(b) => self.stove = b,
            SensorReading::SofaOccupied(b) => self.sofa = b,
            SensorReading::BedroomDark(b) => self.dark = b,
            SensorReading::Walking(b) => self.walking = b,
            SensorReading::HandsBusy(b) => self.hands_busy = b,
        }
        self.reconsider()
    }

    /// Advances time without a reading (lets pending situations commit).
    pub fn tick(&mut self, now_ms: u64) -> Option<Situation> {
        self.now_ms = now_ms;
        self.reconsider()
    }

    /// Derives the activity from the current sensor state. Priority
    /// order matters: hard cues (stove, bed) beat soft ones (walking).
    fn derive(&self) -> Situation {
        let activity = if self.stove && self.zone == "kitchen" {
            Activity::Cooking
        } else if self.dark && self.zone == "bedroom" {
            Activity::Sleeping
        } else if self.sofa {
            Activity::WatchingTv
        } else if self.walking {
            Activity::Walking
        } else {
            Activity::Idle
        };
        Situation {
            zone: self.zone.clone(),
            activity,
            hands_busy: self.hands_busy || (self.stove && self.zone == "kitchen"),
            noise: self.noise,
        }
    }

    fn reconsider(&mut self) -> Option<Situation> {
        let derived = self.derive();
        if derived != self.candidate {
            self.candidate = derived;
            self.candidate_since_ms = self.now_ms;
        }
        if self.candidate != self.committed
            && self.now_ms.saturating_sub(self.candidate_since_ms) >= self.hysteresis_ms
        {
            self.committed = self.candidate.clone();
            return Some(self.committed.clone());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn badge_moves_zone_after_hysteresis() {
        let mut t = SituationTracker::new("hall", 1000);
        assert!(t
            .observe(
                0,
                SensorReading::Badge {
                    zone: "kitchen".into()
                }
            )
            .is_none());
        assert_eq!(t.situation().zone, "hall", "not committed yet");
        let s = t.tick(1000).expect("commits after hysteresis");
        assert_eq!(s.zone, "kitchen");
    }

    #[test]
    fn zero_hysteresis_commits_immediately() {
        let mut t = SituationTracker::new("hall", 0);
        let s = t
            .observe(5, SensorReading::Badge { zone: "den".into() })
            .expect("immediate commit");
        assert_eq!(s.zone, "den");
    }

    #[test]
    fn blip_does_not_commit() {
        let mut t = SituationTracker::new("hall", 1000);
        t.observe(0, SensorReading::SofaOccupied(true));
        // The user stands up again before the hysteresis elapses.
        t.observe(500, SensorReading::SofaOccupied(false));
        assert!(t.tick(5000).is_none(), "blip filtered");
        assert_eq!(t.situation().activity, Activity::Idle);
    }

    #[test]
    fn stove_in_kitchen_means_cooking_hands_busy() {
        let mut t = SituationTracker::new("hall", 0);
        t.observe(
            0,
            SensorReading::Badge {
                zone: "kitchen".into(),
            },
        );
        let s = t
            .observe(1, SensorReading::StoveActive(true))
            .expect("commit");
        assert_eq!(s.activity, Activity::Cooking);
        assert!(s.hands_busy, "cooking implies busy hands");
    }

    #[test]
    fn stove_elsewhere_is_not_cooking() {
        let mut t = SituationTracker::new("living-room", 0);
        t.observe(0, SensorReading::StoveActive(true));
        assert_eq!(t.situation().activity, Activity::Idle);
    }

    #[test]
    fn priority_stove_beats_sofa() {
        let mut t = SituationTracker::new("kitchen", 0);
        t.observe(0, SensorReading::SofaOccupied(true));
        t.observe(1, SensorReading::StoveActive(true));
        assert_eq!(t.situation().activity, Activity::Cooking);
        t.observe(2, SensorReading::StoveActive(false));
        assert_eq!(t.situation().activity, Activity::WatchingTv);
    }

    #[test]
    fn dark_bedroom_is_sleeping() {
        let mut t = SituationTracker::new("bedroom", 0);
        t.observe(0, SensorReading::BedroomDark(true));
        assert_eq!(t.situation().activity, Activity::Sleeping);
    }

    #[test]
    fn walking_and_noise_tracked() {
        let mut t = SituationTracker::new("hall", 0);
        t.observe(0, SensorReading::Walking(true));
        assert_eq!(t.situation().activity, Activity::Walking);
        t.observe(1, SensorReading::NoiseLevel(Noise::Loud));
        assert_eq!(t.situation().noise, Noise::Loud);
    }

    #[test]
    fn pending_visible_before_commit() {
        let mut t = SituationTracker::new("hall", 10_000);
        t.observe(0, SensorReading::Walking(true));
        assert_eq!(t.pending().activity, Activity::Walking);
        assert_eq!(t.situation().activity, Activity::Idle);
    }

    #[test]
    fn candidate_timer_resets_on_change() {
        let mut t = SituationTracker::new("hall", 1000);
        t.observe(0, SensorReading::SofaOccupied(true));
        t.observe(900, SensorReading::Walking(true)); // sofa still occupied → still WatchingTv
                                                      // Same candidate (sofa wins over walking), so commit at 1000.
        assert!(t.tick(1000).is_some());
        assert_eq!(t.situation().activity, Activity::WatchingTv);
    }
}
