//! # uniint-core
//!
//! The paper's primary contribution: **universal interaction** for
//! networked home appliances (Nakajima & Hasegawa, ICDCS 2002).
//!
//! Universal interaction fixes a tiny, device-independent vocabulary —
//! bitmap images out, keyboard/mouse events in — and places a proxy
//! between appliance GUIs and whatever interaction devices the user
//! currently prefers:
//!
//! - [`server::UniIntServer`] exports an unmodified toolkit window
//!   (crate `uniint-wsys`) over the universal interaction protocol
//!   (crate `uniint-protocol`);
//! - [`proxy::UniIntProxy`] replaces the thin-client viewer: it hosts the
//!   per-device **plug-in modules** ([`plugin`]) that adapt bitmaps to
//!   each output device and translate device events to universal input;
//! - [`context`] models the user's situation and preferences, and
//!   [`coordinator::Coordinator`] switches plug-ins dynamically as the
//!   situation changes — cooking selects voice, the sofa selects the
//!   remote and the TV;
//! - [`session`] wires the pieces end-to-end, in memory or across the
//!   network simulator;
//! - [`supervisor`] hardens the device boundary: plug-in calls run in
//!   fault-isolating shims, per-device health drives quarantine and
//!   automatic failover, and a built-in fallback terminal keeps the
//!   interaction alive when every real output device has died.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod coordinator;
pub mod multi;
pub mod plugin;
pub mod proxy;
pub mod sensors;
pub mod server;
pub mod session;
pub mod supervisor;
pub mod tap;

/// Convenient re-exports of the core surface.
pub mod prelude {
    pub use crate::context::{
        Activity, DeviceDescriptor, InputModality, Noise, OutputProfile, SelectionPolicy,
        Situation, UserProfile,
    };
    pub use crate::coordinator::{Coordinator, InteractionDevice, SwitchReport};
    pub use crate::multi::{ClientId, MultiServer};
    pub use crate::plugin::{
        DeviceEvent, DeviceFrame, Gesture, InputContext, InputPlugin, Nav, OutputCaps,
        OutputPlugin, RemoteKey,
    };
    pub use crate::proxy::{ProxyOutput, ProxyStats, UniIntProxy};
    pub use crate::sensors::{SensorReading, SituationTracker};
    pub use crate::server::{ServerStats, UniIntServer};
    pub use crate::session::{LocalSession, SessionError, SimSession};
    pub use crate::supervisor::{
        FallbackTerminal, HealthEvent, HealthState, Supervisor, SupervisorConfig, SupervisorReport,
        SupervisorStats, TransitionCause,
    };
    pub use crate::tap::{Direction, SessionTap, SharedTap};
}
