//! The interaction coordinator: tracks which interaction devices are
//! available, applies the [`crate::context::SelectionPolicy`] whenever
//! the situation changes, and performs the dynamic plug-in switches on
//! the proxy.

use std::collections::BTreeSet;

use crate::context::{DeviceDescriptor, SelectionPolicy, Situation, UserProfile};
use crate::plugin::{InputPlugin, OutputPlugin};
use crate::proxy::UniIntProxy;
use uniint_protocol::message::ClientMessage;

/// Factory producing a fresh input plug-in (the "module the device
/// transmits to the proxy" in the paper).
pub type InputFactory = Box<dyn Fn() -> Box<dyn InputPlugin> + Send>;
/// Factory producing a fresh output plug-in.
pub type OutputFactory = Box<dyn Fn() -> Box<dyn OutputPlugin> + Send>;

/// An interaction device as registered with the coordinator: a
/// capability descriptor plus the plug-ins it can upload.
pub struct InteractionDevice {
    descriptor: DeviceDescriptor,
    input_factory: Option<InputFactory>,
    output_factory: Option<OutputFactory>,
}

impl core::fmt::Debug for InteractionDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("InteractionDevice")
            .field("descriptor", &self.descriptor)
            .field("has_input", &self.input_factory.is_some())
            .field("has_output", &self.output_factory.is_some())
            .finish()
    }
}

impl InteractionDevice {
    /// Creates a device from its descriptor.
    pub fn new(descriptor: DeviceDescriptor) -> InteractionDevice {
        InteractionDevice {
            descriptor,
            input_factory: None,
            output_factory: None,
        }
    }

    /// Attaches the input plug-in factory.
    pub fn with_input_factory(mut self, f: InputFactory) -> InteractionDevice {
        self.input_factory = Some(f);
        self
    }

    /// Attaches the output plug-in factory.
    pub fn with_output_factory(mut self, f: OutputFactory) -> InteractionDevice {
        self.output_factory = Some(f);
        self
    }

    /// The descriptor.
    pub fn descriptor(&self) -> &DeviceDescriptor {
        &self.descriptor
    }

    /// Rewrites the input factory through `wrap` (no-op when the device
    /// has none). This is how supervisors and chaos harnesses interpose
    /// shims without access to the private factory field.
    pub fn map_input_factory(
        mut self,
        wrap: impl FnOnce(InputFactory) -> InputFactory,
    ) -> InteractionDevice {
        self.input_factory = self.input_factory.take().map(wrap);
        self
    }

    /// Rewrites the output factory through `wrap` (no-op when absent).
    pub fn map_output_factory(
        mut self,
        wrap: impl FnOnce(OutputFactory) -> OutputFactory,
    ) -> InteractionDevice {
        self.output_factory = self.output_factory.take().map(wrap);
        self
    }
}

/// What a reselection changed.
#[derive(Debug, Default, PartialEq)]
pub struct SwitchReport {
    /// New active input device id, when it changed.
    pub input_switched_to: Option<String>,
    /// New active output device id, when it changed.
    pub output_switched_to: Option<String>,
    /// Protocol messages the output switch produced (renegotiation).
    pub messages: Vec<ClientMessage>,
}

impl SwitchReport {
    /// Whether anything changed.
    pub fn changed(&self) -> bool {
        self.input_switched_to.is_some() || self.output_switched_to.is_some()
    }
}

/// Tracks devices and the user's situation, switching proxy plug-ins.
pub struct Coordinator {
    devices: Vec<InteractionDevice>,
    policy: SelectionPolicy,
    profile: UserProfile,
    situation: Situation,
    active_input: Option<String>,
    active_output: Option<String>,
    /// Device ids excluded from selection (quarantined/dead, as told by
    /// the supervisor). Orthogonal to registration: an excluded device
    /// stays registered and resumes competing once readmitted.
    excluded: BTreeSet<String>,
}

impl core::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Coordinator")
            .field("devices", &self.devices.len())
            .field("situation", &self.situation)
            .field("active_input", &self.active_input)
            .field("active_output", &self.active_output)
            .finish()
    }
}

impl Coordinator {
    /// Creates a coordinator with no devices.
    pub fn new(profile: UserProfile, situation: Situation) -> Coordinator {
        Coordinator {
            devices: Vec::new(),
            policy: SelectionPolicy,
            profile,
            situation,
            active_input: None,
            active_output: None,
            excluded: BTreeSet::new(),
        }
    }

    /// Current situation.
    pub fn situation(&self) -> &Situation {
        &self.situation
    }

    /// Active input device id.
    pub fn active_input(&self) -> Option<&str> {
        self.active_input.as_deref()
    }

    /// Active output device id.
    pub fn active_output(&self) -> Option<&str> {
        self.active_output.as_deref()
    }

    /// Registered device descriptors.
    pub fn descriptors(&self) -> Vec<&DeviceDescriptor> {
        self.devices.iter().map(|d| &d.descriptor).collect()
    }

    /// Registers a device (it became reachable) and reselects.
    pub fn register(&mut self, device: InteractionDevice, proxy: &mut UniIntProxy) -> SwitchReport {
        let id = device.descriptor.id.clone();
        self.devices.retain(|d| d.descriptor.id != id);
        // Re-registering the active device replaces its factories, so the
        // currently attached plug-ins are stale: detach and let reselect
        // upload fresh ones. Without this, a churned device keeps serving
        // through plug-ins from a registration that no longer exists.
        if self.active_input.as_deref() == Some(id.as_str()) {
            self.active_input = None;
            proxy.detach_input();
        }
        if self.active_output.as_deref() == Some(id.as_str()) {
            self.active_output = None;
            proxy.detach_output();
        }
        self.devices.push(device);
        self.reselect(proxy)
    }

    /// Unregisters a device (battery died, user left it behind) and
    /// reselects. Returns the report; `false` changes mean it was not the
    /// active device.
    pub fn unregister(&mut self, id: &str, proxy: &mut UniIntProxy) -> SwitchReport {
        let before = self.devices.len();
        self.devices.retain(|d| d.descriptor.id != id);
        self.excluded.remove(id);
        if self.devices.len() == before {
            return SwitchReport::default();
        }
        if self.active_input.as_deref() == Some(id) {
            self.active_input = None;
            proxy.detach_input();
        }
        if self.active_output.as_deref() == Some(id) {
            self.active_output = None;
            proxy.detach_output();
        }
        self.reselect(proxy)
    }

    /// Updates the user's situation and reselects devices — the paper's
    /// dynamic switch (cooking → voice, sofa → remote + TV).
    pub fn set_situation(&mut self, situation: Situation, proxy: &mut UniIntProxy) -> SwitchReport {
        self.situation = situation;
        self.reselect(proxy)
    }

    /// Updates the user profile and reselects.
    pub fn set_profile(&mut self, profile: UserProfile, proxy: &mut UniIntProxy) -> SwitchReport {
        self.profile = profile;
        self.reselect(proxy)
    }

    /// Marks a device as (un)available for selection without touching its
    /// registration. The supervisor calls this when health transitions
    /// quarantine or readmit a device; it does *not* reselect — callers
    /// batch availability changes and then [`Coordinator::reselect`].
    pub fn set_available(&mut self, id: &str, available: bool) -> bool {
        if available {
            self.excluded.remove(id)
        } else {
            self.excluded.insert(id.to_owned())
        }
    }

    /// Whether a device id is currently eligible for selection.
    pub fn is_available(&self, id: &str) -> bool {
        !self.excluded.contains(id)
    }

    /// Applies the policy, switching plug-ins where the best device
    /// differs from the active one. Only devices that actually carry the
    /// relevant plug-in factory and are not excluded compete for a role.
    pub fn reselect(&mut self, proxy: &mut UniIntProxy) -> SwitchReport {
        let mut report = SwitchReport::default();

        let input_candidates: Vec<DeviceDescriptor> = self
            .devices
            .iter()
            .filter(|d| d.input_factory.is_some() && !self.excluded.contains(&d.descriptor.id))
            .map(|d| d.descriptor.clone())
            .collect();
        let best_input = self
            .policy
            .select_input(&input_candidates, &self.situation, &self.profile)
            .map(|d| d.id.clone());
        if best_input != self.active_input {
            let from = self.active_input.clone().unwrap_or_else(|| "-".into());
            match &best_input {
                Some(id) => {
                    let dev = self
                        .devices
                        .iter()
                        .find(|d| &d.descriptor.id == id)
                        .expect("selected device is registered");
                    let f = dev
                        .input_factory
                        .as_ref()
                        .expect("input candidates carry a factory");
                    proxy.attach_input(f());
                    proxy
                        .telemetry()
                        .counter("coordinator.input_switches")
                        .inc();
                    proxy
                        .telemetry()
                        .journal()
                        .record("coordinator.switch", format!("input: {from} -> {id}"));
                    report.input_switched_to = Some(id.clone());
                    self.active_input = best_input.clone();
                }
                None => {
                    proxy.detach_input();
                    proxy
                        .telemetry()
                        .journal()
                        .record("coordinator.switch", format!("input: {from} -> -"));
                    self.active_input = None;
                }
            }
        }

        let output_candidates: Vec<DeviceDescriptor> = self
            .devices
            .iter()
            .filter(|d| d.output_factory.is_some() && !self.excluded.contains(&d.descriptor.id))
            .map(|d| d.descriptor.clone())
            .collect();
        let best_output = self
            .policy
            .select_output(&output_candidates, &self.situation, &self.profile)
            .map(|d| d.id.clone());
        if best_output != self.active_output {
            let from = self.active_output.clone().unwrap_or_else(|| "-".into());
            match &best_output {
                Some(id) => {
                    let dev = self
                        .devices
                        .iter()
                        .find(|d| &d.descriptor.id == id)
                        .expect("selected device is registered");
                    let f = dev
                        .output_factory
                        .as_ref()
                        .expect("output candidates carry a factory");
                    report.messages = proxy.attach_output(f());
                    proxy
                        .telemetry()
                        .counter("coordinator.output_switches")
                        .inc();
                    proxy
                        .telemetry()
                        .journal()
                        .record("coordinator.switch", format!("output: {from} -> {id}"));
                    report.output_switched_to = Some(id.clone());
                    self.active_output = best_output.clone();
                }
                None => {
                    proxy.detach_output();
                    proxy
                        .telemetry()
                        .journal()
                        .record("coordinator.switch", format!("output: {from} -> -"));
                    self.active_output = None;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Activity, InputModality, Noise, OutputProfile};
    use crate::plugin::{DeviceEvent, DeviceFrame, InputContext, OutputCaps};
    use uniint_protocol::input::InputEvent;
    use uniint_raster::dither::DitherMode;
    use uniint_raster::framebuffer::Framebuffer;
    use uniint_raster::geom::Size;
    use uniint_raster::pixel::PixelFormat;
    use uniint_raster::scale::{scale_to_fit, ScaleFilter};

    #[derive(Debug)]
    struct NullInput(&'static str);
    impl InputPlugin for NullInput {
        fn kind(&self) -> &'static str {
            self.0
        }
        fn translate(&mut self, _ev: &DeviceEvent, _ctx: &InputContext) -> Vec<InputEvent> {
            Vec::new()
        }
    }

    #[derive(Debug)]
    struct NullOutput(&'static str);
    impl OutputPlugin for NullOutput {
        fn kind(&self) -> &'static str {
            self.0
        }
        fn caps(&self) -> OutputCaps {
            OutputCaps {
                size: Size::new(64, 64),
                format: PixelFormat::Rgb888,
                dither: DitherMode::None,
                scale: ScaleFilter::Nearest,
            }
        }
        fn adapt(&mut self, fb: &Framebuffer) -> DeviceFrame {
            DeviceFrame::new(
                scale_to_fit(fb, Size::new(64, 64), ScaleFilter::Nearest),
                PixelFormat::Rgb888,
                0,
            )
        }
    }

    fn phone() -> InteractionDevice {
        InteractionDevice::new(
            DeviceDescriptor::carried("phone-1", "Phone").with_input(InputModality::Keypad),
        )
        .with_input_factory(Box::new(|| Box::new(NullInput("keypad"))))
    }

    fn kitchen_mic() -> InteractionDevice {
        InteractionDevice::new(
            DeviceDescriptor::fixed("mic-1", "Mic", "kitchen").with_input(InputModality::Voice),
        )
        .with_input_factory(Box::new(|| Box::new(NullInput("voice"))))
    }

    fn pda_screen() -> InteractionDevice {
        InteractionDevice::new(DeviceDescriptor::carried("pda-1", "PDA").with_output(
            OutputProfile {
                size: Size::new(240, 320),
                depth_bits: 12,
                far_readable: false,
            },
        ))
        .with_output_factory(Box::new(|| Box::new(NullOutput("pda-screen"))))
    }

    fn cooking() -> Situation {
        Situation {
            zone: "kitchen".into(),
            activity: Activity::Cooking,
            hands_busy: true,
            noise: Noise::Moderate,
        }
    }

    /// Idle in the kitchen with normal background noise: the carried
    /// phone outranks the fixed mic here, so tests can observe the
    /// switch when the situation changes.
    fn idle_kitchen() -> Situation {
        Situation {
            zone: "kitchen".into(),
            activity: Activity::Idle,
            hands_busy: false,
            noise: Noise::Moderate,
        }
    }

    #[test]
    fn register_selects_first_device() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), Situation::idle("kitchen"));
        let report = coord.register(phone(), &mut proxy);
        assert_eq!(report.input_switched_to.as_deref(), Some("phone-1"));
        assert_eq!(proxy.attached().0, Some("keypad"));
    }

    #[test]
    fn situation_change_switches_to_voice() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), idle_kitchen());
        coord.register(phone(), &mut proxy);
        coord.register(kitchen_mic(), &mut proxy);
        // Idle: keypad still fine (carried). Now hands get busy:
        let report = coord.set_situation(cooking(), &mut proxy);
        assert_eq!(report.input_switched_to.as_deref(), Some("mic-1"));
        assert_eq!(proxy.attached().0, Some("voice"));
    }

    #[test]
    fn no_switch_when_best_unchanged() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), cooking());
        coord.register(kitchen_mic(), &mut proxy);
        let report = coord.set_situation(cooking(), &mut proxy);
        assert!(!report.changed());
    }

    #[test]
    fn unregister_active_device_falls_back() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), cooking());
        coord.register(phone(), &mut proxy);
        coord.register(kitchen_mic(), &mut proxy);
        assert_eq!(coord.active_input(), Some("mic-1"));
        let report = coord.unregister("mic-1", &mut proxy);
        assert_eq!(report.input_switched_to.as_deref(), Some("phone-1"));
        assert_eq!(proxy.attached().0, Some("keypad"));
    }

    #[test]
    fn unregister_unknown_is_noop() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), cooking());
        coord.register(phone(), &mut proxy);
        let report = coord.unregister("nope", &mut proxy);
        assert!(!report.changed());
    }

    #[test]
    fn unregister_last_input_detaches() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), cooking());
        coord.register(kitchen_mic(), &mut proxy);
        coord.unregister("mic-1", &mut proxy);
        assert_eq!(coord.active_input(), None);
        assert_eq!(proxy.attached().0, None);
    }

    #[test]
    fn output_registration_reports_messages_when_connected() {
        let mut proxy = UniIntProxy::new("p");
        proxy
            .handle_server(&uniint_protocol::message::ServerMessage::Init {
                version: 1,
                width: 100,
                height: 100,
                format: PixelFormat::Rgb888,
                name: "x".into(),
            })
            .unwrap();
        let mut coord = Coordinator::new(UserProfile::neutral("u"), Situation::idle("kitchen"));
        let report = coord.register(pda_screen(), &mut proxy);
        assert_eq!(report.output_switched_to.as_deref(), Some("pda-1"));
        assert!(!report.messages.is_empty(), "output switch renegotiates");
    }

    #[test]
    fn re_register_same_id_replaces() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), Situation::idle("kitchen"));
        coord.register(phone(), &mut proxy);
        coord.register(phone(), &mut proxy);
        assert_eq!(coord.descriptors().len(), 1);
    }

    #[test]
    fn re_register_active_device_reattaches_fresh_plugin() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), Situation::idle("kitchen"));
        coord.register(phone(), &mut proxy);
        assert_eq!(proxy.attached().0, Some("keypad"));
        // Same id returns with a *different* plug-in: the proxy must not
        // keep serving through the stale one.
        let v2 = InteractionDevice::new(
            DeviceDescriptor::carried("phone-1", "Phone").with_input(InputModality::Keypad),
        )
        .with_input_factory(Box::new(|| Box::new(NullInput("keypad-v2"))));
        let report = coord.register(v2, &mut proxy);
        assert_eq!(report.input_switched_to.as_deref(), Some("phone-1"));
        assert_eq!(proxy.attached().0, Some("keypad-v2"));
    }

    #[test]
    fn excluded_device_loses_selection_and_readmission_restores_it() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), cooking());
        coord.register(phone(), &mut proxy);
        coord.register(kitchen_mic(), &mut proxy);
        assert_eq!(coord.active_input(), Some("mic-1"));
        coord.set_available("mic-1", false);
        let report = coord.reselect(&mut proxy);
        assert_eq!(report.input_switched_to.as_deref(), Some("phone-1"));
        assert_eq!(proxy.attached().0, Some("keypad"));
        coord.set_available("mic-1", true);
        let report = coord.reselect(&mut proxy);
        assert_eq!(report.input_switched_to.as_deref(), Some("mic-1"));
    }

    #[test]
    fn excluding_every_device_detaches() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), cooking());
        coord.register(kitchen_mic(), &mut proxy);
        coord.set_available("mic-1", false);
        coord.reselect(&mut proxy);
        assert_eq!(coord.active_input(), None);
        assert_eq!(proxy.attached().0, None);
    }

    #[test]
    fn factory_less_descriptor_is_not_a_candidate() {
        // A device advertising input modality but uploading no plug-in
        // must never win selection (previously it won and the attach was
        // silently skipped, wedging the active slot).
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), cooking());
        let ghost = InteractionDevice::new(
            DeviceDescriptor::fixed("ghost", "Ghost", "kitchen").with_input(InputModality::Voice),
        );
        coord.register(ghost, &mut proxy);
        coord.register(phone(), &mut proxy);
        assert_eq!(coord.active_input(), Some("phone-1"));
        assert_eq!(proxy.attached().0, Some("keypad"));
    }

    #[test]
    fn profile_change_reselects() {
        let mut proxy = UniIntProxy::new("p");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), idle_kitchen());
        coord.register(phone(), &mut proxy);
        coord.register(kitchen_mic(), &mut proxy);
        let mut profile = UserProfile::neutral("u");
        profile.input_ranking = vec![InputModality::Voice];
        let report = coord.set_profile(profile, &mut proxy);
        assert_eq!(report.input_switched_to.as_deref(), Some("mic-1"));
    }
}
