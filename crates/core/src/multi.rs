//! Multiple simultaneous viewers of one appliance panel.
//!
//! The paper notes thin-client systems are "usually used to move a
//! user's desktop according to the location of a user, or show multiple
//! desktops on the same display". [`MultiServer`] provides the dual: the
//! *same* appliance panel exported to several UniInt proxies at once —
//! the whole family controlling the living room from their own devices,
//! every screen kept consistent.

use crate::server::{ServerStats, UniIntServer};
use uniint_protocol::message::{ClientMessage, ServerMessage};
use uniint_telemetry::registry::Registry;
use uniint_wsys::ui::Ui;

/// Identifies one connected client (proxy) of a [`MultiServer`].
pub type ClientId = usize;

/// A UniInt server fanning one window out to many clients.
///
/// Each client keeps its own pixel format, encoding set and damage
/// account, so a TV proxy and a phone proxy can watch the same panel in
/// RGB888 and Mono1 respectively.
#[derive(Debug, Default)]
pub struct MultiServer {
    clients: Vec<Option<UniIntServer>>,
}

impl MultiServer {
    /// Creates a server with no clients.
    pub fn new() -> MultiServer {
        MultiServer::default()
    }

    /// Accepts a new connection, returning its id. The client still has
    /// to send `Hello` through [`handle_message`](Self::handle_message).
    pub fn accept(&mut self, ui: &Ui) -> ClientId {
        self.clients.push(Some(UniIntServer::new(ui)));
        self.clients.len() - 1
    }

    /// Like [`accept`](Self::accept), but the new per-client server
    /// records into a shared telemetry `registry`, so counters like
    /// `server.inputs_injected` aggregate across all clients.
    pub fn accept_with_telemetry(&mut self, ui: &Ui, registry: Registry) -> ClientId {
        self.clients
            .push(Some(UniIntServer::with_telemetry(ui, registry)));
        self.clients.len() - 1
    }

    /// Drops a client (its proxy disconnected). Ids of other clients stay
    /// stable; messages for a disconnected id are ignored.
    pub fn disconnect(&mut self, client: ClientId) {
        if let Some(slot) = self.clients.get_mut(client) {
            *slot = None;
        }
    }

    /// Number of live (not disconnected) connections.
    pub fn client_count(&self) -> usize {
        self.clients.iter().flatten().count()
    }

    /// Whether `client` completed its handshake and is still connected.
    pub fn has_session(&self, client: ClientId) -> bool {
        self.clients
            .get(client)
            .and_then(Option::as_ref)
            .map(UniIntServer::has_client)
            .unwrap_or(false)
    }

    /// Aggregated statistics over all live clients.
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for c in self.clients.iter().flatten() {
            let s = c.stats();
            total.updates_sent += s.updates_sent;
            total.rects_sent += s.rects_sent;
            total.payload_bytes += s.payload_bytes;
            total.inputs_injected += s.inputs_injected;
        }
        total
    }

    /// Handles one message from `client`, returning replies for that
    /// client. Input events affect the shared window (and therefore every
    /// other client's next update).
    pub fn handle_message(
        &mut self,
        ui: &mut Ui,
        client: ClientId,
        msg: ClientMessage,
    ) -> Vec<ServerMessage> {
        // Fold shared damage into *every* client's account before this
        // message is processed: an `UpdateRequest` pumps its own server,
        // and that pump must not consume window damage the other
        // viewers haven't been credited with yet.
        ui.render();
        let damage = ui.framebuffer_mut().take_damage();
        if !damage.is_empty() {
            for server in self.clients.iter_mut().flatten() {
                server.add_damage(&damage);
            }
        }
        let Some(Some(server)) = self.clients.get_mut(client) else {
            return Vec::new();
        };
        server.handle_message(ui, msg)
    }

    /// Renders once, distributes new damage (and the bell) to every
    /// client, and answers all pending update requests. Returns per-client
    /// message batches (empty batches omitted).
    pub fn pump_all(&mut self, ui: &mut Ui) -> Vec<(ClientId, Vec<ServerMessage>)> {
        ui.render();
        let bell = ui.take_bell();
        let damage = ui.framebuffer_mut().take_damage();
        let mut out = Vec::new();
        for (id, slot) in self.clients.iter_mut().enumerate() {
            let Some(server) = slot else { continue };
            let mut msgs = Vec::new();
            if bell && server.has_client() {
                msgs.push(ServerMessage::Bell);
            }
            server.add_damage(&damage);
            msgs.extend(server.answer_pending(ui));
            if !msgs.is_empty() {
                out.push((id, msgs));
            }
        }
        out
    }

    /// Notifies every client of a window resize.
    pub fn notify_resize_all(&mut self, ui: &mut Ui) -> Vec<(ClientId, Vec<ServerMessage>)> {
        let mut out = Vec::new();
        for (id, slot) in self.clients.iter_mut().enumerate() {
            let Some(server) = slot else { continue };
            let msgs = server.notify_resize(ui);
            if !msgs.is_empty() {
                out.push((id, msgs));
            }
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::proxy::UniIntProxy;
    use uniint_raster::geom::Rect;
    use uniint_wsys::prelude::{Button, Theme};

    pub(crate) struct Rig {
        pub(crate) ui: Ui,
        pub(crate) server: MultiServer,
        pub(crate) proxies: Vec<UniIntProxy>,
    }

    impl Rig {
        pub(crate) fn new(n: usize) -> Rig {
            let mut ui = Ui::new(160, 120, Theme::classic(), "shared");
            ui.add(Button::new("Power"), Rect::new(20, 20, 80, 24));
            let mut server = MultiServer::new();
            let mut proxies = Vec::new();
            for i in 0..n {
                let id = server.accept(&ui);
                assert_eq!(id, i);
                proxies.push(UniIntProxy::new(format!("viewer-{i}")));
            }
            let mut rig = Rig {
                ui,
                server,
                proxies,
            };
            for i in 0..n {
                let hello = rig.proxies[i].connect();
                rig.deliver(i, hello);
            }
            rig.settle();
            rig
        }

        /// Client → server → (replies) → client, recursively.
        pub(crate) fn deliver(&mut self, client: usize, msgs: Vec<ClientMessage>) {
            for m in msgs {
                let replies = self.server.handle_message(&mut self.ui, client, m);
                self.receive(client, replies);
            }
        }

        pub(crate) fn receive(&mut self, client: usize, msgs: Vec<ServerMessage>) {
            for m in msgs {
                let out = self.proxies[client].handle_server(&m).expect("clean wire");
                let back = out.messages;
                if !back.is_empty() {
                    self.deliver(client, back);
                }
            }
        }

        /// Pump shared damage to everyone until quiescent.
        pub(crate) fn settle(&mut self) {
            loop {
                let batches = self.server.pump_all(&mut self.ui);
                if batches.is_empty() {
                    break;
                }
                for (id, msgs) in batches {
                    self.receive(id, msgs);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::Rig;
    use super::*;
    use uniint_protocol::input::InputEvent;
    use uniint_raster::geom::Rect;

    #[test]
    fn all_clients_complete_handshake() {
        let rig = Rig::new(3);
        for p in &rig.proxies {
            assert!(p.is_connected());
        }
        assert_eq!(rig.server.client_count(), 3);
        for i in 0..3 {
            assert!(rig.server.has_session(i));
        }
    }

    #[test]
    fn all_clients_see_identical_screen() {
        let mut rig = Rig::new(3);
        rig.settle();
        let reference = rig.ui.framebuffer().clone();
        for p in &rig.proxies {
            assert_eq!(p.server_frame().unwrap(), &reference);
        }
    }

    #[test]
    fn one_clients_input_updates_every_viewer() {
        let mut rig = Rig::new(2);
        // Client 0 clicks the button.
        let events: Vec<ClientMessage> = InputEvent::click(40, 30)
            .into_iter()
            .map(ClientMessage::Input)
            .collect();
        rig.deliver(0, events);
        rig.settle();
        let reference = rig.ui.framebuffer().clone();
        for (i, p) in rig.proxies.iter().enumerate() {
            assert_eq!(p.server_frame().unwrap(), &reference, "viewer {i}");
        }
        assert_eq!(rig.ui.take_actions().len(), 1, "the click fired once");
    }

    #[test]
    fn per_client_formats_are_independent() {
        let mut rig = Rig::new(2);
        rig.deliver(
            1,
            vec![ClientMessage::SetPixelFormat(
                uniint_raster::pixel::PixelFormat::Mono1,
            )],
        );
        // A change arrives for both.
        rig.ui
            .framebuffer_mut()
            .fill_rect(Rect::new(0, 0, 10, 10), uniint_raster::color::Color::RED);
        rig.settle();
        // Client 0 (RGB888) sees red; client 1 (Mono1) sees its reduction.
        let p0 = rig.proxies[0]
            .server_frame()
            .unwrap()
            .pixel(uniint_raster::geom::Point::new(5, 5))
            .unwrap();
        let p1 = rig.proxies[1]
            .server_frame()
            .unwrap()
            .pixel(uniint_raster::geom::Point::new(5, 5))
            .unwrap();
        assert_eq!(p0, uniint_raster::color::Color::RED);
        assert_ne!(p0, p1, "mono client got the reduced pixel");
    }

    #[test]
    fn bell_reaches_every_client() {
        let mut rig = Rig::new(2);
        rig.settle();
        rig.ui.ring_bell();
        let batches = rig.server.pump_all(&mut rig.ui);
        let bells = batches
            .iter()
            .filter(|(_, msgs)| msgs.contains(&ServerMessage::Bell))
            .count();
        assert_eq!(bells, 2);
    }

    #[test]
    fn unknown_client_is_ignored() {
        let mut rig = Rig::new(1);
        let replies = rig.server.handle_message(
            &mut rig.ui,
            99,
            ClientMessage::Hello {
                version: 1,
                name: "ghost".into(),
            },
        );
        assert!(replies.is_empty());
    }

    #[test]
    fn aggregate_stats_count_all_clients() {
        let mut rig = Rig::new(2);
        rig.settle();
        let s = rig.server.stats();
        assert!(s.updates_sent >= 2, "both initial full updates counted");
        assert!(s.payload_bytes > 0);
    }
}

#[cfg(test)]
mod disconnect_tests {
    use super::tests_support::Rig;

    #[test]
    fn disconnected_client_no_longer_served() {
        let mut rig = Rig::new(2);
        rig.settle();
        rig.server.disconnect(0);
        assert_eq!(rig.server.client_count(), 1);
        assert!(!rig.server.has_session(0));
        assert!(rig.server.has_session(1));
        // Damage is still delivered to the survivor only.
        rig.ui.framebuffer_mut().fill_rect(
            uniint_raster::geom::Rect::new(0, 0, 5, 5),
            uniint_raster::color::Color::GREEN,
        );
        let batches = rig.server.pump_all(&mut rig.ui);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].0, 1);
    }
}
