//! Session tap points for flight recording.
//!
//! A [`SessionTap`] observes every protocol message a session endpoint
//! consumes or produces, stamped with the session's notion of time. The
//! trait lives here (rather than in `uniint-trace`) so the session and
//! gateway layers can offer capture hooks without depending on the
//! recorder implementation — `uniint-trace` depends on core, implements
//! [`SessionTap`] for its writer, and hands sessions a [`SharedTap`].
//!
//! Recording semantics are **server-sided**: a [`Direction::ToServer`]
//! record is made when the server *consumes* a client message, and a
//! [`Direction::ToClient`] record when the server *produces* a reply —
//! not when the proxy happens to receive it. Messages the network drops
//! en route to the server are therefore never recorded (the server never
//! saw them), and retransmissions appear exactly as often as the server
//! processed them. Replaying the `ToServer` half into a fresh server
//! regenerates the `ToClient` half bit-for-bit, whatever the link did.

use std::sync::{Arc, Mutex};

/// Which way a recorded message was travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// A client message, recorded at the moment the server consumed it.
    ToServer,
    /// A server message, recorded at the moment the server produced it.
    ToClient,
}

/// Observer for the protocol stream of one or more sessions.
///
/// `bytes` is a single message **body** (tag + payload), without the
/// 4-byte wire length prefix. `channel` distinguishes concurrent
/// sessions sharing one tap (a [`crate::session::SimSession`] always
/// uses channel 0; the gateway uses the connection id).
pub trait SessionTap: Send {
    /// Records one message.
    fn record(&mut self, t_us: u64, channel: u32, dir: Direction, bytes: &[u8]);
}

/// A cloneable, thread-safe handle to a [`SessionTap`].
///
/// Sessions hold this by value; the gateway's state thread calls it from
/// another thread than the one that created it, hence the mutex.
#[derive(Clone)]
pub struct SharedTap {
    inner: Arc<Mutex<dyn SessionTap>>,
}

impl SharedTap {
    /// Wraps a tap implementation for sharing.
    pub fn new(tap: impl SessionTap + 'static) -> SharedTap {
        SharedTap {
            inner: Arc::new(Mutex::new(tap)),
        }
    }

    /// Records one message body through the shared tap.
    pub fn record(&self, t_us: u64, channel: u32, dir: Direction, bytes: &[u8]) {
        if let Ok(mut tap) = self.inner.lock() {
            tap.record(t_us, channel, dir, bytes);
        }
    }
}

impl std::fmt::Debug for SharedTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTap").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Seen = Arc<Mutex<Vec<(u64, u32, Direction, usize)>>>;

    struct CountingTap {
        seen: Seen,
    }

    impl SessionTap for CountingTap {
        fn record(&mut self, t_us: u64, channel: u32, dir: Direction, bytes: &[u8]) {
            self.seen
                .lock()
                .unwrap()
                .push((t_us, channel, dir, bytes.len()));
        }
    }

    #[test]
    fn shared_tap_records_through_clones() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let tap = SharedTap::new(CountingTap { seen: seen.clone() });
        let clone = tap.clone();
        tap.record(1, 0, Direction::ToServer, &[1, 2, 3]);
        clone.record(2, 7, Direction::ToClient, &[4]);
        let seen = seen.lock().unwrap();
        assert_eq!(
            *seen,
            vec![
                (1, 0, Direction::ToServer, 3),
                (2, 7, Direction::ToClient, 1),
            ]
        );
    }
}
