//! Situation model, user preferences and the device-selection policy.
//!
//! The paper's second key characteristic: "suitable input/output
//! interaction devices are chosen according to a user's preference, and
//! dynamically changed according to the user's current situation" — a
//! user cooking with both hands busy is switched to voice input; a user
//! on the sofa gets the remote and the TV display. This module encodes
//! that policy as an explicit, testable scoring function.

use serde::{Deserialize, Serialize};
use uniint_raster::geom::Size;

/// Input modalities an interaction device can offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputModality {
    /// Pen/touch pointing (PDA).
    Stylus,
    /// Phone-style 12-key pad.
    Keypad,
    /// Speech commands.
    Voice,
    /// Wearable gesture recognition.
    Gesture,
    /// Infrared remote-controller buttons.
    RemoteButtons,
    /// A full keyboard+mouse (desktop viewer).
    Keyboard,
}

impl InputModality {
    /// All modalities.
    pub const ALL: [InputModality; 6] = [
        InputModality::Stylus,
        InputModality::Keypad,
        InputModality::Voice,
        InputModality::Gesture,
        InputModality::RemoteButtons,
        InputModality::Keyboard,
    ];

    /// How many hands the modality occupies.
    pub const fn hands_needed(self) -> u8 {
        match self {
            InputModality::Voice => 0,
            InputModality::Gesture => 1,
            InputModality::Stylus => 2, // hold + pen
            InputModality::Keypad | InputModality::RemoteButtons => 1,
            InputModality::Keyboard => 2,
        }
    }
}

impl core::fmt::Display for InputModality {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            InputModality::Stylus => "stylus",
            InputModality::Keypad => "keypad",
            InputModality::Voice => "voice",
            InputModality::Gesture => "gesture",
            InputModality::RemoteButtons => "remote",
            InputModality::Keyboard => "keyboard",
        };
        f.write_str(s)
    }
}

/// Display hardware offered by an output-capable device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputProfile {
    /// Native resolution.
    pub size: Size,
    /// Color depth in bits per pixel.
    pub depth_bits: u32,
    /// Whether the screen is readable from across a room.
    pub far_readable: bool,
}

/// A device available for interaction, as advertised to the proxy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDescriptor {
    /// Stable identifier ("pda-1", "kitchen-tv").
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// The zone the device is fixed in; `None` for devices carried by the
    /// user (PDA, phone, wearable) which are usable everywhere.
    pub zone: Option<String>,
    /// Input capability, if any.
    pub input: Option<InputModality>,
    /// Output capability, if any.
    pub output: Option<OutputProfile>,
}

impl DeviceDescriptor {
    /// A carried (zone-free) device.
    pub fn carried(id: impl Into<String>, name: impl Into<String>) -> DeviceDescriptor {
        DeviceDescriptor {
            id: id.into(),
            name: name.into(),
            zone: None,
            input: None,
            output: None,
        }
    }

    /// A device fixed in `zone`.
    pub fn fixed(
        id: impl Into<String>,
        name: impl Into<String>,
        zone: impl Into<String>,
    ) -> DeviceDescriptor {
        DeviceDescriptor {
            id: id.into(),
            name: name.into(),
            zone: Some(zone.into()),
            input: None,
            output: None,
        }
    }

    /// Adds an input modality.
    pub fn with_input(mut self, m: InputModality) -> DeviceDescriptor {
        self.input = Some(m);
        self
    }

    /// Adds an output profile.
    pub fn with_output(mut self, o: OutputProfile) -> DeviceDescriptor {
        self.output = Some(o);
        self
    }
}

/// What the user is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Nothing in particular.
    Idle,
    /// Cooking: hands busy, eyes on the stove.
    Cooking,
    /// On the sofa watching TV.
    WatchingTv,
    /// Working at a desk.
    Working,
    /// Moving between rooms.
    Walking,
    /// In bed.
    Sleeping,
}

/// Ambient noise level, which gates voice input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Noise {
    /// Quiet room.
    Quiet,
    /// Normal conversation/music.
    Moderate,
    /// Loud environment; speech recognition unreliable.
    Loud,
}

/// A snapshot of the user's situation, as a context system would provide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Situation {
    /// The zone (room) the user is in.
    pub zone: String,
    /// Current activity.
    pub activity: Activity,
    /// Whether the user's hands are occupied.
    pub hands_busy: bool,
    /// Ambient noise.
    pub noise: Noise,
}

impl Situation {
    /// An idle, quiet situation in `zone`.
    pub fn idle(zone: impl Into<String>) -> Situation {
        Situation {
            zone: zone.into(),
            activity: Activity::Idle,
            hands_busy: false,
            noise: Noise::Quiet,
        }
    }
}

/// Per-user preferences: an ordered ranking of input modalities (first is
/// most preferred) and a taste for large screens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// User name.
    pub name: String,
    /// Most-preferred first. Unlisted modalities get no bonus.
    pub input_ranking: Vec<InputModality>,
    /// Extra weight on screen area when choosing outputs (0 = indifferent).
    pub prefers_large_screen: bool,
}

impl UserProfile {
    /// A profile with no particular preferences.
    pub fn neutral(name: impl Into<String>) -> UserProfile {
        UserProfile {
            name: name.into(),
            input_ranking: Vec::new(),
            prefers_large_screen: false,
        }
    }

    fn ranking_bonus(&self, m: InputModality) -> i32 {
        match self.input_ranking.iter().position(|&x| x == m) {
            Some(i) => 30 * (self.input_ranking.len() as i32 - i as i32),
            None => 0,
        }
    }
}

/// A scored candidate device.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked<'a> {
    /// The device.
    pub device: &'a DeviceDescriptor,
    /// Its score; higher is better. Candidates below
    /// [`SelectionPolicy::MIN_USABLE`] are unusable in this situation.
    pub score: i32,
}

/// The device-selection policy: deterministic scoring of candidates
/// against a situation and a user profile.
#[derive(Debug, Clone, Default)]
pub struct SelectionPolicy;

impl SelectionPolicy {
    /// Scores below this mean "do not use even if it is the only device".
    pub const MIN_USABLE: i32 = -500;

    /// Scores an input-capable device. Returns `None` when the device has
    /// no input capability.
    pub fn score_input(
        &self,
        dev: &DeviceDescriptor,
        sit: &Situation,
        user: &UserProfile,
    ) -> Option<i32> {
        let m = dev.input?;
        let mut score = 0i32;
        // Reachability: carried devices work everywhere; fixed devices
        // only in their own room.
        match &dev.zone {
            None => score += 40,
            Some(z) if *z == sit.zone => score += 60,
            Some(_) => score -= 1000,
        }
        // Hands.
        if sit.hands_busy {
            score += match m.hands_needed() {
                0 => 120,
                1 => -150,
                _ => -250,
            };
        }
        // Noise gates voice.
        if m == InputModality::Voice {
            score += match sit.noise {
                Noise::Quiet => 20,
                Noise::Moderate => -30,
                Noise::Loud => -400,
            };
            if sit.activity == Activity::Sleeping {
                score -= 100; // do not wake the household
            }
        }
        // Activity affinities.
        score += match (sit.activity, m) {
            (Activity::WatchingTv, InputModality::RemoteButtons) => 70,
            (Activity::Cooking, InputModality::Voice) => 60,
            (Activity::Working, InputModality::Keyboard) => 70,
            (Activity::Walking, InputModality::Keypad) => 30,
            (Activity::Walking, InputModality::Gesture) => 20,
            _ => 0,
        };
        score += user.ranking_bonus(m);
        Some(score)
    }

    /// Scores an output-capable device.
    pub fn score_output(
        &self,
        dev: &DeviceDescriptor,
        sit: &Situation,
        user: &UserProfile,
    ) -> Option<i32> {
        let o = dev.output?;
        let mut score = 0i32;
        match &dev.zone {
            None => score += 40,
            Some(z) if *z == sit.zone => score += 60,
            Some(_) => score -= 1000,
        }
        // Screen area, log-ish: bigger is better, with diminishing returns.
        let area = o.size.area().max(1);
        let mut area_w = 64 - area.leading_zeros() as i32; // ~log2(area)
        if user.prefers_large_screen {
            area_w *= 2;
        }
        score += area_w * 3;
        // Depth helps legibility.
        score += o.depth_bits as i32;
        // Watching TV from the sofa: must be far-readable.
        if sit.activity == Activity::WatchingTv {
            score += if o.far_readable { 80 } else { -60 };
        }
        // Cooking: a handheld screen is useless with busy hands; a fixed
        // panel in the kitchen is fine.
        if sit.hands_busy && dev.zone.is_none() {
            score -= 120;
        }
        Some(score)
    }

    /// Ranks all usable input candidates, best first (ties broken by id
    /// for determinism).
    pub fn rank_inputs<'a>(
        &self,
        devices: &'a [DeviceDescriptor],
        sit: &Situation,
        user: &UserProfile,
    ) -> Vec<Ranked<'a>> {
        let mut out: Vec<Ranked<'a>> = devices
            .iter()
            .filter_map(|d| {
                let score = self.score_input(d, sit, user)?;
                (score > Self::MIN_USABLE).then_some(Ranked { device: d, score })
            })
            .collect();
        out.sort_by(|a, b| b.score.cmp(&a.score).then(a.device.id.cmp(&b.device.id)));
        out
    }

    /// Ranks all usable output candidates, best first.
    pub fn rank_outputs<'a>(
        &self,
        devices: &'a [DeviceDescriptor],
        sit: &Situation,
        user: &UserProfile,
    ) -> Vec<Ranked<'a>> {
        let mut out: Vec<Ranked<'a>> = devices
            .iter()
            .filter_map(|d| {
                let score = self.score_output(d, sit, user)?;
                (score > Self::MIN_USABLE).then_some(Ranked { device: d, score })
            })
            .collect();
        out.sort_by(|a, b| b.score.cmp(&a.score).then(a.device.id.cmp(&b.device.id)));
        out
    }

    /// The best input device, if any is usable.
    pub fn select_input<'a>(
        &self,
        devices: &'a [DeviceDescriptor],
        sit: &Situation,
        user: &UserProfile,
    ) -> Option<&'a DeviceDescriptor> {
        self.rank_inputs(devices, sit, user)
            .first()
            .map(|r| r.device)
    }

    /// The best output device, if any is usable.
    pub fn select_output<'a>(
        &self,
        devices: &'a [DeviceDescriptor],
        sit: &Situation,
        user: &UserProfile,
    ) -> Option<&'a DeviceDescriptor> {
        self.rank_outputs(devices, sit, user)
            .first()
            .map(|r| r.device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn home_devices() -> Vec<DeviceDescriptor> {
        vec![
            DeviceDescriptor::carried("pda-1", "PDA")
                .with_input(InputModality::Stylus)
                .with_output(OutputProfile {
                    size: Size::new(240, 320),
                    depth_bits: 12,
                    far_readable: false,
                }),
            DeviceDescriptor::carried("phone-1", "Cell Phone")
                .with_input(InputModality::Keypad)
                .with_output(OutputProfile {
                    size: Size::new(128, 128),
                    depth_bits: 1,
                    far_readable: false,
                }),
            DeviceDescriptor::fixed("mic-kitchen", "Kitchen Mic", "kitchen")
                .with_input(InputModality::Voice),
            DeviceDescriptor::fixed("remote-lr", "IR Remote", "living-room")
                .with_input(InputModality::RemoteButtons),
            DeviceDescriptor::fixed("tv-lr", "Living Room TV", "living-room").with_output(
                OutputProfile {
                    size: Size::new(640, 480),
                    depth_bits: 24,
                    far_readable: true,
                },
            ),
        ]
    }

    #[test]
    fn cooking_hands_busy_selects_voice() {
        let devices = home_devices();
        let sit = Situation {
            zone: "kitchen".into(),
            activity: Activity::Cooking,
            hands_busy: true,
            noise: Noise::Moderate,
        };
        let user = UserProfile::neutral("u");
        let best = SelectionPolicy.select_input(&devices, &sit, &user).unwrap();
        assert_eq!(best.id, "mic-kitchen");
    }

    #[test]
    fn watching_tv_selects_remote_and_tv() {
        let devices = home_devices();
        let sit = Situation {
            zone: "living-room".into(),
            activity: Activity::WatchingTv,
            hands_busy: false,
            noise: Noise::Moderate,
        };
        let user = UserProfile::neutral("u");
        assert_eq!(
            SelectionPolicy
                .select_input(&devices, &sit, &user)
                .unwrap()
                .id,
            "remote-lr"
        );
        assert_eq!(
            SelectionPolicy
                .select_output(&devices, &sit, &user)
                .unwrap()
                .id,
            "tv-lr"
        );
    }

    #[test]
    fn wrong_room_fixed_devices_excluded() {
        let devices = home_devices();
        let sit = Situation::idle("bedroom");
        let user = UserProfile::neutral("u");
        let ranked = SelectionPolicy.rank_inputs(&devices, &sit, &user);
        assert!(
            ranked.iter().all(|r| r.device.zone.is_none()),
            "only carried devices usable in a room with no fixed devices: {ranked:?}"
        );
    }

    #[test]
    fn loud_noise_disables_voice() {
        let devices = home_devices();
        let sit = Situation {
            zone: "kitchen".into(),
            activity: Activity::Cooking,
            hands_busy: true,
            noise: Noise::Loud,
        };
        let user = UserProfile::neutral("u");
        let best = SelectionPolicy.select_input(&devices, &sit, &user).unwrap();
        assert_ne!(best.id, "mic-kitchen", "voice unusable in loud kitchen");
    }

    #[test]
    fn preference_ranking_breaks_ties() {
        let devices = home_devices();
        let sit = Situation::idle("hallway");
        let mut user = UserProfile::neutral("u");
        // Both carried devices are usable; prefer the phone keypad.
        user.input_ranking = vec![InputModality::Keypad, InputModality::Stylus];
        assert_eq!(
            SelectionPolicy
                .select_input(&devices, &sit, &user)
                .unwrap()
                .id,
            "phone-1"
        );
        user.input_ranking = vec![InputModality::Stylus, InputModality::Keypad];
        assert_eq!(
            SelectionPolicy
                .select_input(&devices, &sit, &user)
                .unwrap()
                .id,
            "pda-1"
        );
    }

    #[test]
    fn large_screen_preference_matters_in_room() {
        let devices = home_devices();
        let sit = Situation::idle("living-room");
        let user = UserProfile::neutral("u");
        // Even neutral users get the TV in its own room (zone + area).
        assert_eq!(
            SelectionPolicy
                .select_output(&devices, &sit, &user)
                .unwrap()
                .id,
            "tv-lr"
        );
        // Outside the room, carried PDA wins.
        let sit2 = Situation::idle("garden");
        assert_eq!(
            SelectionPolicy
                .select_output(&devices, &sit2, &user)
                .unwrap()
                .id,
            "pda-1"
        );
    }

    #[test]
    fn no_devices_no_selection() {
        let user = UserProfile::neutral("u");
        assert!(SelectionPolicy
            .select_input(&[], &Situation::idle("x"), &user)
            .is_none());
    }

    #[test]
    fn input_only_devices_never_rank_as_outputs() {
        let devices = home_devices();
        let sit = Situation::idle("living-room");
        let user = UserProfile::neutral("u");
        let outs = SelectionPolicy.rank_outputs(&devices, &sit, &user);
        assert!(outs.iter().all(|r| r.device.output.is_some()));
    }

    #[test]
    fn ranking_is_deterministic() {
        let devices = home_devices();
        let sit = Situation::idle("living-room");
        let user = UserProfile::neutral("u");
        let a: Vec<String> = SelectionPolicy
            .rank_inputs(&devices, &sit, &user)
            .iter()
            .map(|r| r.device.id.clone())
            .collect();
        let b: Vec<String> = SelectionPolicy
            .rank_inputs(&devices, &sit, &user)
            .iter()
            .map(|r| r.device.id.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sleeping_penalizes_voice() {
        let mic = DeviceDescriptor::fixed("mic", "Mic", "bedroom").with_input(InputModality::Voice);
        let remote = DeviceDescriptor::fixed("rem", "Remote", "bedroom")
            .with_input(InputModality::RemoteButtons);
        let sit = Situation {
            zone: "bedroom".into(),
            activity: Activity::Sleeping,
            hands_busy: false,
            noise: Noise::Quiet,
        };
        let user = UserProfile::neutral("u");
        let devices = [mic, remote];
        let best = SelectionPolicy.select_input(&devices, &sit, &user).unwrap();
        assert_eq!(best.id, "rem");
    }
}
