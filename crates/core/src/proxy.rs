//! The UniInt proxy — the paper's central component.
//!
//! The proxy replaces a thin-client *viewer*: it reconstructs the server's
//! framebuffer from protocol updates, hands frames to the currently
//! selected **output plug-in** for device-specific adaptation (scale,
//! quantize, dither), and pushes events from the currently selected
//! **input plug-in** to the server as universal keyboard/mouse events.
//! Both plug-ins can be swapped at any moment — that is the paper's
//! "dynamic change of interaction devices according to the user's
//! situation".

use crate::plugin::{DeviceEvent, DeviceFrame, InputContext, InputPlugin, OutputPlugin};
use uniint_protocol::encoding::{decode_rect, DecodedRect, Encoding};
use uniint_protocol::error::ProtocolError;
use uniint_protocol::input::InputEvent;
use uniint_protocol::message::{ClientMessage, ServerMessage, PROTOCOL_VERSION};
use uniint_raster::color::Color;
use uniint_raster::framebuffer::Framebuffer;
use uniint_raster::geom::{Rect, Size};
use uniint_raster::pixel::PixelFormat;
use uniint_raster::scale::scale_to_fit;
use uniint_telemetry::histogram::Histogram;
use uniint_telemetry::registry::{Counter, Registry};

/// Messages and frames produced by one proxy step.
#[derive(Debug, Default)]
pub struct ProxyOutput {
    /// Protocol messages to forward to the UniInt server.
    pub messages: Vec<ClientMessage>,
    /// An adapted frame for the output device, when the display changed.
    pub frame: Option<DeviceFrame>,
    /// Whether the server rang the bell.
    pub bell: bool,
}

/// Counters the benchmarks read from a proxy.
///
/// Since the telemetry migration this is a **snapshot view**: the live
/// values are counters in the proxy's [`Registry`], and
/// [`UniIntProxy::stats`] reconstructs this struct from them. The
/// `Copy + Eq` by-value API is unchanged, so existing tests and
/// benches compile as before.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Server update messages applied.
    pub updates_applied: u64,
    /// Rectangles decoded.
    pub rects_decoded: u64,
    /// Frames adapted for the output device.
    pub frames_adapted: u64,
    /// Device events translated to universal events.
    pub events_translated: u64,
    /// Device events that produced no universal event.
    pub events_dropped: u64,
    /// Client messages retransmitted after a connection break.
    pub retransmits: u64,
    /// Stalls detected (connection found dead mid-session).
    pub stalls: u64,
    /// Reconnect attempts made under exponential backoff.
    pub backoff_attempts: u64,
    /// Successful incremental resumes (server replayed from its log).
    pub resumes: u64,
    /// Full resynchronizations: the server could not replay, or recovery
    /// discarded the cached framebuffer and requested everything again.
    pub full_resyncs: u64,
    /// Universal events merged away by pointer-move coalescing.
    pub events_coalesced: u64,
    /// Universal events dropped by the per-call flood cap.
    pub flood_dropped: u64,
}

/// Most universal events one device event may queue. A translate call
/// returning more (an event storm) is coalesced and then truncated, so a
/// misbehaving plug-in cannot grow the outgoing queue without bound.
pub const MAX_EVENTS_PER_DEVICE_EVENT: usize = 64;

/// Pre-registered metric handles for one proxy. Handles are created
/// once at construction; every update on the message/input hot paths is
/// a lock-free atomic operation.
#[derive(Debug)]
struct ProxyMetrics {
    registry: Registry,
    updates_applied: Counter,
    rects_decoded: Counter,
    frames_adapted: Counter,
    events_translated: Counter,
    events_dropped: Counter,
    retransmits: Counter,
    stalls: Counter,
    backoff_attempts: Counter,
    resumes: Counter,
    full_resyncs: Counter,
    events_coalesced: Counter,
    flood_dropped: Counter,
    rect_payload_bytes: Histogram,
    rects_per_update: Histogram,
    frame_wire_bytes: Histogram,
    events_per_device_event: Histogram,
}

impl ProxyMetrics {
    fn new(registry: Registry) -> ProxyMetrics {
        ProxyMetrics {
            updates_applied: registry.counter("proxy.updates_applied"),
            rects_decoded: registry.counter("proxy.rects_decoded"),
            frames_adapted: registry.counter("proxy.frames_adapted"),
            events_translated: registry.counter("proxy.events_translated"),
            events_dropped: registry.counter("proxy.events_dropped"),
            retransmits: registry.counter("proxy.retransmits"),
            stalls: registry.counter("proxy.stalls"),
            backoff_attempts: registry.counter("proxy.backoff_attempts"),
            resumes: registry.counter("proxy.resumes"),
            full_resyncs: registry.counter("proxy.full_resyncs"),
            events_coalesced: registry.counter("proxy.events_coalesced"),
            flood_dropped: registry.counter("proxy.flood_dropped"),
            rect_payload_bytes: registry.histogram("proxy.rect_payload_bytes"),
            rects_per_update: registry.histogram("proxy.rects_per_update"),
            frame_wire_bytes: registry.histogram("proxy.frame_wire_bytes"),
            events_per_device_event: registry.histogram("proxy.events_per_device_event"),
            registry,
        }
    }
}

/// The universal interaction proxy.
///
/// ```
/// use uniint_core::proxy::UniIntProxy;
/// let mut proxy = UniIntProxy::new("hallway-proxy");
/// let hello = proxy.connect();
/// assert_eq!(hello.len(), 1); // Hello message for the server
/// ```
#[derive(Debug)]
pub struct UniIntProxy {
    name: String,
    fb: Option<Framebuffer>,
    format: PixelFormat,
    input_plugin: Option<Box<dyn InputPlugin>>,
    output_plugin: Option<Box<dyn OutputPlugin>>,
    connected: bool,
    metrics: ProxyMetrics,
    /// Sequence of the last applied update; echoed in `Resume`.
    last_update_seq: u64,
}

impl UniIntProxy {
    /// Creates a disconnected proxy with its own private registry.
    pub fn new(name: impl Into<String>) -> UniIntProxy {
        UniIntProxy::with_telemetry(name, Registry::new())
    }

    /// Creates a disconnected proxy recording into `registry` — a
    /// session shares one registry between the proxy, the server and
    /// the simulator so the export is a single coherent document.
    pub fn with_telemetry(name: impl Into<String>, registry: Registry) -> UniIntProxy {
        UniIntProxy {
            name: name.into(),
            fb: None,
            format: PixelFormat::Rgb888,
            input_plugin: None,
            output_plugin: None,
            connected: false,
            metrics: ProxyMetrics::new(registry),
            last_update_seq: 0,
        }
    }

    /// The registry this proxy records into.
    pub fn telemetry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Proxy name (sent in the protocol hello).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the session is established (Init received).
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Accumulated statistics, reconstructed from the registry counters
    /// (same `Copy` struct the benchmarks have always read).
    pub fn stats(&self) -> ProxyStats {
        let m = &self.metrics;
        ProxyStats {
            updates_applied: m.updates_applied.get(),
            rects_decoded: m.rects_decoded.get(),
            frames_adapted: m.frames_adapted.get(),
            events_translated: m.events_translated.get(),
            events_dropped: m.events_dropped.get(),
            retransmits: m.retransmits.get(),
            stalls: m.stalls.get(),
            backoff_attempts: m.backoff_attempts.get(),
            resumes: m.resumes.get(),
            full_resyncs: m.full_resyncs.get(),
            events_coalesced: m.events_coalesced.get(),
            flood_dropped: m.flood_dropped.get(),
        }
    }

    /// The pixel format updates are currently transported in (the active
    /// output device's format, or the server's native format).
    pub fn transport_format(&self) -> PixelFormat {
        self.format
    }

    /// The reconstructed server framebuffer, when connected.
    pub fn server_frame(&self) -> Option<&Framebuffer> {
        self.fb.as_ref()
    }

    /// Size of the server framebuffer, when known.
    pub fn server_size(&self) -> Option<Size> {
        self.fb.as_ref().map(|f| f.size())
    }

    /// The kinds of the currently attached plug-ins `(input, output)`.
    pub fn attached(&self) -> (Option<&'static str>, Option<&'static str>) {
        (
            self.input_plugin.as_ref().map(|p| p.kind()),
            self.output_plugin.as_ref().map(|p| p.kind()),
        )
    }

    /// Opens the session: the initial Hello.
    pub fn connect(&mut self) -> Vec<ClientMessage> {
        self.last_update_seq = 0;
        vec![ClientMessage::Hello {
            version: PROTOCOL_VERSION,
            name: self.name.clone(),
        }]
    }

    /// Sequence of the last server update this proxy applied.
    pub fn last_update_seq(&self) -> u64 {
        self.last_update_seq
    }

    /// Builds the reattach message after a connection break: asks the
    /// server to re-damage everything past the last applied update.
    pub fn make_resume(&self) -> ClientMessage {
        ClientMessage::Resume {
            last_update_seq: self.last_update_seq,
        }
    }

    /// Records a detected stall (connection found dead mid-session).
    pub fn record_stall(&mut self) {
        self.metrics.stalls.inc();
        self.metrics
            .registry
            .journal()
            .record("proxy.stall", self.name.clone());
    }

    /// Records one reconnect attempt made under backoff.
    pub fn record_backoff_attempt(&mut self) {
        self.metrics.backoff_attempts.inc();
    }

    /// Records `n` client messages retransmitted after reattach.
    pub fn record_retransmits(&mut self, n: u64) {
        self.metrics.retransmits.add(n);
    }

    /// Installs (or replaces) the input plug-in. Takes effect immediately
    /// — the paper's dynamic input-device switch.
    pub fn attach_input(&mut self, plugin: Box<dyn InputPlugin>) {
        self.input_plugin = Some(plugin);
    }

    /// Removes the input plug-in (device went away).
    pub fn detach_input(&mut self) {
        self.input_plugin = None;
    }

    /// Installs (or replaces) the output plug-in and renegotiates the
    /// session for the new device: pixel format, encodings and a full
    /// refresh. Returns the messages to send — the dynamic output switch.
    pub fn attach_output(&mut self, plugin: Box<dyn OutputPlugin>) -> Vec<ClientMessage> {
        let caps = plugin.caps();
        self.output_plugin = Some(plugin);
        // Transport in the device's own format: a mono LCD session should
        // not ship 24-bit pixels over a phone link.
        self.format = caps.format;
        if !self.connected {
            return Vec::new();
        }
        let bounds = self.fb.as_ref().map(|f| f.bounds()).unwrap_or(Rect::EMPTY);
        vec![
            ClientMessage::SetPixelFormat(self.format),
            ClientMessage::SetEncodings(Encoding::ALL.to_vec()),
            ClientMessage::UpdateRequest {
                incremental: false,
                rect: bounds,
            },
        ]
    }

    /// Removes the output plug-in.
    pub fn detach_output(&mut self) {
        self.output_plugin = None;
    }

    /// Handles one server message.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] from rectangle decoding; the caller
    /// should tear the session down on error.
    pub fn handle_server(&mut self, msg: &ServerMessage) -> Result<ProxyOutput, ProtocolError> {
        let mut out = ProxyOutput::default();
        match msg {
            ServerMessage::Init { width, height, .. } => {
                self.connected = true;
                self.fb = Some(Framebuffer::new(
                    (*width).max(1) as u32,
                    (*height).max(1) as u32,
                    Color::BLACK,
                ));
                out.messages
                    .push(ClientMessage::SetPixelFormat(self.format));
                out.messages
                    .push(ClientMessage::SetEncodings(Encoding::ALL.to_vec()));
                out.messages.push(ClientMessage::UpdateRequest {
                    incremental: false,
                    rect: Rect::new(0, 0, *width as u32, *height as u32),
                });
            }
            ServerMessage::Update { seq, format, rects } => {
                let Some(fb) = &mut self.fb else {
                    return Err(ProtocolError::Malformed("update before init".into()));
                };
                self.last_update_seq = *seq;
                for ru in rects {
                    let mut cursor: &[u8] = &ru.payload;
                    match decode_rect(&mut cursor, ru.rect, ru.encoding, *format)? {
                        DecodedRect::Pixels(px) => fb.write_rect(ru.rect, &px),
                        DecodedRect::CopyFrom(src) => fb.copy_rect(
                            Rect::new(src.x, src.y, ru.rect.w, ru.rect.h),
                            ru.rect.origin(),
                        ),
                    }
                    self.metrics.rects_decoded.inc();
                    self.metrics
                        .rect_payload_bytes
                        .record(ru.payload.len() as u64);
                }
                self.metrics.updates_applied.inc();
                self.metrics.rects_per_update.record(rects.len() as u64);
                out.frame = self.adapt_current();
                // Continuous update loop, as thin-client viewers do.
                out.messages.push(ClientMessage::UpdateRequest {
                    incremental: true,
                    rect: fb_bounds(&self.fb),
                });
            }
            ServerMessage::Resize { width, height } => {
                let new = Size::new((*width).max(1) as u32, (*height).max(1) as u32);
                // A same-size Resize (e.g. sent defensively during resume)
                // must not blow away the cached framebuffer.
                if self.fb.as_ref().map(|f| f.size()) != Some(new) {
                    self.fb = Some(Framebuffer::new(new.w, new.h, Color::BLACK));
                    out.messages.push(ClientMessage::UpdateRequest {
                        incremental: false,
                        rect: fb_bounds(&self.fb),
                    });
                }
            }
            ServerMessage::Bell => out.bell = true,
            ServerMessage::CutText(_) => {}
            ServerMessage::ResumeAck { replayed, .. } => {
                if *replayed {
                    self.metrics.resumes.inc();
                    self.metrics
                        .registry
                        .journal()
                        .record("proxy.resume", "incremental replay");
                } else {
                    self.metrics.full_resyncs.inc();
                    self.metrics
                        .registry
                        .journal()
                        .record("proxy.resume", "full resync (log gap)");
                }
                // The server re-damaged whatever the break lost; an
                // incremental request fetches exactly that.
                out.messages.push(ClientMessage::UpdateRequest {
                    incremental: true,
                    rect: fb_bounds(&self.fb),
                });
            }
        }
        Ok(out)
    }

    /// Adapts the current framebuffer through the output plug-in (a forced
    /// refresh of the output device).
    pub fn adapt_current(&mut self) -> Option<DeviceFrame> {
        let fb = self.fb.as_ref()?;
        let plugin = self.output_plugin.as_mut()?;
        self.metrics.frames_adapted.inc();
        let frame = plugin.adapt(fb);
        self.metrics
            .frame_wire_bytes
            .record(frame.wire_bytes as u64);
        Some(frame)
    }

    /// Recovery after a decode error: discards the (possibly corrupt)
    /// framebuffer contents and asks the server for a complete refresh.
    /// Callers should invoke this instead of tearing the session down
    /// when [`handle_server`](Self::handle_server) fails on a transport
    /// that is still alive.
    pub fn recover(&mut self) -> Vec<ClientMessage> {
        if !self.connected {
            return Vec::new();
        }
        self.metrics.full_resyncs.inc();
        self.metrics
            .registry
            .journal()
            .record("proxy.recover", "decode error: discarding cache");
        if let Some(fb) = &mut self.fb {
            // Blank the cache so stale pixels cannot survive a corrupt
            // update that was partially applied.
            fb.clear(Color::BLACK);
        }
        vec![
            ClientMessage::SetPixelFormat(self.format),
            ClientMessage::SetEncodings(Encoding::ALL.to_vec()),
            ClientMessage::UpdateRequest {
                incremental: false,
                rect: fb_bounds(&self.fb),
            },
        ]
    }

    /// Translates a device-native event via the input plug-in into
    /// protocol messages for the server.
    pub fn device_input(&mut self, ev: &DeviceEvent) -> Vec<ClientMessage> {
        let Some(plugin) = self.input_plugin.as_mut() else {
            self.metrics.events_dropped.inc();
            return Vec::new();
        };
        let server_size = self
            .fb
            .as_ref()
            .map(|f| f.size())
            .unwrap_or(Size::new(1, 1));
        let device_view = match self.output_plugin.as_ref() {
            Some(out) => {
                let caps = out.caps();
                // The image shown on the device is aspect-fit; stylus
                // coordinates arrive in that fitted image's space.
                fitted_view(server_size, caps.size)
            }
            None => server_size,
        };
        let ctx = InputContext {
            server_size,
            device_view,
        };
        let events = plugin.translate(ev, &ctx);

        // Flood protection. A storming plug-in (or a high-rate stylus)
        // can return far more events than one device event warrants; the
        // queue must stay bounded. Consecutive pointer events with the
        // same button state are pure moves — only the last one matters.
        let mut queue: Vec<InputEvent> = Vec::with_capacity(events.len().min(16));
        for e in events {
            if let InputEvent::Pointer { buttons, .. } = e {
                let mergeable = matches!(
                    queue.last(),
                    Some(InputEvent::Pointer { buttons: prev, .. }) if *prev == buttons
                );
                if mergeable {
                    *queue.last_mut().expect("just matched") = e;
                    self.metrics.events_coalesced.inc();
                    continue;
                }
            }
            if queue.len() >= MAX_EVENTS_PER_DEVICE_EVENT {
                self.metrics.flood_dropped.inc();
                continue;
            }
            queue.push(e);
        }

        self.metrics
            .events_per_device_event
            .record(queue.len() as u64);
        if queue.is_empty() {
            self.metrics.events_dropped.inc();
        } else {
            self.metrics.events_translated.add(queue.len() as u64);
        }
        queue.into_iter().map(ClientMessage::Input).collect()
    }
}

fn fb_bounds(fb: &Option<Framebuffer>) -> Rect {
    fb.as_ref().map(|f| f.bounds()).unwrap_or(Rect::EMPTY)
}

/// The size of `src` after aspect-preserving fit into `bounds`.
pub fn fitted_view(src: Size, bounds: Size) -> Size {
    if src.is_empty() || bounds.is_empty() {
        return bounds;
    }
    // Mirror the math in `scale_to_fit` without doing the work.
    let dummy = Framebuffer::new(src.w, src.h, Color::BLACK);
    scale_to_fit(&dummy, bounds, uniint_raster::scale::ScaleFilter::Nearest).size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::OutputCaps;
    use uniint_protocol::encoding::encode_rect;
    use uniint_protocol::input::InputEvent;
    use uniint_protocol::message::RectUpdate;
    use uniint_raster::dither::DitherMode;
    use uniint_raster::scale::ScaleFilter;

    /// A minimal test output plug-in: quarter-size mono.
    #[derive(Debug)]
    struct TestOutput;

    impl OutputPlugin for TestOutput {
        fn kind(&self) -> &'static str {
            "test-output"
        }
        fn caps(&self) -> OutputCaps {
            OutputCaps {
                size: Size::new(80, 60),
                format: PixelFormat::Mono1,
                dither: DitherMode::None,
                scale: ScaleFilter::Nearest,
            }
        }
        fn adapt(&mut self, server_frame: &Framebuffer) -> DeviceFrame {
            let frame = scale_to_fit(server_frame, Size::new(80, 60), ScaleFilter::Nearest);
            let wire_bytes = PixelFormat::Mono1.buffer_bytes(frame.width(), frame.height());
            DeviceFrame::new(frame, PixelFormat::Mono1, wire_bytes)
        }
    }

    /// A test input plug-in mapping chars to key taps.
    #[derive(Debug)]
    struct TestInput;

    impl InputPlugin for TestInput {
        fn kind(&self) -> &'static str {
            "test-input"
        }
        fn translate(&mut self, ev: &DeviceEvent, ctx: &InputContext) -> Vec<InputEvent> {
            match ev {
                DeviceEvent::Char(c) => InputEvent::key_tap((*c).into()).to_vec(),
                DeviceEvent::StylusDown { x, y } => {
                    let (sx, sy) = ctx.to_server(*x, *y);
                    vec![InputEvent::Pointer {
                        x: sx,
                        y: sy,
                        buttons: uniint_protocol::input::ButtonMask::LEFT,
                    }]
                }
                _ => Vec::new(),
            }
        }
    }

    fn init_msg() -> ServerMessage {
        ServerMessage::Init {
            version: 1,
            width: 160,
            height: 120,
            format: PixelFormat::Rgb888,
            name: "t".into(),
        }
    }

    fn update_for(rect: Rect, color: Color, format: PixelFormat) -> ServerMessage {
        let px = vec![color; rect.area() as usize];
        let payload = encode_rect(&px, rect, Encoding::Raw, format);
        ServerMessage::Update {
            seq: 1,
            format,
            rects: vec![RectUpdate {
                rect,
                encoding: Encoding::Raw,
                payload,
            }],
        }
    }

    #[test]
    fn init_triggers_negotiation_and_full_request() {
        let mut p = UniIntProxy::new("p");
        let out = p.handle_server(&init_msg()).unwrap();
        assert!(p.is_connected());
        assert_eq!(out.messages.len(), 3);
        assert!(matches!(out.messages[0], ClientMessage::SetPixelFormat(_)));
        assert!(matches!(
            out.messages[2],
            ClientMessage::UpdateRequest {
                incremental: false,
                ..
            }
        ));
    }

    #[test]
    fn updates_rebuild_framebuffer() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        let msg = update_for(Rect::new(0, 0, 160, 120), Color::WHITE, PixelFormat::Rgb888);
        let out = p.handle_server(&msg).unwrap();
        let fb = p.server_frame().unwrap();
        assert!(fb.pixels().iter().all(|&c| c == Color::WHITE));
        // Continuous loop: proxy immediately asks for more.
        assert!(matches!(
            out.messages.last(),
            Some(ClientMessage::UpdateRequest {
                incremental: true,
                ..
            })
        ));
    }

    #[test]
    fn update_before_init_is_error() {
        let mut p = UniIntProxy::new("p");
        let msg = update_for(Rect::new(0, 0, 4, 4), Color::WHITE, PixelFormat::Rgb888);
        assert!(p.handle_server(&msg).is_err());
    }

    #[test]
    fn output_plugin_gets_adapted_frames() {
        let mut p = UniIntProxy::new("p");
        p.attach_output(Box::new(TestOutput));
        p.handle_server(&init_msg()).unwrap();
        let msg = update_for(Rect::new(0, 0, 160, 120), Color::WHITE, PixelFormat::Mono1);
        let out = p.handle_server(&msg).unwrap();
        let frame = out.frame.expect("adapted frame");
        assert_eq!(frame.frame.size(), Size::new(80, 60));
        assert_eq!(frame.format, PixelFormat::Mono1);
        assert_eq!(p.stats().frames_adapted, 1);
    }

    #[test]
    fn attach_output_renegotiates_format() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        let msgs = p.attach_output(Box::new(TestOutput));
        assert!(msgs.contains(&ClientMessage::SetPixelFormat(PixelFormat::Mono1)));
        assert!(matches!(
            msgs.last(),
            Some(ClientMessage::UpdateRequest {
                incremental: false,
                ..
            })
        ));
    }

    #[test]
    fn attach_output_before_connect_sends_nothing() {
        let mut p = UniIntProxy::new("p");
        let msgs = p.attach_output(Box::new(TestOutput));
        assert!(msgs.is_empty());
    }

    #[test]
    fn input_plugin_translates() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        p.attach_input(Box::new(TestInput));
        let msgs = p.device_input(&DeviceEvent::Char('a'));
        assert_eq!(msgs.len(), 2, "press + release");
        assert_eq!(p.stats().events_translated, 2);
    }

    #[test]
    fn stylus_coordinates_mapped_to_server_space() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        p.attach_input(Box::new(TestInput));
        p.attach_output(Box::new(TestOutput));
        // Device view is 80x60 (same aspect); tapping its center must land
        // at the server center.
        let msgs = p.device_input(&DeviceEvent::StylusDown { x: 40, y: 30 });
        match msgs[0] {
            ClientMessage::Input(InputEvent::Pointer { x, y, .. }) => {
                assert_eq!((x, y), (80, 60));
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_input_plugin_drops_events() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        assert!(p.device_input(&DeviceEvent::Char('x')).is_empty());
        assert_eq!(p.stats().events_dropped, 1);
    }

    #[test]
    fn unrecognized_event_counts_dropped() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        p.attach_input(Box::new(TestInput));
        assert!(p.device_input(&DeviceEvent::KeypadSelect).is_empty());
        assert_eq!(p.stats().events_dropped, 1);
    }

    /// Returns `n` identical-button pointer moves followed by a click.
    #[derive(Debug)]
    struct StormInput(usize);

    impl InputPlugin for StormInput {
        fn kind(&self) -> &'static str {
            "storm-input"
        }
        fn translate(&mut self, _ev: &DeviceEvent, _ctx: &InputContext) -> Vec<InputEvent> {
            let mut out: Vec<InputEvent> = (0..self.0)
                .map(|i| InputEvent::Pointer {
                    x: i as u16,
                    y: 0,
                    buttons: uniint_protocol::input::ButtonMask::NONE,
                })
                .collect();
            out.extend(InputEvent::click(5, 5));
            out
        }
    }

    #[test]
    fn pointer_moves_coalesce_to_last_position() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        p.attach_input(Box::new(StormInput(10)));
        let msgs = p.device_input(&DeviceEvent::KeypadSelect);
        // 10 moves collapse to 1, the click's press+release survive as 2.
        assert_eq!(msgs.len(), 3);
        match msgs[0] {
            ClientMessage::Input(InputEvent::Pointer { x, .. }) => {
                assert_eq!(x, 9, "last move wins");
            }
            ref other => panic!("{other:?}"),
        }
        assert_eq!(p.stats().events_coalesced, 9);
        assert_eq!(p.stats().events_translated, 3);
        assert_eq!(p.stats().flood_dropped, 0);
    }

    #[test]
    fn event_storm_is_capped() {
        #[derive(Debug)]
        struct KeyStorm;
        impl InputPlugin for KeyStorm {
            fn kind(&self) -> &'static str {
                "key-storm"
            }
            fn translate(&mut self, _: &DeviceEvent, _: &InputContext) -> Vec<InputEvent> {
                // Keys never coalesce: the cap is the only defense.
                (0..1000)
                    .flat_map(|_| InputEvent::key_tap('x'.into()))
                    .collect()
            }
        }
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        p.attach_input(Box::new(KeyStorm));
        let msgs = p.device_input(&DeviceEvent::KeypadSelect);
        assert_eq!(msgs.len(), MAX_EVENTS_PER_DEVICE_EVENT);
        assert_eq!(
            p.stats().flood_dropped,
            2000 - MAX_EVENTS_PER_DEVICE_EVENT as u64
        );
        assert_eq!(
            p.stats().events_translated,
            MAX_EVENTS_PER_DEVICE_EVENT as u64
        );
    }

    #[test]
    fn transport_format_tracks_output_caps() {
        let mut p = UniIntProxy::new("p");
        assert_eq!(p.transport_format(), PixelFormat::Rgb888);
        p.attach_output(Box::new(TestOutput));
        assert_eq!(p.transport_format(), PixelFormat::Mono1);
    }

    #[test]
    fn resize_reallocates_and_requests_full() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        let out = p
            .handle_server(&ServerMessage::Resize {
                width: 320,
                height: 240,
            })
            .unwrap();
        assert_eq!(p.server_size(), Some(Size::new(320, 240)));
        assert!(matches!(
            out.messages[0],
            ClientMessage::UpdateRequest {
                incremental: false,
                ..
            }
        ));
    }

    #[test]
    fn bell_passes_through() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        let out = p.handle_server(&ServerMessage::Bell).unwrap();
        assert!(out.bell);
    }

    #[test]
    fn copyrect_applies_against_cache() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&init_msg()).unwrap();
        // Paint left half white.
        let msg = update_for(Rect::new(0, 0, 80, 120), Color::WHITE, PixelFormat::Rgb888);
        p.handle_server(&msg).unwrap();
        // CopyRect the left half onto the right half.
        let cr = ServerMessage::Update {
            seq: 2,
            format: PixelFormat::Rgb888,
            rects: vec![RectUpdate {
                rect: Rect::new(80, 0, 80, 120),
                encoding: Encoding::CopyRect,
                payload: uniint_protocol::encoding::encode_copy_rect(
                    uniint_raster::geom::Point::new(0, 0),
                ),
            }],
        };
        p.handle_server(&cr).unwrap();
        let fb = p.server_frame().unwrap();
        assert_eq!(
            fb.pixel(uniint_raster::geom::Point::new(159, 60)),
            Some(Color::WHITE)
        );
    }

    #[test]
    fn attached_reports_kinds() {
        let mut p = UniIntProxy::new("p");
        assert_eq!(p.attached(), (None, None));
        p.attach_input(Box::new(TestInput));
        p.attach_output(Box::new(TestOutput));
        assert_eq!(p.attached(), (Some("test-input"), Some("test-output")));
        p.detach_input();
        p.detach_output();
        assert_eq!(p.attached(), (None, None));
    }

    #[test]
    fn fitted_view_math() {
        assert_eq!(
            fitted_view(Size::new(640, 480), Size::new(160, 160)),
            Size::new(160, 120)
        );
        assert_eq!(
            fitted_view(Size::new(100, 100), Size::new(50, 25)),
            Size::new(25, 25)
        );
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use uniint_protocol::message::RectUpdate;

    #[test]
    fn recover_before_connect_is_empty() {
        let mut p = UniIntProxy::new("p");
        assert!(p.recover().is_empty());
    }

    #[test]
    fn recover_requests_full_refresh_after_corrupt_update() {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&ServerMessage::Init {
            version: 1,
            width: 64,
            height: 48,
            format: PixelFormat::Rgb888,
            name: "x".into(),
        })
        .unwrap();
        // A corrupt update: truncated raw payload.
        let bad = ServerMessage::Update {
            seq: 1,
            format: PixelFormat::Rgb888,
            rects: vec![RectUpdate {
                rect: Rect::new(0, 0, 64, 48),
                encoding: Encoding::Raw,
                payload: vec![1, 2, 3],
            }],
        };
        assert!(p.handle_server(&bad).is_err());
        let msgs = p.recover();
        assert_eq!(msgs.len(), 3);
        assert!(matches!(
            msgs[2],
            ClientMessage::UpdateRequest {
                incremental: false,
                ..
            }
        ));
        // The session keeps working afterwards.
        assert!(p.is_connected());
    }
}
