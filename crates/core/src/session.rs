//! End-to-end sessions wiring application window, UniInt server and
//! UniInt proxy together — in memory ([`LocalSession`]) or across the
//! network simulator ([`SimSession`]).

use crate::plugin::{DeviceEvent, DeviceFrame};
use crate::proxy::UniIntProxy;
use crate::server::UniIntServer;
use uniint_netsim::link::LinkProfile;
use uniint_netsim::sim::{Endpoint, Simulator};
use uniint_protocol::error::ProtocolError;
use uniint_protocol::message::{
    encode_client, encode_server, ClientMessage, FrameReader, ServerMessage,
};
use uniint_wsys::ui::Ui;

/// A complete session with a zero-latency in-process "wire".
///
/// The appliance application owns the [`Ui`]; the session owns server and
/// proxy and shuttles messages between them until quiescence after every
/// stimulus. This is the workhorse of tests, examples and benchmarks.
#[derive(Debug)]
pub struct LocalSession {
    /// The UniInt server endpoint.
    pub server: UniIntServer,
    /// The UniInt proxy endpoint.
    pub proxy: UniIntProxy,
    last_frame: Option<DeviceFrame>,
    bells: u32,
}

impl LocalSession {
    /// Connects a new session against `ui` (handshake completes before
    /// returning).
    pub fn connect(ui: &mut Ui) -> LocalSession {
        let mut s = LocalSession {
            server: UniIntServer::new(ui),
            proxy: UniIntProxy::new("local-proxy"),
            last_frame: None,
            bells: 0,
        };
        let hello = s.proxy.connect();
        s.deliver_to_server(ui, hello);
        s
    }

    /// The most recent frame adapted for the output device.
    pub fn last_frame(&self) -> Option<&DeviceFrame> {
        self.last_frame.as_ref()
    }

    /// Takes the most recent adapted frame.
    pub fn take_frame(&mut self) -> Option<DeviceFrame> {
        self.last_frame.take()
    }

    /// Bell count so far.
    pub fn bells(&self) -> u32 {
        self.bells
    }

    /// Feeds a device-native input event through the proxy to the server
    /// and pumps until quiescent. Widget actions land in `ui`.
    pub fn device_input(&mut self, ui: &mut Ui, ev: &DeviceEvent) {
        let msgs = self.proxy.device_input(ev);
        self.deliver_to_server(ui, msgs);
        self.pump(ui);
    }

    /// Renders pending UI changes and flushes updates to the proxy.
    /// Call after the application mutates widgets programmatically.
    pub fn pump(&mut self, ui: &mut Ui) {
        let msgs = self.server.pump(ui);
        self.deliver_to_proxy(ui, msgs);
    }

    /// Announces a window resize (panel recomposition) to the proxy.
    pub fn notify_resize(&mut self, ui: &mut Ui) {
        let msgs = self.server.notify_resize(ui);
        self.deliver_to_proxy(ui, msgs);
    }

    /// Delivers client messages to the server, then pumps replies back.
    pub fn deliver_to_server(&mut self, ui: &mut Ui, msgs: Vec<ClientMessage>) {
        let mut replies = Vec::new();
        for m in msgs {
            replies.extend(self.server.handle_message(ui, m));
        }
        // Input may have produced repaints worth flushing now.
        replies.extend(self.server.pump(ui));
        self.deliver_to_proxy(ui, replies);
    }

    fn deliver_to_proxy(&mut self, ui: &mut Ui, msgs: Vec<ServerMessage>) {
        let mut to_server = Vec::new();
        for m in msgs {
            let out = self
                .proxy
                .handle_server(&m)
                .expect("local wire never corrupts messages");
            if let Some(f) = out.frame {
                self.last_frame = Some(f);
            }
            if out.bell {
                self.bells += 1;
            }
            to_server.extend(out.messages);
        }
        if !to_server.is_empty() {
            let mut replies = Vec::new();
            for m in to_server {
                replies.extend(self.server.handle_message(ui, m));
            }
            if !replies.is_empty() {
                self.deliver_to_proxy(ui, replies);
            }
        }
    }
}

/// A session whose server↔proxy wire crosses the discrete-event network
/// simulator, with full protocol serialization. Used to measure update
/// rates over realistic home links (wired/WLAN/Bluetooth/cellular).
#[derive(Debug)]
pub struct SimSession {
    /// The UniInt server endpoint.
    pub server: UniIntServer,
    /// The UniInt proxy endpoint.
    pub proxy: UniIntProxy,
    /// The virtual network.
    pub sim: Simulator,
    server_ep: Endpoint,
    proxy_ep: Endpoint,
    server_rx: FrameReader,
    proxy_rx: FrameReader,
    last_frame: Option<DeviceFrame>,
    frames_delivered: u64,
}

impl SimSession {
    /// Creates a session over `link`, completing the handshake (the
    /// virtual clock advances accordingly).
    pub fn connect(ui: &mut Ui, link: LinkProfile, seed: u64) -> Result<SimSession, ProtocolError> {
        let mut sim = Simulator::new(seed);
        let (proxy_ep, server_ep) = sim.link(link);
        let mut s = SimSession {
            server: UniIntServer::new(ui),
            proxy: UniIntProxy::new("sim-proxy"),
            sim,
            server_ep,
            proxy_ep,
            server_rx: FrameReader::new(),
            proxy_rx: FrameReader::new(),
            last_frame: None,
            frames_delivered: 0,
        };
        for m in s.proxy.connect() {
            s.sim.send(s.proxy_ep, encode_client(&m));
        }
        s.settle(ui)?;
        Ok(s)
    }

    /// Virtual time, microseconds.
    pub fn now_us(&self) -> u64 {
        self.sim.now_us()
    }

    /// Frames delivered to the output device so far.
    pub fn frames_delivered(&self) -> u64 {
        self.frames_delivered
    }

    /// The most recent adapted frame.
    pub fn last_frame(&self) -> Option<&DeviceFrame> {
        self.last_frame.as_ref()
    }

    /// Total bytes the server sent over the wire.
    pub fn server_wire_bytes(&self) -> u64 {
        self.sim.bytes_sent(self.server_ep)
    }

    /// Injects a device event at the proxy side and advances the network
    /// until idle.
    pub fn device_input(&mut self, ui: &mut Ui, ev: &DeviceEvent) -> Result<(), ProtocolError> {
        for m in self.proxy.device_input(ev) {
            self.sim.send(self.proxy_ep, encode_client(&m));
        }
        self.settle(ui)
    }

    /// Sends proxy-originated protocol messages (e.g. the renegotiation
    /// produced by an output plug-in switch) across the simulated wire
    /// and settles.
    pub fn send_client(
        &mut self,
        ui: &mut Ui,
        msgs: Vec<ClientMessage>,
    ) -> Result<(), ProtocolError> {
        for m in msgs {
            self.sim.send(self.proxy_ep, encode_client(&m));
        }
        self.settle(ui)
    }

    /// Flushes application-side UI changes into the network and runs it
    /// until idle.
    pub fn settle(&mut self, ui: &mut Ui) -> Result<(), ProtocolError> {
        loop {
            // Drain server-side application damage first.
            for m in self.server.pump(ui) {
                self.sim.send(self.server_ep, encode_server(&m));
            }
            if self.sim.step().is_none() {
                break;
            }
            // Deliver everything that has arrived by now at both ends.
            while let Some(bytes) = self.sim.recv(self.server_ep) {
                self.server_rx.feed(&bytes);
            }
            while let Some(frame) = self.server_rx.next_frame()? {
                let msg = ClientMessage::decode_body(&mut frame.as_slice())?;
                for reply in self.server.handle_message(ui, msg) {
                    self.sim.send(self.server_ep, encode_server(&reply));
                }
            }
            while let Some(bytes) = self.sim.recv(self.proxy_ep) {
                self.proxy_rx.feed(&bytes);
            }
            while let Some(frame) = self.proxy_rx.next_frame()? {
                let msg = ServerMessage::decode_body(&mut frame.as_slice())?;
                let out = self.proxy.handle_server(&msg)?;
                if let Some(f) = out.frame {
                    self.last_frame = Some(f);
                    self.frames_delivered += 1;
                }
                for m in out.messages {
                    self.sim.send(self.proxy_ep, encode_client(&m));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::{InputContext, InputPlugin, OutputCaps, OutputPlugin};
    use uniint_protocol::input::InputEvent;
    use uniint_raster::dither::DitherMode;
    use uniint_raster::framebuffer::Framebuffer;
    use uniint_raster::geom::{Point, Rect, Size};
    use uniint_raster::pixel::PixelFormat;
    use uniint_raster::scale::{scale_to_fit, ScaleFilter};
    use uniint_wsys::prelude::*;

    #[derive(Debug)]
    struct TapInput;
    impl InputPlugin for TapInput {
        fn kind(&self) -> &'static str {
            "tap"
        }
        fn translate(&mut self, ev: &DeviceEvent, ctx: &InputContext) -> Vec<InputEvent> {
            match ev {
                DeviceEvent::StylusDown { x, y } => {
                    let (sx, sy) = ctx.to_server(*x, *y);
                    InputEvent::click(sx, sy).to_vec()
                }
                _ => Vec::new(),
            }
        }
    }

    #[derive(Debug)]
    struct SmallScreen;
    impl OutputPlugin for SmallScreen {
        fn kind(&self) -> &'static str {
            "small"
        }
        fn caps(&self) -> OutputCaps {
            OutputCaps {
                size: Size::new(80, 60),
                format: PixelFormat::Rgb565,
                dither: DitherMode::None,
                scale: ScaleFilter::Nearest,
            }
        }
        fn adapt(&mut self, fb: &Framebuffer) -> DeviceFrame {
            let frame = scale_to_fit(fb, Size::new(80, 60), ScaleFilter::Nearest);
            let wire_bytes = PixelFormat::Rgb565.buffer_bytes(frame.width(), frame.height());
            DeviceFrame::new(frame, PixelFormat::Rgb565, wire_bytes)
        }
    }

    fn panel() -> Ui {
        let mut ui = Ui::new(160, 120, Theme::classic(), "panel");
        ui.add(Button::new("Power"), Rect::new(30, 30, 100, 30));
        ui
    }

    #[test]
    fn local_session_full_loop() {
        let mut ui = panel();
        let mut s = LocalSession::connect(&mut ui);
        assert!(s.proxy.is_connected());
        s.proxy.attach_input(Box::new(TapInput));
        let msgs = s.proxy.attach_output(Box::new(SmallScreen));
        s.deliver_to_server(&mut ui, msgs);
        assert!(s.last_frame().is_some(), "output got the first frame");
        // Tap the middle of the (fitted 80x60) view → button click.
        s.device_input(&mut ui, &DeviceEvent::StylusDown { x: 40, y: 22 });
        let actions = ui.take_actions();
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].action, Action::Clicked);
    }

    #[test]
    fn local_session_frame_tracks_ui_mutation() {
        let mut ui = panel();
        let mut s = LocalSession::connect(&mut ui);
        let msgs = s.proxy.attach_output(Box::new(SmallScreen));
        s.deliver_to_server(&mut ui, msgs);
        let before = s.take_frame().expect("initial frame");
        // Mutate the UI: the button caption changes.
        let id = ui.widget_ids()[0];
        ui.widget_mut::<Button>(id).unwrap().set_caption("Standby");
        s.pump(&mut ui);
        let after = s.take_frame().expect("updated frame");
        assert_ne!(before.frame, after.frame);
    }

    #[test]
    fn local_session_bell() {
        let mut ui = panel();
        let mut s = LocalSession::connect(&mut ui);
        ui.ring_bell();
        s.pump(&mut ui);
        assert_eq!(s.bells(), 1);
    }

    #[test]
    fn local_session_resize_propagates() {
        let mut ui = panel();
        let mut s = LocalSession::connect(&mut ui);
        ui.resize(320, 240);
        s.notify_resize(&mut ui);
        assert_eq!(s.proxy.server_size(), Some(Size::new(320, 240)));
    }

    #[test]
    fn sim_session_handshake_and_click() {
        let mut ui = panel();
        let mut s = SimSession::connect(&mut ui, LinkProfile::wifi80211b(), 7).unwrap();
        assert!(s.proxy.is_connected());
        assert!(s.now_us() > 0, "handshake consumed virtual time");
        s.proxy.attach_input(Box::new(TapInput));
        s.device_input(&mut ui, &DeviceEvent::StylusDown { x: 80, y: 45 })
            .unwrap();
        assert_eq!(ui.take_actions().len(), 1);
    }

    #[test]
    fn sim_session_slower_link_takes_longer() {
        let run = |link| {
            let mut ui = panel();
            let s = SimSession::connect(&mut ui, link, 3).unwrap();
            s.now_us()
        };
        let fast = run(LinkProfile::ethernet100());
        let slow = run(LinkProfile::cellular_gprs());
        assert!(slow > 10 * fast, "gprs {slow}us vs ethernet {fast}us");
    }

    #[test]
    fn sim_session_counts_frames_and_bytes() {
        let mut ui = panel();
        let mut s = SimSession::connect(&mut ui, LinkProfile::ethernet100(), 1).unwrap();
        let _ = s.proxy.attach_output(Box::new(SmallScreen));
        // Force a repaint by mutating the UI.
        let id = ui.widget_ids()[0];
        ui.widget_mut::<Button>(id).unwrap().set_caption("X");
        s.settle(&mut ui).unwrap();
        assert!(s.server_wire_bytes() > 0);
        assert!(s.frames_delivered() >= 1);
    }

    #[test]
    fn sim_session_reconstructed_fb_matches_ui() {
        let mut ui = panel();
        let mut s = SimSession::connect(&mut ui, LinkProfile::bluetooth(), 5).unwrap();
        s.settle(&mut ui).unwrap();
        let remote = s.proxy.server_frame().unwrap();
        // The proxy transported at Rgb888 here, so pixels match exactly.
        for y in [0i32, 40, 80] {
            for x in [0i32, 50, 100] {
                assert_eq!(
                    remote.pixel(Point::new(x, y)),
                    ui.framebuffer().pixel(Point::new(x, y)),
                    "({x},{y})"
                );
            }
        }
    }
}
