//! End-to-end sessions wiring application window, UniInt server and
//! UniInt proxy together — in memory ([`LocalSession`]) or across the
//! network simulator ([`SimSession`]).

use crate::plugin::{DeviceEvent, DeviceFrame};
use crate::proxy::UniIntProxy;
use crate::server::UniIntServer;
use crate::tap::{Direction, SharedTap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniint_netsim::link::LinkProfile;
use uniint_netsim::sim::{Endpoint, Simulator};
use uniint_protocol::error::ProtocolError;
use uniint_protocol::message::{
    encode_client, encode_server, ClientMessage, FrameReader, ServerMessage,
};
use uniint_telemetry::registry::Registry;
use uniint_wsys::ui::Ui;

/// Why a [`SimSession`] operation failed.
#[derive(Debug)]
pub enum SessionError {
    /// The byte stream decoded to something invalid.
    Protocol(ProtocolError),
    /// The connection stalled and every reconnect attempt failed — the
    /// link never came back within the backoff budget.
    Stalled {
        /// Reconnect attempts made before giving up.
        attempts: u32,
    },
}

impl From<ProtocolError> for SessionError {
    fn from(e: ProtocolError) -> SessionError {
        SessionError::Protocol(e)
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Protocol(e) => write!(f, "protocol error: {e}"),
            SessionError::Stalled { attempts } => {
                write!(
                    f,
                    "connection stalled; gave up after {attempts} reconnect attempts"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Protocol(e) => Some(e),
            SessionError::Stalled { .. } => None,
        }
    }
}

/// A complete session with a zero-latency in-process "wire".
///
/// The appliance application owns the [`Ui`]; the session owns server and
/// proxy and shuttles messages between them until quiescence after every
/// stimulus. This is the workhorse of tests, examples and benchmarks.
#[derive(Debug)]
pub struct LocalSession {
    /// The UniInt server endpoint.
    pub server: UniIntServer,
    /// The UniInt proxy endpoint.
    pub proxy: UniIntProxy,
    last_frame: Option<DeviceFrame>,
    bells: u32,
}

impl LocalSession {
    /// Connects a new session against `ui` (handshake completes before
    /// returning). Server and proxy share one telemetry [`Registry`].
    pub fn connect(ui: &mut Ui) -> LocalSession {
        let registry = Registry::new();
        let mut s = LocalSession {
            server: UniIntServer::with_telemetry(ui, registry.clone()),
            proxy: UniIntProxy::with_telemetry("local-proxy", registry),
            last_frame: None,
            bells: 0,
        };
        let hello = s.proxy.connect();
        s.deliver_to_server(ui, hello);
        s
    }

    /// The telemetry registry shared by this session's server and proxy.
    pub fn telemetry(&self) -> &Registry {
        self.proxy.telemetry()
    }

    /// The most recent frame adapted for the output device.
    pub fn last_frame(&self) -> Option<&DeviceFrame> {
        self.last_frame.as_ref()
    }

    /// Takes the most recent adapted frame.
    pub fn take_frame(&mut self) -> Option<DeviceFrame> {
        self.last_frame.take()
    }

    /// Bell count so far.
    pub fn bells(&self) -> u32 {
        self.bells
    }

    /// Feeds a device-native input event through the proxy to the server
    /// and pumps until quiescent. Widget actions land in `ui`.
    pub fn device_input(&mut self, ui: &mut Ui, ev: &DeviceEvent) {
        let msgs = self.proxy.device_input(ev);
        self.deliver_to_server(ui, msgs);
        self.pump(ui);
    }

    /// Renders pending UI changes and flushes updates to the proxy.
    /// Call after the application mutates widgets programmatically.
    pub fn pump(&mut self, ui: &mut Ui) {
        let msgs = self.server.pump(ui);
        self.deliver_to_proxy(ui, msgs);
    }

    /// Announces a window resize (panel recomposition) to the proxy.
    pub fn notify_resize(&mut self, ui: &mut Ui) {
        let msgs = self.server.notify_resize(ui);
        self.deliver_to_proxy(ui, msgs);
    }

    /// Delivers client messages to the server, then pumps replies back.
    pub fn deliver_to_server(&mut self, ui: &mut Ui, msgs: Vec<ClientMessage>) {
        let mut replies = Vec::new();
        for m in msgs {
            replies.extend(self.server.handle_message(ui, m));
        }
        // Input may have produced repaints worth flushing now.
        replies.extend(self.server.pump(ui));
        self.deliver_to_proxy(ui, replies);
    }

    fn deliver_to_proxy(&mut self, ui: &mut Ui, msgs: Vec<ServerMessage>) {
        let mut to_server = Vec::new();
        for m in msgs {
            let out = self
                .proxy
                .handle_server(&m)
                .expect("local wire never corrupts messages");
            if let Some(f) = out.frame {
                self.last_frame = Some(f);
            }
            if out.bell {
                self.bells += 1;
            }
            to_server.extend(out.messages);
        }
        if !to_server.is_empty() {
            let mut replies = Vec::new();
            for m in to_server {
                replies.extend(self.server.handle_message(ui, m));
            }
            if !replies.is_empty() {
                self.deliver_to_proxy(ui, replies);
            }
        }
    }
}

/// First backoff delay before a reconnect attempt, microseconds.
const BACKOFF_BASE_US: u64 = 20_000;
/// Backoff delay ceiling, microseconds.
const BACKOFF_CAP_US: u64 = 1_000_000;
/// Reconnect attempts per stall before declaring the session dead.
const MAX_BACKOFF_ATTEMPTS: u32 = 16;
/// Consecutive resume attempts that may die on the wire before the
/// session escalates to a full refresh instead of an incremental one.
const MAX_FAILED_RESUMES: u32 = 3;

/// A session whose server↔proxy wire crosses the discrete-event network
/// simulator, with full protocol serialization. Used to measure update
/// rates over realistic home links (wired/WLAN/Bluetooth/cellular).
///
/// The session is **self-healing**: hard link faults (flap windows,
/// Gilbert–Elliott burst drops) tear the simulated connection down, and
/// [`SimSession::settle`] detects the stall (network idle while the link
/// is down), reconnects with exponential backoff plus deterministic
/// jitter, and resumes the protocol session incrementally — the proxy
/// asks the server to replay only the updates it missed
/// ([`ClientMessage::Resume`]) and retransmits its own lost client
/// messages from a session-side log once the server reports how many it
/// received ([`ServerMessage::ResumeAck`]). After `MAX_FAILED_RESUMES`
/// resume attempts are themselves lost, the session falls back to a full
/// framebuffer refresh. All recovery activity is visible in
/// [`crate::proxy::ProxyStats`].
#[derive(Debug)]
pub struct SimSession {
    /// The UniInt server endpoint.
    pub server: UniIntServer,
    /// The UniInt proxy endpoint.
    pub proxy: UniIntProxy,
    /// The virtual network.
    pub sim: Simulator,
    server_ep: Endpoint,
    proxy_ep: Endpoint,
    server_rx: FrameReader,
    proxy_rx: FrameReader,
    last_frame: Option<DeviceFrame>,
    frames_delivered: u64,
    /// Every client message sent this session except `Resume`, in send
    /// order, minus an already-acknowledged prefix of `log_offset`
    /// messages. The server counts received client messages the same
    /// way, so `ResumeAck::client_msgs_received` indexes straight into
    /// this log: everything at or past that count was lost in flight
    /// and is retransmitted verbatim.
    client_log: Vec<ClientMessage>,
    /// Messages dropped from the front of `client_log` (known received).
    log_offset: u64,
    /// Dedicated RNG for backoff jitter, seeded from the connect seed so
    /// recovery timing is exactly reproducible.
    backoff_rng: StdRng,
    /// A `Resume` is on the wire and unacknowledged.
    resume_pending: bool,
    /// Consecutive resumes that stalled again before their ack arrived.
    failed_resumes: u32,
    /// Flight-recorder tap, if any: sees every client message the server
    /// consumes and every server message it produces (channel 0),
    /// stamped with virtual time. `None` costs one branch per message.
    recorder: Option<SharedTap>,
}

impl SimSession {
    /// Creates a session over `link`, completing the handshake (the
    /// virtual clock advances accordingly).
    pub fn connect(ui: &mut Ui, link: LinkProfile, seed: u64) -> Result<SimSession, SessionError> {
        Self::connect_recorded(ui, link, seed, None)
    }

    /// Like [`SimSession::connect`], but attaches a flight-recorder tap
    /// *before* the handshake so the trace holds the complete
    /// conversation from `Hello` onwards (see [`crate::tap`] for the
    /// recording semantics).
    pub fn connect_recorded(
        ui: &mut Ui,
        link: LinkProfile,
        seed: u64,
        recorder: Option<SharedTap>,
    ) -> Result<SimSession, SessionError> {
        let registry = Registry::new();
        let mut sim = Simulator::new(seed);
        sim.attach_telemetry(&registry);
        let (proxy_ep, server_ep) = sim.link(link);
        let mut s = SimSession {
            server: UniIntServer::with_telemetry(ui, registry.clone()),
            proxy: UniIntProxy::with_telemetry("sim-proxy", registry),
            sim,
            server_ep,
            proxy_ep,
            server_rx: FrameReader::new(),
            proxy_rx: FrameReader::new(),
            last_frame: None,
            frames_delivered: 0,
            client_log: Vec::new(),
            log_offset: 0,
            backoff_rng: StdRng::seed_from_u64(seed ^ 0x5e55_10e5_b0ff_0e5e),
            resume_pending: false,
            failed_resumes: 0,
            recorder,
        };
        for m in s.proxy.connect() {
            s.send_logged(m);
        }
        s.settle(ui)?;
        Ok(s)
    }

    /// Virtual time, microseconds.
    pub fn now_us(&self) -> u64 {
        self.sim.now_us()
    }

    /// The telemetry registry shared by proxy, server and simulator.
    /// All readings are clocked from the simulator's virtual time, so
    /// two runs with the same seed produce byte-identical snapshots.
    pub fn telemetry(&self) -> &Registry {
        self.proxy.telemetry()
    }

    /// The proxy's network endpoint (e.g. for scheduling link faults).
    pub fn proxy_endpoint(&self) -> Endpoint {
        self.proxy_ep
    }

    /// The server's network endpoint.
    pub fn server_endpoint(&self) -> Endpoint {
        self.server_ep
    }

    /// Frames delivered to the output device so far.
    pub fn frames_delivered(&self) -> u64 {
        self.frames_delivered
    }

    /// The most recent adapted frame.
    pub fn last_frame(&self) -> Option<&DeviceFrame> {
        self.last_frame.as_ref()
    }

    /// Total bytes the server sent over the wire.
    pub fn server_wire_bytes(&self) -> u64 {
        self.sim.bytes_sent(self.server_ep)
    }

    /// Injects a device event at the proxy side and advances the network
    /// until idle.
    pub fn device_input(&mut self, ui: &mut Ui, ev: &DeviceEvent) -> Result<(), SessionError> {
        for m in self.proxy.device_input(ev) {
            self.send_logged(m);
        }
        self.settle(ui)
    }

    /// Sends proxy-originated protocol messages (e.g. the renegotiation
    /// produced by an output plug-in switch) across the simulated wire
    /// and settles.
    pub fn send_client(
        &mut self,
        ui: &mut Ui,
        msgs: Vec<ClientMessage>,
    ) -> Result<(), SessionError> {
        for m in msgs {
            self.send_logged(m);
        }
        self.settle(ui)
    }

    /// Sends a client message and appends it to the retransmission log.
    ///
    /// Every regular client message must travel through here so the log
    /// stays aligned with the server's received-message count; `Resume`
    /// itself and retransmissions bypass it (the server excludes the
    /// former from its count, and the latter are already logged).
    fn send_logged(&mut self, m: ClientMessage) {
        self.sim.send(self.proxy_ep, encode_client(&m));
        self.client_log.push(m);
    }

    /// Flushes application-side UI changes into the network and runs it
    /// until idle, recovering from any connection breaks on the way.
    pub fn settle(&mut self, ui: &mut Ui) -> Result<(), SessionError> {
        loop {
            // Drain server-side application damage first.
            for m in self.server.pump(ui) {
                self.send_server(&m);
            }
            if self.sim.step().is_none() {
                if self.sim.link_up(self.proxy_ep) {
                    return Ok(());
                }
                // Idle with the link down: the pending exchange is dead
                // in the water. Recover, then settle the resumed traffic.
                self.recover_connection()?;
                continue;
            }
            // Deliver everything that has arrived by now at both ends.
            while let Some(bytes) = self.sim.recv(self.server_ep) {
                self.server_rx.feed(&bytes);
            }
            while let Some(frame) = self.server_rx.next_frame()? {
                if let Some(tap) = &self.recorder {
                    tap.record(self.sim.now_us(), 0, Direction::ToServer, &frame);
                }
                let msg = ClientMessage::decode_body(&mut frame.as_slice())?;
                for reply in self.server.handle_message(ui, msg) {
                    self.send_server(&reply);
                }
            }
            while let Some(bytes) = self.sim.recv(self.proxy_ep) {
                self.proxy_rx.feed(&bytes);
            }
            while let Some(frame) = self.proxy_rx.next_frame()? {
                let msg = ServerMessage::decode_body(&mut frame.as_slice())?;
                if let ServerMessage::ResumeAck {
                    client_msgs_received,
                    ..
                } = &msg
                {
                    self.on_resume_ack(*client_msgs_received);
                }
                let out = self.proxy.handle_server(&msg)?;
                if let Some(f) = out.frame {
                    self.last_frame = Some(f);
                    self.frames_delivered += 1;
                }
                for m in out.messages {
                    self.send_logged(m);
                }
            }
        }
    }

    /// Encodes and sends a server message across the simulated wire,
    /// recording it (production order, body only) when a tap is set.
    fn send_server(&mut self, m: &ServerMessage) {
        let bytes = encode_server(m);
        if let Some(tap) = &self.recorder {
            tap.record(self.sim.now_us(), 0, Direction::ToClient, &bytes[4..]);
        }
        self.sim.send(self.server_ep, bytes);
    }

    /// Brings a torn-down link back up (exponential backoff + jitter)
    /// and restarts the protocol conversation on top of it.
    fn recover_connection(&mut self) -> Result<(), SessionError> {
        // Records elapsed virtual time into `session.recovery_us` when
        // it drops, whichever way the recovery ends.
        let _span = self.proxy.telemetry().span("session.recovery");
        self.proxy.record_stall();
        let mut delay = BACKOFF_BASE_US;
        let mut attempts = 0u32;
        loop {
            if attempts >= MAX_BACKOFF_ATTEMPTS {
                return Err(SessionError::Stalled { attempts });
            }
            attempts += 1;
            self.proxy.record_backoff_attempt();
            let jitter = self.backoff_rng.gen_range(0..=delay / 4);
            self.sim.advance(delay + jitter);
            if self.sim.reconnect(self.proxy_ep) {
                break;
            }
            delay = (delay * 2).min(BACKOFF_CAP_US);
        }
        if !self.proxy.is_connected() {
            // The break beat the handshake: nothing to resume, start over.
            self.client_log.clear();
            self.log_offset = 0;
            self.resume_pending = false;
            self.failed_resumes = 0;
            for m in self.proxy.connect() {
                self.send_logged(m);
            }
            return Ok(());
        }
        if self.resume_pending {
            self.failed_resumes += 1;
        }
        self.resume_pending = true;
        // Resume is deliberately not logged: the server leaves it out of
        // its received-message count.
        let resume = self.proxy.make_resume();
        self.sim.send(self.proxy_ep, encode_client(&resume));
        if self.failed_resumes >= MAX_FAILED_RESUMES {
            // Incremental resume keeps dying on the wire — escalate to a
            // full refresh (lost inputs are still retransmitted when the
            // ResumeAck for the resume above lands).
            self.failed_resumes = 0;
            for m in self.proxy.recover() {
                self.send_logged(m);
            }
        }
        Ok(())
    }

    /// Reacts to the server's resume handshake: retransmits, in original
    /// order, every logged client message the server reports missing.
    fn on_resume_ack(&mut self, client_msgs_received: u64) {
        self.resume_pending = false;
        self.failed_resumes = 0;
        let start = client_msgs_received.saturating_sub(self.log_offset) as usize;
        let missing: Vec<ClientMessage> = match self.client_log.get(start..) {
            Some(tail) => tail.to_vec(),
            None => Vec::new(),
        };
        self.proxy.record_retransmits(missing.len() as u64);
        for m in &missing {
            // Already logged the first time around.
            self.sim.send(self.proxy_ep, encode_client(m));
        }
        if start > 0 {
            // Everything before the ack count is known-received; drop it.
            self.client_log.drain(..start.min(self.client_log.len()));
            self.log_offset = client_msgs_received.min(self.log_offset + start as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::{InputContext, InputPlugin, OutputCaps, OutputPlugin};
    use uniint_protocol::input::InputEvent;
    use uniint_raster::dither::DitherMode;
    use uniint_raster::framebuffer::Framebuffer;
    use uniint_raster::geom::{Point, Rect, Size};
    use uniint_raster::pixel::PixelFormat;
    use uniint_raster::scale::{scale_to_fit, ScaleFilter};
    use uniint_wsys::prelude::*;

    #[derive(Debug)]
    struct TapInput;
    impl InputPlugin for TapInput {
        fn kind(&self) -> &'static str {
            "tap"
        }
        fn translate(&mut self, ev: &DeviceEvent, ctx: &InputContext) -> Vec<InputEvent> {
            match ev {
                DeviceEvent::StylusDown { x, y } => {
                    let (sx, sy) = ctx.to_server(*x, *y);
                    InputEvent::click(sx, sy).to_vec()
                }
                _ => Vec::new(),
            }
        }
    }

    #[derive(Debug)]
    struct SmallScreen;
    impl OutputPlugin for SmallScreen {
        fn kind(&self) -> &'static str {
            "small"
        }
        fn caps(&self) -> OutputCaps {
            OutputCaps {
                size: Size::new(80, 60),
                format: PixelFormat::Rgb565,
                dither: DitherMode::None,
                scale: ScaleFilter::Nearest,
            }
        }
        fn adapt(&mut self, fb: &Framebuffer) -> DeviceFrame {
            let frame = scale_to_fit(fb, Size::new(80, 60), ScaleFilter::Nearest);
            let wire_bytes = PixelFormat::Rgb565.buffer_bytes(frame.width(), frame.height());
            DeviceFrame::new(frame, PixelFormat::Rgb565, wire_bytes)
        }
    }

    fn panel() -> Ui {
        let mut ui = Ui::new(160, 120, Theme::classic(), "panel");
        ui.add(Button::new("Power"), Rect::new(30, 30, 100, 30));
        ui
    }

    #[test]
    fn local_session_full_loop() {
        let mut ui = panel();
        let mut s = LocalSession::connect(&mut ui);
        assert!(s.proxy.is_connected());
        s.proxy.attach_input(Box::new(TapInput));
        let msgs = s.proxy.attach_output(Box::new(SmallScreen));
        s.deliver_to_server(&mut ui, msgs);
        assert!(s.last_frame().is_some(), "output got the first frame");
        // Tap the middle of the (fitted 80x60) view → button click.
        s.device_input(&mut ui, &DeviceEvent::StylusDown { x: 40, y: 22 });
        let actions = ui.take_actions();
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].action, Action::Clicked);
    }

    #[test]
    fn local_session_frame_tracks_ui_mutation() {
        let mut ui = panel();
        let mut s = LocalSession::connect(&mut ui);
        let msgs = s.proxy.attach_output(Box::new(SmallScreen));
        s.deliver_to_server(&mut ui, msgs);
        let before = s.take_frame().expect("initial frame");
        // Mutate the UI: the button caption changes.
        let id = ui.widget_ids()[0];
        ui.widget_mut::<Button>(id).unwrap().set_caption("Standby");
        s.pump(&mut ui);
        let after = s.take_frame().expect("updated frame");
        assert_ne!(before.frame, after.frame);
    }

    #[test]
    fn local_session_bell() {
        let mut ui = panel();
        let mut s = LocalSession::connect(&mut ui);
        ui.ring_bell();
        s.pump(&mut ui);
        assert_eq!(s.bells(), 1);
    }

    #[test]
    fn local_session_resize_propagates() {
        let mut ui = panel();
        let mut s = LocalSession::connect(&mut ui);
        ui.resize(320, 240);
        s.notify_resize(&mut ui);
        assert_eq!(s.proxy.server_size(), Some(Size::new(320, 240)));
    }

    #[test]
    fn sim_session_handshake_and_click() {
        let mut ui = panel();
        let mut s = SimSession::connect(&mut ui, LinkProfile::wifi80211b(), 7).unwrap();
        assert!(s.proxy.is_connected());
        assert!(s.now_us() > 0, "handshake consumed virtual time");
        s.proxy.attach_input(Box::new(TapInput));
        s.device_input(&mut ui, &DeviceEvent::StylusDown { x: 80, y: 45 })
            .unwrap();
        assert_eq!(ui.take_actions().len(), 1);
    }

    #[test]
    fn sim_session_slower_link_takes_longer() {
        let run = |link| {
            let mut ui = panel();
            let s = SimSession::connect(&mut ui, link, 3).unwrap();
            s.now_us()
        };
        let fast = run(LinkProfile::ethernet100());
        let slow = run(LinkProfile::cellular_gprs());
        assert!(slow > 10 * fast, "gprs {slow}us vs ethernet {fast}us");
    }

    #[test]
    fn sim_session_counts_frames_and_bytes() {
        let mut ui = panel();
        let mut s = SimSession::connect(&mut ui, LinkProfile::ethernet100(), 1).unwrap();
        let _ = s.proxy.attach_output(Box::new(SmallScreen));
        // Force a repaint by mutating the UI.
        let id = ui.widget_ids()[0];
        ui.widget_mut::<Button>(id).unwrap().set_caption("X");
        s.settle(&mut ui).unwrap();
        assert!(s.server_wire_bytes() > 0);
        assert!(s.frames_delivered() >= 1);
    }

    /// Compares the proxy's reconstructed framebuffer against the
    /// server-side UI pixel-for-pixel (transport format is Rgb888 by
    /// default, so equality is exact).
    fn assert_fb_converged(s: &SimSession, ui: &Ui) {
        let remote = s.proxy.server_frame().expect("proxy holds a framebuffer");
        let local = ui.framebuffer();
        assert_eq!(remote.size(), local.size());
        for y in 0..local.height() as i32 {
            for x in 0..local.width() as i32 {
                assert_eq!(
                    remote.pixel(Point::new(x, y)),
                    local.pixel(Point::new(x, y)),
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn sim_session_resumes_incrementally_after_flap() {
        use uniint_netsim::fault::FaultSchedule;

        let mut ui = panel();
        let mut s = SimSession::connect(&mut ui, LinkProfile::wifi80211b(), 11).unwrap();
        s.proxy.attach_input(Box::new(TapInput));
        // A 2 s flap opens right as the user interacts: the tap's input
        // messages die on the wire and the connection tears down.
        let t0 = s.now_us();
        s.sim
            .set_link_faults(s.proxy_ep, FaultSchedule::new().flap(t0, t0 + 2_000_000));
        s.device_input(&mut ui, &DeviceEvent::StylusDown { x: 80, y: 45 })
            .unwrap();

        let st = s.proxy.stats();
        assert!(st.stalls >= 1, "stall was detected: {st:?}");
        assert!(st.backoff_attempts >= 1, "backoff ran: {st:?}");
        assert!(st.resumes >= 1, "session resumed incrementally: {st:?}");
        assert_eq!(st.full_resyncs, 0, "no full resync needed: {st:?}");
        assert!(st.retransmits >= 1, "lost input was retransmitted: {st:?}");
        // The retransmitted click arrived exactly once.
        assert_eq!(ui.take_actions().len(), 1);
        // Backoff waited out the flap: well past 2 s of virtual time.
        assert!(s.now_us() >= t0 + 2_000_000);
        assert_fb_converged(&s, &ui);
    }

    #[test]
    fn sim_session_survives_burst_loss_mid_update() {
        use uniint_netsim::fault::FaultSchedule;

        let mut ui = panel();
        let mut s = SimSession::connect(&mut ui, LinkProfile::bluetooth(), 23).unwrap();
        s.proxy.attach_input(Box::new(TapInput));
        // A plausibly bursty radio: the chain enters the bad state on a
        // few percent of sends and then usually drops the connection.
        s.sim
            .set_link_faults(s.proxy_ep, FaultSchedule::new().burst_loss(0.05, 0.7, 0.8));
        // Several rounds of interaction while the Gilbert–Elliott chain
        // keeps snapping the link.
        for i in 0..4 {
            let id = ui.widget_ids()[0];
            ui.widget_mut::<Button>(id)
                .unwrap()
                .set_caption(if i % 2 == 0 { "Standby" } else { "Power" });
            s.device_input(&mut ui, &DeviceEvent::StylusDown { x: 80, y: 45 })
                .unwrap();
        }
        assert_eq!(ui.take_actions().len(), 4, "every click landed once");
        let st = s.proxy.stats();
        assert!(
            st.stalls >= 1,
            "burst loss broke the link at least once: {st:?}"
        );
        assert_fb_converged(&s, &ui);
    }

    #[test]
    fn sim_session_recovery_is_deterministic() {
        use uniint_netsim::fault::FaultSchedule;

        let run = |seed: u64| {
            let mut ui = panel();
            let mut s = SimSession::connect(&mut ui, LinkProfile::wifi80211b(), seed).unwrap();
            s.proxy.attach_input(Box::new(TapInput));
            let t0 = s.now_us();
            s.sim.set_link_faults(
                s.proxy_ep,
                FaultSchedule::new()
                    .flap(t0, t0 + 500_000)
                    .burst_loss(0.2, 0.5, 0.8),
            );
            s.device_input(&mut ui, &DeviceEvent::StylusDown { x: 80, y: 45 })
                .unwrap();
            (s.now_us(), s.proxy.stats(), s.server_wire_bytes())
        };
        assert_eq!(run(99), run(99), "same seed, same recovery timeline");
    }

    #[test]
    fn sim_session_stalls_out_when_flap_outlasts_backoff() {
        use uniint_netsim::fault::FaultSchedule;

        let mut ui = panel();
        let mut s = SimSession::connect(&mut ui, LinkProfile::wifi80211b(), 31).unwrap();
        let t0 = s.now_us();
        // Longer than the whole backoff budget (16 attempts capped at
        // 1 s + 25% jitter each).
        s.sim
            .set_link_faults(s.proxy_ep, FaultSchedule::new().flap(t0, t0 + 60_000_000));
        s.proxy.attach_input(Box::new(TapInput));
        let err = s
            .device_input(&mut ui, &DeviceEvent::StylusDown { x: 80, y: 45 })
            .unwrap_err();
        match err {
            SessionError::Stalled { attempts } => assert_eq!(attempts, 16),
            other => panic!("expected Stalled, got {other}"),
        }
    }

    #[test]
    fn sim_session_reconstructed_fb_matches_ui() {
        let mut ui = panel();
        let mut s = SimSession::connect(&mut ui, LinkProfile::bluetooth(), 5).unwrap();
        s.settle(&mut ui).unwrap();
        let remote = s.proxy.server_frame().unwrap();
        // The proxy transported at Rgb888 here, so pixels match exactly.
        for y in [0i32, 40, 80] {
            for x in [0i32, 50, 100] {
                assert_eq!(
                    remote.pixel(Point::new(x, y)),
                    ui.framebuffer().pixel(Point::new(x, y)),
                    "({x},{y})"
                );
            }
        }
    }
}
