//! The UniInt plug-in model.
//!
//! In the paper, each interaction device *transmits a plug-in module* to
//! the UniInt proxy: an **input plug-in** translating device-native events
//! into universal keyboard/mouse events, and an **output plug-in**
//! converting server bitmaps into something the device can display. The
//! proxy stays generic; all device knowledge lives in the plug-ins.

use serde::{Deserialize, Serialize};
use uniint_protocol::input::InputEvent;
use uniint_raster::dither::DitherMode;
use uniint_raster::framebuffer::Framebuffer;
use uniint_raster::geom::Size;
use uniint_raster::pixel::PixelFormat;
use uniint_raster::region::Region;
use uniint_raster::scale::ScaleFilter;

/// Navigation directions on directional pads / gesture vocabularies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Nav {
    /// Up.
    Up,
    /// Down.
    Down,
    /// Left.
    Left,
    /// Right.
    Right,
}

/// Buttons on a classic infrared remote controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RemoteKey {
    /// Power toggle.
    Power,
    /// Channel up.
    ChannelUp,
    /// Channel down.
    ChannelDown,
    /// Volume up.
    VolumeUp,
    /// Volume down.
    VolumeDown,
    /// Mute toggle.
    Mute,
    /// OK/confirm.
    Ok,
    /// Menu/back.
    Menu,
    /// A digit key `0..=9`.
    Digit(u8),
}

/// Hand gestures recognized by a wearable device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gesture {
    /// Swipe in a direction.
    Swipe(Nav),
    /// Closed fist: select/activate.
    Fist,
    /// Open palm: cancel/back.
    Palm,
    /// Circular motion: cycle focus.
    Circle,
}

/// A device-native input event, before translation to the universal
/// protocol. This is the vocabulary input plug-ins consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeviceEvent {
    /// Stylus/touch contact on a device screen (device coordinates).
    StylusDown {
        /// X on the device screen.
        x: u16,
        /// Y on the device screen.
        y: u16,
    },
    /// Stylus/touch drag.
    StylusMove {
        /// X on the device screen.
        x: u16,
        /// Y on the device screen.
        y: u16,
    },
    /// Stylus/touch lift.
    StylusUp {
        /// X on the device screen.
        x: u16,
        /// Y on the device screen.
        y: u16,
    },
    /// A phone keypad digit `0..=9`.
    KeypadDigit(u8),
    /// A phone keypad navigation key.
    KeypadNav(Nav),
    /// Keypad select (center key).
    KeypadSelect,
    /// Keypad back/clear.
    KeypadBack,
    /// A recognized voice utterance (already speech-to-text'd).
    Voice(String),
    /// A wearable gesture.
    Gesture(Gesture),
    /// An infrared remote button.
    Remote(RemoteKey),
    /// A full keyboard character (e.g. from a desktop viewer).
    Char(char),
}

/// What an output device can display; drives the proxy's adaptation
/// pipeline and its `SetPixelFormat` negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutputCaps {
    /// Native screen size in pixels.
    pub size: Size,
    /// Deepest pixel format the device can show.
    pub format: PixelFormat,
    /// Dithering the plug-in applies when reducing depth.
    pub dither: DitherMode,
    /// Scaling filter used to fit the server frame.
    pub scale: ScaleFilter,
}

/// A frame fully adapted for one output device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFrame {
    /// Pixels, already at device resolution and reduced to the device's
    /// representable colors.
    pub frame: Framebuffer,
    /// The format the pixels are representable in.
    pub format: PixelFormat,
    /// Bytes a full-frame transfer occupies on the device link.
    pub wire_bytes: usize,
    /// Device pixels that differ from the previously adapted frame
    /// (full bounds on the first frame). Device links that support
    /// partial refresh (most 2002 LCD controllers did) only ship this.
    pub changed: Region,
}

impl DeviceFrame {
    /// Creates a frame whose whole area counts as changed.
    pub fn new(frame: Framebuffer, format: PixelFormat, wire_bytes: usize) -> DeviceFrame {
        let changed = Region::from_rect(frame.bounds());
        DeviceFrame {
            frame,
            format,
            wire_bytes,
            changed,
        }
    }

    /// Sets the changed region.
    pub fn with_changed(mut self, changed: Region) -> DeviceFrame {
        self.changed = changed;
        self
    }

    /// Bytes a delta transfer of only the changed pixels would occupy
    /// (per-pixel cost; ignores sub-byte packing slack).
    pub fn delta_bytes(&self) -> usize {
        (self.changed.area() as usize * self.format.bits_per_pixel() as usize).div_ceil(8)
    }
}

/// Context handed to input plug-ins so they can map device coordinates
/// into the server's framebuffer space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputContext {
    /// Size of the server framebuffer (universal coordinate space).
    pub server_size: Size,
    /// Size of the *displayed* image on the device (after aspect fit).
    pub device_view: Size,
}

impl InputContext {
    /// Maps a device-view coordinate to server coordinates.
    pub fn to_server(&self, x: u16, y: u16) -> (u16, u16) {
        let sx = (x as u64 * self.server_size.w as u64 / self.device_view.w.max(1) as u64)
            .min(self.server_size.w.saturating_sub(1) as u64);
        let sy = (y as u64 * self.server_size.h as u64 / self.device_view.h.max(1) as u64)
            .min(self.server_size.h.saturating_sub(1) as u64);
        (sx as u16, sy as u16)
    }
}

/// Translates device-native events into universal input events.
///
/// Implementations are uploaded by the input device when the proxy
/// selects it (see [`crate::proxy::UniIntProxy::attach_input`]).
pub trait InputPlugin: std::fmt::Debug + Send {
    /// The device kind this plug-in speaks for ("pda-stylus", "keypad"...).
    fn kind(&self) -> &'static str;

    /// Translates one device event. May return zero events (unrecognized
    /// utterance) or several (a click is press + release).
    fn translate(&mut self, ev: &DeviceEvent, ctx: &InputContext) -> Vec<InputEvent>;
}

/// Converts server frames for one output device.
pub trait OutputPlugin: std::fmt::Debug + Send {
    /// The device kind this plug-in renders for.
    fn kind(&self) -> &'static str;

    /// The device's display capabilities.
    fn caps(&self) -> OutputCaps;

    /// Adapts a full server frame to the device.
    fn adapt(&mut self, server_frame: &Framebuffer) -> DeviceFrame;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_context_maps_corners() {
        let ctx = InputContext {
            server_size: Size::new(640, 480),
            device_view: Size::new(160, 120),
        };
        assert_eq!(ctx.to_server(0, 0), (0, 0));
        assert_eq!(ctx.to_server(159, 119), (636, 476));
        assert_eq!(ctx.to_server(80, 60), (320, 240));
    }

    #[test]
    fn input_context_clamps_overshoot() {
        let ctx = InputContext {
            server_size: Size::new(100, 100),
            device_view: Size::new(50, 50),
        };
        assert_eq!(ctx.to_server(200, 200), (99, 99));
    }

    #[test]
    fn input_context_degenerate_view() {
        let ctx = InputContext {
            server_size: Size::new(100, 100),
            device_view: Size::new(0, 0),
        };
        // Must not divide by zero.
        let _ = ctx.to_server(10, 10);
    }
}
