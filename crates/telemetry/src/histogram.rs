//! Fixed-bucket latency/size histograms with deterministic quantiles.
//!
//! Buckets are power-of-two ranges: bucket 0 holds the value `0`,
//! bucket `k` (k ≥ 1) holds `[2^(k-1), 2^k - 1]`. The layout is fixed at
//! compile time, so recording is a single atomic increment and two runs
//! that record the same values produce identical snapshots — no
//! adaptive resizing, no sampling.
//!
//! Quantiles are reported as the **upper bound of the bucket containing
//! the quantile rank**, clamped into `[min, max]` of the recorded
//! values. That makes `min ≤ p50 ≤ p95 ≤ p99 ≤ max` hold exactly (see
//! the property tests) while every reported number stays an integer —
//! canonical JSON never carries a float.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// Index of the bucket holding `v`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct Core {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Core {
    fn default() -> Core {
        Core {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A handle onto one registered histogram. Cloning shares the cells;
/// recording is lock-free.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Histogram {
    /// A detached histogram (normally obtained from a registry).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let c = &self.core;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// A consistent point-in-time view (quantiles computed here).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.core;
        let buckets: Vec<u64> = c
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let min = if count == 0 {
            0
        } else {
            c.min.load(Ordering::Relaxed)
        };
        let max = c.max.load(Ordering::Relaxed);
        let quantile = |q_num: u64, q_den: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            // rank = ceil(count * q), 1-based.
            let rank = (count * q_num).div_ceil(q_den).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_bound(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: quantile(1, 2),
            p95: quantile(19, 20),
            p99: quantile(99, 100),
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (bucket_bound(i), n))
                .collect(),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median estimate (bucket upper bound, clamped to `[min, max]`).
    pub p50: u64,
    /// 95th percentile estimate.
    pub p95: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99),
            (0, 0, 0, 0, 0, 0, 0)
        );
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn single_value_pins_all_quantiles() {
        let h = Histogram::new();
        h.record(777);
        let s = h.snapshot();
        assert_eq!((s.min, s.max), (777, 777));
        assert_eq!((s.p50, s.p95, s.p99), (777, 777, 777));
        assert_eq!(s.mean(), 777);
    }

    #[test]
    fn bucket_layout_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_ordered() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 5000, 5000, 80000, 3, 9, 0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.count, 10);
    }

    #[test]
    fn clones_share_cells() {
        let h = Histogram::new();
        let h2 = h.clone();
        h.record(5);
        h2.record(6);
        assert_eq!(h.count(), 2);
    }
}
