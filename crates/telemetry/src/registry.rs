//! The metrics registry: named counters, gauges and histograms plus the
//! shared clock and journal.
//!
//! Locking discipline: the registry's maps are behind a `Mutex`, but the
//! mutex is taken only on **registration** (get-or-create by name) and
//! on snapshot. Instrumented code registers its handles once — at proxy
//! construction, at link creation — and every subsequent update is a
//! plain atomic operation on the handle. Hot paths never touch the lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::VirtualClock;
use crate::histogram::Histogram;
use crate::journal::{Journal, Span};
use crate::snapshot::Snapshot;

/// A monotonically increasing counter handle. Clones share the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed, settable gauge handle. Clones share the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `dv` (may be negative).
    pub fn add(&self, dv: i64) {
        self.cell.fetch_add(dv, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Metrics {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry. Cloning is cheap and shares all metrics, the clock and
/// the journal — a session creates one registry and hands clones to the
/// proxy, the server and the simulator.
#[derive(Debug, Clone)]
pub struct Registry {
    metrics: Arc<Mutex<Metrics>>,
    clock: VirtualClock,
    journal: Journal,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with a fresh clock at time zero.
    pub fn new() -> Registry {
        let clock = VirtualClock::new();
        Registry {
            metrics: Arc::new(Mutex::new(Metrics::default())),
            journal: Journal::new(clock.clone()),
            clock,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Current virtual time, microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// The shared event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Get-or-create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        metrics
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get-or-create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        metrics.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get-or-create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        metrics
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Starts a [`Span`] feeding the `{name}_us` histogram. The span
    /// measures virtual time and records on drop.
    pub fn span(&self, name: &str) -> Span {
        let hist = self.histogram(&format!("{name}_us"));
        Span::start(self.clock.clone(), hist)
    }

    /// A consistent point-in-time snapshot of every metric, the journal
    /// and the clock.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        Snapshot {
            t_us: self.clock.now_us(),
            counters: metrics
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: metrics
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: metrics
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            journal: self.journal.events(),
            journal_dropped: self.journal.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("x").get(), 3);
    }

    #[test]
    fn gauges_go_both_ways() {
        let registry = Registry::new();
        let g = registry.gauge("depth");
        g.set(5);
        g.add(-8);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn span_feeds_suffixed_histogram() {
        let registry = Registry::new();
        {
            let _span = registry.span("proxy.decode");
            registry.clock().advance_us(120);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["proxy.decode_us"].count, 1);
        assert_eq!(snap.histograms["proxy.decode_us"].max, 120);
    }

    #[test]
    fn snapshot_sees_journal_and_clock() {
        let registry = Registry::new();
        registry.clock().set_us(77);
        registry.journal().record("switch", "panel -> tv");
        let snap = registry.snapshot();
        assert_eq!(snap.t_us, 77);
        assert_eq!(snap.journal.len(), 1);
        assert_eq!(snap.journal[0].t_us, 77);
    }

    #[test]
    fn clones_share_everything() {
        let registry = Registry::new();
        let view = registry.clone();
        registry.counter("n").inc();
        view.clock().set_us(9);
        assert_eq!(view.counter("n").get(), 1);
        assert_eq!(registry.now_us(), 9);
    }
}
