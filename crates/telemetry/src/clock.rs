//! The shared virtual clock all telemetry readings are stamped with.
//!
//! Determinism rule: instrumented paths must never read wall time. The
//! network simulator (or whatever owns time in a scenario) drives this
//! clock forward; everything that records telemetry reads it. Two runs
//! of the same seeded scenario therefore stamp identical timestamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cheaply clonable, monotonically advancing virtual clock in
/// microseconds. Cloning shares the underlying instant.
///
/// ```
/// use uniint_telemetry::clock::VirtualClock;
/// let clock = VirtualClock::new();
/// let view = clock.clone();
/// clock.set_us(1_500);
/// assert_eq!(view.now_us(), 1_500);
/// clock.set_us(1_000); // never goes backwards
/// assert_eq!(view.now_us(), 1_500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    us: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time, microseconds.
    pub fn now_us(&self) -> u64 {
        self.us.load(Ordering::Relaxed)
    }

    /// Advances the clock to `t_us`. Regressions are ignored — the clock
    /// is monotone even when several time sources feed it.
    pub fn set_us(&self, t_us: u64) {
        self.us.fetch_max(t_us, Ordering::Relaxed);
    }

    /// Advances the clock by `dt_us`.
    pub fn advance_us(&self, dt_us: u64) {
        self.us.fetch_add(dt_us, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_us(250);
        assert_eq!(c.now_us(), 250);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.set_us(99);
        assert_eq!(b.now_us(), 99);
    }

    #[test]
    fn monotone_under_stale_setters() {
        let c = VirtualClock::new();
        c.set_us(100);
        c.set_us(40);
        assert_eq!(c.now_us(), 100);
    }
}
