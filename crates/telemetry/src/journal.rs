//! Bounded event journal and RAII spans.
//!
//! The journal is a ring buffer of timestamped events — device switches,
//! health transitions, resumes — capped so a chaos run cannot grow it
//! without bound. When full, the oldest events are evicted and counted
//! in `dropped`, which is itself exported so truncation is never silent.
//!
//! A [`Span`] measures a scoped operation against the virtual clock: it
//! captures the clock on creation and records the elapsed virtual time
//! into a `{name}_us` histogram when dropped. Because the clock is
//! virtual, a span that brackets code which never advances the simulator
//! records 0 — spans measure *simulated* latency, not host CPU time.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::clock::VirtualClock;
use crate::histogram::Histogram;

/// Default journal capacity (events retained).
pub const DEFAULT_CAPACITY: usize = 1024;

/// One timestamped journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Virtual time the event was recorded, microseconds.
    pub t_us: u64,
    /// Event name, dot-separated (`"supervisor.transition"`).
    pub name: String,
    /// Free-form detail (`"lamp: Healthy -> Degraded"`).
    pub detail: String,
}

#[derive(Debug)]
struct Inner {
    events: VecDeque<JournalEvent>,
    capacity: usize,
    dropped: u64,
}

/// A bounded, clonable ring buffer of [`JournalEvent`]s.
#[derive(Debug, Clone)]
pub struct Journal {
    inner: Arc<Mutex<Inner>>,
    clock: VirtualClock,
}

impl Journal {
    /// A journal with [`DEFAULT_CAPACITY`], stamped from `clock`.
    pub fn new(clock: VirtualClock) -> Journal {
        Journal::with_capacity(clock, DEFAULT_CAPACITY)
    }

    /// A journal retaining at most `capacity` events.
    pub fn with_capacity(clock: VirtualClock, capacity: usize) -> Journal {
        Journal {
            inner: Arc::new(Mutex::new(Inner {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
            clock,
        }
    }

    /// Appends an event stamped with the current virtual time.
    pub fn record(&self, name: &str, detail: impl Into<String>) {
        let event = JournalEvent {
            t_us: self.clock.now_us(),
            name: name.to_string(),
            detail: detail.into(),
        };
        let mut inner = self.inner.lock().expect("journal poisoned");
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<JournalEvent> {
        let inner = self.inner.lock().expect("journal poisoned");
        inner.events.iter().cloned().collect()
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal poisoned").events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII guard that records elapsed *virtual* time into a histogram on
/// drop. Obtained from [`crate::registry::Registry::span`].
#[derive(Debug)]
pub struct Span {
    clock: VirtualClock,
    start_us: u64,
    hist: Histogram,
}

impl Span {
    /// Starts a span at the clock's current time, feeding `hist`.
    pub fn start(clock: VirtualClock, hist: Histogram) -> Span {
        let start_us = clock.now_us();
        Span {
            clock,
            start_us,
            hist,
        }
    }

    /// Virtual time elapsed since the span started.
    pub fn elapsed_us(&self) -> u64 {
        self.clock.now_us().saturating_sub(self.start_us)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_us());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_with_virtual_timestamps() {
        let clock = VirtualClock::new();
        let journal = Journal::new(clock.clone());
        journal.record("a", "first");
        clock.set_us(42);
        journal.record("b", "second");
        let events = journal.events();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].t_us, events[0].name.as_str()), (0, "a"));
        assert_eq!((events[1].t_us, events[1].detail.as_str()), (42, "second"));
    }

    #[test]
    fn evicts_oldest_and_counts_drops() {
        let journal = Journal::with_capacity(VirtualClock::new(), 2);
        journal.record("a", "");
        journal.record("b", "");
        journal.record("c", "");
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.dropped(), 1);
        assert_eq!(journal.events()[0].name, "b");
    }

    #[test]
    fn span_records_virtual_duration() {
        let clock = VirtualClock::new();
        let hist = Histogram::new();
        {
            let span = Span::start(clock.clone(), hist.clone());
            clock.advance_us(300);
            assert_eq!(span.elapsed_us(), 300);
        }
        let snap = hist.snapshot();
        assert_eq!((snap.count, snap.max), (1, 300));
    }
}
