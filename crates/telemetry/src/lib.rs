//! # uniint-telemetry
//!
//! Deterministic observability for the UniInt reproduction.
//!
//! The paper's proxy *selects and dynamically switches* interaction
//! devices "according to the user's situation" — a decision loop that is
//! untunable without visibility into per-stage latencies, switch causes
//! and recovery events. This crate provides that visibility without
//! sacrificing the property every other subsystem is built on:
//! **bit-determinism per seed**.
//!
//! Three ingredients:
//!
//! - a [`registry::Registry`] of named metrics — [`registry::Counter`]s,
//!   [`registry::Gauge`]s and fixed-bucket [`histogram::Histogram`]s
//!   with p50/p95/p99/max. Metric *updates* are lock-free atomic
//!   operations on pre-registered handles; only registration itself
//!   takes a lock, so instrumented hot paths never contend;
//! - a span-scoped [`journal::Journal`] — a bounded ring buffer of
//!   timestamped events (device switches, health transitions, resumes)
//!   with RAII [`journal::Span`]s that feed duration histograms;
//! - a shared [`clock::VirtualClock`]. Every reading is stamped with
//!   the **netsim virtual clock** (`Simulator::now_us`), never
//!   `Instant::now`, so two runs of the same seeded scenario export
//!   byte-identical snapshots.
//!
//! [`snapshot::Snapshot`] renders the whole registry as aligned text or
//! canonical JSON (sorted keys, integers only, stable formatting); the
//! [`json`] module also parses that JSON back, which is how the CI
//! benchmark-regression gate diffs a run against its checked-in
//! baseline.
//!
//! ```
//! use uniint_telemetry::prelude::*;
//! let registry = Registry::new();
//! let decoded = registry.counter("proxy.rects_decoded");
//! let bytes = registry.histogram("proxy.rect_payload_bytes");
//! decoded.inc();
//! bytes.record(512);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["proxy.rects_decoded"], 1);
//! // Canonical JSON: two identical runs produce identical bytes.
//! assert_eq!(snap.to_json(), registry.snapshot().to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod histogram;
pub mod journal;
pub mod json;
pub mod registry;
pub mod snapshot;

/// Convenient re-exports of the telemetry surface.
pub mod prelude {
    pub use crate::clock::VirtualClock;
    pub use crate::histogram::{Histogram, HistogramSnapshot};
    pub use crate::journal::{Journal, JournalEvent, Span};
    pub use crate::json::Value;
    pub use crate::registry::{Counter, Gauge, Registry};
    pub use crate::snapshot::Snapshot;
}
