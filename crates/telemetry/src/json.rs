//! Canonical JSON: a writer whose output is byte-stable and a minimal
//! parser for reading it back.
//!
//! The workspace is offline and the vendored `serde` stand-in has no
//! `serde_json`, so the snapshot exporter and the CI baseline differ
//! share this tiny module instead. Canonical form:
//!
//! - object keys sorted (the [`Value::Object`] variant is a `BTreeMap`);
//! - numbers are integers only — telemetry never exports floats, which
//!   removes the one classic source of cross-run byte drift;
//! - 2-space indentation, `": "` after keys, no trailing whitespace.
//!
//! Two identical [`Value`] trees therefore always serialize to identical
//! bytes, which is what the determinism CI step diffs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value restricted to what telemetry exports needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counters, timestamps, histogram stats).
    UInt(u64),
    /// Signed integer (gauges).
    Int(i64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with sorted keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience: an empty object.
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Inserts `key` into an object value. Panics on non-objects —
    /// telemetry builds its trees statically, so that is a programmer
    /// error, not a runtime condition.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        match self {
            Value::Object(map) => {
                map.insert(key.into(), value);
            }
            _ => panic!("insert on non-object JSON value"),
        }
    }

    /// Borrow the object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Borrow the array, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value widened to `i128`, if this is a number.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::UInt(v) => Some(*v as i128),
            Value::Int(v) => Some(*v as i128),
            _ => None,
        }
    }

    /// Member lookup on objects: `value.get("counters")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    /// Serializes to canonical JSON (stable bytes for equal trees).
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        out.push('\n');
        out
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses canonical (or any whitespace-tolerant, integer-only) JSON.
/// Floats are rejected by design — telemetry never emits them.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError::at(pos, "trailing data"));
    }
    Ok(value)
}

/// Error from [`parse`], with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What the parser expected.
    pub message: &'static str,
}

impl ParseError {
    fn at(offset: usize, message: &'static str) -> ParseError {
        ParseError { offset, message }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(ParseError::at(*pos, "unexpected character")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &'static str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(ParseError::at(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    let negative = bytes[*pos] == b'-';
    if negative {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(ParseError::at(start, "expected digits"));
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(ParseError::at(*pos, "floats are not supported"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid utf-8 in number"))?;
    if negative {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| ParseError::at(start, "integer out of range"))
    } else {
        text.parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| ParseError::at(start, "integer out of range"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or(ParseError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
                        let ch = char::from_u32(code)
                            .ok_or(ParseError::at(*pos, "invalid \\u code point"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ParseError::at(*pos, "invalid utf-8"))?;
                let ch = rest.chars().next().expect("non-empty checked above");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(ParseError::at(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(ParseError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        let value = parse_value(bytes, pos)?;
        items.push(value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_canonical_form() {
        let mut root = Value::object();
        root.insert("zeta", Value::UInt(3));
        root.insert("alpha", Value::Int(-7));
        root.insert(
            "list",
            Value::Array(vec![Value::Str("a\"b".to_string()), Value::Bool(true)]),
        );
        root.insert("empty", Value::object());
        let text = root.to_canonical();
        let parsed = parse(&text).expect("canonical output parses");
        assert_eq!(parsed, root);
        // Canonical: re-serializing the parse is byte-identical.
        assert_eq!(parsed.to_canonical(), text);
    }

    #[test]
    fn keys_are_sorted() {
        let mut root = Value::object();
        root.insert("b", Value::UInt(1));
        root.insert("a", Value::UInt(2));
        let text = root.to_canonical();
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn rejects_floats() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("[3, 4.0]").is_err());
    }

    #[test]
    fn parses_signed_and_unsigned() {
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse("-12").unwrap(), Value::Int(-12));
    }

    #[test]
    fn reports_trailing_garbage() {
        assert!(parse("{} x").is_err());
    }
}
