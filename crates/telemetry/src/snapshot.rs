//! Whole-registry snapshots with text and canonical-JSON rendering.
//!
//! The JSON schema (all values integers or strings):
//!
//! ```json
//! {
//!   "t_us": 120000,
//!   "counters": { "proxy.rects_decoded": 42 },
//!   "gauges": { "supervisor.quarantined": 1 },
//!   "histograms": {
//!     "proxy.decode_us": {
//!       "count": 42, "sum": 9000, "min": 10, "max": 900,
//!       "p50": 127, "p95": 511, "p99": 900,
//!       "buckets": [[15, 3], [127, 30], [1023, 9]]
//!     }
//!   },
//!   "journal": { "dropped": 0, "events": [
//!     { "t_us": 50, "name": "coordinator.switch", "detail": "panel -> tv" }
//!   ]}
//! }
//! ```
//!
//! Keys are sorted and no floats appear, so equal snapshots serialize to
//! identical bytes — the property the CI determinism step diffs.

use std::collections::BTreeMap;

use crate::histogram::HistogramSnapshot;
use crate::journal::JournalEvent;
use crate::json::Value;

/// Point-in-time view of a whole [`crate::registry::Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Virtual time the snapshot was taken, microseconds.
    pub t_us: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram views by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Retained journal events, oldest first.
    pub journal: Vec<JournalEvent>,
    /// Journal events evicted because the ring was full.
    pub journal_dropped: u64,
}

impl Snapshot {
    /// Renders the snapshot as canonical JSON (byte-stable for equal
    /// snapshots; see module docs for the schema).
    pub fn to_json(&self) -> String {
        let mut root = Value::object();
        root.insert("t_us", Value::UInt(self.t_us));

        let mut counters = Value::object();
        for (name, v) in &self.counters {
            counters.insert(name, Value::UInt(*v));
        }
        root.insert("counters", counters);

        let mut gauges = Value::object();
        for (name, v) in &self.gauges {
            gauges.insert(name, Value::Int(*v));
        }
        root.insert("gauges", gauges);

        let mut histograms = Value::object();
        for (name, h) in &self.histograms {
            let mut obj = Value::object();
            obj.insert("count", Value::UInt(h.count));
            obj.insert("sum", Value::UInt(h.sum));
            obj.insert("min", Value::UInt(h.min));
            obj.insert("max", Value::UInt(h.max));
            obj.insert("p50", Value::UInt(h.p50));
            obj.insert("p95", Value::UInt(h.p95));
            obj.insert("p99", Value::UInt(h.p99));
            obj.insert(
                "buckets",
                Value::Array(
                    h.buckets
                        .iter()
                        .map(|(bound, n)| Value::Array(vec![Value::UInt(*bound), Value::UInt(*n)]))
                        .collect(),
                ),
            );
            histograms.insert(name, obj);
        }
        root.insert("histograms", histograms);

        let mut journal = Value::object();
        journal.insert("dropped", Value::UInt(self.journal_dropped));
        journal.insert(
            "events",
            Value::Array(
                self.journal
                    .iter()
                    .map(|e| {
                        let mut obj = Value::object();
                        obj.insert("t_us", Value::UInt(e.t_us));
                        obj.insert("name", Value::Str(e.name.clone()));
                        obj.insert("detail", Value::Str(e.detail.clone()));
                        obj
                    })
                    .collect(),
            ),
        );
        root.insert("journal", journal);

        root.to_canonical()
    }

    /// Renders the snapshot as aligned, human-readable text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("telemetry @ {} us\n", self.t_us));
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let width = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count={} min={} p50={} p95={} p99={} max={}\n",
                    h.count, h.min, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        if !self.journal.is_empty() || self.journal_dropped > 0 {
            out.push_str(&format!(
                "journal ({} events, {} dropped):\n",
                self.journal.len(),
                self.journal_dropped
            ));
            for event in &self.journal {
                out.push_str(&format!(
                    "  [{:>10} us] {}: {}\n",
                    event.t_us, event.name, event.detail
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let registry = Registry::new();
        registry.counter("proxy.rects_decoded").add(42);
        registry.gauge("supervisor.quarantined").set(1);
        registry.histogram("proxy.decode_us").record(120);
        registry.clock().set_us(5_000);
        registry
            .journal()
            .record("coordinator.switch", "panel -> tv");
        registry.snapshot()
    }

    #[test]
    fn json_is_byte_stable() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn json_parses_back() {
        let snap = sample();
        let parsed = json::parse(&snap.to_json()).expect("export parses");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("proxy.rects_decoded"))
                .and_then(|v| v.as_i128()),
            Some(42)
        );
        assert_eq!(parsed.get("t_us").and_then(|v| v.as_i128()), Some(5_000));
        let events = parsed
            .get("journal")
            .and_then(|j| j.get("events"))
            .and_then(|e| e.as_array())
            .expect("events array");
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn text_render_mentions_every_section() {
        let text = sample().to_text();
        assert!(text.contains("counters:"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("journal (1 events, 0 dropped):"));
        assert!(text.contains("proxy.rects_decoded"));
    }
}
