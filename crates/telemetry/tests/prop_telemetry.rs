//! Property tests for the histogram: bucket bounds are monotone, every
//! recorded value lands in a bucket whose bound covers it, and the
//! exported quantiles are ordered and bracketed by min/max.

use proptest::prelude::*;
use uniint_telemetry::histogram::{bucket_bound, bucket_index, Histogram, BUCKETS};

proptest! {
    #[test]
    fn bucket_bounds_are_strictly_monotone(i in 0usize..BUCKETS - 1) {
        prop_assert!(bucket_bound(i) < bucket_bound(i + 1));
    }

    #[test]
    fn every_value_fits_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(v <= bucket_bound(i), "{v} > bound {}", bucket_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_bound(i - 1), "{v} fits the previous bucket too");
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bracketed(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
        prop_assert!(s.min <= s.p50, "min {} > p50 {}", s.min, s.p50);
        prop_assert!(s.p50 <= s.p95, "p50 {} > p95 {}", s.p50, s.p95);
        prop_assert!(s.p95 <= s.p99, "p95 {} > p99 {}", s.p95, s.p99);
        prop_assert!(s.p99 <= s.max, "p99 {} > max {}", s.p99, s.max);
    }

    #[test]
    fn bucket_counts_sum_to_count(values in proptest::collection::vec(any::<u64>(), 0..100)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total, values.len() as u64);
        // Non-empty buckets are reported in ascending bound order.
        for w in s.buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }
}
