//! The HAVi event manager: fan-out of system and state-change events to
//! subscribers.

use crate::fcm::StateChange;
use crate::id::Guid;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Events posted on the home network.
#[derive(Debug, Clone, PartialEq)]
pub enum HaviEvent {
    /// A device joined (hot-plug).
    DeviceAdded(Guid),
    /// A device left.
    DeviceRemoved(Guid),
    /// An FCM's observable state changed.
    StateChanged(StateChange),
    /// The whole network reset (bus reset in real HAVi).
    NetworkReset,
}

/// Fan-out event distribution. Subscribers receive every event posted
/// after they subscribe; disconnected subscribers are pruned lazily.
#[derive(Debug, Default)]
pub struct EventManager {
    subscribers: Vec<Sender<HaviEvent>>,
}

impl EventManager {
    /// Creates an event manager with no subscribers.
    pub fn new() -> EventManager {
        EventManager::default()
    }

    /// Subscribes; the returned receiver sees all subsequent events.
    pub fn subscribe(&mut self) -> Receiver<HaviEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.push(tx);
        rx
    }

    /// Posts an event to every live subscriber.
    pub fn post(&mut self, event: HaviEvent) {
        self.subscribers.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Number of live subscribers (after pruning on last post).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribers_receive_events() {
        let mut em = EventManager::new();
        let rx1 = em.subscribe();
        let rx2 = em.subscribe();
        em.post(HaviEvent::DeviceAdded(Guid(7)));
        assert_eq!(rx1.try_recv().unwrap(), HaviEvent::DeviceAdded(Guid(7)));
        assert_eq!(rx2.try_recv().unwrap(), HaviEvent::DeviceAdded(Guid(7)));
    }

    #[test]
    fn late_subscriber_misses_earlier_events() {
        let mut em = EventManager::new();
        em.post(HaviEvent::NetworkReset);
        let rx = em.subscribe();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn dropped_subscribers_pruned() {
        let mut em = EventManager::new();
        let rx = em.subscribe();
        drop(rx);
        let rx2 = em.subscribe();
        em.post(HaviEvent::NetworkReset);
        assert_eq!(em.subscriber_count(), 1);
        assert_eq!(rx2.try_recv().unwrap(), HaviEvent::NetworkReset);
    }

    #[test]
    fn events_are_ordered() {
        let mut em = EventManager::new();
        let rx = em.subscribe();
        em.post(HaviEvent::DeviceAdded(Guid(1)));
        em.post(HaviEvent::DeviceRemoved(Guid(1)));
        assert_eq!(rx.try_recv().unwrap(), HaviEvent::DeviceAdded(Guid(1)));
        assert_eq!(rx.try_recv().unwrap(), HaviEvent::DeviceRemoved(Guid(1)));
    }
}
