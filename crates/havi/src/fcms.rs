//! Concrete FCM implementations for the simulated appliances.

use crate::fcm::{
    AirconMode, Fcm, FcmClass, FcmCommand, FcmError, FcmResponse, StateVar, Transport,
};

fn unsupported() -> FcmResponse {
    FcmResponse::Error(FcmError::UnsupportedCommand)
}

fn bad(param: impl Into<String>) -> FcmResponse {
    FcmResponse::Error(FcmError::InvalidParameter(param.into()))
}

/// Broadcast tuner: power + channel.
#[derive(Debug, Clone)]
pub struct TunerFcm {
    name: String,
    power: bool,
    channel: u32,
    max_channel: u32,
}

impl TunerFcm {
    /// Creates a tuner with channels `1..=max_channel`, powered off.
    pub fn new(name: impl Into<String>, max_channel: u32) -> TunerFcm {
        TunerFcm {
            name: name.into(),
            power: false,
            channel: 1,
            max_channel: max_channel.max(1),
        }
    }

    /// Current channel.
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// Power state.
    pub fn power(&self) -> bool {
        self.power
    }
}

impl Fcm for TunerFcm {
    fn class(&self) -> FcmClass {
        FcmClass::Tuner
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, cmd: &FcmCommand) -> FcmResponse {
        match *cmd {
            FcmCommand::SetPower(on) => {
                self.power = on;
                FcmResponse::Ok(vec![StateVar::Power(on)])
            }
            FcmCommand::SetChannel(ch) => {
                if !self.power {
                    return FcmResponse::Error(FcmError::PoweredOff);
                }
                if ch == 0 || ch > self.max_channel {
                    return bad(format!("channel {ch}"));
                }
                self.channel = ch;
                FcmResponse::Ok(vec![StateVar::Channel(ch)])
            }
            FcmCommand::StepChannel(d) => {
                if !self.power {
                    return FcmResponse::Error(FcmError::PoweredOff);
                }
                // Wrap around the dial, like a real tuner's up/down keys.
                let n = self.max_channel as i64;
                let cur = self.channel as i64 - 1;
                self.channel = ((cur + d as i64).rem_euclid(n) + 1) as u32;
                FcmResponse::Ok(vec![StateVar::Channel(self.channel)])
            }
            FcmCommand::GetStatus => FcmResponse::Status(self.status()),
            _ => unsupported(),
        }
    }

    fn status(&self) -> Vec<StateVar> {
        vec![StateVar::Power(self.power), StateVar::Channel(self.channel)]
    }
}

/// Video display: power, brightness, input selection.
#[derive(Debug, Clone)]
pub struct DisplayFcm {
    name: String,
    power: bool,
    brightness: i32,
    input: u32,
    inputs: u32,
}

impl DisplayFcm {
    /// Creates a display with `inputs` selectable sources.
    pub fn new(name: impl Into<String>, inputs: u32) -> DisplayFcm {
        DisplayFcm {
            name: name.into(),
            power: false,
            brightness: 70,
            input: 0,
            inputs: inputs.max(1),
        }
    }
}

impl Fcm for DisplayFcm {
    fn class(&self) -> FcmClass {
        FcmClass::Display
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, cmd: &FcmCommand) -> FcmResponse {
        match *cmd {
            FcmCommand::SetPower(on) => {
                self.power = on;
                FcmResponse::Ok(vec![StateVar::Power(on)])
            }
            FcmCommand::SetBrightness(b) => {
                if !self.power {
                    return FcmResponse::Error(FcmError::PoweredOff);
                }
                if !(0..=100).contains(&b) {
                    return bad(format!("brightness {b}"));
                }
                self.brightness = b;
                FcmResponse::Ok(vec![StateVar::Brightness(b)])
            }
            FcmCommand::SetInput(i) => {
                if !self.power {
                    return FcmResponse::Error(FcmError::PoweredOff);
                }
                if i >= self.inputs {
                    return bad(format!("input {i}"));
                }
                self.input = i;
                FcmResponse::Ok(vec![StateVar::Input(i)])
            }
            FcmCommand::GetStatus => FcmResponse::Status(self.status()),
            _ => unsupported(),
        }
    }

    fn status(&self) -> Vec<StateVar> {
        vec![
            StateVar::Power(self.power),
            StateVar::Brightness(self.brightness),
            StateVar::Input(self.input),
        ]
    }
}

/// VCR deck: transport state machine plus simulated tape position.
#[derive(Debug, Clone)]
pub struct VcrFcm {
    name: String,
    power: bool,
    transport: Transport,
    /// Tape position in milliseconds.
    pos_ms: u64,
    /// Tape length in milliseconds.
    len_ms: u64,
}

impl VcrFcm {
    /// Creates a VCR with a `len_s`-second tape loaded, stopped.
    pub fn new(name: impl Into<String>, len_s: u32) -> VcrFcm {
        VcrFcm {
            name: name.into(),
            power: false,
            transport: Transport::Stop,
            pos_ms: 0,
            len_ms: len_s as u64 * 1000,
        }
    }

    /// Current transport state.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Tape position in seconds.
    pub fn position_s(&self) -> u32 {
        (self.pos_ms / 1000) as u32
    }
}

impl Fcm for VcrFcm {
    fn class(&self) -> FcmClass {
        FcmClass::Vcr
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, cmd: &FcmCommand) -> FcmResponse {
        match *cmd {
            FcmCommand::SetPower(on) => {
                self.power = on;
                if !on {
                    self.transport = Transport::Stop;
                }
                FcmResponse::Ok(vec![
                    StateVar::Power(on),
                    StateVar::Transport(self.transport),
                ])
            }
            FcmCommand::Transport(t) => {
                if !self.power {
                    return FcmResponse::Error(FcmError::PoweredOff);
                }
                self.transport = t;
                FcmResponse::Ok(vec![StateVar::Transport(t)])
            }
            FcmCommand::GetStatus => FcmResponse::Status(self.status()),
            _ => unsupported(),
        }
    }

    fn status(&self) -> Vec<StateVar> {
        vec![
            StateVar::Power(self.power),
            StateVar::Transport(self.transport),
            StateVar::TapePos(self.position_s()),
        ]
    }

    fn tick(&mut self, dt_ms: u64) -> Vec<StateVar> {
        if !self.power {
            return Vec::new();
        }
        let rate: i64 = match self.transport {
            Transport::Play | Transport::Record => 1,
            Transport::FastForward => 8,
            Transport::Rewind => -8,
            Transport::Stop | Transport::Pause => 0,
        };
        if rate == 0 {
            return Vec::new();
        }
        let before = self.position_s();
        let delta = rate * dt_ms as i64;
        let pos = (self.pos_ms as i64 + delta).clamp(0, self.len_ms as i64);
        self.pos_ms = pos as u64;
        let mut changed = Vec::new();
        // Auto-stop at either end of the tape.
        if (self.pos_ms == 0 && rate < 0) || (self.pos_ms == self.len_ms && rate > 0) {
            self.transport = Transport::Stop;
            changed.push(StateVar::Transport(Transport::Stop));
        }
        if self.position_s() != before {
            changed.push(StateVar::TapePos(self.position_s()));
        }
        changed
    }
}

/// Audio amplifier: volume, mute, power.
#[derive(Debug, Clone)]
pub struct AmplifierFcm {
    name: String,
    power: bool,
    volume: i32,
    mute: bool,
}

impl AmplifierFcm {
    /// Creates an amplifier at volume 30, powered off.
    pub fn new(name: impl Into<String>) -> AmplifierFcm {
        AmplifierFcm {
            name: name.into(),
            power: false,
            volume: 30,
            mute: false,
        }
    }

    /// Current volume.
    pub fn volume(&self) -> i32 {
        self.volume
    }

    /// Mute state.
    pub fn muted(&self) -> bool {
        self.mute
    }
}

impl Fcm for AmplifierFcm {
    fn class(&self) -> FcmClass {
        FcmClass::Amplifier
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, cmd: &FcmCommand) -> FcmResponse {
        match *cmd {
            FcmCommand::SetPower(on) => {
                self.power = on;
                FcmResponse::Ok(vec![StateVar::Power(on)])
            }
            FcmCommand::SetVolume(v) => {
                if !self.power {
                    return FcmResponse::Error(FcmError::PoweredOff);
                }
                if !(0..=100).contains(&v) {
                    return bad(format!("volume {v}"));
                }
                self.volume = v;
                FcmResponse::Ok(vec![StateVar::Volume(v)])
            }
            FcmCommand::StepVolume(d) => {
                if !self.power {
                    return FcmResponse::Error(FcmError::PoweredOff);
                }
                self.volume = (self.volume + d).clamp(0, 100);
                FcmResponse::Ok(vec![StateVar::Volume(self.volume)])
            }
            FcmCommand::SetMute(m) => {
                if !self.power {
                    return FcmResponse::Error(FcmError::PoweredOff);
                }
                self.mute = m;
                FcmResponse::Ok(vec![StateVar::Mute(m)])
            }
            FcmCommand::GetStatus => FcmResponse::Status(self.status()),
            _ => unsupported(),
        }
    }

    fn status(&self) -> Vec<StateVar> {
        vec![
            StateVar::Power(self.power),
            StateVar::Volume(self.volume),
            StateVar::Mute(self.mute),
        ]
    }
}

/// Room light with a dimmer.
#[derive(Debug, Clone)]
pub struct LightFcm {
    name: String,
    power: bool,
    dimmer: i32,
}

impl LightFcm {
    /// Creates a light, off, dimmer at 100%.
    pub fn new(name: impl Into<String>) -> LightFcm {
        LightFcm {
            name: name.into(),
            power: false,
            dimmer: 100,
        }
    }
}

impl Fcm for LightFcm {
    fn class(&self) -> FcmClass {
        FcmClass::Light
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, cmd: &FcmCommand) -> FcmResponse {
        match *cmd {
            FcmCommand::SetPower(on) => {
                self.power = on;
                FcmResponse::Ok(vec![StateVar::Power(on)])
            }
            FcmCommand::SetDimmer(d) => {
                if !(0..=100).contains(&d) {
                    return bad(format!("dimmer {d}"));
                }
                self.dimmer = d;
                FcmResponse::Ok(vec![StateVar::Dimmer(d)])
            }
            FcmCommand::GetStatus => FcmResponse::Status(self.status()),
            _ => unsupported(),
        }
    }

    fn status(&self) -> Vec<StateVar> {
        vec![StateVar::Power(self.power), StateVar::Dimmer(self.dimmer)]
    }
}

/// Air conditioner: mode, target temperature, simulated room temperature
/// drifting towards the target while powered.
#[derive(Debug, Clone)]
pub struct AirconFcm {
    name: String,
    power: bool,
    mode: AirconMode,
    /// Tenths of °C.
    target: i32,
    /// Tenths of °C.
    room: i32,
}

impl AirconFcm {
    /// Creates an aircon with the room at `room_tenths` (tenths of °C).
    pub fn new(name: impl Into<String>, room_tenths: i32) -> AirconFcm {
        AirconFcm {
            name: name.into(),
            power: false,
            mode: AirconMode::Cool,
            target: 250,
            room: room_tenths,
        }
    }

    /// Measured room temperature, tenths of °C.
    pub fn room_temp(&self) -> i32 {
        self.room
    }
}

impl Fcm for AirconFcm {
    fn class(&self) -> FcmClass {
        FcmClass::AirConditioner
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, cmd: &FcmCommand) -> FcmResponse {
        match *cmd {
            FcmCommand::SetPower(on) => {
                self.power = on;
                FcmResponse::Ok(vec![StateVar::Power(on)])
            }
            FcmCommand::SetTargetTemp(t) => {
                if !(100..=350).contains(&t) {
                    return bad(format!("target temp {t}"));
                }
                self.target = t;
                FcmResponse::Ok(vec![StateVar::TargetTemp(t)])
            }
            FcmCommand::SetAirconMode(m) => {
                if !self.power {
                    return FcmResponse::Error(FcmError::PoweredOff);
                }
                self.mode = m;
                FcmResponse::Ok(vec![StateVar::AirconMode(m)])
            }
            FcmCommand::GetStatus => FcmResponse::Status(self.status()),
            _ => unsupported(),
        }
    }

    fn status(&self) -> Vec<StateVar> {
        vec![
            StateVar::Power(self.power),
            StateVar::AirconMode(self.mode),
            StateVar::TargetTemp(self.target),
            StateVar::RoomTemp(self.room),
        ]
    }

    fn tick(&mut self, dt_ms: u64) -> Vec<StateVar> {
        if !self.power {
            return Vec::new();
        }
        let before = self.room;
        // 0.1 °C per simulated second towards the target.
        let step = (dt_ms / 1000) as i32;
        if step == 0 {
            return Vec::new();
        }
        if self.room < self.target {
            self.room = (self.room + step).min(self.target);
        } else if self.room > self.target {
            self.room = (self.room - step).max(self.target);
        }
        if self.room != before {
            vec![StateVar::RoomTemp(self.room)]
        } else {
            Vec::new()
        }
    }
}

/// Wall clock: time of day advancing with ticks.
#[derive(Debug, Clone)]
pub struct ClockFcm {
    name: String,
    /// Milliseconds since midnight.
    ms: u64,
}

impl ClockFcm {
    /// Creates a clock at `seconds` past midnight.
    pub fn new(name: impl Into<String>, seconds: u32) -> ClockFcm {
        ClockFcm {
            name: name.into(),
            ms: seconds as u64 * 1000,
        }
    }

    /// Seconds since midnight.
    pub fn seconds(&self) -> u32 {
        ((self.ms / 1000) % 86_400) as u32
    }
}

impl Fcm for ClockFcm {
    fn class(&self) -> FcmClass {
        FcmClass::Clock
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, cmd: &FcmCommand) -> FcmResponse {
        match cmd {
            FcmCommand::GetStatus => FcmResponse::Status(self.status()),
            _ => unsupported(),
        }
    }

    fn status(&self) -> Vec<StateVar> {
        vec![StateVar::TimeOfDay(self.seconds())]
    }

    fn tick(&mut self, dt_ms: u64) -> Vec<StateVar> {
        let before = self.seconds();
        self.ms += dt_ms;
        if self.seconds() != before {
            vec![StateVar::TimeOfDay(self.seconds())]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_power_gate() {
        let mut t = TunerFcm::new("tuner", 12);
        assert_eq!(
            t.handle(&FcmCommand::SetChannel(3)),
            FcmResponse::Error(FcmError::PoweredOff)
        );
        t.handle(&FcmCommand::SetPower(true));
        assert!(t.handle(&FcmCommand::SetChannel(3)).is_ok());
        assert_eq!(t.channel(), 3);
    }

    #[test]
    fn tuner_channel_bounds_and_wrap() {
        let mut t = TunerFcm::new("tuner", 5);
        t.handle(&FcmCommand::SetPower(true));
        assert!(!t.handle(&FcmCommand::SetChannel(0)).is_ok());
        assert!(!t.handle(&FcmCommand::SetChannel(6)).is_ok());
        t.handle(&FcmCommand::SetChannel(5));
        t.handle(&FcmCommand::StepChannel(1));
        assert_eq!(t.channel(), 1, "wraps past the top");
        t.handle(&FcmCommand::StepChannel(-1));
        assert_eq!(t.channel(), 5, "wraps below the bottom");
    }

    #[test]
    fn tuner_rejects_foreign_commands() {
        let mut t = TunerFcm::new("tuner", 5);
        t.handle(&FcmCommand::SetPower(true));
        assert_eq!(t.handle(&FcmCommand::SetVolume(10)), unsupported());
    }

    #[test]
    fn display_input_and_brightness() {
        let mut d = DisplayFcm::new("panel", 3);
        d.handle(&FcmCommand::SetPower(true));
        assert!(d.handle(&FcmCommand::SetInput(2)).is_ok());
        assert!(!d.handle(&FcmCommand::SetInput(3)).is_ok());
        assert!(d.handle(&FcmCommand::SetBrightness(0)).is_ok());
        assert!(!d.handle(&FcmCommand::SetBrightness(101)).is_ok());
    }

    #[test]
    fn vcr_transport_and_tape_motion() {
        let mut v = VcrFcm::new("deck", 60);
        v.handle(&FcmCommand::SetPower(true));
        v.handle(&FcmCommand::Transport(Transport::Play));
        let changed = v.tick(5_000);
        assert!(changed.contains(&StateVar::TapePos(5)));
        v.handle(&FcmCommand::Transport(Transport::FastForward));
        v.tick(4_000); // 8x -> +32s = 37s
        assert_eq!(v.position_s(), 37);
    }

    #[test]
    fn vcr_autostops_at_tape_end() {
        let mut v = VcrFcm::new("deck", 10);
        v.handle(&FcmCommand::SetPower(true));
        v.handle(&FcmCommand::Transport(Transport::Play));
        let changed = v.tick(20_000);
        assert_eq!(v.transport(), Transport::Stop);
        assert!(changed.contains(&StateVar::Transport(Transport::Stop)));
        assert_eq!(v.position_s(), 10);
    }

    #[test]
    fn vcr_rewind_stops_at_zero() {
        let mut v = VcrFcm::new("deck", 10);
        v.handle(&FcmCommand::SetPower(true));
        v.handle(&FcmCommand::Transport(Transport::Play));
        v.tick(3_000);
        v.handle(&FcmCommand::Transport(Transport::Rewind));
        v.tick(10_000);
        assert_eq!(v.position_s(), 0);
        assert_eq!(v.transport(), Transport::Stop);
    }

    #[test]
    fn vcr_power_off_stops_transport() {
        let mut v = VcrFcm::new("deck", 10);
        v.handle(&FcmCommand::SetPower(true));
        v.handle(&FcmCommand::Transport(Transport::Play));
        v.handle(&FcmCommand::SetPower(false));
        assert_eq!(v.transport(), Transport::Stop);
        assert!(v.tick(1000).is_empty(), "no motion while off");
    }

    #[test]
    fn amplifier_volume_clamp_and_mute() {
        let mut a = AmplifierFcm::new("amp");
        a.handle(&FcmCommand::SetPower(true));
        a.handle(&FcmCommand::StepVolume(100));
        assert_eq!(a.volume(), 100);
        a.handle(&FcmCommand::StepVolume(-300));
        assert_eq!(a.volume(), 0);
        assert!(!a.handle(&FcmCommand::SetVolume(101)).is_ok());
        a.handle(&FcmCommand::SetMute(true));
        assert!(a.muted());
    }

    #[test]
    fn light_dimmer_works_even_off() {
        let mut l = LightFcm::new("lamp");
        assert!(l.handle(&FcmCommand::SetDimmer(40)).is_ok());
        assert!(!l.handle(&FcmCommand::SetDimmer(-1)).is_ok());
    }

    #[test]
    fn aircon_converges_to_target() {
        let mut ac = AirconFcm::new("ac", 300);
        ac.handle(&FcmCommand::SetPower(true));
        ac.handle(&FcmCommand::SetTargetTemp(250)).vars();
        for _ in 0..100 {
            ac.tick(1000);
        }
        assert_eq!(ac.room_temp(), 250);
    }

    #[test]
    fn aircon_target_range() {
        let mut ac = AirconFcm::new("ac", 300);
        assert!(!ac.handle(&FcmCommand::SetTargetTemp(900)).is_ok());
        assert!(!ac.handle(&FcmCommand::SetTargetTemp(50)).is_ok());
    }

    #[test]
    fn clock_ticks_and_wraps() {
        let mut c = ClockFcm::new("clock", 86_399);
        assert!(c.tick(500).is_empty(), "sub-second tick silent");
        let changed = c.tick(500);
        assert_eq!(changed, vec![StateVar::TimeOfDay(0)], "wraps at midnight");
    }

    #[test]
    fn status_snapshots_complete() {
        let t = TunerFcm::new("t", 10);
        assert_eq!(t.status().len(), 2);
        let v = VcrFcm::new("v", 10);
        assert_eq!(v.status().len(), 3);
        let a = AmplifierFcm::new("a");
        assert_eq!(a.status().len(), 3);
    }
}

/// A surveillance/door camera: while powered it streams frames at a
/// fixed rate, advertised as a monotonically increasing frame counter.
/// (The actual pixels are synthesized by the viewer from the counter —
/// the middleware carries control state, not video payloads, matching
/// HAVi's separation of control and isochronous streams.)
#[derive(Debug, Clone)]
pub struct CameraFcm {
    name: String,
    power: bool,
    /// Frames produced so far.
    counter: u32,
    /// Stream rate in frames per second.
    fps: u32,
    /// Accumulated sub-frame time, milliseconds.
    residue_ms: u64,
}

impl CameraFcm {
    /// Creates a camera streaming at `fps` when powered.
    pub fn new(name: impl Into<String>, fps: u32) -> CameraFcm {
        CameraFcm {
            name: name.into(),
            power: false,
            counter: 0,
            fps: fps.clamp(1, 60),
            residue_ms: 0,
        }
    }

    /// Frames produced so far.
    pub fn frame_counter(&self) -> u32 {
        self.counter
    }
}

impl Fcm for CameraFcm {
    fn class(&self) -> FcmClass {
        FcmClass::Camera
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, cmd: &FcmCommand) -> FcmResponse {
        match cmd {
            FcmCommand::SetPower(on) => {
                self.power = *on;
                FcmResponse::Ok(vec![StateVar::Power(*on)])
            }
            FcmCommand::GetStatus => FcmResponse::Status(self.status()),
            _ => unsupported(),
        }
    }

    fn status(&self) -> Vec<StateVar> {
        vec![
            StateVar::Power(self.power),
            StateVar::FrameCounter(self.counter),
        ]
    }

    fn tick(&mut self, dt_ms: u64) -> Vec<StateVar> {
        if !self.power {
            return Vec::new();
        }
        self.residue_ms += dt_ms;
        let frame_ms = (1000 / self.fps) as u64;
        let new_frames = self.residue_ms / frame_ms;
        if new_frames == 0 {
            return Vec::new();
        }
        self.residue_ms %= frame_ms;
        self.counter = self.counter.wrapping_add(new_frames as u32);
        vec![StateVar::FrameCounter(self.counter)]
    }
}

#[cfg(test)]
mod camera_tests {
    use super::*;

    #[test]
    fn camera_streams_only_when_powered() {
        let mut cam = CameraFcm::new("door cam", 10);
        assert!(cam.tick(1000).is_empty());
        cam.handle(&FcmCommand::SetPower(true));
        let changed = cam.tick(1000);
        assert_eq!(changed, vec![StateVar::FrameCounter(10)]);
    }

    #[test]
    fn camera_accumulates_subframe_time() {
        let mut cam = CameraFcm::new("cam", 10); // 100ms per frame
        cam.handle(&FcmCommand::SetPower(true));
        assert!(cam.tick(60).is_empty());
        assert_eq!(cam.tick(60), vec![StateVar::FrameCounter(1)], "120ms total");
    }

    #[test]
    fn camera_rejects_foreign_commands() {
        let mut cam = CameraFcm::new("cam", 10);
        assert!(!cam.handle(&FcmCommand::SetVolume(3)).is_ok());
    }

    #[test]
    fn camera_fps_clamped() {
        let cam = CameraFcm::new("cam", 100_000);
        assert_eq!(cam.fps, 60);
        let cam = CameraFcm::new("cam", 0);
        assert_eq!(cam.fps, 1);
    }
}
