//! The simulated home network: device attachment (DCMs with their FCMs),
//! command routing, event posting and simulated time.

use crate::events::{EventManager, HaviEvent};
use crate::fcm::{Fcm, FcmCommand, FcmResponse, StateChange};
use crate::id::{Guid, GuidAllocator, Seid};
use crate::messaging::MessagingSystem;
use crate::registry::{ElementKind, Query, Registration, Registry};
use crossbeam::channel::Receiver;
use std::collections::BTreeMap;

/// Errors from network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// No element with that SEID.
    UnknownSeid(Seid),
    /// The SEID names a DCM, not a commandable FCM.
    NotAnFcm(Seid),
}

impl core::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetworkError::UnknownSeid(s) => write!(f, "unknown software element {s}"),
            NetworkError::NotAnFcm(s) => write!(f, "element {s} is not an fcm"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Description of a device to attach: a DCM hosting one or more FCMs.
#[derive(Debug)]
pub struct DeviceSpec {
    name: String,
    zone: String,
    fcms: Vec<Box<dyn Fcm>>,
}

impl DeviceSpec {
    /// Starts a device description.
    pub fn new(name: impl Into<String>, zone: impl Into<String>) -> DeviceSpec {
        DeviceSpec {
            name: name.into(),
            zone: zone.into(),
            fcms: Vec::new(),
        }
    }

    /// Adds an FCM to the device.
    pub fn with_fcm(mut self, fcm: impl Fcm + 'static) -> DeviceSpec {
        self.fcms.push(Box::new(fcm));
        self
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[derive(Debug)]
struct DeviceEntry {
    name: String,
    fcms: BTreeMap<u32, Box<dyn Fcm>>,
}

/// The home network: registry + event manager + attached devices.
///
/// ```
/// use uniint_havi::prelude::*;
/// let mut net = HomeNetwork::new();
/// let tv = net.attach(
///     DeviceSpec::new("TV", "living-room")
///         .with_fcm(TunerFcm::new("TV Tuner", 12))
///         .with_fcm(DisplayFcm::new("TV Display", 3)),
/// );
/// let tuner = net
///     .registry()
///     .find(&Query::new().class(FcmClass::Tuner))
///     .unwrap()
///     .seid;
/// net.send(tuner, &FcmCommand::SetPower(true)).unwrap();
/// # let _ = tv;
/// ```
#[derive(Debug, Default)]
pub struct HomeNetwork {
    alloc: GuidAllocator,
    devices: BTreeMap<Guid, DeviceEntry>,
    registry: Registry,
    events: EventManager,
    messaging: MessagingSystem,
    /// Count of control messages routed (for the E8 bench).
    messages_routed: u64,
}

impl HomeNetwork {
    /// Creates an empty network.
    pub fn new() -> HomeNetwork {
        HomeNetwork {
            alloc: GuidAllocator::new(),
            ..Default::default()
        }
    }

    /// Attaches a device, registering its DCM (handle 0) and FCMs
    /// (handles 1..). Posts [`HaviEvent::DeviceAdded`].
    pub fn attach(&mut self, spec: DeviceSpec) -> Guid {
        let guid = self.alloc.allocate();
        self.registry.register(Registration {
            seid: Seid::new(guid, 0),
            kind: ElementKind::Dcm,
            class: None,
            name: spec.name.clone(),
            zone: spec.zone.clone(),
        });
        self.messaging.open(Seid::new(guid, 0));
        let mut fcms = BTreeMap::new();
        for (i, fcm) in spec.fcms.into_iter().enumerate() {
            let handle = i as u32 + 1;
            self.messaging.open(Seid::new(guid, handle));
            self.registry.register(Registration {
                seid: Seid::new(guid, handle),
                kind: ElementKind::Fcm,
                class: Some(fcm.class()),
                name: fcm.name().to_owned(),
                zone: spec.zone.clone(),
            });
            fcms.insert(handle, fcm);
        }
        self.devices.insert(
            guid,
            DeviceEntry {
                name: spec.name,
                fcms,
            },
        );
        self.events.post(HaviEvent::DeviceAdded(guid));
        guid
    }

    /// Detaches a device (power unplugged). Posts
    /// [`HaviEvent::DeviceRemoved`]. Returns false when unknown.
    pub fn detach(&mut self, guid: Guid) -> bool {
        let Some(entry) = self.devices.remove(&guid) else {
            return false;
        };
        self.messaging.close(Seid::new(guid, 0));
        for &handle in entry.fcms.keys() {
            self.messaging.close(Seid::new(guid, handle));
        }
        self.registry.unregister_device(guid);
        self.events.post(HaviEvent::DeviceRemoved(guid));
        true
    }

    /// The discovery registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The element-to-element messaging system. Mailboxes for attached
    /// elements are opened and closed automatically; havlets and UI
    /// services register their own with [`MessagingSystem::open`].
    pub fn messaging(&mut self) -> &mut MessagingSystem {
        &mut self.messaging
    }

    /// Subscribes to network events.
    pub fn subscribe(&mut self) -> Receiver<HaviEvent> {
        self.events.subscribe()
    }

    /// Attached device GUIDs.
    pub fn device_guids(&self) -> Vec<Guid> {
        self.devices.keys().copied().collect()
    }

    /// Device name for a GUID.
    pub fn device_name(&self, guid: Guid) -> Option<&str> {
        self.devices.get(&guid).map(|d| d.name.as_str())
    }

    /// Sends a control command to an FCM, posting state-change events for
    /// any mutated variables.
    ///
    /// # Errors
    ///
    /// [`NetworkError::UnknownSeid`] when no such element exists,
    /// [`NetworkError::NotAnFcm`] when addressing a DCM (handle 0).
    pub fn send(&mut self, seid: Seid, cmd: &FcmCommand) -> Result<FcmResponse, NetworkError> {
        if seid.handle == 0 {
            return if self.devices.contains_key(&seid.guid) {
                Err(NetworkError::NotAnFcm(seid))
            } else {
                Err(NetworkError::UnknownSeid(seid))
            };
        }
        let dev = self
            .devices
            .get_mut(&seid.guid)
            .ok_or(NetworkError::UnknownSeid(seid))?;
        let fcm = dev
            .fcms
            .get_mut(&seid.handle)
            .ok_or(NetworkError::UnknownSeid(seid))?;
        self.messages_routed += 1;
        let resp = fcm.handle(cmd);
        if let FcmResponse::Ok(vars) = &resp {
            if !vars.is_empty() {
                let change = StateChange {
                    seid,
                    class: fcm.class(),
                    vars: vars.clone(),
                };
                self.events.post(HaviEvent::StateChanged(change));
            }
        }
        Ok(resp)
    }

    /// Reads an FCM's status snapshot without posting events.
    pub fn status(&self, seid: Seid) -> Result<Vec<crate::fcm::StateVar>, NetworkError> {
        let dev = self
            .devices
            .get(&seid.guid)
            .ok_or(NetworkError::UnknownSeid(seid))?;
        let fcm = dev
            .fcms
            .get(&seid.handle)
            .ok_or(NetworkError::UnknownSeid(seid))?;
        Ok(fcm.status())
    }

    /// Advances simulated time for every FCM, posting state changes
    /// (tape motion, clock ticks, room temperature drift).
    pub fn tick(&mut self, dt_ms: u64) {
        let mut changes = Vec::new();
        for (&guid, dev) in &mut self.devices {
            for (&handle, fcm) in &mut dev.fcms {
                let vars = fcm.tick(dt_ms);
                if !vars.is_empty() {
                    changes.push(StateChange {
                        seid: Seid::new(guid, handle),
                        class: fcm.class(),
                        vars,
                    });
                }
            }
        }
        for c in changes {
            self.events.post(HaviEvent::StateChanged(c));
        }
    }

    /// Total control messages routed since creation.
    pub fn messages_routed(&self) -> u64 {
        self.messages_routed
    }

    /// Convenience: the SEIDs of every FCM matching `query`.
    pub fn find_fcms(&self, query: &Query) -> Vec<Seid> {
        self.registry
            .query(&query.clone().kind(ElementKind::Fcm))
            .into_iter()
            .map(|r| r.seid)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcm::{FcmClass, StateVar, Transport};
    use crate::fcms::{AmplifierFcm, TunerFcm, VcrFcm};

    fn tv_and_vcr() -> (HomeNetwork, Guid, Guid) {
        let mut net = HomeNetwork::new();
        let tv = net
            .attach(DeviceSpec::new("TV", "living-room").with_fcm(TunerFcm::new("TV Tuner", 12)));
        let vcr = net
            .attach(DeviceSpec::new("VCR", "living-room").with_fcm(VcrFcm::new("VCR Deck", 3600)));
        (net, tv, vcr)
    }

    #[test]
    fn attach_registers_dcm_and_fcms() {
        let (net, tv, _) = tv_and_vcr();
        assert_eq!(net.registry().len(), 4);
        let dcm = net.registry().lookup(Seid::new(tv, 0)).unwrap();
        assert_eq!(dcm.kind, ElementKind::Dcm);
        let fcm = net.registry().lookup(Seid::new(tv, 1)).unwrap();
        assert_eq!(fcm.class, Some(FcmClass::Tuner));
    }

    #[test]
    fn attach_posts_event() {
        let mut net = HomeNetwork::new();
        let rx = net.subscribe();
        let g = net.attach(DeviceSpec::new("Amp", "den").with_fcm(AmplifierFcm::new("Amp")));
        assert_eq!(rx.try_recv().unwrap(), HaviEvent::DeviceAdded(g));
    }

    #[test]
    fn detach_unregisters_and_posts() {
        let (mut net, tv, _) = tv_and_vcr();
        let rx = net.subscribe();
        assert!(net.detach(tv));
        assert!(!net.detach(tv));
        assert_eq!(rx.try_recv().unwrap(), HaviEvent::DeviceRemoved(tv));
        assert!(net.registry().lookup(Seid::new(tv, 1)).is_none());
    }

    #[test]
    fn send_routes_and_posts_state_change() {
        let (mut net, tv, _) = tv_and_vcr();
        let rx = net.subscribe();
        let seid = Seid::new(tv, 1);
        let resp = net.send(seid, &FcmCommand::SetPower(true)).unwrap();
        assert!(resp.is_ok());
        match rx.try_recv().unwrap() {
            HaviEvent::StateChanged(c) => {
                assert_eq!(c.seid, seid);
                assert_eq!(c.vars, vec![StateVar::Power(true)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failed_command_posts_nothing() {
        let (mut net, tv, _) = tv_and_vcr();
        let rx = net.subscribe();
        let seid = Seid::new(tv, 1);
        let resp = net.send(seid, &FcmCommand::SetChannel(5)).unwrap();
        assert!(!resp.is_ok(), "tuner is off");
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn send_to_unknown_or_dcm_errors() {
        let (mut net, tv, _) = tv_and_vcr();
        assert_eq!(
            net.send(Seid::new(Guid(99), 1), &FcmCommand::GetStatus),
            Err(NetworkError::UnknownSeid(Seid::new(Guid(99), 1)))
        );
        assert_eq!(
            net.send(Seid::new(tv, 0), &FcmCommand::GetStatus),
            Err(NetworkError::NotAnFcm(Seid::new(tv, 0)))
        );
        assert_eq!(
            net.send(Seid::new(tv, 9), &FcmCommand::GetStatus),
            Err(NetworkError::UnknownSeid(Seid::new(tv, 9)))
        );
    }

    #[test]
    fn tick_moves_tape_and_posts() {
        let (mut net, _, vcr) = tv_and_vcr();
        let seid = Seid::new(vcr, 1);
        net.send(seid, &FcmCommand::SetPower(true)).unwrap();
        net.send(seid, &FcmCommand::Transport(Transport::Play))
            .unwrap();
        let rx = net.subscribe();
        net.tick(2_000);
        match rx.try_recv().unwrap() {
            HaviEvent::StateChanged(c) => assert!(c.vars.contains(&StateVar::TapePos(2))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn find_fcms_by_class() {
        let (net, _, vcr) = tv_and_vcr();
        let seids = net.find_fcms(&Query::new().class(FcmClass::Vcr));
        assert_eq!(seids, vec![Seid::new(vcr, 1)]);
    }

    #[test]
    fn status_reads_without_events() {
        let (mut net, tv, _) = tv_and_vcr();
        let rx = net.subscribe();
        let seid = Seid::new(tv, 1);
        net.send(seid, &FcmCommand::SetPower(true)).unwrap();
        let _ = rx.try_recv();
        let vars = net.status(seid).unwrap();
        assert!(vars.contains(&StateVar::Power(true)));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn messages_counted() {
        let (mut net, tv, _) = tv_and_vcr();
        let seid = Seid::new(tv, 1);
        net.send(seid, &FcmCommand::SetPower(true)).unwrap();
        net.send(seid, &FcmCommand::SetChannel(2)).unwrap();
        assert_eq!(net.messages_routed(), 2);
    }

    #[test]
    fn hotplug_same_name_gets_new_guid() {
        let mut net = HomeNetwork::new();
        let a = net.attach(DeviceSpec::new("Amp", "den").with_fcm(AmplifierFcm::new("Amp")));
        net.detach(a);
        let b = net.attach(DeviceSpec::new("Amp", "den").with_fcm(AmplifierFcm::new("Amp")));
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod messaging_integration_tests {
    use super::*;
    use crate::fcms::TunerFcm;

    #[test]
    fn attach_opens_mailboxes_detach_closes_with_watch() {
        let mut net = HomeNetwork::new();
        let g = net.attach(DeviceSpec::new("TV", "lr").with_fcm(TunerFcm::new("t", 5)));
        let dcm = Seid::new(g, 0);
        let fcm = Seid::new(g, 1);
        assert!(net.messaging().is_open(dcm));
        assert!(net.messaging().is_open(fcm));

        // A UI service watches the FCM and hears about its departure.
        let ui_service = Seid::new(Guid(0xffff), 1);
        net.messaging().open(ui_service);
        net.messaging().watch(ui_service, fcm).unwrap();
        net.detach(g);
        assert!(!net.messaging().is_open(fcm));
        let note = net.messaging().recv(ui_service).expect("watch-on fired");
        assert_eq!(note.from, fcm);
    }

    #[test]
    fn elements_can_exchange_messages() {
        let mut net = HomeNetwork::new();
        let a = net.attach(DeviceSpec::new("A", "z").with_fcm(TunerFcm::new("t", 5)));
        let b = net.attach(DeviceSpec::new("B", "z").with_fcm(TunerFcm::new("t", 5)));
        let (sa, sb) = (Seid::new(a, 1), Seid::new(b, 1));
        net.messaging().send(sa, sb, b"hello".to_vec()).unwrap();
        let msg = net.messaging().recv(sb).unwrap();
        assert_eq!(msg.from, sa);
        assert_eq!(msg.payload, b"hello");
    }
}
