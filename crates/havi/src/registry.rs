//! The HAVi registry: attribute-based discovery of software elements.
//!
//! Applications never hold device references directly; they query the
//! registry ("all FCMs of class Vcr in zone living-room") and talk to the
//! resulting SEIDs through the network's messaging.

use crate::fcm::FcmClass;
use crate::id::{Guid, Seid};
use serde::{Deserialize, Serialize};

/// What kind of software element a registration describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// Device control module (one per device).
    Dcm,
    /// Functional component module.
    Fcm,
    /// A havlet/application element.
    Application,
    /// A user-interface service (e.g. the UniInt proxy registers as one).
    UiService,
}

/// One registry entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Registration {
    /// The element's SEID.
    pub seid: Seid,
    /// Element kind.
    pub kind: ElementKind,
    /// Functional class, for FCM entries.
    pub class: Option<FcmClass>,
    /// Human-readable element name.
    pub name: String,
    /// The room/zone the hosting device lives in.
    pub zone: String,
}

/// An attribute query; unset fields match anything.
///
/// ```
/// use uniint_havi::registry::Query;
/// use uniint_havi::fcm::FcmClass;
/// let q = Query::new().class(FcmClass::Vcr).zone("living-room");
/// # let _ = q;
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    kind: Option<ElementKind>,
    class: Option<FcmClass>,
    zone: Option<String>,
    guid: Option<Guid>,
    name_contains: Option<String>,
}

impl Query {
    /// Matches everything.
    pub fn new() -> Query {
        Query::default()
    }

    /// Restricts to one element kind.
    pub fn kind(mut self, kind: ElementKind) -> Query {
        self.kind = Some(kind);
        self
    }

    /// Restricts to one FCM class (implies FCM kind in practice).
    pub fn class(mut self, class: FcmClass) -> Query {
        self.class = Some(class);
        self
    }

    /// Restricts to one zone.
    pub fn zone(mut self, zone: impl Into<String>) -> Query {
        self.zone = Some(zone.into());
        self
    }

    /// Restricts to elements hosted by one device.
    pub fn guid(mut self, guid: Guid) -> Query {
        self.guid = Some(guid);
        self
    }

    /// Restricts to names containing a substring (case-sensitive).
    pub fn name_contains(mut self, s: impl Into<String>) -> Query {
        self.name_contains = Some(s.into());
        self
    }

    /// Whether `r` satisfies every set constraint.
    pub fn matches(&self, r: &Registration) -> bool {
        self.kind.is_none_or(|k| r.kind == k)
            && self.class.is_none_or(|c| r.class == Some(c))
            && self.zone.as_deref().is_none_or(|z| r.zone == z)
            && self.guid.is_none_or(|g| r.seid.guid == g)
            && self
                .name_contains
                .as_deref()
                .is_none_or(|s| r.name.contains(s))
    }
}

/// The software-element registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Vec<Registration>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers an element. Replaces any previous entry with the same
    /// SEID and returns true when a replacement happened.
    pub fn register(&mut self, reg: Registration) -> bool {
        let replaced = self.unregister(reg.seid);
        self.entries.push(reg);
        replaced
    }

    /// Removes an element. Returns true when it existed.
    pub fn unregister(&mut self, seid: Seid) -> bool {
        let before = self.entries.len();
        self.entries.retain(|r| r.seid != seid);
        before != self.entries.len()
    }

    /// Removes every element hosted by `guid`, returning how many.
    pub fn unregister_device(&mut self, guid: Guid) -> usize {
        let before = self.entries.len();
        self.entries.retain(|r| r.seid.guid != guid);
        before - self.entries.len()
    }

    /// All entries matching `query`, in registration order.
    pub fn query(&self, query: &Query) -> Vec<&Registration> {
        self.entries.iter().filter(|r| query.matches(r)).collect()
    }

    /// First match for `query`.
    pub fn find(&self, query: &Query) -> Option<&Registration> {
        self.entries.iter().find(|r| query.matches(r))
    }

    /// Entry for an exact SEID.
    pub fn lookup(&self, seid: Seid) -> Option<&Registration> {
        self.entries.iter().find(|r| r.seid == seid)
    }

    /// Number of registered elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> core::slice::Iter<'_, Registration> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a Registry {
    type Item = &'a Registration;
    type IntoIter = core::slice::Iter<'a, Registration>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(
        guid: u64,
        handle: u32,
        kind: ElementKind,
        class: Option<FcmClass>,
        name: &str,
        zone: &str,
    ) -> Registration {
        Registration {
            seid: Seid::new(Guid(guid), handle),
            kind,
            class,
            name: name.into(),
            zone: zone.into(),
        }
    }

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.register(reg(1, 0, ElementKind::Dcm, None, "TV", "living-room"));
        r.register(reg(
            1,
            1,
            ElementKind::Fcm,
            Some(FcmClass::Tuner),
            "TV Tuner",
            "living-room",
        ));
        r.register(reg(
            1,
            2,
            ElementKind::Fcm,
            Some(FcmClass::Display),
            "TV Display",
            "living-room",
        ));
        r.register(reg(2, 0, ElementKind::Dcm, None, "VCR", "living-room"));
        r.register(reg(
            2,
            1,
            ElementKind::Fcm,
            Some(FcmClass::Vcr),
            "VCR Deck",
            "living-room",
        ));
        r.register(reg(
            3,
            1,
            ElementKind::Fcm,
            Some(FcmClass::Light),
            "Kitchen Light",
            "kitchen",
        ));
        r
    }

    #[test]
    fn query_by_class() {
        let r = sample();
        let hits = r.query(&Query::new().class(FcmClass::Vcr));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "VCR Deck");
    }

    #[test]
    fn query_by_zone() {
        let r = sample();
        assert_eq!(r.query(&Query::new().zone("living-room")).len(), 5);
        assert_eq!(r.query(&Query::new().zone("kitchen")).len(), 1);
        assert_eq!(r.query(&Query::new().zone("attic")).len(), 0);
    }

    #[test]
    fn query_compound() {
        let r = sample();
        let hits = r.query(
            &Query::new()
                .kind(ElementKind::Fcm)
                .zone("living-room")
                .guid(Guid(1)),
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn query_name_substring() {
        let r = sample();
        assert_eq!(r.query(&Query::new().name_contains("Tuner")).len(), 1);
    }

    #[test]
    fn empty_query_matches_all() {
        let r = sample();
        assert_eq!(r.query(&Query::new()).len(), r.len());
    }

    #[test]
    fn register_replaces_same_seid() {
        let mut r = sample();
        let n = r.len();
        let replaced = r.register(reg(
            1,
            1,
            ElementKind::Fcm,
            Some(FcmClass::Tuner),
            "New Tuner",
            "living-room",
        ));
        assert!(replaced);
        assert_eq!(r.len(), n);
        assert_eq!(r.lookup(Seid::new(Guid(1), 1)).unwrap().name, "New Tuner");
    }

    #[test]
    fn unregister_device_removes_all_elements() {
        let mut r = sample();
        assert_eq!(r.unregister_device(Guid(1)), 3);
        assert!(r.query(&Query::new().guid(Guid(1))).is_empty());
        assert_eq!(r.unregister_device(Guid(1)), 0);
    }

    #[test]
    fn find_and_lookup() {
        let r = sample();
        assert!(r.find(&Query::new().class(FcmClass::Light)).is_some());
        assert!(r.lookup(Seid::new(Guid(9), 9)).is_none());
    }
}
