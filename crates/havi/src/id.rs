//! HAVi-style identifiers: GUIDs for devices and SEIDs for software
//! elements.

use serde::{Deserialize, Serialize};

/// Globally unique identifier of a physical device on the home network
/// (HAVi derives these from IEEE-1394 EUI-64s; we use an opaque u64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Guid(pub u64);

impl Guid {
    /// Creates a GUID from its raw value.
    pub const fn new(raw: u64) -> Guid {
        Guid(raw)
    }
}

impl core::fmt::Display for Guid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "guid:{:016x}", self.0)
    }
}

/// Software element identifier: the GUID of the hosting device plus a
/// device-local handle, exactly HAVi's SEID structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Seid {
    /// Hosting device.
    pub guid: Guid,
    /// Handle unique within the device.
    pub handle: u32,
}

impl Seid {
    /// Creates a SEID.
    pub const fn new(guid: Guid, handle: u32) -> Seid {
        Seid { guid, handle }
    }
}

impl core::fmt::Display for Seid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.guid, self.handle)
    }
}

/// Monotonic GUID allocator for simulated devices.
#[derive(Debug, Default)]
pub struct GuidAllocator {
    next: u64,
}

impl GuidAllocator {
    /// Creates an allocator starting at 1.
    pub fn new() -> GuidAllocator {
        GuidAllocator { next: 1 }
    }

    /// Returns a fresh GUID.
    pub fn allocate(&mut self) -> Guid {
        let g = Guid(self.next);
        self.next += 1;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guid_display() {
        assert_eq!(Guid(0xab).to_string(), "guid:00000000000000ab");
    }

    #[test]
    fn seid_identity() {
        let a = Seid::new(Guid(1), 2);
        let b = Seid::new(Guid(1), 2);
        let c = Seid::new(Guid(1), 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn allocator_is_monotonic_and_unique() {
        let mut alloc = GuidAllocator::new();
        let a = alloc.allocate();
        let b = alloc.allocate();
        assert_ne!(a, b);
        assert!(b.0 > a.0);
    }
}
