//! The HAVi messaging system: asynchronous element-to-element messages
//! with delivery mailboxes and *watch-on* notifications when a peer
//! element leaves the network.
//!
//! The FCM command path in [`crate::network`] is synchronous for
//! convenience; this module provides the general mailbox transport that
//! havlets and UI services (like the UniInt proxy, which registers as a
//! `UiService`) use to talk to each other.

use crate::id::Seid;
use std::collections::{HashMap, VecDeque};

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending element.
    pub from: Seid,
    /// Opaque payload (applications define their own schemas).
    pub payload: Vec<u8>,
}

/// Errors from messaging operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessagingError {
    /// Destination element has no mailbox (not registered or gone).
    UnknownDestination(Seid),
    /// The destination's mailbox is full.
    MailboxFull(Seid),
}

impl core::fmt::Display for MessagingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MessagingError::UnknownDestination(s) => write!(f, "unknown destination {s}"),
            MessagingError::MailboxFull(s) => write!(f, "mailbox of {s} is full"),
        }
    }
}

impl std::error::Error for MessagingError {}

/// Maximum queued messages per mailbox before senders see
/// [`MessagingError::MailboxFull`].
pub const MAILBOX_CAPACITY: usize = 256;

#[derive(Debug, Default)]
struct Mailbox {
    queue: VecDeque<Message>,
    /// Elements that want to know when this one disappears.
    watchers: Vec<Seid>,
}

/// The messaging system: one mailbox per registered software element.
#[derive(Debug, Default)]
pub struct MessagingSystem {
    boxes: HashMap<Seid, Mailbox>,
}

impl MessagingSystem {
    /// Creates an empty messaging system.
    pub fn new() -> MessagingSystem {
        MessagingSystem::default()
    }

    /// Opens a mailbox for `seid` (idempotent).
    pub fn open(&mut self, seid: Seid) {
        self.boxes.entry(seid).or_default();
    }

    /// Closes `seid`'s mailbox, notifying watchers with a watch-on
    /// message (empty payload, `from` = the departed element). Returns
    /// true when the mailbox existed.
    pub fn close(&mut self, seid: Seid) -> bool {
        let Some(mb) = self.boxes.remove(&seid) else {
            return false;
        };
        for w in mb.watchers {
            // Watch notifications bypass capacity: losing one would leave
            // the watcher waiting forever on a dead element.
            if let Some(dst) = self.boxes.get_mut(&w) {
                dst.queue.push_back(Message {
                    from: seid,
                    payload: Vec::new(),
                });
            }
        }
        true
    }

    /// Whether `seid` currently has a mailbox.
    pub fn is_open(&self, seid: Seid) -> bool {
        self.boxes.contains_key(&seid)
    }

    /// Sends `payload` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// [`MessagingError::UnknownDestination`] when `to` has no mailbox;
    /// [`MessagingError::MailboxFull`] when it has more than
    /// [`MAILBOX_CAPACITY`] queued messages.
    pub fn send(&mut self, from: Seid, to: Seid, payload: Vec<u8>) -> Result<(), MessagingError> {
        let mb = self
            .boxes
            .get_mut(&to)
            .ok_or(MessagingError::UnknownDestination(to))?;
        if mb.queue.len() >= MAILBOX_CAPACITY {
            return Err(MessagingError::MailboxFull(to));
        }
        mb.queue.push_back(Message { from, payload });
        Ok(())
    }

    /// Pops the oldest message for `seid`, if any.
    pub fn recv(&mut self, seid: Seid) -> Option<Message> {
        self.boxes.get_mut(&seid)?.queue.pop_front()
    }

    /// Number of queued messages for `seid`.
    pub fn pending(&self, seid: Seid) -> usize {
        self.boxes.get(&seid).map(|m| m.queue.len()).unwrap_or(0)
    }

    /// Registers `watcher` to be notified (empty message from `target`)
    /// when `target`'s mailbox closes — HAVi's *watch-on* facility.
    ///
    /// # Errors
    ///
    /// [`MessagingError::UnknownDestination`] when `target` is not open.
    pub fn watch(&mut self, watcher: Seid, target: Seid) -> Result<(), MessagingError> {
        let mb = self
            .boxes
            .get_mut(&target)
            .ok_or(MessagingError::UnknownDestination(target))?;
        if !mb.watchers.contains(&watcher) {
            mb.watchers.push(watcher);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Guid;

    fn seid(g: u64, h: u32) -> Seid {
        Seid::new(Guid(g), h)
    }

    #[test]
    fn send_and_recv_fifo() {
        let mut ms = MessagingSystem::new();
        let (a, b) = (seid(1, 1), seid(2, 1));
        ms.open(a);
        ms.open(b);
        ms.send(a, b, vec![1]).unwrap();
        ms.send(a, b, vec![2]).unwrap();
        assert_eq!(ms.pending(b), 2);
        assert_eq!(ms.recv(b).unwrap().payload, vec![1]);
        assert_eq!(ms.recv(b).unwrap().payload, vec![2]);
        assert!(ms.recv(b).is_none());
    }

    #[test]
    fn unknown_destination_errors() {
        let mut ms = MessagingSystem::new();
        let a = seid(1, 1);
        ms.open(a);
        assert_eq!(
            ms.send(a, seid(9, 9), vec![]),
            Err(MessagingError::UnknownDestination(seid(9, 9)))
        );
    }

    #[test]
    fn mailbox_capacity_enforced() {
        let mut ms = MessagingSystem::new();
        let (a, b) = (seid(1, 1), seid(2, 1));
        ms.open(a);
        ms.open(b);
        for _ in 0..MAILBOX_CAPACITY {
            ms.send(a, b, vec![0]).unwrap();
        }
        assert_eq!(ms.send(a, b, vec![0]), Err(MessagingError::MailboxFull(b)));
        // Draining frees space.
        ms.recv(b);
        assert!(ms.send(a, b, vec![0]).is_ok());
    }

    #[test]
    fn watch_on_notifies_departure() {
        let mut ms = MessagingSystem::new();
        let (watcher, target) = (seid(1, 1), seid(2, 1));
        ms.open(watcher);
        ms.open(target);
        ms.watch(watcher, target).unwrap();
        assert!(ms.close(target));
        let note = ms.recv(watcher).expect("watch notification");
        assert_eq!(note.from, target);
        assert!(note.payload.is_empty());
    }

    #[test]
    fn double_watch_single_notification() {
        let mut ms = MessagingSystem::new();
        let (w, t) = (seid(1, 1), seid(2, 1));
        ms.open(w);
        ms.open(t);
        ms.watch(w, t).unwrap();
        ms.watch(w, t).unwrap();
        ms.close(t);
        assert_eq!(ms.pending(w), 1);
    }

    #[test]
    fn close_unknown_is_false() {
        let mut ms = MessagingSystem::new();
        assert!(!ms.close(seid(5, 5)));
    }

    #[test]
    fn open_is_idempotent() {
        let mut ms = MessagingSystem::new();
        let a = seid(1, 1);
        ms.open(a);
        ms.open(a);
        assert!(ms.is_open(a));
    }

    #[test]
    fn watch_notification_survives_full_mailbox_of_others() {
        let mut ms = MessagingSystem::new();
        let (w, t, other) = (seid(1, 1), seid(2, 1), seid(3, 1));
        ms.open(w);
        ms.open(t);
        ms.open(other);
        ms.watch(w, t).unwrap();
        // Fill the watcher's mailbox to capacity.
        for _ in 0..MAILBOX_CAPACITY {
            ms.send(other, w, vec![9]).unwrap();
        }
        ms.close(t);
        // Notification was still delivered (bypasses capacity).
        assert_eq!(ms.pending(w), MAILBOX_CAPACITY + 1);
    }
}
