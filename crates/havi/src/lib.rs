//! # uniint-havi
//!
//! An in-process reproduction of the HAVi-style home middleware the
//! paper's prototype runs on (the authors' Middleware 2001 home computing
//! system implementing the HAVi specification).
//!
//! The pieces mirror HAVi's architecture: devices are **DCMs** hosting
//! **FCMs** (functional components — tuner, display, VCR deck, amplifier,
//! light, air conditioner, clock); a **registry** supports attribute-based
//! discovery; an **event manager** fans out hot-plug and state-change
//! events; and the [`network::HomeNetwork`] routes typed control messages
//! to FCM command handlers.
//!
//! Appliance *applications* (crate `uniint-apps`) discover FCMs here and
//! generate control panels for whatever is currently attached — the
//! paper's "composed GUI for TV and VCR if both are available".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod fcm;
pub mod fcms;
pub mod id;
pub mod messaging;
pub mod network;
pub mod registry;

/// Convenient re-exports of the middleware surface.
pub mod prelude {
    pub use crate::events::{EventManager, HaviEvent};
    pub use crate::fcm::{
        AirconMode, Fcm, FcmClass, FcmCommand, FcmError, FcmResponse, StateChange, StateVar,
        Transport,
    };
    pub use crate::fcms::{
        AirconFcm, AmplifierFcm, CameraFcm, ClockFcm, DisplayFcm, LightFcm, TunerFcm, VcrFcm,
    };
    pub use crate::id::{Guid, Seid};
    pub use crate::messaging::{Message, MessagingError, MessagingSystem};
    pub use crate::network::{DeviceSpec, HomeNetwork, NetworkError};
    pub use crate::registry::{ElementKind, Query, Registration, Registry};
}
