//! Functional component modules (FCMs): the controllable units of an
//! appliance, and the command/status vocabulary used to drive them.
//!
//! HAVi models each device as a DCM hosting one FCM per controllable
//! function (tuner, VCR deck, display, amplifier...). Applications send
//! typed commands to FCMs and observe typed state changes.

use crate::id::Seid;
use serde::{Deserialize, Serialize};

/// The functional class of an FCM (HAVi's FCM type codes, extended with
/// the white-goods classes the paper's home needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FcmClass {
    /// Broadcast tuner (TV front end).
    Tuner,
    /// Video display (TV panel).
    Display,
    /// VCR transport deck.
    Vcr,
    /// Audio amplifier.
    Amplifier,
    /// Room light.
    Light,
    /// Air conditioner.
    AirConditioner,
    /// Wall clock / timer.
    Clock,
    /// Still/video camera.
    Camera,
}

impl FcmClass {
    /// All classes, for discovery tests and generators.
    pub const ALL: [FcmClass; 8] = [
        FcmClass::Tuner,
        FcmClass::Display,
        FcmClass::Vcr,
        FcmClass::Amplifier,
        FcmClass::Light,
        FcmClass::AirConditioner,
        FcmClass::Clock,
        FcmClass::Camera,
    ];

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            FcmClass::Tuner => "tuner",
            FcmClass::Display => "display",
            FcmClass::Vcr => "vcr",
            FcmClass::Amplifier => "amplifier",
            FcmClass::Light => "light",
            FcmClass::AirConditioner => "aircon",
            FcmClass::Clock => "clock",
            FcmClass::Camera => "camera",
        }
    }
}

impl core::fmt::Display for FcmClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// VCR transport requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Stop the tape.
    Stop,
    /// Play forward.
    Play,
    /// Pause playback/recording.
    Pause,
    /// Record.
    Record,
    /// Fast-forward.
    FastForward,
    /// Rewind.
    Rewind,
}

impl core::fmt::Display for Transport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Transport::Stop => "stop",
            Transport::Play => "play",
            Transport::Pause => "pause",
            Transport::Record => "record",
            Transport::FastForward => "ff",
            Transport::Rewind => "rew",
        };
        f.write_str(s)
    }
}

/// Commands an application can send to an FCM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FcmCommand {
    /// Power the function on or off.
    SetPower(bool),
    /// Absolute volume `0..=100` (amplifier).
    SetVolume(i32),
    /// Relative volume step (amplifier).
    StepVolume(i32),
    /// Mute or unmute (amplifier).
    SetMute(bool),
    /// Absolute channel (tuner).
    SetChannel(u32),
    /// Relative channel step (tuner).
    StepChannel(i32),
    /// VCR transport control.
    Transport(Transport),
    /// Display brightness `0..=100`.
    SetBrightness(i32),
    /// Display input source index.
    SetInput(u32),
    /// Light dim level `0..=100`.
    SetDimmer(i32),
    /// Target temperature in tenths of °C (aircon).
    SetTargetTemp(i32),
    /// Aircon mode.
    SetAirconMode(AirconMode),
    /// Read the full state snapshot.
    GetStatus,
}

/// Air conditioner operating modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AirconMode {
    /// Cooling.
    Cool,
    /// Heating.
    Heat,
    /// Dehumidify.
    Dry,
    /// Fan only.
    Fan,
}

impl core::fmt::Display for AirconMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            AirconMode::Cool => "cool",
            AirconMode::Heat => "heat",
            AirconMode::Dry => "dry",
            AirconMode::Fan => "fan",
        };
        f.write_str(s)
    }
}

/// One observable state variable of an FCM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StateVar {
    /// Power state.
    Power(bool),
    /// Volume `0..=100`.
    Volume(i32),
    /// Mute state.
    Mute(bool),
    /// Tuned channel.
    Channel(u32),
    /// Transport state.
    Transport(Transport),
    /// Tape position in seconds.
    TapePos(u32),
    /// Brightness `0..=100`.
    Brightness(i32),
    /// Selected input.
    Input(u32),
    /// Dim level `0..=100`.
    Dimmer(i32),
    /// Target temperature, tenths of °C.
    TargetTemp(i32),
    /// Measured temperature, tenths of °C.
    RoomTemp(i32),
    /// Aircon mode.
    AirconMode(AirconMode),
    /// Clock time, seconds since midnight.
    TimeOfDay(u32),
    /// Camera frame counter (monotonic while streaming).
    FrameCounter(u32),
}

/// Reply to an [`FcmCommand`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FcmResponse {
    /// Command applied; the new values of any changed state variables.
    Ok(Vec<StateVar>),
    /// Full state snapshot (reply to `GetStatus`).
    Status(Vec<StateVar>),
    /// Command refused.
    Error(FcmError),
}

impl FcmResponse {
    /// The changed/reported state variables, empty on error.
    pub fn vars(&self) -> &[StateVar] {
        match self {
            FcmResponse::Ok(v) | FcmResponse::Status(v) => v,
            FcmResponse::Error(_) => &[],
        }
    }

    /// Whether the command succeeded.
    pub fn is_ok(&self) -> bool {
        !matches!(self, FcmResponse::Error(_))
    }
}

/// Why an FCM refused a command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FcmError {
    /// The command does not apply to this FCM class.
    UnsupportedCommand,
    /// A parameter was out of range.
    InvalidParameter(String),
    /// The function is powered off and cannot execute the command.
    PoweredOff,
    /// The mechanism is busy (e.g. VCR mid-eject).
    Busy,
}

impl core::fmt::Display for FcmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FcmError::UnsupportedCommand => f.write_str("unsupported command for this fcm"),
            FcmError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
            FcmError::PoweredOff => f.write_str("function is powered off"),
            FcmError::Busy => f.write_str("function is busy"),
        }
    }
}

impl std::error::Error for FcmError {}

/// A functional component: typed state plus a command handler.
///
/// Implementations are pure state machines so they can run inside the
/// simulated home network and inside unit tests unchanged.
pub trait Fcm: std::fmt::Debug + Send {
    /// The functional class.
    fn class(&self) -> FcmClass;

    /// Human-readable name ("Living Room TV Tuner").
    fn name(&self) -> &str;

    /// Executes a command, returning changed state or an error.
    fn handle(&mut self, cmd: &FcmCommand) -> FcmResponse;

    /// Current full state snapshot.
    fn status(&self) -> Vec<StateVar>;

    /// Advances internal time by `dt_ms` (tape motion, clock ticks).
    /// Returns state variables that changed, if any.
    fn tick(&mut self, _dt_ms: u64) -> Vec<StateVar> {
        Vec::new()
    }
}

/// A state-change notification posted by the network when an FCM mutates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateChange {
    /// The FCM that changed.
    pub seid: Seid,
    /// Its class.
    pub class: FcmClass,
    /// The changed variables.
    pub vars: Vec<StateVar>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_unique() {
        let mut names: Vec<_> = FcmClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FcmClass::ALL.len());
    }

    #[test]
    fn response_vars_accessor() {
        let r = FcmResponse::Ok(vec![StateVar::Power(true)]);
        assert!(r.is_ok());
        assert_eq!(r.vars().len(), 1);
        let e = FcmResponse::Error(FcmError::Busy);
        assert!(!e.is_ok());
        assert!(e.vars().is_empty());
    }

    #[test]
    fn errors_display() {
        assert!(FcmError::PoweredOff.to_string().contains("powered off"));
        assert!(FcmError::InvalidParameter("volume 999".into())
            .to_string()
            .contains("volume 999"));
    }
}
