//! Property tests for the HAVi substrate: FCM invariants under random
//! command storms, and a model-based registry check.

use proptest::prelude::*;
use uniint_havi::prelude::*;

fn arb_command() -> impl Strategy<Value = FcmCommand> {
    prop_oneof![
        any::<bool>().prop_map(FcmCommand::SetPower),
        (-50i32..150).prop_map(FcmCommand::SetVolume),
        (-30i32..30).prop_map(FcmCommand::StepVolume),
        any::<bool>().prop_map(FcmCommand::SetMute),
        (0u32..20).prop_map(FcmCommand::SetChannel),
        (-5i32..5).prop_map(FcmCommand::StepChannel),
        proptest::sample::select(vec![
            Transport::Stop,
            Transport::Play,
            Transport::Pause,
            Transport::Record,
            Transport::FastForward,
            Transport::Rewind,
        ])
        .prop_map(FcmCommand::Transport),
        (-50i32..150).prop_map(FcmCommand::SetBrightness),
        (0u32..5).prop_map(FcmCommand::SetInput),
        (-50i32..150).prop_map(FcmCommand::SetDimmer),
        (0i32..500).prop_map(FcmCommand::SetTargetTemp),
        proptest::sample::select(vec![
            AirconMode::Cool,
            AirconMode::Heat,
            AirconMode::Dry,
            AirconMode::Fan,
        ])
        .prop_map(FcmCommand::SetAirconMode),
        Just(FcmCommand::GetStatus),
    ]
}

fn check_invariants(vars: &[StateVar]) {
    for v in vars {
        match v {
            StateVar::Volume(x) | StateVar::Brightness(x) | StateVar::Dimmer(x) => {
                assert!((0..=100).contains(x), "{v:?}")
            }
            StateVar::Channel(c) => assert!((1..=12).contains(c), "{v:?}"),
            StateVar::TargetTemp(t) => assert!((100..=350).contains(t), "{v:?}"),
            StateVar::TapePos(p) => assert!(*p <= 600, "{v:?}"),
            StateVar::TimeOfDay(t) => assert!(*t < 86_400, "{v:?}"),
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fcms_preserve_invariants_under_storm(
        cmds in proptest::collection::vec(arb_command(), 1..60),
        ticks in proptest::collection::vec(0u64..5_000, 0..20),
    ) {
        let mut fcms: Vec<Box<dyn Fcm>> = vec![
            Box::new(TunerFcm::new("t", 12)),
            Box::new(DisplayFcm::new("d", 3)),
            Box::new(VcrFcm::new("v", 600)),
            Box::new(AmplifierFcm::new("a")),
            Box::new(LightFcm::new("l")),
            Box::new(AirconFcm::new("ac", 280)),
            Box::new(ClockFcm::new("c", 0)),
            Box::new(CameraFcm::new("cam", 10)),
        ];
        for fcm in &mut fcms {
            for cmd in &cmds {
                let resp = fcm.handle(cmd);
                check_invariants(resp.vars());
            }
            for &dt in &ticks {
                check_invariants(&fcm.tick(dt));
            }
            check_invariants(&fcm.status());
        }
    }

    #[test]
    fn get_status_never_errors(cmds in proptest::collection::vec(arb_command(), 0..20)) {
        let mut fcm = AmplifierFcm::new("a");
        for cmd in &cmds {
            let _ = fcm.handle(cmd);
        }
        let resp = fcm.handle(&FcmCommand::GetStatus);
        prop_assert!(resp.is_ok());
        prop_assert!(!resp.vars().is_empty());
    }

    #[test]
    fn registry_model_based(ops in proptest::collection::vec((0u8..3, 0u64..8, 0u32..4), 1..40)) {
        // Model: a plain map of (guid, handle) → name, mirrored against
        // the real registry through random register/unregister ops.
        let mut reg = Registry::new();
        let mut model: std::collections::HashMap<(u64, u32), String> =
            std::collections::HashMap::new();
        for (op, g, h) in ops {
            let seid = Seid::new(Guid(g), h);
            match op {
                0 => {
                    let name = format!("el-{g}-{h}");
                    reg.register(Registration {
                        seid,
                        kind: ElementKind::Fcm,
                        class: Some(FcmClass::Light),
                        name: name.clone(),
                        zone: "z".into(),
                    });
                    model.insert((g, h), name);
                }
                1 => {
                    let existed = reg.unregister(seid);
                    prop_assert_eq!(existed, model.remove(&(g, h)).is_some());
                }
                _ => {
                    let removed = reg.unregister_device(Guid(g));
                    let model_removed = model.keys().filter(|(mg, _)| *mg == g).count();
                    prop_assert_eq!(removed, model_removed);
                    model.retain(|(mg, _), _| *mg != g);
                }
            }
            prop_assert_eq!(reg.len(), model.len());
            for ((mg, mh), name) in &model {
                let r = reg.lookup(Seid::new(Guid(*mg), *mh)).expect("model entry in registry");
                prop_assert_eq!(&r.name, name);
            }
        }
    }

    #[test]
    fn network_send_never_panics(
        cmds in proptest::collection::vec(arb_command(), 1..30),
        handle in 0u32..4,
    ) {
        let mut net = HomeNetwork::new();
        let g = net.attach(
            DeviceSpec::new("TV", "z")
                .with_fcm(TunerFcm::new("t", 12))
                .with_fcm(DisplayFcm::new("d", 2)),
        );
        for cmd in &cmds {
            let _ = net.send(Seid::new(g, handle), cmd);
        }
        // Registry and devices stay consistent.
        prop_assert_eq!(net.registry().len(), 3);
    }
}
