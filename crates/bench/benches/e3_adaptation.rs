//! E3 — Output adaptation throughput at the UniInt proxy.
//!
//! Cost of adapting a 640×480 server frame to each output device profile
//! (scale + quantize + dither), and of the individual pipeline stages.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use uniint_bench::panel_ui;
use uniint_core::plugin::OutputPlugin;
use uniint_devices::prelude::{ScreenPlugin, TerminalPlugin};
use uniint_raster::dither::{dither_to_format, DitherMode};
use uniint_raster::geom::Size;
use uniint_raster::pixel::PixelFormat;
use uniint_raster::scale::{scale, ScaleFilter};

fn bench_plugins(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_adapt");
    let ui = panel_ui(Size::new(640, 480));
    let frame = ui.framebuffer();
    group.throughput(Throughput::Elements(frame.size().area()));
    let mut plugins: Vec<Box<dyn OutputPlugin>> = vec![
        Box::new(ScreenPlugin::tv()),
        Box::new(ScreenPlugin::pda()),
        Box::new(ScreenPlugin::phone_lcd()),
        Box::new(ScreenPlugin::eyepiece()),
        Box::new(TerminalPlugin::standard()),
    ];
    for plugin in &mut plugins {
        group.bench_function(plugin.kind(), |b| {
            b.iter(|| black_box(plugin.adapt(frame)));
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_stages");
    let ui = panel_ui(Size::new(640, 480));
    let frame = ui.framebuffer();
    for filter in [
        ScaleFilter::Nearest,
        ScaleFilter::Bilinear,
        ScaleFilter::Box,
    ] {
        group.bench_function(format!("scale_{filter}"), |b| {
            b.iter(|| black_box(scale(frame, Size::new(240, 180), filter)));
        });
    }
    let small = scale(frame, Size::new(240, 180), ScaleFilter::Box);
    for mode in [
        DitherMode::None,
        DitherMode::Ordered4x4,
        DitherMode::FloydSteinberg,
    ] {
        group.bench_function(format!("dither_{mode}_mono"), |b| {
            b.iter(|| black_box(dither_to_format(&small, PixelFormat::Mono1, mode)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plugins, bench_stages);
criterion_main!(benches);
