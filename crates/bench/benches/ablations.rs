//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **content-based encoding selection** vs. pinning a single encoding;
//! - **damage tracking** (incremental updates) vs. full-screen refreshes;
//! - **region coalescing** under scattered vs. sequential damage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uniint_bench::standard_scene;
use uniint_protocol::encoding::Encoding;
use uniint_protocol::message::ClientMessage;
use uniint_raster::geom::Rect;
use uniint_raster::region::Region;
use uniint_wsys::prelude::{Slider, Ui};

/// One "interaction frame": mutate a slider, then run the full
/// server→proxy update cycle with the given encoding set.
fn update_cycle(allowed: Vec<Encoding>) -> impl FnMut() {
    let (_net, mut app, mut session) = standard_scene();
    session.deliver_to_server(app.ui_mut(), vec![ClientMessage::SetEncodings(allowed)]);
    let slider_id = app
        .ui()
        .widget_ids()
        .into_iter()
        .find(|&id| app.ui().widget::<Slider>(id).is_some())
        .expect("panel has a slider");
    let mut v = 0;
    move || {
        v = (v + 7) % 100;
        app.ui_mut()
            .widget_mut::<Slider>(slider_id)
            .unwrap()
            .set_value(v);
        session.pump(app.ui_mut());
        black_box(session.take_frame());
    }
}

fn bench_encoding_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_encoding_choice");
    let cases: Vec<(&str, Vec<Encoding>)> = vec![
        ("adaptive_all", Encoding::ALL.to_vec()),
        ("raw_only", vec![Encoding::Raw]),
        ("hextile_only", vec![Encoding::Hextile]),
        ("palette_rle_only", vec![Encoding::PaletteRle]),
    ];
    for (name, allowed) in cases {
        group.bench_function(name, |b| {
            let mut cycle = update_cycle(allowed.clone());
            b.iter(&mut cycle);
        });
    }
    group.finish();
}

fn bench_damage_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_damage_tracking");

    // With damage tracking: only the slider band is re-encoded.
    group.bench_function("incremental_updates", |b| {
        let mut cycle = update_cycle(Encoding::ALL.to_vec());
        b.iter(&mut cycle);
    });

    // Without: every frame requests the full screen non-incrementally
    // (what a damage-less server would be forced to send).
    group.bench_function("full_refresh_every_frame", |b| {
        let (_net, mut app, mut session) = standard_scene();
        let bounds = app.ui().framebuffer().bounds();
        let slider_id = app
            .ui()
            .widget_ids()
            .into_iter()
            .find(|&id| app.ui().widget::<Slider>(id).is_some())
            .expect("slider");
        let mut v = 0;
        b.iter(|| {
            v = (v + 7) % 100;
            app.ui_mut()
                .widget_mut::<Slider>(slider_id)
                .unwrap()
                .set_value(v);
            session.deliver_to_server(
                app.ui_mut(),
                vec![ClientMessage::UpdateRequest {
                    incremental: false,
                    rect: bounds,
                }],
            );
            black_box(session.take_frame());
        });
    });
    group.finish();
}

fn bench_region_coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_region");
    for &n in &[16usize, 128] {
        group.bench_with_input(BenchmarkId::new("sequential_rows", n), &n, |b, &n| {
            b.iter(|| {
                let mut r = Region::new();
                for i in 0..n {
                    r.add(Rect::new(0, i as i32 * 4, 100, 4));
                }
                black_box(r.rect_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("scattered", n), &n, |b, &n| {
            b.iter(|| {
                let mut r = Region::new();
                for i in 0..n {
                    let x = (i * 37) % 500;
                    let y = (i * 91) % 400;
                    r.add(Rect::new(x as i32, y as i32, 12, 9));
                }
                black_box(r.rect_count())
            });
        });
    }
    // Widget-level: repaint cost of a dirty-tracked UI vs clear-all.
    group.bench_function("ui_dirty_render", |b| {
        let mut ui = uniint_bench::panel_ui(uniint_raster::geom::Size::new(320, 240));
        let slider = ui
            .widget_ids()
            .into_iter()
            .find(|&id| ui.widget::<Slider>(id).is_some())
            .expect("slider");
        let mut v = 0;
        b.iter(|| {
            v = (v + 3) % 100;
            ui.widget_mut::<Slider>(slider).unwrap().set_value(v);
            ui.render();
            black_box(ui.framebuffer_mut().take_damage().area())
        });
    });
    group.bench_function("ui_full_render", |b| {
        let mut ui = uniint_bench::panel_ui(uniint_raster::geom::Size::new(320, 240));
        let slider = ui
            .widget_ids()
            .into_iter()
            .find(|&id| ui.widget::<Slider>(id).is_some())
            .expect("slider");
        let mut v = 0;
        b.iter(|| {
            v = (v + 3) % 100;
            ui.widget_mut::<Slider>(slider).unwrap().set_value(v);
            force_full_render(&mut ui);
            black_box(ui.framebuffer_mut().take_damage().area())
        });
    });
    group.finish();
}

/// Renders after invalidating everything (the no-damage-tracking world).
fn force_full_render(ui: &mut Ui) {
    let size = ui.size();
    // Marking the framebuffer fully damaged approximates a full repaint
    // server-side; widgets still only repaint dirty ones, so also touch
    // each widget through the damage API.
    ui.framebuffer_mut()
        .add_damage(Rect::new(0, 0, size.w, size.h));
    ui.render();
}

criterion_group!(
    benches,
    bench_encoding_choice,
    bench_damage_tracking,
    bench_region_coalescing
);
mod device_link {
    use super::*;
    use uniint_core::plugin::OutputPlugin;
    use uniint_devices::prelude::ScreenPlugin;

    /// Device-link ablation: full-frame refresh vs changed-region delta
    /// on the proxy→device leg during a slider drag.
    pub fn bench_device_link(c: &mut Criterion) {
        let mut group = c.benchmark_group("ablation_device_link");
        group.bench_function("adapt_with_delta_tracking", |b| {
            let mut ui = uniint_bench::panel_ui(uniint_raster::geom::Size::new(320, 240));
            let slider = ui
                .widget_ids()
                .into_iter()
                .find(|&id| ui.widget::<Slider>(id).is_some())
                .expect("slider");
            let mut plugin = ScreenPlugin::pda();
            let mut v = 0;
            let mut delta_total = 0usize;
            b.iter(|| {
                v = (v + 3) % 100;
                ui.widget_mut::<Slider>(slider).unwrap().set_value(v);
                ui.render();
                let frame = plugin.adapt(ui.framebuffer());
                delta_total += frame.delta_bytes();
                black_box(frame);
            });
            black_box(delta_total);
        });
        group.finish();
    }
}

criterion_group!(device_link_benches, device_link::bench_device_link);
criterion_main!(benches, device_link_benches);
