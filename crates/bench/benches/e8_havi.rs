//! E8 — Cost of the HAVi-like substrate: registry discovery and FCM
//! command routing as the home grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uniint_bench::home_with;
use uniint_havi::prelude::*;

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_registry");
    for n in [4usize, 16, 64, 256] {
        let net = home_with(n);
        group.bench_with_input(BenchmarkId::new("query_by_class", n), &n, |b, _| {
            b.iter(|| black_box(net.registry().query(&Query::new().class(FcmClass::Vcr))));
        });
        group.bench_with_input(BenchmarkId::new("query_compound", n), &n, |b, _| {
            let q = Query::new()
                .kind(ElementKind::Fcm)
                .zone("living-room")
                .name_contains("Amp");
            b.iter(|| black_box(net.registry().query(&q)));
        });
    }
    group.finish();
}

fn bench_commands(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_commands");
    for n in [4usize, 64, 256] {
        let mut net = home_with(n);
        let amp = net.find_fcms(&Query::new().class(FcmClass::Amplifier))[0];
        net.send(amp, &FcmCommand::SetPower(true)).unwrap();
        group.bench_with_input(BenchmarkId::new("volume_roundtrip", n), &n, |b, _| {
            let mut v = 0;
            b.iter(|| {
                v = (v + 1) % 100;
                black_box(net.send(amp, &FcmCommand::SetVolume(v)).unwrap());
            });
        });
    }
    // Hot-plug cost: attach + detach one device in a 64-appliance home.
    group.bench_function("hotplug_64", |b| {
        let mut net = home_with(64);
        b.iter(|| {
            let g = net.attach(
                DeviceSpec::new("Transient", "hall").with_fcm(LightFcm::new("Transient Light")),
            );
            black_box(net.detach(g));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_registry, bench_commands);
criterion_main!(benches);
