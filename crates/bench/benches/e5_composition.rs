//! E5 — Panel composition cost vs. number of available appliances.
//!
//! The appliance application regenerates the composed control panel when
//! devices come and go; this measures discovery + widget construction +
//! first render as the appliance count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uniint_apps::prelude::*;
use uniint_bench::home_with;
use uniint_wsys::prelude::Theme;

fn bench_composition(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_composition");
    for n in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("compose", n), &n, |b, &n| {
            let mut net = home_with(n);
            b.iter(|| black_box(ControlPanelApp::new(&mut net, None, Theme::classic())));
        });
        group.bench_with_input(BenchmarkId::new("recompose_hotplug", n), &n, |b, &n| {
            let mut net = home_with(n);
            let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
            b.iter(|| {
                // A no-op recompose measures the steady-state rebuild the
                // application performs on every hot-plug event.
                app.recompose(&mut net);
                black_box(app.section_count());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_composition);
criterion_main!(benches);
