//! E2 — Encoding efficiency of the universal interaction protocol.
//!
//! Encode time per (encoding × damage pattern) at the PDA screen size;
//! the companion `experiments` binary reports the bytes-per-update table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uniint_bench::{DamagePattern, E2_SIZES};
use uniint_protocol::encoding::{decode_rect, encode_rect, Encoding};
use uniint_raster::pixel::PixelFormat;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_encode");
    let size = E2_SIZES[1]; // PDA-sized panel
    for pattern in DamagePattern::ALL {
        let (rect, px) = pattern.generate(size);
        group.throughput(Throughput::Elements(rect.area()));
        for enc in [
            Encoding::Raw,
            Encoding::Rre,
            Encoding::Hextile,
            Encoding::Rle,
            Encoding::PaletteRle,
        ] {
            group.bench_with_input(
                BenchmarkId::new(enc.to_string(), pattern.name()),
                &(&rect, &px),
                |b, (rect, px)| {
                    b.iter(|| black_box(encode_rect(px, **rect, enc, PixelFormat::Rgb888)));
                },
            );
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_decode");
    let size = E2_SIZES[1];
    let (rect, px) = DamagePattern::FullRepaint.generate(size);
    for enc in [
        Encoding::Raw,
        Encoding::Rre,
        Encoding::Hextile,
        Encoding::Rle,
        Encoding::PaletteRle,
    ] {
        let bytes = encode_rect(&px, rect, enc, PixelFormat::Rgb888);
        group.bench_function(enc.to_string(), |b| {
            b.iter(|| {
                let mut cursor: &[u8] = &bytes;
                black_box(decode_rect(&mut cursor, rect, enc, PixelFormat::Rgb888).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
