//! E10 — Cost of the device supervision layer.
//!
//! Three measurements bound what fault isolation buys and what it costs:
//! the per-event overhead of the supervising shim on a healthy input
//! plug-in (bare vs supervised translate), the cost of an idle
//! supervisor tick over a full home of healthy devices, and the price of
//! a complete quarantine → failover → probation → readmission cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uniint_core::coordinator::InteractionDevice;
use uniint_core::plugin::{InputContext, InputPlugin};
use uniint_core::prelude::*;
use uniint_devices::prelude::*;
use uniint_raster::geom::Size;

fn ctx() -> InputContext {
    InputContext {
        server_size: Size::new(320, 240),
        device_view: Size::new(240, 180),
    }
}

/// Bare plug-in translate: the baseline the shim is compared against.
fn bench_translate_bare(c: &mut Criterion) {
    let mut plugin = KeypadPlugin::new();
    let ctx = ctx();
    c.bench_function("e10_supervision/translate_bare", |b| {
        b.iter(|| black_box(plugin.translate(black_box(&DeviceEvent::KeypadDigit(5)), &ctx)));
    });
}

/// The same translate through the fault-isolating shim (catch_unwind,
/// fuel accounting, outcome ledger).
fn bench_translate_supervised(c: &mut Criterion) {
    let mut sup = Supervisor::new(1);
    let dev = sup.supervise(SimPhone::interaction_device("phone-1"));
    let mut slot: Option<Box<dyn InputPlugin>> = None;
    let _dev = dev.map_input_factory(|f| {
        slot = Some(f());
        f
    });
    let mut plugin = slot.expect("phone has an input plug-in");
    let ctx = ctx();
    c.bench_function("e10_supervision/translate_supervised", |b| {
        b.iter(|| black_box(plugin.translate(black_box(&DeviceEvent::KeypadDigit(5)), &ctx)));
    });
}

/// An idle supervisor tick over a healthy 8-device home: ledger drain,
/// heartbeat bookkeeping, availability re-assertion, no transitions.
fn bench_tick_idle(c: &mut Criterion) {
    let mut sup = Supervisor::new(2);
    let mut coord = Coordinator::new(UserProfile::neutral("u"), Situation::idle("living-room"));
    let mut proxy = UniIntProxy::new("bench");
    let devices: Vec<InteractionDevice> = standard_home("kitchen", "living-room")
        .into_iter()
        .map(|d| sup.supervise(d))
        .collect();
    let ids: Vec<String> = devices.iter().map(|d| d.descriptor().id.clone()).collect();
    for dev in devices {
        coord.register(dev, &mut proxy);
    }
    let mut now = 0u64;
    c.bench_function("e10_supervision/tick_idle_8_devices", |b| {
        b.iter(|| {
            now += 100_000;
            for id in &ids {
                sup.heartbeat(id, now);
            }
            black_box(sup.tick(now, &mut coord, &mut proxy));
        });
    });
}

/// A full quarantine → failover → probation → readmission cycle: a
/// panicking preferred input is demoted, the backup takes over, the
/// probation expires and the device earns its way back.
fn bench_quarantine_failover_cycle(c: &mut Criterion) {
    c.bench_function("e10_supervision/quarantine_failover_cycle", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sup = Supervisor::new(seed);
            let mut profile = UserProfile::neutral("u");
            profile.input_ranking = vec![InputModality::Stylus, InputModality::Keypad];
            let mut coord = Coordinator::new(profile, Situation::idle("living-room"));
            let mut proxy = UniIntProxy::new("bench");
            let schedule = (0..4).fold(DeviceFaultSchedule::new(), |s, i| s.panic_on_input(i));
            let (faulty, _h) =
                FaultyDevice::wrap(SimPda::interaction_device("pda-1"), schedule, seed);
            for dev in [
                sup.supervise(faulty),
                sup.supervise(SimPhone::interaction_device("phone-1")),
                sup.supervise(tv_interaction_device("tv-lr", "living-room")),
            ] {
                coord.register(dev, &mut proxy);
            }
            // Trip the quarantine, fail over, then let probation expire
            // and the clean streak readmit.
            for _ in 0..4 {
                proxy.device_input(&DeviceEvent::StylusMove { x: 5, y: 5 });
            }
            let mut now = 1_000u64;
            sup.tick(now, &mut coord, &mut proxy);
            for _ in 0..12 {
                now += 200_000;
                sup.heartbeat("pda-1", now);
                sup.heartbeat("phone-1", now);
                sup.heartbeat("tv-lr", now);
                proxy.device_input(&DeviceEvent::StylusMove { x: 5, y: 5 });
                sup.tick(now, &mut coord, &mut proxy);
            }
            black_box(sup.stats())
        });
    });
}

criterion_group!(
    benches,
    bench_translate_bare,
    bench_translate_supervised,
    bench_tick_idle,
    bench_quarantine_failover_cycle
);
criterion_main!(benches);
