//! E1 — Uniform control from heterogeneous input devices.
//!
//! Measures the end-to-end cost of one command issued from each input
//! device: device event → input plug-in → universal events → UniInt
//! server → window system → widget action → FCM command. The paper's
//! claim is that all devices drive the *same unmodified panel*; the
//! numbers show what the uniformity costs per modality.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uniint_bench::{power_center, standard_scene};
use uniint_core::plugin::{DeviceEvent, Gesture};
use uniint_core::prelude::RemoteKey;
use uniint_devices::prelude::*;

fn bench_inputs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_input_latency");

    // Remote controller: one Ok press on the focused power toggle.
    group.bench_function("remote_ok", |b| {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(RemotePlugin::new()));
        b.iter(|| {
            session.device_input(app.ui_mut(), &SimRemote::press(RemoteKey::Ok));
            black_box(app.process(&mut net));
        });
    });

    // PDA stylus: tap the power toggle's screen position.
    group.bench_function("pda_stylus_tap", |b| {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(StylusPlugin::new()));
        let (x, y) = power_center(&app);
        b.iter(|| {
            for ev in SimPda::tap(x, y) {
                session.device_input(app.ui_mut(), &ev);
            }
            black_box(app.process(&mut net));
        });
    });

    // Phone keypad: center-key select.
    group.bench_function("phone_keypad_select", |b| {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(KeypadPlugin::new()));
        let ev = SimPhone::press('5').unwrap();
        b.iter(|| {
            session.device_input(app.ui_mut(), &ev);
            black_box(app.process(&mut net));
        });
    });

    // Voice: a recognized "select" utterance.
    group.bench_function("voice_select", |b| {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(VoicePlugin::new()));
        let ev = DeviceEvent::Voice("select".into());
        b.iter(|| {
            session.device_input(app.ui_mut(), &ev);
            black_box(app.process(&mut net));
        });
    });

    // Gesture wearable: fist (= select).
    group.bench_function("gesture_fist", |b| {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(GesturePlugin::new()));
        let ev = DeviceEvent::Gesture(Gesture::Fist);
        b.iter(|| {
            session.device_input(app.ui_mut(), &ev);
            black_box(app.process(&mut net));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_inputs);
criterion_main!(benches);
