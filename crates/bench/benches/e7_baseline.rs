//! E7 — Universal interaction vs. the per-device-native baseline.
//!
//! The implicit comparison in the paper: instead of one universal
//! bitmap/event pipeline, each device could run its own native UI for
//! each appliance (what vendors shipped in 2002). We measure the same
//! interaction both ways:
//!
//! - **universal**: device event → plug-in → protocol → server → toolkit
//!   → action → FCM, then bitmap back through adaptation;
//! - **native**: the device renders its own widget screen directly and
//!   sends the FCM command itself (no protocol, no proxy, no adaptation).
//!
//! The universal path costs more per interaction — that is the price of
//! supporting *every* device with *zero* per-appliance UI code.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uniint_bench::{home_with, standard_scene};
use uniint_devices::prelude::*;
use uniint_havi::prelude::*;
use uniint_raster::prelude::*;
use uniint_wsys::prelude::*;

/// The baseline: a device-native screen hard-coded for one appliance.
struct NativeTvUi {
    ui: Ui,
    power: WidgetId,
}

impl NativeTvUi {
    fn new() -> NativeTvUi {
        // A phone-sized native UI, drawn at device resolution directly.
        let mut ui = Ui::new(128, 128, Theme::classic(), "native TV");
        let power = ui.add(Toggle::new("Power", false), Rect::new(10, 10, 60, 20));
        ui.add(Button::new("Ch+"), Rect::new(10, 40, 40, 20));
        ui.add(Button::new("Ch-"), Rect::new(60, 40, 40, 20));
        ui.render();
        NativeTvUi { ui, power }
    }
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_baseline");

    // Native path: direct widget dispatch + direct FCM command + direct
    // mono rendering of the 128x128 native screen.
    group.bench_function("native_per_device_ui", |b| {
        let mut net = home_with(1);
        let tuner = net.find_fcms(&Query::new().class(FcmClass::Tuner))[0];
        let mut native = NativeTvUi::new();
        let mut on = false;
        b.iter(|| {
            for ev in uniint_protocol::input::InputEvent::click(40, 20) {
                native.ui.dispatch(ev);
            }
            for a in native.ui.take_actions() {
                if a.widget == native.power {
                    on = !on;
                    black_box(net.send(tuner, &FcmCommand::SetPower(on)).unwrap());
                }
            }
            native.ui.render();
            // Device renders its own framebuffer natively (already 1-bit
            // capable hardware): just hand the raster over.
            black_box(native.ui.framebuffer().pixels().len());
        });
    });

    // Universal path: the same toggle through the full UniInt pipeline,
    // including phone-LCD output adaptation of the shared panel.
    group.bench_function("universal_pipeline", |b| {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(KeypadPlugin::new()));
        let msgs = session
            .proxy
            .attach_output(Box::new(ScreenPlugin::phone_lcd()));
        session.deliver_to_server(app.ui_mut(), msgs);
        let ev = SimPhone::press('5').unwrap();
        b.iter(|| {
            session.device_input(app.ui_mut(), &ev);
            black_box(app.process(&mut net));
            session.pump(app.ui_mut());
            black_box(session.take_frame());
        });
    });

    // Universal path without output adaptation (input-only cost).
    group.bench_function("universal_input_only", |b| {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(KeypadPlugin::new()));
        let ev = SimPhone::press('5').unwrap();
        b.iter(|| {
            session.device_input(app.ui_mut(), &ev);
            black_box(app.process(&mut net));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
