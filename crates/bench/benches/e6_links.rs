//! E6 — Interactive update rate over realistic home links.
//!
//! Drives a 20-step slider drag through a full simulated-network session
//! per link profile. Criterion measures the wall-clock cost of simulating
//! it; the virtual-time frame rates (the paper-facing numbers) come from
//! the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uniint_apps::prelude::*;
use uniint_bench::home_with;
use uniint_core::prelude::*;
use uniint_devices::prelude::*;
use uniint_netsim::prelude::LinkProfile;
use uniint_wsys::prelude::Theme;

/// One complete drag session over `link`; returns (virtual µs, frames).
pub fn drag_session(link: LinkProfile, seed: u64) -> (u64, u64) {
    let mut net = home_with(3);
    let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
    let mut s = SimSession::connect(app.ui_mut(), link, seed).expect("connect");
    s.proxy.attach_input(Box::new(KeypadPlugin::new()));
    let msgs = s.proxy.attach_output(Box::new(ScreenPlugin::phone_lcd()));
    s.send_client(app.ui_mut(), msgs).unwrap();
    let t0 = s.now_us();
    // Walk focus to a slider, then arrow-key it 20 steps: every step
    // damages the screen and ships an incremental update.
    for _ in 0..4 {
        s.device_input(app.ui_mut(), &SimPhone::press('8').unwrap())
            .unwrap();
        app.process(&mut net);
        s.settle(app.ui_mut()).unwrap();
    }
    for _ in 0..20 {
        s.device_input(app.ui_mut(), &SimPhone::press('6').unwrap())
            .unwrap();
        app.process(&mut net);
        s.settle(app.ui_mut()).unwrap();
    }
    (s.now_us() - t0, s.frames_delivered())
}

fn bench_links(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_links");
    group.sample_size(10);
    for link in LinkProfile::presets() {
        group.bench_with_input(BenchmarkId::new("drag20", link.name), &link, |b, &link| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(drag_session(link, seed));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_links);
criterion_main!(benches);
