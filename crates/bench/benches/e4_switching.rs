//! E4 — Dynamic device switching latency.
//!
//! Time from a situation change to (a) a new input plug-in attached and
//! translating, and (b) a new output plug-in producing its first adapted
//! frame, including the protocol renegotiation round-trip.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uniint_bench::standard_scene;
use uniint_core::prelude::*;
use uniint_devices::prelude::*;

fn cooking() -> Situation {
    Situation {
        zone: "kitchen".into(),
        activity: Activity::Cooking,
        hands_busy: true,
        noise: Noise::Moderate,
    }
}

fn sofa() -> Situation {
    Situation {
        zone: "living-room".into(),
        activity: Activity::WatchingTv,
        hands_busy: false,
        noise: Noise::Moderate,
    }
}

fn bench_switching(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_switching");

    // Input-only switch: phone keypad ↔ voice (no renegotiation needed).
    group.bench_function("input_switch_keypad_voice", |b| {
        let (_net, _app, mut session) = standard_scene();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            if flip {
                session.proxy.attach_input(Box::new(VoicePlugin::new()));
            } else {
                session.proxy.attach_input(Box::new(KeypadPlugin::new()));
            }
            black_box(session.proxy.attached());
        });
    });

    // Output switch including full renegotiation + first adapted frame.
    group.bench_function("output_switch_tv_pda_full", |b| {
        let (_net, mut app, mut session) = standard_scene();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let msgs = if flip {
                session.proxy.attach_output(Box::new(ScreenPlugin::pda()))
            } else {
                session.proxy.attach_output(Box::new(ScreenPlugin::tv()))
            };
            session.deliver_to_server(app.ui_mut(), msgs);
            black_box(session.take_frame());
        });
    });

    // Full coordinator reselection on a situation change.
    group.bench_function("coordinator_situation_change", |b| {
        let (_net, mut app, mut session) = standard_scene();
        let mut coord = Coordinator::new(UserProfile::neutral("u"), sofa());
        for d in standard_home("kitchen", "living-room") {
            let report = coord.register(d, &mut session.proxy);
            session.deliver_to_server(app.ui_mut(), report.messages);
        }
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let sit = if flip { cooking() } else { sofa() };
            let report = coord.set_situation(sit, &mut session.proxy);
            session.deliver_to_server(app.ui_mut(), report.messages);
            black_box(session.take_frame());
        });
    });

    // Policy-only cost: scoring 7 devices without any attachment.
    group.bench_function("policy_rank_only", |b| {
        let devices: Vec<DeviceDescriptor> = standard_home("kitchen", "living-room")
            .iter()
            .map(|d| d.descriptor().clone())
            .collect();
        let sit = cooking();
        let user = UserProfile::neutral("u");
        b.iter(|| {
            black_box(SelectionPolicy.rank_inputs(&devices, &sit, &user));
            black_box(SelectionPolicy.rank_outputs(&devices, &sit, &user));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_switching);
criterion_main!(benches);
