//! E9 — Interaction cost under scheduled link faults.
//!
//! Sweeps the {link} × {fault} grid: a keypad interaction sequence runs
//! while the link flaps, burst-drops, or suffers latency spikes, and the
//! session's resume/backoff machinery heals every break. Criterion
//! measures the wall-clock simulation cost; recovery-quality numbers
//! (stalls, resumes, retransmits, virtual time lost) are reported by the
//! `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uniint_apps::prelude::*;
use uniint_bench::home_with;
use uniint_core::prelude::*;
use uniint_devices::prelude::*;
use uniint_netsim::prelude::{FaultSchedule, LinkProfile};
use uniint_wsys::prelude::Theme;

/// A fault schedule parameterised on the session start time.
type ScheduleFn = fn(u64) -> FaultSchedule;

/// Named fault schedules.
fn fault_grid() -> Vec<(&'static str, ScheduleFn)> {
    vec![
        ("clean", |_t0| FaultSchedule::new()),
        ("burst", |_t0| {
            FaultSchedule::new().burst_loss(0.05, 0.7, 0.8)
        }),
        ("flap2s", |t0| {
            FaultSchedule::new().flap(t0 + 50_000, t0 + 2_050_000)
        }),
        ("spike", |t0| {
            FaultSchedule::new().latency_spike(t0, t0 + 2_000_000, 200_000)
        }),
    ]
}

/// A faulted interaction session; returns (virtual µs, proxy stats).
pub fn faulted_session(
    link: LinkProfile,
    schedule: fn(u64) -> FaultSchedule,
    seed: u64,
) -> (u64, ProxyStats) {
    let mut net = home_with(3);
    let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
    let mut s = SimSession::connect(app.ui_mut(), link, seed).expect("connect");
    s.proxy.attach_input(Box::new(KeypadPlugin::new()));
    let t0 = s.now_us();
    s.sim.set_link_faults(s.proxy_endpoint(), schedule(t0));
    for _ in 0..8 {
        s.device_input(app.ui_mut(), &SimPhone::press('5').unwrap())
            .unwrap();
        app.process(&mut net);
        s.settle(app.ui_mut()).unwrap();
    }
    (s.now_us() - t0, s.proxy.stats())
}

fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_faults");
    group.sample_size(10);
    let links = [
        LinkProfile::wifi80211b(),
        LinkProfile::bluetooth(),
        LinkProfile::cellular_gprs(),
    ];
    for link in links {
        for (fault, schedule) in fault_grid() {
            let id = BenchmarkId::new(fault, link.name);
            group.bench_with_input(id, &(link, schedule), |b, &(link, schedule)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(faulted_session(link, schedule, seed));
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
