//! Shared workload builders for the experiment harness (E1–E8).
//!
//! Each experiment in DESIGN.md §4 uses these fixtures so the Criterion
//! benches and the `experiments` report binary measure identical work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use uniint_apps::prelude::*;
use uniint_core::prelude::*;
use uniint_havi::prelude::*;
use uniint_raster::prelude::*;
use uniint_wsys::prelude::{Theme, Ui};

/// Builds a home network with `n` appliances cycling through the main
/// appliance classes (TV tuner+display count as one device).
pub fn home_with(n: usize) -> HomeNetwork {
    let mut net = HomeNetwork::new();
    for i in 0..n {
        match i % 5 {
            0 => net.attach(
                DeviceSpec::new(format!("TV-{i}"), "living-room")
                    .with_fcm(TunerFcm::new(format!("Tuner {i}"), 12))
                    .with_fcm(DisplayFcm::new(format!("Display {i}"), 2)),
            ),
            1 => net.attach(
                DeviceSpec::new(format!("VCR-{i}"), "living-room")
                    .with_fcm(VcrFcm::new(format!("Deck {i}"), 3600)),
            ),
            2 => net.attach(
                DeviceSpec::new(format!("Amp-{i}"), "living-room")
                    .with_fcm(AmplifierFcm::new(format!("Amp {i}"))),
            ),
            3 => net.attach(
                DeviceSpec::new(format!("Light-{i}"), "living-room")
                    .with_fcm(LightFcm::new(format!("Light {i}"))),
            ),
            _ => net.attach(
                DeviceSpec::new(format!("AC-{i}"), "living-room")
                    .with_fcm(AirconFcm::new(format!("AC {i}"), 280)),
            ),
        };
    }
    net
}

/// The standard evaluation scene: TV + VCR + amplifier panel with a
/// connected local session.
pub fn standard_scene() -> (HomeNetwork, ControlPanelApp, LocalSession) {
    let mut net = home_with(3);
    let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
    let session = LocalSession::connect(app.ui_mut());
    (net, app, session)
}

/// Synthetic GUI damage patterns for the encoding experiment (E2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamagePattern {
    /// First paint of a whole panel.
    FullRepaint,
    /// A slider knob moving (small chrome-colored churn).
    SliderDrag,
    /// A text label changing (small high-contrast churn).
    TextChange,
    /// Photographic content (worst case for palette encodings).
    Noise,
}

impl DamagePattern {
    /// All patterns.
    pub const ALL: [DamagePattern; 4] = [
        DamagePattern::FullRepaint,
        DamagePattern::SliderDrag,
        DamagePattern::TextChange,
        DamagePattern::Noise,
    ];

    /// Pattern name for report rows.
    pub fn name(self) -> &'static str {
        match self {
            DamagePattern::FullRepaint => "full-repaint",
            DamagePattern::SliderDrag => "slider-drag",
            DamagePattern::TextChange => "text-change",
            DamagePattern::Noise => "noise",
        }
    }

    /// Produces the damaged pixels + rect for a panel of `size`.
    pub fn generate(self, size: Size) -> (Rect, Vec<Color>) {
        let mut ui = panel_ui(size);
        ui.render();
        match self {
            DamagePattern::FullRepaint => {
                let rect = ui.framebuffer().bounds();
                let (_, px) = ui.framebuffer().read_rect(rect);
                (rect, px)
            }
            DamagePattern::SliderDrag => {
                let rect = Rect::new(
                    8,
                    (size.h as i32 / 2).max(0),
                    size.w.saturating_sub(16).max(8),
                    16,
                )
                .intersect(ui.framebuffer().bounds())
                .unwrap_or(Rect::new(0, 0, 8, 8));
                let (r, px) = ui.framebuffer().read_rect(rect);
                (r, px)
            }
            DamagePattern::TextChange => {
                let rect = Rect::new(10, 4, 120.min(size.w - 10), 12)
                    .intersect(ui.framebuffer().bounds())
                    .unwrap_or(Rect::new(0, 0, 8, 8));
                let (r, px) = ui.framebuffer().read_rect(rect);
                (r, px)
            }
            DamagePattern::Noise => {
                let rect = Rect::new(0, 0, size.w.min(160), size.h.min(120));
                let px = (0..rect.area())
                    .map(|i| {
                        Color::rgb(
                            (i * 37 % 251) as u8,
                            (i * 83 % 241) as u8,
                            (i * 61 % 239) as u8,
                        )
                    })
                    .collect();
                (rect, px)
            }
        }
    }
}

/// A rendered, realistic control panel of the given size (widgets laid
/// out like the real app but without a HAVi network behind them).
pub fn panel_ui(size: Size) -> Ui {
    use uniint_wsys::prelude::*;
    let mut ui = Ui::new(size.w, size.h, Theme::classic(), "bench-panel");
    let rows_n = (size.h / 36).max(1);
    for r in 0..rows_n {
        let y = (r * 36 + 4) as i32;
        if y + 30 > size.h as i32 {
            break;
        }
        ui.add(
            Label::new(format!("Appliance {r}")),
            Rect::new(4, y, 90.min(size.w - 8), 12),
        );
        match r % 3 {
            0 => {
                ui.add(
                    Toggle::new("Power", r % 2 == 0),
                    Rect::new(4, y + 13, 56, 18),
                );
                ui.add(Button::new("Ch+"), Rect::new(66, y + 13, 40, 18));
            }
            1 => {
                ui.add(
                    Slider::new(0, 100, (r * 17 % 100) as i32, 5),
                    Rect::new(4, y + 13, (size.w - 12).min(140), 16),
                );
            }
            _ => {
                ui.add(
                    ProgressBar::new(0, 100, (r * 29 % 100) as i32),
                    Rect::new(4, y + 13, (size.w - 12).min(120), 12),
                );
            }
        }
    }
    ui.render();
    ui
}

/// The screen sizes E2 sweeps: phone LCD, PDA, panel/TV.
pub const E2_SIZES: [Size; 3] = [
    Size::new(128, 128),
    Size::new(240, 320),
    Size::new(640, 480),
];

/// Seed behind the E12 golden trace.
pub const E12_SEED: u64 = 0xE12;

/// The appliance panel behind the E12 golden trace: three switches
/// driven purely through the protocol, so trace verification can
/// regenerate the whole recorded conversation from a fresh copy.
pub fn e12_panel() -> Ui {
    use uniint_wsys::prelude::Toggle;
    let mut ui = Ui::new(160, 120, Theme::classic(), "e12-panel");
    ui.add(Toggle::new("Power", false), Rect::new(20, 14, 120, 24));
    ui.add(Toggle::new("Mute", false), Rect::new(20, 46, 120, 24));
    ui.add(Toggle::new("Eco", false), Rect::new(20, 78, 120, 24));
    ui
}

/// Records the E12 scenario — a phone keypad over 802.11b, an output
/// switch from the phone's LCD to a PDA, and a 300 ms link flap the
/// session resumes through — and returns the finished trace bytes.
/// `record_golden` writes this to `crates/bench/golden/e12.trace`;
/// `bench_snapshot`'s E12 replays the checked-in copy.
pub fn record_e12_trace() -> Vec<u8> {
    use uniint_devices::prelude::{KeypadPlugin, ScreenPlugin};
    use uniint_netsim::prelude::{FaultSchedule, LinkProfile};
    use uniint_protocol::message::PROTOCOL_VERSION;
    use uniint_trace::prelude::{Recorder, TraceHeader};

    let rec = Recorder::new(TraceHeader {
        seed: E12_SEED,
        protocol_version: PROTOCOL_VERSION,
        pixel_format: PixelFormat::Rgb888,
    });
    let mut ui = e12_panel();
    let mut s = SimSession::connect_recorded(
        &mut ui,
        LinkProfile::wifi80211b(),
        E12_SEED,
        Some(rec.tap()),
    )
    .expect("e12 session connects");
    s.proxy.attach_input(Box::new(KeypadPlugin::new()));
    let msgs = s.proxy.attach_output(Box::new(ScreenPlugin::phone_lcd()));
    s.send_client(&mut ui, msgs).expect("renegotiation settles");
    for ev in [
        DeviceEvent::KeypadSelect,
        DeviceEvent::KeypadNav(Nav::Down),
        DeviceEvent::KeypadSelect,
    ] {
        s.device_input(&mut ui, &ev).expect("input settles");
    }
    let t0 = s.now_us();
    s.sim.set_link_faults(
        s.proxy_endpoint(),
        FaultSchedule::new().flap(t0, t0 + 300_000),
    );
    s.device_input(&mut ui, &DeviceEvent::KeypadNav(Nav::Down))
        .expect("input survives the flap");
    let msgs = s.proxy.attach_output(Box::new(ScreenPlugin::pda()));
    s.send_client(&mut ui, msgs).expect("renegotiation settles");
    s.device_input(&mut ui, &DeviceEvent::KeypadSelect)
        .expect("input settles");
    rec.finish().expect("trace finishes once")
}

/// Finds the first power toggle's center, in server coordinates.
pub fn power_center(app: &ControlPanelApp) -> (u16, u16) {
    use uniint_wsys::prelude::Toggle;
    let rect = app
        .ui()
        .widget_ids()
        .into_iter()
        .find_map(|id| {
            app.ui().widget::<Toggle>(id)?;
            app.ui().widget_rect(id)
        })
        .expect("panel has a power toggle");
    let c = rect.center();
    (c.x as u16, c.y as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_with_counts() {
        let net = home_with(7);
        assert_eq!(net.device_guids().len(), 7);
    }

    #[test]
    fn damage_patterns_generate_consistent_sizes() {
        for p in DamagePattern::ALL {
            for size in E2_SIZES {
                let (rect, px) = p.generate(size);
                assert_eq!(px.len() as u64, rect.area(), "{} {}", p.name(), size);
                assert!(!rect.is_empty());
            }
        }
    }

    #[test]
    fn standard_scene_connects() {
        let (_net, app, session) = standard_scene();
        assert!(session.proxy.is_connected());
        assert_eq!(app.section_count(), 4);
    }

    #[test]
    fn power_center_is_clickable() {
        let (mut net, mut app, _s) = standard_scene();
        let (x, y) = power_center(&app);
        for ev in uniint_protocol::input::InputEvent::click(x, y) {
            app.ui_mut().dispatch(ev);
        }
        let report = app.process(&mut net);
        assert_eq!(report.commands_sent, 1);
    }
}
