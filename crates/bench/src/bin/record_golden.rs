//! (Re)generates the checked-in E12 golden trace.
//!
//! ```text
//! record_golden [--check]
//! ```
//!
//! Without arguments, records the E12 scenario (see
//! [`uniint_bench::record_e12_trace`]) and writes the trace to
//! `crates/bench/golden/e12.trace`. With `--check`, records it and
//! compares against the checked-in file instead, exiting non-zero on
//! any byte difference — run this after changing the protocol, the
//! widget toolkit or the trace format, and commit the regenerated
//! golden together with the change.

use std::process::ExitCode;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/e12.trace");

fn main() -> ExitCode {
    let check = match std::env::args().nth(1).as_deref() {
        None => false,
        Some("--check") => true,
        Some(other) => {
            eprintln!("unknown argument {other}; usage: record_golden [--check]");
            return ExitCode::FAILURE;
        }
    };
    let bytes = uniint_bench::record_e12_trace();
    if check {
        match std::fs::read(GOLDEN) {
            Ok(on_disk) if on_disk == bytes => {
                eprintln!("golden trace is up to date ({GOLDEN})");
                ExitCode::SUCCESS
            }
            Ok(on_disk) => {
                eprintln!(
                    "golden trace is STALE: regenerated {} bytes != checked-in {} bytes \
                     ({GOLDEN}); rerun record_golden and commit the result",
                    bytes.len(),
                    on_disk.len()
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("cannot read {GOLDEN}: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        if let Some(dir) = std::path::Path::new(GOLDEN).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(GOLDEN, &bytes) {
            eprintln!("cannot write {GOLDEN}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} bytes to {GOLDEN}", bytes.len());
        ExitCode::SUCCESS
    }
}
