//! Prints the paper-facing experiment tables (E1–E9) to stdout.
//!
//! Run with `cargo run -p uniint-bench --bin experiments --release`.
//! Wall-clock micro-costs are measured inline (median of repeated runs);
//! network numbers use the deterministic simulator's virtual clock, so
//! they are exactly reproducible.

use std::time::Instant;
use uniint_apps::prelude::*;
use uniint_bench::{home_with, power_center, standard_scene, DamagePattern, E2_SIZES};
use uniint_core::prelude::*;
use uniint_devices::prelude::*;
use uniint_havi::prelude::*;
use uniint_netsim::prelude::LinkProfile;
use uniint_protocol::encoding::{encode_rect, Encoding};
use uniint_raster::prelude::*;
use uniint_wsys::prelude::Theme;

/// Median wall time of `f` over `n` runs, in microseconds.
fn median_us(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn e1() {
    println!("\n== E1: end-to-end input latency per device (one command) ==");
    println!("{:<22} {:>12}", "device", "median µs");
    let run = |name: &str, mut step: Box<dyn FnMut()>| {
        let us = median_us(51, &mut *step);
        println!("{name:<22} {us:>12.1}");
    };
    {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(RemotePlugin::new()));
        run(
            "remote (Ok)",
            Box::new(move || {
                session.device_input(app.ui_mut(), &SimRemote::press(RemoteKey::Ok));
                app.process(&mut net);
            }),
        );
    }
    {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(StylusPlugin::new()));
        let (x, y) = power_center(&app);
        run(
            "pda stylus (tap)",
            Box::new(move || {
                for ev in SimPda::tap(x, y) {
                    session.device_input(app.ui_mut(), &ev);
                }
                app.process(&mut net);
            }),
        );
    }
    {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(KeypadPlugin::new()));
        run(
            "phone keypad (5)",
            Box::new(move || {
                session.device_input(app.ui_mut(), &SimPhone::press('5').unwrap());
                app.process(&mut net);
            }),
        );
    }
    {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(VoicePlugin::new()));
        run(
            "voice (\"select\")",
            Box::new(move || {
                session.device_input(app.ui_mut(), &DeviceEvent::Voice("select".into()));
                app.process(&mut net);
            }),
        );
    }
    {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(GesturePlugin::new()));
        run(
            "gesture (fist)",
            Box::new(move || {
                session.device_input(app.ui_mut(), &DeviceEvent::Gesture(Gesture::Fist));
                app.process(&mut net);
            }),
        );
    }
}

fn e2() {
    println!("\n== E2: bytes per update, by encoding × damage pattern × screen ==");
    println!(
        "{:<10} {:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "screen", "pattern", "pixels", "raw", "rre", "hextile", "rle", "prle"
    );
    for size in E2_SIZES {
        for pattern in DamagePattern::ALL {
            let (rect, px) = pattern.generate(size);
            let len = |e| encode_rect(&px, rect, e, PixelFormat::Rgb888).len();
            println!(
                "{:<10} {:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                size.to_string(),
                pattern.name(),
                rect.area(),
                len(Encoding::Raw),
                len(Encoding::Rre),
                len(Encoding::Hextile),
                len(Encoding::Rle),
                len(Encoding::PaletteRle),
            );
        }
    }
}

fn e3() {
    println!("\n== E3: output adaptation cost per device (640x480 source) ==");
    println!(
        "{:<14} {:>12} {:>14} {:>18}",
        "device", "median µs", "full bytes", "drag delta bytes"
    );
    let ui = uniint_bench::panel_ui(Size::new(640, 480));
    let frame = ui.framebuffer().clone();
    // The same frame with a slider-band-sized change, for delta sizing.
    let mut dragged = frame.clone();
    dragged.fill_rect(Rect::new(8, 240, 600, 16), Color::DARK_GRAY);
    let mut plugins: Vec<Box<dyn uniint_core::plugin::OutputPlugin>> = vec![
        Box::new(ScreenPlugin::tv()),
        Box::new(ScreenPlugin::pda()),
        Box::new(ScreenPlugin::phone_lcd()),
        Box::new(ScreenPlugin::eyepiece()),
        Box::new(TerminalPlugin::standard()),
    ];
    for plugin in &mut plugins {
        let mut bytes = 0usize;
        let us = median_us(21, || {
            bytes = plugin.adapt(&frame).wire_bytes;
        });
        let delta = plugin.adapt(&dragged).delta_bytes();
        println!("{:<14} {us:>12.1} {bytes:>14} {delta:>18}", plugin.kind());
    }
}

fn e4() {
    println!("\n== E4: dynamic switching latency ==");
    println!("{:<34} {:>12}", "switch", "median µs");
    {
        let (_net, _app, mut session) = standard_scene();
        let us = median_us(101, || {
            session.proxy.attach_input(Box::new(VoicePlugin::new()));
            session.proxy.attach_input(Box::new(KeypadPlugin::new()));
        });
        println!("{:<34} {:>12.1}", "input plug-in swap (x2)", us);
    }
    {
        let (_net, mut app, mut session) = standard_scene();
        let mut flip = false;
        let us = median_us(21, || {
            flip = !flip;
            let msgs = if flip {
                session.proxy.attach_output(Box::new(ScreenPlugin::pda()))
            } else {
                session.proxy.attach_output(Box::new(ScreenPlugin::tv()))
            };
            session.deliver_to_server(app.ui_mut(), msgs);
            session.take_frame();
        });
        println!("{:<34} {:>12.1}", "output switch to first frame", us);
    }
    {
        let (_net, mut app, mut session) = standard_scene();
        let mut coord = Coordinator::new(UserProfile::neutral("u"), Situation::idle("hall"));
        for d in standard_home("kitchen", "living-room") {
            let r = coord.register(d, &mut session.proxy);
            session.deliver_to_server(app.ui_mut(), r.messages);
        }
        let mut flip = false;
        let us = median_us(21, || {
            flip = !flip;
            let sit = if flip {
                Situation {
                    zone: "kitchen".into(),
                    activity: Activity::Cooking,
                    hands_busy: true,
                    noise: Noise::Moderate,
                }
            } else {
                Situation {
                    zone: "living-room".into(),
                    activity: Activity::WatchingTv,
                    hands_busy: false,
                    noise: Noise::Moderate,
                }
            };
            let r = coord.set_situation(sit, &mut session.proxy);
            session.deliver_to_server(app.ui_mut(), r.messages);
            session.take_frame();
        });
        println!("{:<34} {:>12.1}", "situation change (full reselect)", us);
    }
}

fn e5() {
    println!("\n== E5: panel composition vs appliance count ==");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "appliances", "sections", "median µs", "panel height"
    );
    for n in [1usize, 2, 4, 8, 16] {
        let mut net = home_with(n);
        let mut sections = 0;
        let mut height = 0;
        let us = median_us(11, || {
            let app = ControlPanelApp::new(&mut net, None, Theme::classic());
            sections = app.section_count();
            height = app.ui().size().h;
        });
        println!("{n:<12} {sections:>10} {us:>12.1} {height:>14}");
    }
}

fn e6() {
    println!("\n== E6: interactive rate over home links (virtual time) ==");
    println!(
        "{:<16} {:>14} {:>10} {:>12} {:>12}",
        "link", "drag 20 steps", "frames", "frames/s", "wire bytes"
    );
    for link in LinkProfile::presets() {
        let mut net = home_with(3);
        let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
        let mut s = SimSession::connect(app.ui_mut(), link, 7).expect("connect");
        s.proxy.attach_input(Box::new(KeypadPlugin::new()));
        let msgs = s.proxy.attach_output(Box::new(ScreenPlugin::phone_lcd()));
        s.send_client(app.ui_mut(), msgs).unwrap();
        let t0 = s.now_us();
        let f0 = s.frames_delivered();
        for _ in 0..4 {
            s.device_input(app.ui_mut(), &SimPhone::press('8').unwrap())
                .unwrap();
            app.process(&mut net);
            s.settle(app.ui_mut()).unwrap();
        }
        for _ in 0..20 {
            s.device_input(app.ui_mut(), &SimPhone::press('6').unwrap())
                .unwrap();
            app.process(&mut net);
            s.settle(app.ui_mut()).unwrap();
        }
        let dt_us = s.now_us() - t0;
        let frames = s.frames_delivered() - f0;
        println!(
            "{:<16} {:>12.1}ms {:>10} {:>12.2} {:>12}",
            link.name,
            dt_us as f64 / 1000.0,
            frames,
            frames as f64 / (dt_us as f64 / 1e6),
            s.server_wire_bytes(),
        );
    }
}

fn e7() {
    println!("\n== E7: universal interaction vs native per-device UI ==");
    println!("{:<28} {:>12}", "path", "median µs");
    let native_us = {
        let mut net = home_with(1);
        let tuner = net.find_fcms(&Query::new().class(FcmClass::Tuner))[0];
        let mut ui = uniint_wsys::prelude::Ui::new(128, 128, Theme::classic(), "native");
        let power = ui.add(
            uniint_wsys::prelude::Toggle::new("Power", false),
            Rect::new(10, 10, 60, 20),
        );
        ui.render();
        let mut on = false;
        median_us(51, || {
            for ev in uniint_protocol::input::InputEvent::click(40, 20) {
                ui.dispatch(ev);
            }
            for a in ui.take_actions() {
                if a.widget == power {
                    on = !on;
                    net.send(tuner, &FcmCommand::SetPower(on)).unwrap();
                }
            }
            ui.render();
            ui.framebuffer_mut().take_damage();
        })
    };
    println!("{:<28} {native_us:>12.1}", "native per-device UI");
    let universal_us = {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(KeypadPlugin::new()));
        let msgs = session
            .proxy
            .attach_output(Box::new(ScreenPlugin::phone_lcd()));
        session.deliver_to_server(app.ui_mut(), msgs);
        let ev = SimPhone::press('5').unwrap();
        median_us(51, || {
            session.device_input(app.ui_mut(), &ev);
            app.process(&mut net);
            session.pump(app.ui_mut());
            session.take_frame();
        })
    };
    println!("{:<28} {universal_us:>12.1}", "universal pipeline");
    let input_only_us = {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(Box::new(KeypadPlugin::new()));
        let ev = SimPhone::press('5').unwrap();
        median_us(51, || {
            session.device_input(app.ui_mut(), &ev);
            app.process(&mut net);
        })
    };
    println!("{:<28} {input_only_us:>12.1}", "universal (input only)");
    println!(
        "overhead factor: {:.1}x (cost of device-independence)",
        universal_us / native_us.max(0.01)
    );
}

fn e8() {
    println!("\n== E8: HAVi substrate scaling ==");
    println!(
        "{:<12} {:>10} {:>16} {:>18}",
        "appliances", "elements", "query µs", "command rtt µs"
    );
    for n in [4usize, 16, 64, 256] {
        let mut net = home_with(n);
        let elements = net.registry().len();
        let q = Query::new().class(FcmClass::Vcr);
        let query_us = median_us(101, || {
            let _ = net.registry().query(&q);
        });
        let amp = net.find_fcms(&Query::new().class(FcmClass::Amplifier))[0];
        net.send(amp, &FcmCommand::SetPower(true)).unwrap();
        let mut v = 0;
        let cmd_us = median_us(101, || {
            v = (v + 1) % 100;
            net.send(amp, &FcmCommand::SetVolume(v)).unwrap();
        });
        println!("{n:<12} {elements:>10} {query_us:>16.2} {cmd_us:>18.2}");
    }
}

fn e9() {
    use uniint_netsim::prelude::FaultSchedule;

    println!("\n== E9: session recovery under scheduled link faults ==");
    println!(
        "{:<14} {:<12} {:>12} {:>8} {:>9} {:>8} {:>12} {:>12}",
        "link",
        "fault",
        "virtual ms",
        "stalls",
        "backoffs",
        "resumes",
        "full resyncs",
        "retransmits"
    );
    type Fault = (&'static str, fn(u64) -> FaultSchedule);
    let faults: [Fault; 4] = [
        ("clean", |_t0| FaultSchedule::new()),
        ("burst", |_t0| {
            FaultSchedule::new().burst_loss(0.05, 0.7, 0.8)
        }),
        ("flap2s", |t0| {
            FaultSchedule::new().flap(t0 + 50_000, t0 + 2_050_000)
        }),
        ("spike", |t0| {
            FaultSchedule::new().latency_spike(t0, t0 + 2_000_000, 200_000)
        }),
    ];
    for link in [
        LinkProfile::wifi80211b(),
        LinkProfile::bluetooth(),
        LinkProfile::cellular_gprs(),
    ] {
        for (fault, schedule) in faults {
            let mut net = home_with(3);
            let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
            let mut s = SimSession::connect(app.ui_mut(), link, 7).expect("connect");
            s.proxy.attach_input(Box::new(KeypadPlugin::new()));
            let t0 = s.now_us();
            s.sim.set_link_faults(s.proxy_endpoint(), schedule(t0));
            for _ in 0..8 {
                s.device_input(app.ui_mut(), &SimPhone::press('5').unwrap())
                    .unwrap();
                app.process(&mut net);
                s.settle(app.ui_mut()).unwrap();
            }
            let st = s.proxy.stats();
            println!(
                "{:<14} {:<12} {:>12.1} {:>8} {:>9} {:>8} {:>12} {:>12}",
                link.name,
                fault,
                (s.now_us() - t0) as f64 / 1000.0,
                st.stalls,
                st.backoff_attempts,
                st.resumes,
                st.full_resyncs,
                st.retransmits
            );
        }
    }
}

fn main() {
    println!("Universal Interaction with Networked Home Appliances (ICDCS 2002)");
    println!("Experiment report — see EXPERIMENTS.md for interpretation.");
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
}
