//! Deterministic experiment snapshot for CI regression gating.
//!
//! Runs quick, fully deterministic variants of the paper experiments
//! E1–E11 and emits one canonical-JSON document of shape
//! `{ experiment: { metric: integer } }`. Every metric is derived from
//! the virtual clock, wire byte counts or telemetry counters — never
//! from wall time — so the same toolchain produces the same bytes on
//! every run and the document can be diffed against a checked-in
//! baseline. (E11 exercises the loopback TCP gateway; it runs under
//! wall-clock but records only serialized, race-free counters.)
//!
//! Usage:
//!
//! ```text
//! bench_snapshot [--out FILE] [--baseline FILE]
//! ```
//!
//! With `--out` the JSON is written to `FILE` (stdout otherwise). With
//! `--baseline` the snapshot is compared against the baseline document:
//! regression counters (`full_resyncs`, `flood_dropped`) must not
//! increase, everything else must stay within a per-metric tolerance.
//! Exits non-zero if any metric fails.

use std::process::ExitCode;

use uniint_apps::prelude::*;
use uniint_bench::{home_with, standard_scene, DamagePattern};
use uniint_core::prelude::*;
use uniint_devices::prelude::*;
use uniint_gateway::prelude::{Gateway, GatewayClient, GatewayConfig};
use uniint_netsim::prelude::{FaultSchedule, LinkProfile};
use uniint_protocol::encoding::{encode_rect, Encoding};
use uniint_protocol::input::InputEvent;
use uniint_protocol::message::ClientMessage;
use uniint_raster::prelude::*;
use uniint_telemetry::json::{parse, Value};
use uniint_telemetry::registry::Registry;
use uniint_trace::prelude::{Replayer, TraceReader};
use uniint_wsys::prelude::{Theme, Toggle, Ui};

/// Turns a link/pattern display name into a metric-name token.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// E1 quick: protocol work per one command, per input device.
fn e1() -> Value {
    let mut m = Value::object();
    type Scenario = (&'static str, Box<dyn InputPlugin>, DeviceEvent);
    let scenarios: Vec<Scenario> = vec![
        (
            "remote",
            Box::new(RemotePlugin::new()),
            SimRemote::press(RemoteKey::Ok),
        ),
        (
            "keypad",
            Box::new(KeypadPlugin::new()),
            SimPhone::press('5').unwrap(),
        ),
        (
            "voice",
            Box::new(VoicePlugin::new()),
            DeviceEvent::Voice("select".into()),
        ),
        (
            "gesture",
            Box::new(GesturePlugin::new()),
            DeviceEvent::Gesture(Gesture::Fist),
        ),
    ];
    for (name, plugin, ev) in scenarios {
        let (mut net, mut app, mut session) = standard_scene();
        session.proxy.attach_input(plugin);
        session.device_input(app.ui_mut(), &ev);
        app.process(&mut net);
        let t = session.telemetry();
        m.insert(
            format!("{name}_events_translated"),
            Value::UInt(t.counter("proxy.events_translated").get()),
        );
        m.insert(
            format!("{name}_updates_applied"),
            Value::UInt(t.counter("proxy.updates_applied").get()),
        );
    }
    m
}

/// E2 quick: encoded bytes per damage pattern × encoding (PDA screen).
fn e2() -> Value {
    let mut m = Value::object();
    let size = Size::new(240, 320);
    for pattern in DamagePattern::ALL {
        let (rect, px) = pattern.generate(size);
        for enc in [Encoding::Rre, Encoding::Hextile, Encoding::PaletteRle] {
            let bytes = encode_rect(&px, rect, enc, PixelFormat::Rgb888).len();
            m.insert(
                format!("{}_{:?}_bytes", slug(pattern.name()), enc).to_lowercase(),
                Value::UInt(bytes as u64),
            );
        }
    }
    m
}

/// E3 quick: adapted frame bytes per output device (640x480 source).
fn e3() -> Value {
    let mut m = Value::object();
    let ui = uniint_bench::panel_ui(Size::new(640, 480));
    let frame = ui.framebuffer().clone();
    let mut dragged = frame.clone();
    dragged.fill_rect(Rect::new(8, 240, 600, 16), Color::DARK_GRAY);
    let mut plugins: Vec<Box<dyn uniint_core::plugin::OutputPlugin>> = vec![
        Box::new(ScreenPlugin::tv()),
        Box::new(ScreenPlugin::pda()),
        Box::new(ScreenPlugin::phone_lcd()),
        Box::new(ScreenPlugin::eyepiece()),
        Box::new(TerminalPlugin::standard()),
    ];
    for plugin in &mut plugins {
        let full = plugin.adapt(&frame).wire_bytes;
        let delta = plugin.adapt(&dragged).delta_bytes();
        m.insert(
            format!("{}_full_bytes", slug(plugin.kind())),
            Value::UInt(full as u64),
        );
        m.insert(
            format!("{}_delta_bytes", slug(plugin.kind())),
            Value::UInt(delta as u64),
        );
    }
    m
}

/// E4 quick: switch counts over two situation changes.
fn e4() -> Value {
    let mut m = Value::object();
    let (_net, mut app, mut session) = standard_scene();
    let mut coord = Coordinator::new(UserProfile::neutral("u"), Situation::idle("hall"));
    for d in standard_home("kitchen", "living-room") {
        let r = coord.register(d, &mut session.proxy);
        session.deliver_to_server(app.ui_mut(), r.messages);
    }
    for (zone, activity, hands_busy) in [
        ("kitchen", Activity::Cooking, true),
        ("living-room", Activity::WatchingTv, false),
    ] {
        let r = coord.set_situation(
            Situation {
                zone: zone.into(),
                activity,
                hands_busy,
                noise: Noise::Moderate,
            },
            &mut session.proxy,
        );
        session.deliver_to_server(app.ui_mut(), r.messages);
        session.take_frame();
    }
    let t = session.telemetry();
    m.insert(
        "input_switches",
        Value::UInt(t.counter("coordinator.input_switches").get()),
    );
    m.insert(
        "output_switches",
        Value::UInt(t.counter("coordinator.output_switches").get()),
    );
    m.insert(
        "frames_adapted",
        Value::UInt(t.counter("proxy.frames_adapted").get()),
    );
    m
}

/// E5 quick: composed panel shape vs appliance count.
fn e5() -> Value {
    let mut m = Value::object();
    for n in [1usize, 4, 16] {
        let mut net = home_with(n);
        let app = ControlPanelApp::new(&mut net, None, Theme::classic());
        m.insert(
            format!("sections_{n}"),
            Value::UInt(app.section_count() as u64),
        );
        m.insert(
            format!("panel_height_{n}"),
            Value::UInt(app.ui().size().h as u64),
        );
    }
    m
}

/// E6 quick: virtual time / frames / wire bytes for a short drag, per link.
fn e6() -> Value {
    let mut m = Value::object();
    for link in LinkProfile::presets() {
        let mut net = home_with(3);
        let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
        let mut s = SimSession::connect(app.ui_mut(), link, 7).expect("connect");
        s.proxy.attach_input(Box::new(KeypadPlugin::new()));
        let msgs = s.proxy.attach_output(Box::new(ScreenPlugin::phone_lcd()));
        s.send_client(app.ui_mut(), msgs).unwrap();
        let t0 = s.now_us();
        let f0 = s.frames_delivered();
        s.device_input(app.ui_mut(), &SimPhone::press('8').unwrap())
            .unwrap();
        app.process(&mut net);
        s.settle(app.ui_mut()).unwrap();
        for _ in 0..5 {
            s.device_input(app.ui_mut(), &SimPhone::press('6').unwrap())
                .unwrap();
            app.process(&mut net);
            s.settle(app.ui_mut()).unwrap();
        }
        let name = slug(link.name);
        m.insert(format!("{name}_virtual_us"), Value::UInt(s.now_us() - t0));
        m.insert(
            format!("{name}_frames"),
            Value::UInt(s.frames_delivered() - f0),
        );
        m.insert(
            format!("{name}_wire_bytes"),
            Value::UInt(s.server_wire_bytes()),
        );
    }
    m
}

/// E7 quick: protocol work of the universal pipeline for 4 keypresses.
fn e7() -> Value {
    let mut m = Value::object();
    let (mut net, mut app, mut session) = standard_scene();
    session.proxy.attach_input(Box::new(KeypadPlugin::new()));
    let msgs = session
        .proxy
        .attach_output(Box::new(ScreenPlugin::phone_lcd()));
    session.deliver_to_server(app.ui_mut(), msgs);
    for _ in 0..4 {
        session.device_input(app.ui_mut(), &SimPhone::press('5').unwrap());
        app.process(&mut net);
        session.pump(app.ui_mut());
        session.take_frame();
    }
    let t = session.telemetry();
    for c in [
        "proxy.updates_applied",
        "proxy.rects_decoded",
        "proxy.frames_adapted",
        "proxy.events_translated",
        "server.inputs_injected",
    ] {
        m.insert(slug(c), Value::UInt(t.counter(c).get()));
    }
    m
}

/// E8 quick: registry size vs appliance count.
fn e8() -> Value {
    let mut m = Value::object();
    for n in [4usize, 64] {
        let net = home_with(n);
        m.insert(
            format!("elements_{n}"),
            Value::UInt(net.registry().len() as u64),
        );
    }
    m
}

/// E9 quick: recovery counters under two fault shapes (802.11b link).
fn e9() -> Value {
    let mut m = Value::object();
    type Fault = (&'static str, fn(u64) -> FaultSchedule);
    let faults: [Fault; 2] = [
        ("burst", |_t0| {
            FaultSchedule::new().burst_loss(0.05, 0.7, 0.8)
        }),
        ("flap2s", |t0| {
            FaultSchedule::new().flap(t0 + 50_000, t0 + 2_050_000)
        }),
    ];
    for (fault, schedule) in faults {
        let mut net = home_with(3);
        let mut app = ControlPanelApp::new(&mut net, None, Theme::classic());
        let mut s =
            SimSession::connect(app.ui_mut(), LinkProfile::wifi80211b(), 7).expect("connect");
        s.proxy.attach_input(Box::new(KeypadPlugin::new()));
        let t0 = s.now_us();
        s.sim.set_link_faults(s.proxy_endpoint(), schedule(t0));
        for _ in 0..4 {
            s.device_input(app.ui_mut(), &SimPhone::press('5').unwrap())
                .unwrap();
            app.process(&mut net);
            s.settle(app.ui_mut()).unwrap();
        }
        let st = s.proxy.stats();
        m.insert(format!("{fault}_virtual_us"), Value::UInt(s.now_us() - t0));
        m.insert(format!("{fault}_stalls"), Value::UInt(st.stalls));
        m.insert(
            format!("{fault}_backoff_attempts"),
            Value::UInt(st.backoff_attempts),
        );
        m.insert(format!("{fault}_resumes"), Value::UInt(st.resumes));
        m.insert(
            format!("{fault}_full_resyncs"),
            Value::UInt(st.full_resyncs),
        );
        m.insert(format!("{fault}_retransmits"), Value::UInt(st.retransmits));
    }
    m
}

/// E10 quick: supervision outcomes for a quarantine cycle and an event
/// storm (flood protection).
fn e10() -> Value {
    let mut m = Value::object();
    {
        // Quarantine → failover → probation → readmission, seed 7.
        let mut sup = Supervisor::new(7);
        let mut profile = UserProfile::neutral("u");
        profile.input_ranking = vec![InputModality::Stylus, InputModality::Keypad];
        let mut coord = Coordinator::new(profile, Situation::idle("living-room"));
        let mut proxy = UniIntProxy::new("bench");
        let schedule = (0..4).fold(DeviceFaultSchedule::new(), |s, i| s.panic_on_input(i));
        let (faulty, _h) = FaultyDevice::wrap(SimPda::interaction_device("pda-1"), schedule, 7);
        for dev in [
            sup.supervise(faulty),
            sup.supervise(SimPhone::interaction_device("phone-1")),
            sup.supervise(tv_interaction_device("tv-lr", "living-room")),
        ] {
            coord.register(dev, &mut proxy);
        }
        for _ in 0..4 {
            proxy.device_input(&DeviceEvent::StylusMove { x: 5, y: 5 });
        }
        let mut now = 1_000u64;
        sup.tick(now, &mut coord, &mut proxy);
        for _ in 0..12 {
            now += 200_000;
            sup.heartbeat("pda-1", now);
            sup.heartbeat("phone-1", now);
            sup.heartbeat("tv-lr", now);
            proxy.device_input(&DeviceEvent::StylusMove { x: 5, y: 5 });
            sup.tick(now, &mut coord, &mut proxy);
        }
        let st = sup.stats();
        m.insert("plugin_panics", Value::UInt(st.plugin_panics));
        m.insert("quarantines", Value::UInt(st.quarantines));
        m.insert("failovers", Value::UInt(st.failovers));
        m.insert("readmissions", Value::UInt(st.readmissions));
    }
    {
        // Event storm: the proxy's flood protection must cap it.
        let (dev, _h) = FaultyDevice::wrap(
            SimPda::interaction_device("pda"),
            DeviceFaultSchedule::new().storm_on_input(0, 5000),
            7,
        );
        let mut proxy = UniIntProxy::new("bench");
        let mut coord = Coordinator::new(UserProfile::neutral("u"), Situation::idle("z"));
        coord.register(dev, &mut proxy);
        proxy.device_input(&DeviceEvent::StylusDown { x: 5, y: 5 });
        let st = proxy.stats();
        m.insert("storm_events_coalesced", Value::UInt(st.events_coalesced));
        m.insert("storm_flood_dropped", Value::UInt(st.flood_dropped));
    }
    m
}

/// E11 quick: the TCP gateway on loopback — concurrent socket clients
/// converging on one panel, plus one socket kill → reconnect → resume.
/// Real sockets run under wall-clock time, so only *counters* and the
/// convergence verdict enter the snapshot; they are deterministic
/// because every interaction is serialized behind a convergence wait.
fn e11() -> Value {
    use std::time::{Duration, Instant};

    const CLIENTS: usize = 4;

    fn pump_until(
        clients: &mut [GatewayClient],
        what: &str,
        mut cond: impl FnMut(&[GatewayClient]) -> bool,
    ) {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            for c in clients.iter_mut() {
                c.pump_once().expect("pump");
            }
            if cond(clients) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "e11 timed out waiting for {what}"
            );
        }
    }

    fn pump_quiescent(clients: &mut [GatewayClient]) {
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut last_activity = Instant::now();
        while last_activity.elapsed() < Duration::from_millis(200) {
            for c in clients.iter_mut() {
                if c.pump_once().expect("pump") {
                    last_activity = Instant::now();
                }
            }
            assert!(Instant::now() < deadline, "e11 never quiesced");
        }
    }

    fn click() -> Vec<ClientMessage> {
        InputEvent::click(80, 34)
            .into_iter()
            .map(ClientMessage::Input)
            .collect()
    }

    let mut m = Value::object();
    let registry = Registry::new();
    let mut ui = Ui::new(160, 120, Theme::classic(), "e11-panel");
    ui.add(Toggle::new("Power", false), Rect::new(20, 20, 120, 28));
    let gw = Gateway::spawn(ui, GatewayConfig::default(), registry.clone()).expect("gateway binds");
    let addr = gw.local_addr();

    let mut clients: Vec<GatewayClient> = (0..CLIENTS)
        .map(|i| GatewayClient::connect(addr, format!("bench-{i}"), i as u64).expect("connect"))
        .collect();
    pump_quiescent(&mut clients);

    // Serialized clicks: every viewer must apply each click's update
    // before the next client clicks, so counters cannot race.
    for i in 0..CLIENTS {
        let before: Vec<u64> = clients.iter().map(|c| c.stats().updates_applied).collect();
        clients[i].send_messages(click());
        pump_until(&mut clients, "click fan-out", |cs| {
            cs.iter()
                .zip(&before)
                .all(|(c, b)| c.stats().updates_applied > *b)
        });
    }
    pump_quiescent(&mut clients);

    // Kill one socket; damage from another client forces an update the
    // victim must pick up through reconnect + incremental resume.
    clients[1].send_messages(click());
    clients[0].kill_socket();
    pump_until(&mut clients, "victim resume", |cs| {
        cs[0].stats().resumes >= 1
    });
    pump_quiescent(&mut clients);

    let full_resyncs: u64 = clients.iter().map(|c| c.stats().full_resyncs).sum();
    let frames: Vec<_> = clients
        .iter()
        .map(|c| c.proxy.server_frame().expect("framebuffer").clone())
        .collect();
    let ui = gw.shutdown();
    let converged = frames.iter().all(|f| f == ui.framebuffer());

    let snap = registry.snapshot();
    let counter = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
    m.insert("clients", Value::UInt(CLIENTS as u64));
    m.insert(
        "inputs_injected",
        Value::UInt(counter("server.inputs_injected")),
    );
    m.insert("reconnects", Value::UInt(counter("gateway.reconnects")));
    m.insert("resumes", Value::UInt(counter("gateway.resumes")));
    m.insert("full_resyncs", Value::UInt(full_resyncs));
    m.insert("converged", Value::UInt(u64::from(converged)));
    m
}

/// E12 quick: trace-driven replay of the checked-in golden recording.
/// The trace pins the exact wire conversation, so decode/adapt work and
/// the final framebuffer digest are fully determined by the replaying
/// code — any drift in protocol decoding, raster reconstruction or
/// server regeneration shows up against the baseline. Regenerate the
/// golden with `record_golden` when the scenario itself changes.
fn e12() -> Value {
    let mut m = Value::object();
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/e12.trace");
    let reader = TraceReader::open(golden).expect("golden trace parses");
    let outcome = Replayer::with_output(Box::new(ScreenPlugin::pda()))
        .replay(&reader)
        .expect("golden trace replays");
    // Full verification: a fresh server must regenerate the recorded
    // conversation byte-for-byte. Gated one-sided via `diverged`.
    let mut ui = uniint_bench::e12_panel();
    let diverged = u64::from(Replayer::new().verify(&reader, &mut ui).is_err());

    m.insert("records", Value::UInt(outcome.records));
    m.insert("updates_applied", Value::UInt(outcome.updates_applied));
    m.insert("payload_bytes", Value::UInt(outcome.payload_bytes));
    m.insert(
        "virtual_elapsed_us",
        Value::UInt(outcome.virtual_elapsed_us),
    );
    m.insert(
        "final_digest",
        Value::UInt(outcome.final_digest().unwrap_or(0)),
    );
    let counter = |n: &str| outcome.snapshot.counters.get(n).copied().unwrap_or(0);
    m.insert("rects_decoded", Value::UInt(counter("proxy.rects_decoded")));
    m.insert(
        "frames_adapted",
        Value::UInt(counter("proxy.frames_adapted")),
    );
    m.insert("diverged", Value::UInt(diverged));
    m
}

/// Builds the whole snapshot document.
fn snapshot() -> Value {
    let mut root = Value::object();
    root.insert("e1_input_latency", e1());
    root.insert("e2_encoding", e2());
    root.insert("e3_adaptation", e3());
    root.insert("e4_switching", e4());
    root.insert("e5_composition", e5());
    root.insert("e6_links", e6());
    root.insert("e7_baseline", e7());
    root.insert("e8_havi", e8());
    root.insert("e9_faults", e9());
    root.insert("e10_supervision", e10());
    root.insert("e11_gateway", e11());
    root.insert("e12_replay", e12());
    root
}

/// Counters where any increase over baseline is a regression, no matter
/// how small: resync storms, flood drops and replay divergences must
/// only ever shrink.
const REGRESSION_COUNTERS: [&str; 3] = ["full_resyncs", "flood_dropped", "diverged"];

/// Relative tolerance in percent for a metric, by name.
fn tolerance_pct(metric: &str) -> i128 {
    if metric.ends_with("_us") {
        // Virtual-time totals legitimately move when protocol pacing
        // changes; give them more headroom.
        25
    } else {
        10
    }
}

/// Compares `current` against `baseline`; returns human-readable
/// failure lines (empty = pass).
fn compare(current: &Value, baseline: &Value) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(base_exps) = baseline.as_object() else {
        return vec!["baseline is not a JSON object".into()];
    };
    for (exp, base_metrics) in base_exps {
        let Some(base_metrics) = base_metrics.as_object() else {
            continue;
        };
        for (metric, base_v) in base_metrics {
            let Some(base) = base_v.as_i128() else {
                continue;
            };
            let cur = current
                .get(exp)
                .and_then(|e| e.get(metric))
                .and_then(|v| v.as_i128());
            let Some(cur) = cur else {
                failures.push(format!("{exp}.{metric}: missing from current snapshot"));
                continue;
            };
            // Digests are identities, not quantities: any change at all
            // means the replay reconstructed different pixels.
            if metric.ends_with("_digest") {
                if cur != base {
                    failures.push(format!(
                        "{exp}.{metric}: digest changed ({base:x} -> {cur:x})"
                    ));
                }
                continue;
            }
            let one_sided = REGRESSION_COUNTERS.iter().any(|s| metric.ends_with(s));
            if one_sided {
                if cur > base {
                    failures.push(format!(
                        "{exp}.{metric}: regression counter increased ({base} -> {cur})"
                    ));
                }
                continue;
            }
            let pct = tolerance_pct(metric);
            // Integer tolerance check: |cur - base| * 100 <= pct * |base|,
            // with a small absolute slack so tiny baselines don't pin.
            let diff = (cur - base).abs();
            let allowed = (pct * base.abs()) / 100 + 2;
            if diff > allowed {
                failures.push(format!(
                    "{exp}.{metric}: {base} -> {cur} (diff {diff} > allowed {allowed}, ±{pct}%)"
                ));
            }
        }
    }
    failures
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next(),
            "--baseline" => baseline_path = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let snap = snapshot();
    let json = snap.to_canonical();
    match &out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &json) {
                eprintln!("cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {p}");
        }
        None => print!("{json}"),
    }

    if let Some(p) = baseline_path {
        let text = match std::fs::read_to_string(&p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("baseline {p} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let failures = compare(&snap, &baseline);
        if failures.is_empty() {
            eprintln!("baseline check passed ({p})");
        } else {
            eprintln!("baseline check FAILED ({p}):");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
