//! Loopback load generator for the TCP gateway.
//!
//! Spawns one gateway serving a small appliance panel and N concurrent
//! socket clients, each in its own thread clicking the panel and
//! waiting for the resulting framebuffer update. Reports aggregate
//! update throughput and per-interaction latency percentiles.
//!
//! ```text
//! gateway_load [--clients N] [--duration-ms MS] [--record PATH]
//! ```
//!
//! With `--record`, the gateway's state thread captures every message
//! it processes into a flight-recorder trace written to `PATH` on exit
//! (inspect it with `trace_dump`).

use std::time::{Duration, Instant};

use uniint_gateway::prelude::*;
use uniint_protocol::input::InputEvent;
use uniint_protocol::message::{ClientMessage, PROTOCOL_VERSION};
use uniint_raster::geom::Rect;
use uniint_raster::pixel::PixelFormat;
use uniint_telemetry::registry::Registry;
use uniint_trace::format::TraceHeader;
use uniint_trace::recorder::Recorder;
use uniint_wsys::prelude::{Theme, Toggle, Ui};

struct Args {
    clients: usize,
    duration: Duration,
    record: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        duration: Duration::from_millis(2000),
        record: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        let num = |name: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} needs a numeric value"))
        };
        match flag.as_str() {
            "--clients" => args.clients = num("--clients", grab("--clients")) as usize,
            "--duration-ms" => {
                args.duration = Duration::from_millis(num("--duration-ms", grab("--duration-ms")))
            }
            "--record" => args.record = Some(grab("--record")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: gateway_load [--clients N] \
                     [--duration-ms MS] [--record PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    let mut ui = Ui::new(160, 120, Theme::classic(), "load-panel");
    ui.add(Toggle::new("Power", false), Rect::new(20, 20, 120, 28));
    let registry = Registry::new();
    let mut config = GatewayConfig::default();
    let recorder = args.record.as_ref().map(|_| {
        let rec = Recorder::new(TraceHeader {
            seed: 0, // Wall-clock run: there is no seed.
            protocol_version: PROTOCOL_VERSION,
            pixel_format: PixelFormat::Rgb888,
        });
        rec.attach_telemetry(&registry);
        config.recorder = Some(rec.tap());
        rec
    });
    let gw = Gateway::spawn(ui, config, registry).expect("gateway binds loopback");
    let addr = gw.local_addr();

    let workers: Vec<_> = (0..args.clients)
        .map(|i| {
            let duration = args.duration;
            std::thread::spawn(move || -> (u64, Vec<u64>) {
                let mut c = GatewayClient::connect(addr, format!("load-{i}"), i as u64)
                    .expect("client connects");
                // Drain the initial full update before timing starts.
                let warmup = Instant::now();
                while c.stats().updates_applied == 0 && warmup.elapsed() < Duration::from_secs(5) {
                    c.pump_once().expect("pump");
                }
                let mut latencies_us = Vec::new();
                let t0 = Instant::now();
                while t0.elapsed() < duration {
                    let before = c.stats().updates_applied;
                    let sent = Instant::now();
                    c.send_messages(
                        InputEvent::click(80, 34)
                            .into_iter()
                            .map(ClientMessage::Input)
                            .collect(),
                    );
                    // Wait for the update this click provokes.
                    while c.stats().updates_applied == before
                        && sent.elapsed() < Duration::from_secs(2)
                    {
                        c.pump_once().expect("pump");
                    }
                    latencies_us.push(sent.elapsed().as_micros() as u64);
                }
                (c.stats().updates_applied, latencies_us)
            })
        })
        .collect();

    let mut total_updates = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for w in workers {
        let (updates, lat) = w.join().expect("worker");
        total_updates += updates;
        latencies.extend(lat);
    }
    let _panel = gw.shutdown();

    if let (Some(rec), Some(path)) = (recorder, args.record.as_ref()) {
        let records = rec.records_written();
        let dropped = rec.dropped_chunks();
        rec.finish_to(path).expect("write trace");
        println!("gateway_load: recorded {records} messages to {path} ({dropped} chunks dropped)");
    }

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let secs = args.duration.as_secs_f64();
    println!(
        "gateway_load: {} clients, {:.1}s: {} updates ({:.0} updates/sec), \
         frame latency p50 {} us, p99 {} us",
        args.clients,
        secs,
        total_updates,
        total_updates as f64 / secs,
        pct(0.50),
        pct(0.99),
    );
}
