//! Loopback load generator for the TCP gateway.
//!
//! Spawns one gateway serving a small appliance panel and N concurrent
//! socket clients, each in its own thread clicking the panel and
//! waiting for the resulting framebuffer update. Reports aggregate
//! update throughput and per-interaction latency percentiles.
//!
//! ```text
//! gateway_load [--clients N] [--duration-ms MS]
//! ```

use std::time::{Duration, Instant};

use uniint_gateway::prelude::*;
use uniint_protocol::input::InputEvent;
use uniint_protocol::message::ClientMessage;
use uniint_raster::geom::Rect;
use uniint_telemetry::registry::Registry;
use uniint_wsys::prelude::{Theme, Toggle, Ui};

struct Args {
    clients: usize,
    duration: Duration,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        duration: Duration::from_millis(2000),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match flag.as_str() {
            "--clients" => args.clients = grab("--clients") as usize,
            "--duration-ms" => args.duration = Duration::from_millis(grab("--duration-ms")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: gateway_load [--clients N] [--duration-ms MS]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    let mut ui = Ui::new(160, 120, Theme::classic(), "load-panel");
    ui.add(Toggle::new("Power", false), Rect::new(20, 20, 120, 28));
    let gw = Gateway::spawn(ui, GatewayConfig::default(), Registry::new())
        .expect("gateway binds loopback");
    let addr = gw.local_addr();

    let workers: Vec<_> = (0..args.clients)
        .map(|i| {
            let duration = args.duration;
            std::thread::spawn(move || -> (u64, Vec<u64>) {
                let mut c = GatewayClient::connect(addr, format!("load-{i}"), i as u64)
                    .expect("client connects");
                // Drain the initial full update before timing starts.
                let warmup = Instant::now();
                while c.stats().updates_applied == 0 && warmup.elapsed() < Duration::from_secs(5) {
                    c.pump_once().expect("pump");
                }
                let mut latencies_us = Vec::new();
                let t0 = Instant::now();
                while t0.elapsed() < duration {
                    let before = c.stats().updates_applied;
                    let sent = Instant::now();
                    c.send_messages(
                        InputEvent::click(80, 34)
                            .into_iter()
                            .map(ClientMessage::Input)
                            .collect(),
                    );
                    // Wait for the update this click provokes.
                    while c.stats().updates_applied == before
                        && sent.elapsed() < Duration::from_secs(2)
                    {
                        c.pump_once().expect("pump");
                    }
                    latencies_us.push(sent.elapsed().as_micros() as u64);
                }
                (c.stats().updates_applied, latencies_us)
            })
        })
        .collect();

    let mut total_updates = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for w in workers {
        let (updates, lat) = w.join().expect("worker");
        total_updates += updates;
        latencies.extend(lat);
    }
    let _panel = gw.shutdown();

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let secs = args.duration.as_secs_f64();
    println!(
        "gateway_load: {} clients, {:.1}s: {} updates ({:.0} updates/sec), \
         frame latency p50 {} us, p99 {} us",
        args.clients,
        secs,
        total_updates,
        total_updates as f64 / secs,
        pct(0.50),
        pct(0.99),
    );
}
