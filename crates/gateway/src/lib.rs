//! # uniint-gateway
//!
//! The real-network deployment boundary the paper assumes: UniInt
//! server and proxies as **separate OS processes** on an actual home
//! network, talking over TCP sockets instead of in-process pipes or the
//! discrete-event simulator.
//!
//! Four layers, bottom up:
//!
//! - [`codec`] — the length-prefixed frame codec shared by both ends:
//!   a hard max-frame-size bound enforced before allocation, and the
//!   protocol-version check applied to every `Hello`;
//! - [`host`] — the concurrent connection host ([`host::Gateway`]):
//!   one accept thread, one reader + one writer thread per connection
//!   with a **bounded** outbound queue (pending `Update`s for a slow
//!   client coalesce into one instead of buffering without bound), and
//!   a single state thread driving a shared
//!   [`uniint_core::multi::MultiServer`] so a TV proxy and a phone
//!   proxy on real sockets watch one panel concurrently;
//! - [`client`] — the connection lifecycle ([`client::GatewayClient`]):
//!   stall detection, seeded exponential backoff on reconnect, and
//!   incremental `Resume` so a proxy that loses TCP mid-update comes
//!   back without a full refresh;
//! - telemetry — every layer registers counters/gauges in a
//!   [`uniint_telemetry::registry::Registry`], so one snapshot covers
//!   the network edge too.
//!
//! ```no_run
//! use uniint_gateway::prelude::*;
//! use uniint_telemetry::registry::Registry;
//! use uniint_wsys::prelude::{Button, Theme, Ui};
//! use uniint_raster::geom::Rect;
//!
//! let mut ui = Ui::new(160, 120, Theme::classic(), "panel");
//! ui.add(Button::new("Power"), Rect::new(20, 20, 80, 24));
//! let gw = Gateway::spawn(ui, GatewayConfig::default(), Registry::new()).unwrap();
//! let mut client = GatewayClient::connect(gw.local_addr(), "phone-proxy", 7).unwrap();
//! assert!(client.proxy.is_connected());
//! let _panel = gw.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod host;

/// Convenient re-exports of the gateway surface.
pub mod prelude {
    pub use crate::client::{ClientConfig, GatewayClient, GatewayError};
    pub use crate::codec::{check_hello_version, FramedSocket};
    pub use crate::host::{Gateway, GatewayConfig};
}
