//! The proxy-side connection lifecycle over a real TCP socket.
//!
//! [`GatewayClient`] wraps a [`uniint_core::proxy::UniIntProxy`] with
//! everything a socket adds to the paper's in-process story: stall
//! detection (EOF, write failure, read error), reconnection under
//! seeded exponential backoff with jitter, and **incremental resume** —
//! after a break the client reattaches with a raw `Hello` + `Resume`
//! (neither logged, mirroring the server's accounting), receives the
//! damage it missed, and retransmits its own lost messages from a
//! session-side log once `ResumeAck` reports how many arrived.
//!
//! This is the same recovery machinery proven deterministic in the
//! network simulator ([`uniint_core::session::SimSession`]), rehosted
//! on `std::net::TcpStream`.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniint_core::plugin::{DeviceEvent, DeviceFrame, InputPlugin, OutputPlugin};
use uniint_core::proxy::{ProxyStats, UniIntProxy};
use uniint_protocol::error::ProtocolError;
use uniint_protocol::message::{ClientMessage, ServerMessage, PROTOCOL_VERSION};
use uniint_telemetry::registry::Registry;

use crate::codec::{FramedSocket, ReadStatus, DEFAULT_MAX_FRAME};

/// Tuning knobs for a [`GatewayClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Largest frame accepted from the server, bytes.
    pub max_frame: usize,
    /// Socket read timeout per [`GatewayClient::pump_once`] call.
    pub poll: Duration,
    /// First reconnect backoff delay.
    pub backoff_base: Duration,
    /// Reconnect backoff ceiling.
    pub backoff_cap: Duration,
    /// Reconnect attempts per stall before giving up.
    pub max_attempts: u32,
    /// Send a keepalive (incremental update request) after this long
    /// without outbound traffic. `None` disables keepalives.
    pub keepalive: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            max_frame: DEFAULT_MAX_FRAME,
            poll: Duration::from_millis(10),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            max_attempts: 10,
            keepalive: None,
        }
    }
}

/// Why a [`GatewayClient`] operation failed.
#[derive(Debug)]
pub enum GatewayError {
    /// Socket-level failure outside the recoverable set.
    Io(io::Error),
    /// The server sent something undecodable.
    Protocol(ProtocolError),
    /// The connection stalled and every reconnect attempt failed.
    Stalled {
        /// Reconnect attempts made before giving up.
        attempts: u32,
    },
}

impl From<io::Error> for GatewayError {
    fn from(e: io::Error) -> GatewayError {
        GatewayError::Io(e)
    }
}

impl From<ProtocolError> for GatewayError {
    fn from(e: ProtocolError) -> GatewayError {
        GatewayError::Protocol(e)
    }
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "socket error: {e}"),
            GatewayError::Protocol(e) => write!(f, "protocol error: {e}"),
            GatewayError::Stalled { attempts } => {
                write!(f, "stalled; gave up after {attempts} reconnect attempts")
            }
        }
    }
}

impl std::error::Error for GatewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GatewayError::Io(e) => Some(e),
            GatewayError::Protocol(e) => Some(e),
            GatewayError::Stalled { .. } => None,
        }
    }
}

/// A UniInt proxy attached to a [`crate::host::Gateway`] over TCP.
#[derive(Debug)]
pub struct GatewayClient {
    /// The protocol engine: framebuffer cache, device plug-ins, stats.
    pub proxy: UniIntProxy,
    name: String,
    addr: SocketAddr,
    cfg: ClientConfig,
    sock: FramedSocket,
    /// Every client message sent this session except `Hello`/`Resume`
    /// replays, minus an already-acknowledged prefix of `log_offset`
    /// messages — exactly the `SimSession` retransmission log.
    client_log: Vec<ClientMessage>,
    log_offset: u64,
    backoff_rng: StdRng,
    last_frame: Option<DeviceFrame>,
    frames_delivered: u64,
    bells: u32,
    last_send: Instant,
}

impl GatewayClient {
    /// Connects to `addr` with default config and a private registry,
    /// completing the protocol handshake before returning.
    pub fn connect(
        addr: SocketAddr,
        name: impl Into<String>,
        seed: u64,
    ) -> Result<GatewayClient, GatewayError> {
        GatewayClient::connect_with(addr, name, seed, ClientConfig::default(), Registry::new())
    }

    /// Connects with explicit config and telemetry registry.
    pub fn connect_with(
        addr: SocketAddr,
        name: impl Into<String>,
        seed: u64,
        cfg: ClientConfig,
        registry: Registry,
    ) -> Result<GatewayClient, GatewayError> {
        let name = name.into();
        let stream = TcpStream::connect(addr)?;
        let sock = FramedSocket::new(stream, cfg.max_frame, cfg.poll)?;
        let mut c = GatewayClient {
            proxy: UniIntProxy::with_telemetry(name.clone(), registry),
            name,
            addr,
            cfg,
            sock,
            client_log: Vec::new(),
            log_offset: 0,
            backoff_rng: StdRng::seed_from_u64(seed ^ 0x5e55_10e5_b0ff_0e5e),
            last_frame: None,
            frames_delivered: 0,
            bells: 0,
            last_send: Instant::now(),
        };
        for m in c.proxy.connect() {
            c.send_logged(m);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while !c.proxy.is_connected() {
            c.pump_once()?;
            if Instant::now() > deadline {
                return Err(GatewayError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "handshake never completed",
                )));
            }
        }
        Ok(c)
    }

    /// The client name sessions are keyed by.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Accumulated proxy statistics (stalls, resumes, retransmits...).
    pub fn stats(&self) -> ProxyStats {
        self.proxy.stats()
    }

    /// Bell count so far.
    pub fn bells(&self) -> u32 {
        self.bells
    }

    /// Frames delivered to the output device so far.
    pub fn frames_delivered(&self) -> u64 {
        self.frames_delivered
    }

    /// The most recent adapted device frame.
    pub fn last_frame(&self) -> Option<&DeviceFrame> {
        self.last_frame.as_ref()
    }

    /// Takes the most recent adapted frame.
    pub fn take_frame(&mut self) -> Option<DeviceFrame> {
        self.last_frame.take()
    }

    /// Installs an input plug-in (see [`UniIntProxy::attach_input`]).
    pub fn attach_input(&mut self, plugin: Box<dyn InputPlugin>) {
        self.proxy.attach_input(plugin);
    }

    /// Installs an output plug-in and sends the session renegotiation it
    /// requires (pixel format, encodings, full refresh).
    pub fn attach_output(&mut self, plugin: Box<dyn OutputPlugin>) {
        for m in self.proxy.attach_output(plugin) {
            self.send_logged(m);
        }
    }

    /// Translates a device-native event through the input plug-in and
    /// sends the resulting protocol messages.
    pub fn device_input(&mut self, ev: &DeviceEvent) {
        for m in self.proxy.device_input(ev) {
            self.send_logged(m);
        }
    }

    /// Sends arbitrary client messages (they enter the retransmission
    /// log like any other traffic).
    pub fn send_messages(&mut self, msgs: Vec<ClientMessage>) {
        for m in msgs {
            self.send_logged(m);
        }
    }

    /// Severs the TCP connection abruptly, as a cable pull or crashed
    /// process would. The next [`pump_once`](Self::pump_once) detects
    /// the break and runs the reconnect/resume path.
    pub fn kill_socket(&self) {
        let _ = self.sock.stream().shutdown(Shutdown::Both);
    }

    /// One poll cycle: read what arrived, decode frames, feed the proxy,
    /// send its replies. Detects connection breaks and recovers them
    /// (reconnect + incremental resume) transparently.
    ///
    /// Returns `true` when at least one server frame was processed.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Stalled`] when the gateway stayed unreachable for
    /// the whole backoff budget; [`GatewayError::Protocol`] on an
    /// undecodable (hostile) byte stream.
    pub fn pump_once(&mut self) -> Result<bool, GatewayError> {
        if let Some(k) = self.cfg.keepalive {
            if self.last_send.elapsed() > k && self.proxy.is_connected() {
                let ka = ClientMessage::UpdateRequest {
                    incremental: true,
                    rect: self
                        .proxy
                        .server_frame()
                        .map(|f| f.bounds())
                        .unwrap_or(uniint_raster::geom::Rect::EMPTY),
                };
                self.send_logged(ka);
            }
        }
        match self.sock.fill() {
            Ok(ReadStatus::Idle) => Ok(false),
            Ok(ReadStatus::Eof) | Err(_) => {
                self.reconnect()?;
                Ok(false)
            }
            Ok(ReadStatus::Data(_)) => {
                let mut processed = false;
                loop {
                    match self.sock.next_frame() {
                        Ok(Some(frame)) => {
                            processed = true;
                            let msg = ServerMessage::decode_body(&mut frame.as_slice())?;
                            if let ServerMessage::ResumeAck {
                                client_msgs_received,
                                ..
                            } = &msg
                            {
                                self.on_resume_ack(*client_msgs_received);
                            }
                            let out = self.proxy.handle_server(&msg)?;
                            if let Some(f) = out.frame {
                                self.last_frame = Some(f);
                                self.frames_delivered += 1;
                            }
                            if out.bell {
                                self.bells += 1;
                            }
                            for m in out.messages {
                                self.send_logged(m);
                            }
                        }
                        Ok(None) => break,
                        Err(e) => return Err(e.into()),
                    }
                }
                Ok(processed)
            }
        }
    }

    /// Pumps continuously for (at least) `dur` wall-clock time.
    pub fn pump_for(&mut self, dur: Duration) -> Result<(), GatewayError> {
        let deadline = Instant::now() + dur;
        while Instant::now() < deadline {
            self.pump_once()?;
        }
        Ok(())
    }

    /// Sends one message and appends it to the retransmission log.
    ///
    /// Write errors are deliberately swallowed: the message *is* logged,
    /// the broken socket surfaces as EOF on the next read, and the
    /// resume handshake retransmits everything the server never saw.
    fn send_logged(&mut self, m: ClientMessage) {
        let _ = self.sock.send_client(&m);
        self.last_send = Instant::now();
        self.client_log.push(m);
    }

    /// Sends without logging — reserved for the reattach `Hello` and
    /// `Resume`, which the server excludes from its received count.
    fn send_raw(&mut self, m: &ClientMessage) {
        let _ = self.sock.send_client(m);
        self.last_send = Instant::now();
    }

    /// Re-establishes TCP under exponential backoff + seeded jitter,
    /// then reattaches the protocol session (incremental resume when a
    /// handshake had completed, fresh Hello otherwise).
    fn reconnect(&mut self) -> Result<(), GatewayError> {
        self.proxy.record_stall();
        let mut delay = self.cfg.backoff_base;
        let mut attempts = 0u32;
        let stream = loop {
            if attempts >= self.cfg.max_attempts {
                return Err(GatewayError::Stalled { attempts });
            }
            attempts += 1;
            self.proxy.record_backoff_attempt();
            let jitter_us = self
                .backoff_rng
                .gen_range(0..=(delay.as_micros() as u64) / 4);
            std::thread::sleep(delay + Duration::from_micros(jitter_us));
            match TcpStream::connect(self.addr) {
                Ok(s) => break s,
                Err(_) => delay = (delay * 2).min(self.cfg.backoff_cap),
            }
        };
        // A fresh FramedSocket also discards any half-received frame
        // from the dead connection.
        self.sock = FramedSocket::new(stream, self.cfg.max_frame, self.cfg.poll)?;
        if !self.proxy.is_connected() {
            // The break beat the handshake: nothing to resume.
            self.client_log.clear();
            self.log_offset = 0;
            for m in self.proxy.connect() {
                self.send_logged(m);
            }
            return Ok(());
        }
        self.send_raw(&ClientMessage::Hello {
            version: PROTOCOL_VERSION,
            name: self.name.clone(),
        });
        let resume = self.proxy.make_resume();
        self.send_raw(&resume);
        Ok(())
    }

    /// Reacts to the server's resume handshake: retransmits, in original
    /// order, every logged message the server reports missing.
    fn on_resume_ack(&mut self, client_msgs_received: u64) {
        let start = client_msgs_received.saturating_sub(self.log_offset) as usize;
        let missing: Vec<ClientMessage> = match self.client_log.get(start..) {
            Some(tail) => tail.to_vec(),
            None => Vec::new(),
        };
        self.proxy.record_retransmits(missing.len() as u64);
        for m in &missing {
            // Already logged the first time around.
            self.send_raw(m);
        }
        if start > 0 {
            self.client_log.drain(..start.min(self.client_log.len()));
            self.log_offset = client_msgs_received.min(self.log_offset + start as u64);
        }
    }
}
