//! The concurrent connection host: one appliance panel served to many
//! real TCP clients.
//!
//! Thread layout (all plain `std::thread`, no async runtime):
//!
//! ```text
//!            accept thread ──spawns──► reader thread (per conn)
//!                                      writer thread (per conn)
//!                   │                        │          ▲
//!                   ▼         events        ▼          │ bounded OutQueue
//!              state thread ◄────────────────          │
//!          (owns Ui + MultiServer) ─────────────────────
//! ```
//!
//! Every reader forwards decoded [`ClientMessage`]s into one unbounded
//! channel; the single state thread owns the [`Ui`] and the
//! [`MultiServer`] so protocol handling stays strictly serialized — the
//! concurrency lives at the sockets, not in the session logic. Outbound
//! traffic flows through a **bounded** per-connection [`OutQueue`]: when
//! a slow client falls behind, consecutive `Update`s coalesce into one
//! (their damage rectangles concatenate, exactly like server-side damage
//! merging), and a client that cannot even keep up with that is dropped
//! rather than allowed to buffer the gateway into the ground.
//!
//! Reconnects are handled by *session adoption*: sessions are keyed by
//! the client name from `Hello`. A `Hello` for a known name followed by
//! `Resume` re-binds the existing server session — with its damage
//! account and send log intact — to the new socket, so the resume is
//! incremental instead of a full refresh.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use uniint_core::multi::{ClientId, MultiServer};
use uniint_core::tap::{Direction, SharedTap};
use uniint_protocol::message::{encode_client, encode_server, ClientMessage, ServerMessage};
use uniint_telemetry::registry::{Counter, Gauge, Registry};
use uniint_wsys::ui::Ui;

use crate::codec::{check_hello_version, FramedSocket, ReadStatus, DEFAULT_MAX_FRAME};

/// Identifies one TCP connection. Not the same as a session: a session
/// survives reconnects, a connection does not.
pub type ConnId = usize;

/// Tuning knobs for a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Address the gateway listens on. Defaults to `127.0.0.1:0`
    /// (loopback, ephemeral port); bind `0.0.0.0:<port>` to serve a
    /// real network.
    pub bind_addr: SocketAddr,
    /// Largest frame accepted from a client, bytes. Frames declaring
    /// more are rejected before allocation and the connection dropped.
    pub max_frame: usize,
    /// Outbound queue capacity per connection, messages. A client that
    /// stays this far behind even after update coalescing is dropped.
    pub max_queue: usize,
    /// Largest total pixel payload, bytes, that update coalescing may
    /// accumulate into one queue entry. A merge that would exceed this
    /// starts a new entry instead, so queue memory stays bounded by
    /// roughly `max_queue * max_coalesce_bytes` even for a stalled
    /// client under a continuously changing panel.
    pub max_coalesce_bytes: usize,
    /// Drop a connection after this long without a single byte from it.
    /// `None` disables the idle check (the default).
    pub idle_timeout: Option<Duration>,
    /// How long a `Hello` for an already-known name is held back
    /// waiting for a `Resume` to disambiguate reconnect from name
    /// reuse. A fresh client (crashed and restarted) sends only the
    /// Hello, so once this grace elapses the Hello is resolved as a
    /// replacement and the handshake completes.
    pub hello_grace: Duration,
    /// How long a session may stay detached (no socket) before it is
    /// reaped and its name freed. `None` keeps detached sessions
    /// forever — unbounded memory under client-name churn.
    pub session_grace: Option<Duration>,
    /// How long the state thread waits for an event before running a
    /// housekeeping pass (application tick + damage pump).
    pub tick: Duration,
    /// Flight-recorder tap (see `uniint-trace`). When set, the state
    /// thread records every client message it processes and every
    /// server message it queues, stamped with microseconds since
    /// gateway start and channelled by connection id. `None` (the
    /// default) costs one branch per message.
    pub recorder: Option<SharedTap>,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            bind_addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            max_frame: DEFAULT_MAX_FRAME,
            max_queue: 64,
            max_coalesce_bytes: 8 << 20,
            idle_timeout: None,
            hello_grace: Duration::from_millis(250),
            session_grace: Some(Duration::from_secs(60)),
            tick: Duration::from_millis(10),
            recorder: None,
        }
    }
}

/// What [`OutQueue`]'s push did with a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pushed {
    /// Appended as a new entry.
    Queued,
    /// Folded into the `Update` already at the tail.
    Coalesced,
    /// Queue was full and the message could not coalesce: the queue is
    /// now closed and the connection must be dropped.
    Overflow,
    /// Queue already closed; message discarded.
    Closed,
}

/// A bounded, coalescing outbound message queue (one per connection).
///
/// Built on `Mutex` + `Condvar` because the vendored channel offers no
/// bounded variant — and a hand-rolled queue is what lets pending
/// updates coalesce in place instead of blindly buffering.
#[derive(Debug)]
pub struct OutQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
    /// Largest total pixel payload one coalesced tail may carry; merges
    /// that would exceed it start a new entry instead.
    coalesce_cap: usize,
}

#[derive(Debug)]
struct QueueInner {
    items: VecDeque<ServerMessage>,
    closed: bool,
    /// Payload bytes accumulated in the tail entry (0 if not an
    /// `Update`). Only mutated at push time, which is also the only
    /// time the tail's identity can change.
    tail_bytes: usize,
}

/// Total pixel payload carried by one `Update`'s rects.
fn update_payload_bytes(msg: &ServerMessage) -> usize {
    match msg {
        ServerMessage::Update { rects, .. } => rects.iter().map(|r| r.payload.len()).sum(),
        _ => 0,
    }
}

impl OutQueue {
    fn new(cap: usize, coalesce_cap: usize) -> OutQueue {
        OutQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
                tail_bytes: 0,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            coalesce_cap,
        }
    }

    /// Enqueues `msg`, coalescing consecutive `Update`s: if the tail of
    /// the queue is an `Update` in the same pixel format, the new rects
    /// are appended to it and the sequence advances to the newer one.
    /// Applying the merged update is pixel-identical to applying both in
    /// order, and ordering relative to `Resize`/`Bell` is preserved
    /// because only the *tail* merges. A merge never grows the tail past
    /// `coalesce_cap` payload bytes — beyond that the update starts a
    /// new entry, so a stalled client is bounded by `cap` entries of
    /// bounded size and eventually overflows instead of absorbing the
    /// panel's whole change history into one giant message.
    fn push(&self, msg: ServerMessage) -> Pushed {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.closed {
            return Pushed::Closed;
        }
        let msg_bytes = update_payload_bytes(&msg);
        if let ServerMessage::Update { seq, format, rects } = &msg {
            let fits = q.tail_bytes.saturating_add(msg_bytes) <= self.coalesce_cap;
            if let Some(ServerMessage::Update {
                seq: tail_seq,
                format: tail_format,
                rects: tail_rects,
            }) = q.items.back_mut()
            {
                if tail_format == format && fits {
                    tail_rects.extend(rects.iter().cloned());
                    *tail_seq = (*tail_seq).max(*seq);
                    q.tail_bytes += msg_bytes;
                    self.ready.notify_one();
                    return Pushed::Coalesced;
                }
            }
        }
        if q.items.len() >= self.cap {
            q.closed = true;
            q.items.clear();
            self.ready.notify_all();
            return Pushed::Overflow;
        }
        q.items.push_back(msg);
        q.tail_bytes = msg_bytes;
        self.ready.notify_one();
        Pushed::Queued
    }

    /// Blocks up to `timeout` for the next message. `Ok(None)` means the
    /// timeout elapsed; `Err(())` means closed and drained (writer done).
    #[allow(clippy::result_unit_err)]
    fn pop(&self, timeout: Duration) -> Result<Option<ServerMessage>, ()> {
        let mut q = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(m) = q.items.pop_front() {
                return Ok(Some(m));
            }
            if q.closed {
                return Err(());
            }
            let (guard, res) = self.ready.wait_timeout(q, timeout).expect("queue poisoned");
            q = guard;
            if res.timed_out() {
                return match q.items.pop_front() {
                    Some(m) => Ok(Some(m)),
                    None if q.closed => Err(()),
                    None => Ok(None),
                };
            }
        }
    }

    /// Closes the queue; the writer drains what is left and exits.
    fn close(&self) {
        let mut q = self.inner.lock().expect("queue poisoned");
        q.closed = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }
}

/// Events flowing from accept/reader threads into the state thread.
#[derive(Debug)]
enum Event {
    /// A socket connected; its writer listens on the queue.
    Connected(ConnId, Arc<OutQueue>),
    /// One decoded message from a connection.
    Msg(ConnId, ClientMessage),
    /// Socket gone (EOF, error, idle timeout, oversized frame...).
    Disconnected(ConnId),
    /// Orderly gateway shutdown.
    Shutdown,
}

/// Counters the state thread maintains (socket-side counters live in
/// the reader/writer threads and share the registry by name).
struct StateMetrics {
    reconnects: Counter,
    resumes: Counter,
    rejected_version: Counter,
    decode_errors: Counter,
    dropped_connections: Counter,
    expired_sessions: Counter,
    write_coalesced: Counter,
    queue_depth: Gauge,
}

impl StateMetrics {
    fn new(r: &Registry) -> StateMetrics {
        StateMetrics {
            reconnects: r.counter("gateway.reconnects"),
            resumes: r.counter("gateway.resumes"),
            rejected_version: r.counter("gateway.rejected_version"),
            decode_errors: r.counter("gateway.decode_errors"),
            dropped_connections: r.counter("gateway.dropped_connections"),
            expired_sessions: r.counter("gateway.expired_sessions"),
            write_coalesced: r.counter("gateway.write_coalesced"),
            queue_depth: r.gauge("gateway.queue_depth"),
        }
    }
}

/// Per-connection bookkeeping inside the state thread.
struct Conn {
    queue: Arc<OutQueue>,
    session: Option<ClientId>,
    /// A `Hello` for an already-known name, held back until either the
    /// next message disambiguates reconnect (`Resume` follows) from a
    /// fresh client reusing the name (anything else follows), or
    /// `hello_grace` elapses — a fresh client sends nothing after its
    /// Hello, so the timeout resolves it as a replacement instead of
    /// hanging its handshake.
    pending_hello: Option<(ClientMessage, Instant)>,
}

/// A running gateway: an appliance panel listening on a TCP port.
///
/// Created with [`Gateway::spawn`]; the panel [`Ui`] moves into the
/// state thread and comes back out of [`Gateway::shutdown`].
#[derive(Debug)]
pub struct Gateway {
    addr: SocketAddr,
    registry: Registry,
    stop: Arc<AtomicBool>,
    events: Sender<Event>,
    accept_handle: Option<JoinHandle<()>>,
    state_handle: Option<JoinHandle<Ui>>,
    io_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Gateway {
    /// Binds `config.bind_addr` (loopback + ephemeral port by default)
    /// and starts serving `ui`.
    pub fn spawn(ui: Ui, config: GatewayConfig, registry: Registry) -> io::Result<Gateway> {
        Gateway::spawn_with_tick(ui, config, registry, Box::new(|_| {}))
    }

    /// Like [`spawn`](Gateway::spawn), with an application tick closure
    /// run by the state thread between events — the appliance's own
    /// logic (clocks, sensor readouts) mutating the panel it serves.
    pub fn spawn_with_tick(
        ui: Ui,
        config: GatewayConfig,
        registry: Registry,
        tick: Box<dyn FnMut(&mut Ui) + Send>,
    ) -> io::Result<Gateway> {
        let listener = TcpListener::bind(config.bind_addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded::<Event>();
        let io_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let stop = stop.clone();
            let tx = tx.clone();
            let io_handles = io_handles.clone();
            let cfg = config.clone();
            let registry = registry.clone();
            std::thread::Builder::new()
                .name("gw-accept".into())
                .spawn(move || accept_loop(listener, stop, tx, io_handles, cfg, registry))?
        };

        let state_handle = {
            let cfg = config.clone();
            let registry = registry.clone();
            std::thread::Builder::new()
                .name("gw-state".into())
                .spawn(move || state_loop(ui, rx, cfg, registry, tick))?
        };

        Ok(Gateway {
            addr,
            registry,
            stop,
            events: tx,
            accept_handle: Some(accept_handle),
            state_handle: Some(state_handle),
            io_handles,
        })
    }

    /// The address clients connect to (resolves the ephemeral port when
    /// `bind_addr` asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry all gateway and per-session counters land in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Stops every thread, closes every connection and returns the
    /// panel [`Ui`] in its final state.
    pub fn shutdown(mut self) -> Ui {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.events.send(Event::Shutdown);
        let ui = self
            .state_handle
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("state thread never panics");
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.io_handles.lock().expect("io handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
        ui
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    tx: Sender<Event>,
    io_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    cfg: GatewayConfig,
    registry: Registry,
) {
    let next_id = AtomicUsize::new(0);
    let accepted = registry.counter("gateway.accepted");
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let id = next_id.fetch_add(1, Ordering::SeqCst);
                accepted.inc();
                match spawn_conn(id, stream, &stop, &tx, &cfg, &registry) {
                    Ok(mut handles) => {
                        io_handles
                            .lock()
                            .expect("io handles poisoned")
                            .append(&mut handles);
                    }
                    Err(_) => {
                        let _ = tx.send(Event::Disconnected(id));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Starts the reader and writer threads for one accepted socket.
fn spawn_conn(
    id: ConnId,
    stream: TcpStream,
    stop: &Arc<AtomicBool>,
    tx: &Sender<Event>,
    cfg: &GatewayConfig,
    registry: &Registry,
) -> io::Result<Vec<JoinHandle<()>>> {
    let queue = Arc::new(OutQueue::new(cfg.max_queue, cfg.max_coalesce_bytes));
    let write_half = stream.try_clone()?;
    let mut sock = FramedSocket::new(stream, cfg.max_frame, Duration::from_millis(20))?;
    let _ = tx.send(Event::Connected(id, queue.clone()));

    let reader = {
        let stop = stop.clone();
        let tx = tx.clone();
        let queue = queue.clone();
        let idle_timeout = cfg.idle_timeout;
        let frames_in = registry.counter("gateway.frames_in");
        let bytes_in = registry.counter("gateway.bytes_in");
        let decode_errors = registry.counter("gateway.decode_errors");
        std::thread::Builder::new()
            .name(format!("gw-read-{id}"))
            .spawn(move || {
                let mut last_byte = Instant::now();
                'conn: loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match sock.fill() {
                        Ok(ReadStatus::Eof) | Err(_) => break,
                        Ok(ReadStatus::Idle) => {
                            if let Some(limit) = idle_timeout {
                                if last_byte.elapsed() > limit {
                                    break;
                                }
                            }
                            continue;
                        }
                        Ok(ReadStatus::Data(n)) => {
                            last_byte = Instant::now();
                            bytes_in.add(n as u64);
                        }
                    }
                    loop {
                        match sock.next_frame() {
                            Ok(Some(frame)) => {
                                match ClientMessage::decode_body(&mut frame.as_slice()) {
                                    Ok(msg) => {
                                        frames_in.inc();
                                        let _ = tx.send(Event::Msg(id, msg));
                                    }
                                    Err(_) => {
                                        decode_errors.inc();
                                        break 'conn;
                                    }
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Oversized or corrupt framing: the peer
                                // is hostile or broken either way.
                                decode_errors.inc();
                                break 'conn;
                            }
                        }
                    }
                }
                queue.close();
                let _ = tx.send(Event::Disconnected(id));
            })?
    };

    let writer = {
        let queue = queue.clone();
        let bytes_out = registry.counter("gateway.bytes_out");
        std::thread::Builder::new()
            .name(format!("gw-write-{id}"))
            .spawn(move || {
                use std::io::Write;
                let mut out = write_half;
                loop {
                    match queue.pop(Duration::from_millis(50)) {
                        Ok(Some(msg)) => {
                            let bytes = encode_server(&msg);
                            if out.write_all(&bytes).is_err() {
                                queue.close();
                                break;
                            }
                            bytes_out.add(bytes.len() as u64);
                        }
                        Ok(None) => {}
                        Err(()) => break,
                    }
                }
                // Waking the reader (EOF) is what turns "writer gave up"
                // into a full disconnect.
                let _ = out.shutdown(std::net::Shutdown::Both);
            })?
    };

    Ok(vec![reader, writer])
}

/// The whole mutable world of the state thread.
struct State {
    multi: MultiServer,
    conns: HashMap<ConnId, Conn>,
    /// Session bindings survive their sockets: name → session...
    names: HashMap<String, ClientId>,
    /// ...and which socket (if any) a session's output currently goes to.
    attached: HashMap<ClientId, ConnId>,
    /// When each currently-detached session lost its socket, so stale
    /// ones can be reaped after `session_grace` instead of accumulating
    /// forever under client-name churn.
    detached_at: HashMap<ClientId, Instant>,
    metrics: StateMetrics,
    registry: Registry,
    /// Flight-recorder tap from [`GatewayConfig::recorder`].
    recorder: Option<SharedTap>,
    /// Timestamp origin for recorded messages.
    started: Instant,
}

/// The single thread owning the panel and all protocol sessions.
fn state_loop(
    mut ui: Ui,
    rx: Receiver<Event>,
    cfg: GatewayConfig,
    registry: Registry,
    mut tick: Box<dyn FnMut(&mut Ui) + Send>,
) -> Ui {
    let mut st = State {
        multi: MultiServer::new(),
        conns: HashMap::new(),
        names: HashMap::new(),
        attached: HashMap::new(),
        detached_at: HashMap::new(),
        metrics: StateMetrics::new(&registry),
        registry,
        recorder: cfg.recorder.clone(),
        started: Instant::now(),
    };

    loop {
        let first = match rx.recv_timeout(cfg.tick) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut stop = false;
        for ev in first.into_iter().chain(rx.try_iter()) {
            match ev {
                Event::Connected(id, queue) => {
                    st.conns.insert(
                        id,
                        Conn {
                            queue,
                            session: None,
                            pending_hello: None,
                        },
                    );
                }
                Event::Msg(id, msg) => st.handle_msg(&mut ui, id, msg),
                Event::Disconnected(id) => st.drop_conn(id),
                Event::Shutdown => stop = true,
            }
        }
        if stop {
            break;
        }
        st.resolve_stale_hellos(&mut ui, cfg.hello_grace);
        st.expire_detached_sessions(cfg.session_grace);
        tick(&mut ui);
        let batches = st.multi.pump_all(&mut ui);
        st.route_batches(batches);
    }

    for conn in st.conns.values() {
        conn.queue.close();
    }
    ui
}

impl State {
    /// Unbinds a dead socket. Its *session* stays alive: damage keeps
    /// accumulating in the server session (bounded by the screen area),
    /// so the same client name can come back and resume incrementally —
    /// until `session_grace` reaps it.
    fn drop_conn(&mut self, id: ConnId) {
        if let Some(conn) = self.conns.remove(&id) {
            conn.queue.close();
            if let Some(sid) = conn.session {
                if self.attached.get(&sid) == Some(&id) {
                    self.attached.remove(&sid);
                    self.detached_at.insert(sid, Instant::now());
                }
            }
        }
    }

    /// Detaches the session a connection is currently bound to (if
    /// any), leaving the session alive under its name. Called when a
    /// bound connection sends another `Hello`: the old session must
    /// stop writing to this socket *before* a new one binds, or two
    /// independent seq streams would interleave onto one client.
    fn unbind_conn(&mut self, id: ConnId) {
        if let Some(conn) = self.conns.get_mut(&id) {
            if let Some(sid) = conn.session.take() {
                if self.attached.get(&sid) == Some(&id) {
                    self.attached.remove(&sid);
                    self.detached_at.insert(sid, Instant::now());
                }
            }
        }
    }

    /// Binds `id` to a brand-new session for `hello`'s name, displacing
    /// (and disconnecting) any previous session under that name, and
    /// forwards the Hello so the normal handshake replies flow.
    fn bind_fresh_session(&mut self, ui: &mut Ui, id: ConnId, hello: ClientMessage) {
        let ClientMessage::Hello { ref name, .. } = hello else {
            unreachable!("only Hello is ever held back");
        };
        if !self.conns.contains_key(&id) {
            return;
        }
        let sid = self.multi.accept_with_telemetry(ui, self.registry.clone());
        if let Some(old_sid) = self.names.insert(name.clone(), sid) {
            if let Some(old_conn) = self.attached.remove(&old_sid) {
                if old_conn != id {
                    if let Some(stale) = self.conns.get(&old_conn) {
                        stale.queue.close();
                    }
                }
            }
            self.detached_at.remove(&old_sid);
            self.multi.disconnect(old_sid);
        }
        self.attached.insert(sid, id);
        self.conns.get_mut(&id).expect("checked").session = Some(sid);
        let replies = self.multi.handle_message(ui, sid, hello);
        self.push_to(id, replies);
    }

    /// Resolves held-back `Hello`s whose grace elapsed with no follow-up
    /// message: the peer is a fresh client reusing a known name (a
    /// reconnecting client sends `Resume` immediately after its Hello),
    /// so it displaces the old session and handshakes normally.
    fn resolve_stale_hellos(&mut self, ui: &mut Ui, grace: Duration) {
        let stale: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.pending_hello
                    .as_ref()
                    .is_some_and(|(_, held)| held.elapsed() >= grace)
            })
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            if let Some((hello, _)) = self.conns.get_mut(&id).and_then(|c| c.pending_hello.take()) {
                self.bind_fresh_session(ui, id, hello);
            }
        }
    }

    /// Reaps sessions that have been detached longer than `grace`,
    /// freeing their name and their `MultiServer` slot.
    fn expire_detached_sessions(&mut self, grace: Option<Duration>) {
        let Some(grace) = grace else { return };
        let expired: Vec<ClientId> = self
            .detached_at
            .iter()
            .filter(|(_, since)| since.elapsed() >= grace)
            .map(|(sid, _)| *sid)
            .collect();
        for sid in expired {
            self.detached_at.remove(&sid);
            self.attached.remove(&sid);
            let mut expired_name = None;
            self.names.retain(|name, s| {
                if *s == sid {
                    expired_name = Some(name.clone());
                    false
                } else {
                    true
                }
            });
            self.multi.disconnect(sid);
            self.metrics.expired_sessions.inc();
            if let Some(name) = expired_name {
                self.registry
                    .journal()
                    .record("gateway.session_expired", name);
            }
        }
    }

    /// Applies one client message: version policy, name-keyed session
    /// adoption, then normal protocol dispatch into the [`MultiServer`].
    fn handle_msg(&mut self, ui: &mut Ui, id: ConnId, msg: ClientMessage) {
        if !self.conns.contains_key(&id) {
            return;
        }
        if let Some(tap) = &self.recorder {
            // Recorded at the moment the state thread consumes the
            // message (held-back Hellos are recorded here too, in
            // arrival order, even though their processing is deferred).
            tap.record(
                self.started.elapsed().as_micros() as u64,
                id as u32,
                Direction::ToServer,
                &encode_client(&msg)[4..],
            );
        }

        // A held-back Hello resolves on the very next message (or, if
        // none comes, on the `hello_grace` timeout in housekeeping).
        let held = self
            .conns
            .get_mut(&id)
            .expect("checked")
            .pending_hello
            .take();
        if let Some((hello, _)) = held {
            let ClientMessage::Hello { ref name, .. } = hello else {
                unreachable!("only Hello is ever held back");
            };
            // Adopt the existing session only on Resume; its name may
            // also have been reaped between hold and resolution, in
            // which case a fresh session is the only option left.
            let known = self.names.get(name).copied();
            match (&msg, known) {
                (ClientMessage::Resume { .. }, Some(sid)) => {
                    // Reconnect: adopt the existing session wholesale.
                    // The Hello is deliberately *not* forwarded — a
                    // Hello resets server-side session state, which is
                    // exactly what an incremental resume must avoid.
                    if let Some(old) = self.attached.insert(sid, id) {
                        if old != id {
                            if let Some(stale) = self.conns.get(&old) {
                                stale.queue.close();
                            }
                        }
                    }
                    self.detached_at.remove(&sid);
                    self.conns.get_mut(&id).expect("checked").session = Some(sid);
                    self.metrics.reconnects.inc();
                    self.registry
                        .journal()
                        .record("gateway.reconnect", name.clone());
                }
                _ => {
                    // A fresh client reusing a known name: the old
                    // session is abandoned in its favour.
                    self.bind_fresh_session(ui, id, hello);
                }
            }
            // Fall through: `msg` itself is processed below.
        }

        let session = self.conns.get(&id).and_then(|c| c.session);
        match (&msg, session) {
            (ClientMessage::Hello { version, name }, _) => {
                if check_hello_version(*version).is_err() {
                    self.metrics.rejected_version.inc();
                    self.registry
                        .journal()
                        .record("gateway.rejected_version", format!("{name}: v{version}"));
                    self.conns[&id].queue.close();
                    return;
                }
                // A re-Hello from a bound connection rebinds it: detach
                // the old session first so only one seq stream ever
                // writes to this socket.
                self.unbind_conn(id);
                if self.names.contains_key(name) {
                    // Known name: reconnect or collision? The next
                    // message tells (Resume means reconnect), and the
                    // hello_grace timeout resolves the silent case.
                    self.conns.get_mut(&id).expect("checked").pending_hello =
                        Some((msg, Instant::now()));
                    return;
                }
                let sid = self.multi.accept_with_telemetry(ui, self.registry.clone());
                self.names.insert(name.clone(), sid);
                self.attached.insert(sid, id);
                self.conns.get_mut(&id).expect("checked").session = Some(sid);
                let replies = self.multi.handle_message(ui, sid, msg);
                self.push_to(id, replies);
            }
            (_, Some(sid)) => {
                if matches!(msg, ClientMessage::Resume { .. }) {
                    self.metrics.resumes.inc();
                }
                let replies = self.multi.handle_message(ui, sid, msg);
                self.push_to(id, replies);
            }
            (_, None) => {
                // Message before any Hello: protocol abuse, drop the peer.
                self.metrics.decode_errors.inc();
                self.conns[&id].queue.close();
            }
        }
    }

    fn push_to(&mut self, id: ConnId, replies: Vec<ServerMessage>) {
        let Some(conn) = self.conns.get(&id) else {
            return;
        };
        for r in replies {
            if let Some(tap) = &self.recorder {
                // Recorded pre-queue, i.e. in the order the sessions
                // produced the messages, before any coalescing.
                tap.record(
                    self.started.elapsed().as_micros() as u64,
                    id as u32,
                    Direction::ToClient,
                    &encode_server(&r)[4..],
                );
            }
            match conn.queue.push(r) {
                Pushed::Coalesced => self.metrics.write_coalesced.inc(),
                Pushed::Overflow => {
                    self.metrics.dropped_connections.inc();
                    break;
                }
                Pushed::Queued | Pushed::Closed => {}
            }
        }
        self.metrics.queue_depth.set(conn.queue.depth() as i64);
    }

    fn route_batches(&mut self, batches: Vec<(ClientId, Vec<ServerMessage>)>) {
        for (sid, msgs) in batches {
            let Some(id) = self.attached.get(&sid).copied() else {
                // Session currently detached: its updates stay as damage
                // inside the server session until the name resumes.
                continue;
            };
            self.push_to(id, msgs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_protocol::message::RectUpdate;
    use uniint_raster::geom::Rect;
    use uniint_raster::pixel::PixelFormat;

    fn update(seq: u64, x: i32) -> ServerMessage {
        ServerMessage::Update {
            seq,
            format: PixelFormat::Rgb888,
            rects: vec![RectUpdate {
                rect: Rect::new(x, 0, 1, 1),
                encoding: uniint_protocol::encoding::Encoding::Raw,
                payload: vec![0, 0, 0],
            }],
        }
    }

    #[test]
    fn queue_coalesces_consecutive_updates() {
        let q = OutQueue::new(4, usize::MAX);
        assert_eq!(q.push(update(1, 0)), Pushed::Queued);
        assert_eq!(q.push(update(2, 1)), Pushed::Coalesced);
        assert_eq!(q.push(update(3, 2)), Pushed::Coalesced);
        assert_eq!(q.depth(), 1);
        let m = q.pop(Duration::from_millis(1)).unwrap().unwrap();
        match m {
            ServerMessage::Update { seq, rects, .. } => {
                assert_eq!(seq, 3, "merged update carries the newest seq");
                assert_eq!(rects.len(), 3, "all damage retained in order");
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn queue_does_not_merge_across_interleaved_messages() {
        // Update / Resize / Update must stay three messages: merging the
        // second update into the first would replay its rects *before*
        // the resize that invalidated the old geometry.
        let q = OutQueue::new(4, usize::MAX);
        q.push(update(1, 0));
        q.push(ServerMessage::Resize {
            width: 10,
            height: 10,
        });
        assert_eq!(q.push(update(2, 1)), Pushed::Queued);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn queue_coalescing_is_bounded_in_bytes() {
        // Each test update carries a 3-byte payload; a 4-byte coalesce
        // cap lets no pair merge, so a backed-up client marches toward
        // the queue cap (and Overflow) instead of growing one tail
        // entry without bound.
        let q = OutQueue::new(3, 4);
        assert_eq!(q.push(update(1, 0)), Pushed::Queued);
        assert_eq!(
            q.push(update(2, 1)),
            Pushed::Queued,
            "merge would exceed cap"
        );
        assert_eq!(q.push(update(3, 2)), Pushed::Queued);
        assert_eq!(q.depth(), 3);
        assert_eq!(q.push(update(4, 3)), Pushed::Overflow);
    }

    #[test]
    fn queue_coalesces_again_after_a_new_tail_starts() {
        // A 7-byte cap fits two 3-byte payloads but not three: the third
        // update starts a fresh tail, and the fourth merges into *it*.
        let q = OutQueue::new(4, 7);
        assert_eq!(q.push(update(1, 0)), Pushed::Queued);
        assert_eq!(q.push(update(2, 1)), Pushed::Coalesced);
        assert_eq!(q.push(update(3, 2)), Pushed::Queued, "cap reached");
        assert_eq!(q.push(update(4, 3)), Pushed::Coalesced, "new tail merges");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn queue_overflow_closes() {
        let q = OutQueue::new(2, usize::MAX);
        assert_eq!(q.push(ServerMessage::Bell), Pushed::Queued);
        assert_eq!(q.push(ServerMessage::Bell), Pushed::Queued);
        assert_eq!(q.push(ServerMessage::Bell), Pushed::Overflow);
        assert_eq!(q.push(ServerMessage::Bell), Pushed::Closed);
        assert!(q.pop(Duration::from_millis(1)).is_err(), "closed + drained");
    }

    #[test]
    fn queue_pop_times_out_empty() {
        let q = OutQueue::new(2, usize::MAX);
        assert_eq!(q.pop(Duration::from_millis(5)), Ok(None));
    }
}
