//! The socket frame codec shared by the gateway host and client ends.
//!
//! Frames on the wire are exactly the protocol's native framing —
//! `[u32 body_len][body]` — reassembled by
//! [`uniint_protocol::message::FrameReader`] with a **configurable
//! max-frame-size bound** enforced before any allocation, so a hostile
//! or corrupted peer cannot make either end reserve memory for a length
//! field it invented. On top of that the codec applies the
//! protocol-version check every `Hello` must pass before a session is
//! admitted.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use uniint_protocol::error::{ProtocolError, Result as ProtocolResult};
use uniint_protocol::message::{
    encode_client, encode_server, ClientMessage, FrameReader, ServerMessage, PROTOCOL_VERSION,
};

/// Default max frame size a gateway end accepts from an untrusted peer
/// (1 MiB — far above any real panel update, far below the 8 MiB
/// protocol ceiling).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Outcome of one non-blocking read attempt on a [`FramedSocket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// `n` fresh bytes were buffered; pull frames with
    /// [`FramedSocket::next_frame`].
    Data(usize),
    /// Nothing arrived within the poll interval.
    Idle,
    /// The peer closed the connection cleanly.
    Eof,
}

/// Validates the version carried by a `Hello`.
///
/// Version 0 is garbage (the protocol starts at 1) and a version newer
/// than ours cannot be trusted to degrade; both are rejected with
/// [`ProtocolError::UnsupportedVersion`] so the caller can refuse the
/// session before any state is allocated for it.
pub fn check_hello_version(version: u16) -> ProtocolResult<()> {
    if version == 0 || version > PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion {
            requested: version,
            supported: PROTOCOL_VERSION,
        });
    }
    Ok(())
}

/// A TCP stream with protocol framing on both directions.
///
/// Reads are polled: the socket runs with a short read timeout so the
/// owning thread can interleave reads with shutdown checks and idle
/// accounting instead of blocking forever.
#[derive(Debug)]
pub struct FramedSocket {
    stream: TcpStream,
    reader: FrameReader,
    buf: Vec<u8>,
}

impl FramedSocket {
    /// Wraps `stream`, disabling Nagle (frames are latency-sensitive)
    /// and installing `poll` as the read timeout.
    pub fn new(
        stream: TcpStream,
        max_frame: usize,
        poll: Duration,
    ) -> std::io::Result<FramedSocket> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(poll))?;
        Ok(FramedSocket {
            stream,
            reader: FrameReader::with_max_body(max_frame),
            buf: vec![0u8; 16 * 1024],
        })
    }

    /// The underlying stream (for `shutdown`, `peer_addr`...).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Encodes and writes one client→server message; returns the frame
    /// size in bytes.
    pub fn send_client(&mut self, msg: &ClientMessage) -> std::io::Result<usize> {
        let bytes = encode_client(msg);
        self.stream.write_all(&bytes)?;
        Ok(bytes.len())
    }

    /// Encodes and writes one server→client message; returns the frame
    /// size in bytes.
    pub fn send_server(&mut self, msg: &ServerMessage) -> std::io::Result<usize> {
        let bytes = encode_server(msg);
        self.stream.write_all(&bytes)?;
        Ok(bytes.len())
    }

    /// Writes pre-encoded frame bytes.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Attempts one read from the socket, feeding whatever arrives into
    /// the frame reassembler. Timeouts are reported as
    /// [`ReadStatus::Idle`], not errors.
    pub fn fill(&mut self) -> std::io::Result<ReadStatus> {
        match self.stream.read(&mut self.buf) {
            Ok(0) => Ok(ReadStatus::Eof),
            Ok(n) => {
                self.reader.feed(&self.buf[..n]);
                Ok(ReadStatus::Data(n))
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                Ok(ReadStatus::Idle)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(ReadStatus::Idle),
            Err(e) => Err(e),
        }
    }

    /// Extracts the next complete frame body, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::FrameTooLarge`] when the peer declares a frame
    /// beyond the configured bound; the connection should be dropped.
    pub fn next_frame(&mut self) -> ProtocolResult<Option<Vec<u8>>> {
        self.reader.next_frame()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn hello_version_policy() {
        assert!(check_hello_version(0).is_err());
        assert!(check_hello_version(PROTOCOL_VERSION).is_ok());
        assert!(matches!(
            check_hello_version(PROTOCOL_VERSION + 1),
            Err(ProtocolError::UnsupportedVersion { requested, supported })
                if requested == PROTOCOL_VERSION + 1 && supported == PROTOCOL_VERSION
        ));
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut fs =
                FramedSocket::new(sock, DEFAULT_MAX_FRAME, Duration::from_millis(20)).unwrap();
            loop {
                match fs.fill().unwrap() {
                    ReadStatus::Data(_) => {
                        if let Some(frame) = fs.next_frame().unwrap() {
                            let msg = ClientMessage::decode_body(&mut frame.as_slice()).unwrap();
                            assert_eq!(msg, ClientMessage::CutText("over tcp".into()));
                            fs.send_server(&ServerMessage::Bell).unwrap();
                            return;
                        }
                    }
                    ReadStatus::Idle => {}
                    ReadStatus::Eof => panic!("peer closed early"),
                }
            }
        });
        let sock = TcpStream::connect(addr).unwrap();
        let mut fs = FramedSocket::new(sock, DEFAULT_MAX_FRAME, Duration::from_millis(20)).unwrap();
        fs.send_client(&ClientMessage::CutText("over tcp".into()))
            .unwrap();
        loop {
            match fs.fill().unwrap() {
                ReadStatus::Data(_) => {
                    if let Some(frame) = fs.next_frame().unwrap() {
                        let msg = ServerMessage::decode_body(&mut frame.as_slice()).unwrap();
                        assert_eq!(msg, ServerMessage::Bell);
                        break;
                    }
                }
                ReadStatus::Idle => {}
                ReadStatus::Eof => panic!("peer closed early"),
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn oversized_frame_is_rejected_by_the_bound() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            // A declared 1 GiB body: only the length prefix ever ships.
            sock.write_all(&(1u32 << 30).to_be_bytes()).unwrap();
            sock
        });
        let sock = TcpStream::connect(addr).unwrap();
        let mut fs = FramedSocket::new(sock, 4096, Duration::from_millis(20)).unwrap();
        let _keep = t.join().unwrap();
        loop {
            match fs.fill().unwrap() {
                ReadStatus::Data(_) => {
                    assert!(matches!(
                        fs.next_frame(),
                        Err(ProtocolError::FrameTooLarge { .. })
                    ));
                    return;
                }
                ReadStatus::Idle => {}
                ReadStatus::Eof => panic!("expected the length prefix first"),
            }
        }
    }
}
