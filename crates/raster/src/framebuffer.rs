//! The software framebuffer: canonical 24-bit RGB pixels plus damage
//! tracking.
//!
//! The window system renders into a [`Framebuffer`]; the UniInt server
//! drains its [`Region`] of accumulated damage to decide which rectangles
//! to re-encode and ship to the proxy.

use crate::color::Color;
use crate::geom::{Point, Rect, Size};
use crate::region::Region;

/// A `w`×`h` raster of [`Color`] pixels with an accumulated damage region.
///
/// ```
/// use uniint_raster::framebuffer::Framebuffer;
/// use uniint_raster::color::Color;
/// use uniint_raster::geom::{Point, Rect};
/// let mut fb = Framebuffer::new(64, 48, Color::BLACK);
/// fb.take_damage(); // a fresh framebuffer starts fully damaged
/// fb.fill_rect(Rect::new(0, 0, 8, 8), Color::RED);
/// assert_eq!(fb.pixel(Point::new(3, 3)), Some(Color::RED));
/// assert_eq!(fb.damage().bounding_rect(), Rect::new(0, 0, 8, 8));
/// ```
#[derive(Debug, Clone)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    pixels: Vec<Color>,
    damage: Region,
}

impl Framebuffer {
    /// Creates a framebuffer filled with `background`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the area exceeds 64 Mpixels
    /// (a guard against nonsense sizes, not a real display limit).
    pub fn new(width: u32, height: u32, background: Color) -> Framebuffer {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        assert!(
            width as u64 * height as u64 <= 64 * 1024 * 1024,
            "framebuffer too large"
        );
        Framebuffer {
            width,
            height,
            pixels: vec![background; (width * height) as usize],
            damage: Region::from_rect(Rect::new(0, 0, width, height)),
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Size as a [`Size`].
    pub fn size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    /// The rectangle `(0, 0, w, h)`.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Raw pixel storage in row-major order.
    pub fn pixels(&self) -> &[Color] {
        &self.pixels
    }

    /// A cheap, stable 64-bit content hash (FNV-1a over dimensions and
    /// row-major RGB bytes). Two framebuffers digest equal iff they
    /// have the same size and identical pixels; damage state is
    /// ignored. Used by the trace replayer's divergence checker and
    /// printable from examples to eyeball two runs for identity.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        };
        for b in self
            .width
            .to_be_bytes()
            .into_iter()
            .chain(self.height.to_be_bytes())
        {
            eat(b);
        }
        for px in &self.pixels {
            eat(px.r);
            eat(px.g);
            eat(px.b);
        }
        h
    }

    /// The pixel at `p`, or `None` when out of bounds.
    pub fn pixel(&self, p: Point) -> Option<Color> {
        if !self.bounds().contains(p) {
            return None;
        }
        Some(self.pixels[(p.y as u32 * self.width + p.x as u32) as usize])
    }

    /// Sets one pixel; out-of-bounds writes are ignored. Records damage.
    pub fn set_pixel(&mut self, p: Point, c: Color) {
        if !self.bounds().contains(p) {
            return;
        }
        let idx = (p.y as u32 * self.width + p.x as u32) as usize;
        if self.pixels[idx] != c {
            self.pixels[idx] = c;
            self.damage.add(Rect::new(p.x, p.y, 1, 1));
        }
    }

    /// A row slice clipped to the framebuffer, or an empty slice when the
    /// row is out of range.
    pub fn row(&self, y: u32) -> &[Color] {
        if y >= self.height {
            return &[];
        }
        let start = (y * self.width) as usize;
        &self.pixels[start..start + self.width as usize]
    }

    /// Copies the pixels of `rect` (clipped) into a new row-major vector,
    /// together with the clipped rectangle.
    pub fn read_rect(&self, rect: Rect) -> (Rect, Vec<Color>) {
        let Some(clipped) = rect.intersect(self.bounds()) else {
            return (Rect::EMPTY, Vec::new());
        };
        let mut out = Vec::with_capacity(clipped.area() as usize);
        for y in clipped.y..clipped.bottom() {
            let start = (y as u32 * self.width + clipped.x as u32) as usize;
            out.extend_from_slice(&self.pixels[start..start + clipped.w as usize]);
        }
        (clipped, out)
    }

    /// Writes a row-major block of pixels at `rect` (clipped to bounds).
    /// `data` must be `rect.w * rect.h` long. Records damage.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not match `rect`'s area.
    pub fn write_rect(&mut self, rect: Rect, data: &[Color]) {
        assert_eq!(
            data.len() as u64,
            rect.area(),
            "write_rect data length mismatch"
        );
        let Some(clipped) = rect.intersect(self.bounds()) else {
            return;
        };
        for y in clipped.y..clipped.bottom() {
            let src_row = (y - rect.y) as usize * rect.w as usize + (clipped.x - rect.x) as usize;
            let dst = (y as u32 * self.width + clipped.x as u32) as usize;
            self.pixels[dst..dst + clipped.w as usize]
                .copy_from_slice(&data[src_row..src_row + clipped.w as usize]);
        }
        self.damage.add(clipped);
    }

    /// Fills `rect` (clipped) with `c`. Records damage.
    pub fn fill_rect(&mut self, rect: Rect, c: Color) {
        let Some(clipped) = rect.intersect(self.bounds()) else {
            return;
        };
        for y in clipped.y..clipped.bottom() {
            let start = (y as u32 * self.width + clipped.x as u32) as usize;
            self.pixels[start..start + clipped.w as usize].fill(c);
        }
        self.damage.add(clipped);
    }

    /// Fills the whole framebuffer.
    pub fn clear(&mut self, c: Color) {
        self.fill_rect(self.bounds(), c);
    }

    /// Copies `src` (clipped) so its top-left lands on `dst` — the
    /// protocol's `CopyRect` primitive. Overlapping copies are safe.
    pub fn copy_rect(&mut self, src: Rect, dst: Point) {
        let Some(src) = src.intersect(self.bounds()) else {
            return;
        };
        let dst_rect = Rect::new(dst.x, dst.y, src.w, src.h);
        let Some(dst_clipped) = dst_rect.intersect(self.bounds()) else {
            return;
        };
        // Re-clip the source to match the destination clip.
        let src = Rect::new(
            src.x + (dst_clipped.x - dst_rect.x),
            src.y + (dst_clipped.y - dst_rect.y),
            dst_clipped.w,
            dst_clipped.h,
        );
        let (_, data) = self.read_rect(src);
        self.write_rect(dst_clipped, &data);
    }

    /// Blits `src_rect` from another framebuffer to `dst` in `self`.
    pub fn blit_from(&mut self, src: &Framebuffer, src_rect: Rect, dst: Point) {
        let (clipped, data) = src.read_rect(src_rect);
        if clipped.is_empty() {
            return;
        }
        self.write_rect(
            Rect::new(
                dst.x + (clipped.x - src_rect.x),
                dst.y + (clipped.y - src_rect.y),
                clipped.w,
                clipped.h,
            ),
            &data,
        );
    }

    /// The accumulated damage region.
    pub fn damage(&self) -> &Region {
        &self.damage
    }

    /// Marks `rect` damaged without touching pixels (used when an external
    /// writer mutates the raster through `write_rect`-free paths).
    pub fn add_damage(&mut self, rect: Rect) {
        if let Some(clipped) = rect.intersect(self.bounds()) {
            self.damage.add(clipped);
        }
    }

    /// Drains and returns the damage accumulated since the last call.
    pub fn take_damage(&mut self) -> Region {
        core::mem::take(&mut self.damage)
    }

    /// Whether any damage is pending.
    pub fn is_damaged(&self) -> bool {
        !self.damage.is_empty()
    }

    /// Computes the region where `self` and `other` differ, as row bands
    /// coalesced into a [`Region`]. Output plug-ins use this to ship only
    /// the device rows that actually changed.
    ///
    /// # Panics
    ///
    /// Panics if the framebuffers have different sizes.
    pub fn diff_region(&self, other: &Framebuffer) -> Region {
        assert_eq!(self.size(), other.size(), "diff requires equal sizes");
        let w = self.width as usize;
        // Scanline runs are disjoint by construction, so the region is
        // assembled directly instead of via `Region::add` — whose
        // per-insert subtract scan goes quadratic on the tens of
        // thousands of runs a dithered-noise diff produces. Runs with
        // identical spans on consecutive rows merge into taller bands.
        let mut rects: Vec<Rect> = Vec::new();
        // Open bands touching the previous row, keyed (x, w) → index.
        let mut prev_open: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for y in 0..self.height {
            let a = self.row(y);
            let b = other.row(y);
            let mut cur_open = std::collections::HashMap::new();
            let mut x = 0usize;
            while x < w {
                if a[x] == b[x] {
                    x += 1;
                    continue;
                }
                let start = x;
                while x < w && a[x] != b[x] {
                    x += 1;
                }
                let key = (start, x - start);
                if let Some(&idx) = prev_open.get(&key) {
                    let r: Rect = rects[idx];
                    if r.bottom() == y as i32 {
                        rects[idx] = Rect::new(r.x, r.y, r.w, r.h + 1);
                        cur_open.insert(key, idx);
                        continue;
                    }
                }
                rects.push(Rect::new(start as i32, y as i32, (x - start) as u32, 1));
                cur_open.insert(key, rects.len() - 1);
            }
            prev_open = cur_open;
        }
        Region::from_disjoint_rects(rects)
    }
}

impl PartialEq for Framebuffer {
    /// Framebuffers compare by size and pixel content; damage bookkeeping
    /// is ignored.
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.height == other.height && self.pixels == other.pixels
    }
}

impl Eq for Framebuffer {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_fully_damaged() {
        let fb = Framebuffer::new(10, 10, Color::BLACK);
        assert_eq!(fb.damage().area(), 100);
        assert_eq!(fb.size(), Size::new(10, 10));
    }

    #[test]
    fn set_and_get_pixel() {
        let mut fb = Framebuffer::new(4, 4, Color::BLACK);
        fb.take_damage();
        fb.set_pixel(Point::new(2, 1), Color::RED);
        assert_eq!(fb.pixel(Point::new(2, 1)), Some(Color::RED));
        assert_eq!(fb.pixel(Point::new(9, 9)), None);
        assert_eq!(fb.damage().bounding_rect(), Rect::new(2, 1, 1, 1));
    }

    #[test]
    fn set_pixel_same_color_no_damage() {
        let mut fb = Framebuffer::new(4, 4, Color::BLACK);
        fb.take_damage();
        fb.set_pixel(Point::new(0, 0), Color::BLACK);
        assert!(!fb.is_damaged());
    }

    #[test]
    fn fill_rect_clips() {
        let mut fb = Framebuffer::new(8, 8, Color::BLACK);
        fb.fill_rect(Rect::new(6, 6, 10, 10), Color::GREEN);
        assert_eq!(fb.pixel(Point::new(7, 7)), Some(Color::GREEN));
        assert_eq!(fb.pixel(Point::new(5, 5)), Some(Color::BLACK));
    }

    #[test]
    fn read_write_rect_roundtrip() {
        let mut fb = Framebuffer::new(8, 8, Color::BLACK);
        fb.fill_rect(Rect::new(2, 2, 3, 3), Color::BLUE);
        let (r, data) = fb.read_rect(Rect::new(2, 2, 3, 3));
        assert_eq!(r, Rect::new(2, 2, 3, 3));
        let mut fb2 = Framebuffer::new(8, 8, Color::BLACK);
        fb2.write_rect(r, &data);
        assert_eq!(fb, fb2);
    }

    #[test]
    fn read_rect_out_of_bounds_clips() {
        let fb = Framebuffer::new(4, 4, Color::WHITE);
        let (r, data) = fb.read_rect(Rect::new(2, 2, 10, 10));
        assert_eq!(r, Rect::new(2, 2, 2, 2));
        assert_eq!(data.len(), 4);
        let (r2, d2) = fb.read_rect(Rect::new(100, 100, 5, 5));
        assert!(r2.is_empty());
        assert!(d2.is_empty());
    }

    #[test]
    fn copy_rect_moves_pixels() {
        let mut fb = Framebuffer::new(8, 8, Color::BLACK);
        fb.fill_rect(Rect::new(0, 0, 2, 2), Color::RED);
        fb.copy_rect(Rect::new(0, 0, 2, 2), Point::new(4, 4));
        assert_eq!(fb.pixel(Point::new(4, 4)), Some(Color::RED));
        assert_eq!(fb.pixel(Point::new(5, 5)), Some(Color::RED));
        assert_eq!(fb.pixel(Point::new(0, 0)), Some(Color::RED), "source kept");
    }

    #[test]
    fn copy_rect_overlapping() {
        let mut fb = Framebuffer::new(8, 1, Color::BLACK);
        for x in 0..4 {
            fb.set_pixel(Point::new(x, 0), Color::rgb(x as u8 + 1, 0, 0));
        }
        fb.copy_rect(Rect::new(0, 0, 4, 1), Point::new(2, 0));
        assert_eq!(fb.pixel(Point::new(2, 0)), Some(Color::rgb(1, 0, 0)));
        assert_eq!(fb.pixel(Point::new(5, 0)), Some(Color::rgb(4, 0, 0)));
    }

    #[test]
    fn blit_from_other() {
        let mut src = Framebuffer::new(4, 4, Color::CYAN);
        src.fill_rect(Rect::new(0, 0, 2, 2), Color::MAGENTA);
        let mut dst = Framebuffer::new(8, 8, Color::BLACK);
        dst.blit_from(&src, src.bounds(), Point::new(1, 1));
        assert_eq!(dst.pixel(Point::new(1, 1)), Some(Color::MAGENTA));
        assert_eq!(dst.pixel(Point::new(4, 4)), Some(Color::CYAN));
        assert_eq!(dst.pixel(Point::new(0, 0)), Some(Color::BLACK));
    }

    #[test]
    fn take_damage_resets() {
        let mut fb = Framebuffer::new(4, 4, Color::BLACK);
        let d = fb.take_damage();
        assert_eq!(d.area(), 16);
        assert!(!fb.is_damaged());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_panics() {
        Framebuffer::new(0, 10, Color::BLACK);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_rect_bad_len_panics() {
        let mut fb = Framebuffer::new(4, 4, Color::BLACK);
        fb.write_rect(Rect::new(0, 0, 2, 2), &[Color::RED]);
    }
}

#[cfg(test)]
mod diff_tests {
    use super::*;

    #[test]
    fn identical_frames_diff_empty() {
        let a = Framebuffer::new(8, 8, Color::GRAY);
        let b = a.clone();
        assert!(a.diff_region(&b).is_empty());
    }

    #[test]
    fn single_pixel_diff() {
        let a = Framebuffer::new(8, 8, Color::GRAY);
        let mut b = a.clone();
        b.set_pixel(Point::new(3, 5), Color::RED);
        let d = a.diff_region(&b);
        assert_eq!(d.area(), 1);
        assert!(d.contains(Point::new(3, 5)));
    }

    #[test]
    fn horizontal_runs_coalesce() {
        let a = Framebuffer::new(16, 4, Color::BLACK);
        let mut b = a.clone();
        b.fill_rect(Rect::new(2, 1, 10, 2), Color::WHITE);
        let d = a.diff_region(&b);
        assert_eq!(d.area(), 20);
        assert_eq!(d.bounding_rect(), Rect::new(2, 1, 10, 2));
        // Vertical merging keeps the representation compact.
        assert!(d.rect_count() <= 2, "{}", d.rect_count());
    }

    #[test]
    fn diff_is_symmetric_in_coverage() {
        let a = Framebuffer::new(10, 10, Color::BLACK);
        let mut b = a.clone();
        b.fill_rect(Rect::new(0, 0, 3, 3), Color::BLUE);
        b.fill_rect(Rect::new(7, 7, 3, 3), Color::RED);
        let d1 = a.diff_region(&b);
        let d2 = b.diff_region(&a);
        assert_eq!(d1.area(), d2.area());
        assert_eq!(d1.bounding_rect(), d2.bounding_rect());
    }

    #[test]
    fn vertically_aligned_runs_merge_into_bands() {
        // Same columns differ on every row → one tall band per column.
        let a = Framebuffer::new(8, 6, Color::BLACK);
        let mut b = a.clone();
        for y in 0..6 {
            b.set_pixel(Point::new(2, y), Color::RED);
            b.set_pixel(Point::new(5, y), Color::RED);
        }
        let d = a.diff_region(&b);
        assert_eq!(d.area(), 12);
        assert_eq!(d.rect_count(), 2, "{:?}", d.rects());
    }

    #[test]
    fn dense_noise_diff_stays_linear() {
        // A dithered-noise diff: every other pixel differs, offset by row
        // parity so no vertical merging applies — ~21k one-pixel runs.
        // This once went through `Region::add`, whose quadratic insert
        // (plus cubic coalesce) made a 240×180 diff effectively hang;
        // the scanline builder must handle it instantly and exactly.
        let (w, h) = (240u32, 180u32);
        let a = Framebuffer::new(w, h, Color::BLACK);
        let mut b = a.clone();
        for y in 0..h as i32 {
            let mut x = y % 2;
            while x < w as i32 {
                b.set_pixel(Point::new(x, y), Color::WHITE);
                x += 2;
            }
        }
        let d = a.diff_region(&b);
        assert_eq!(d.area(), (w as u64 * h as u64).div_ceil(2));
        for p in [Point::new(0, 0), Point::new(239, 179)] {
            assert_eq!(d.contains(p), a.pixel(p) != b.pixel(p), "pixel {p}");
        }
    }

    #[test]
    #[should_panic(expected = "equal sizes")]
    fn size_mismatch_panics() {
        let a = Framebuffer::new(4, 4, Color::BLACK);
        let b = Framebuffer::new(5, 4, Color::BLACK);
        let _ = a.diff_region(&b);
    }
}
