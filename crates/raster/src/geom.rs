//! Integer geometry primitives used throughout the workspace.
//!
//! All coordinates are in pixels. Rectangles are half-open: a [`Rect`]
//! covers `x..x+w` by `y..y+h`.

use serde::{Deserialize, Serialize};

/// A point in pixel coordinates.
///
/// ```
/// use uniint_raster::geom::Point;
/// let p = Point::new(3, 4) + Point::new(1, 1);
/// assert_eq!(p, Point::new(4, 5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate, growing rightwards.
    pub x: i32,
    /// Vertical coordinate, growing downwards.
    pub y: i32,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Component-wise offset.
    pub const fn offset(self, dx: i32, dy: i32) -> Self {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Squared Euclidean distance to `other` (avoids floats).
    pub fn dist2(self, other: Point) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        dx * dx + dy * dy
    }
}

impl core::ops::Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl core::ops::Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl core::fmt::Display for Point {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

/// A size in pixels.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Size {
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Size {
    /// Zero-area size.
    pub const ZERO: Size = Size { w: 0, h: 0 };

    /// Creates a size.
    pub const fn new(w: u32, h: u32) -> Self {
        Size { w, h }
    }

    /// Number of pixels covered (`w * h`).
    pub const fn area(self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// True when either dimension is zero.
    pub const fn is_empty(self) -> bool {
        self.w == 0 || self.h == 0
    }
}

impl core::fmt::Display for Size {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}", self.w, self.h)
    }
}

impl From<(u32, u32)> for Size {
    fn from((w, h): (u32, u32)) -> Self {
        Size::new(w, h)
    }
}

/// An axis-aligned rectangle, half-open on the right and bottom edges.
///
/// ```
/// use uniint_raster::geom::Rect;
/// let a = Rect::new(0, 0, 10, 10);
/// let b = Rect::new(5, 5, 10, 10);
/// assert_eq!(a.intersect(b), Some(Rect::new(5, 5, 5, 5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// The empty rectangle at the origin.
    pub const EMPTY: Rect = Rect {
        x: 0,
        y: 0,
        w: 0,
        h: 0,
    };

    /// Creates a rectangle from its top-left corner and size.
    pub const fn new(x: i32, y: i32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// Creates a rectangle from a [`Point`] and [`Size`].
    pub const fn from_origin_size(origin: Point, size: Size) -> Self {
        Rect::new(origin.x, origin.y, size.w, size.h)
    }

    /// Creates a rectangle spanning two corner points (any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        let x0 = a.x.min(b.x);
        let y0 = a.y.min(b.y);
        let x1 = a.x.max(b.x);
        let y1 = a.y.max(b.y);
        Rect::new(x0, y0, (x1 - x0) as u32, (y1 - y0) as u32)
    }

    /// Top-left corner.
    pub const fn origin(self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Extent of the rectangle.
    pub const fn size(self) -> Size {
        Size::new(self.w, self.h)
    }

    /// Exclusive right edge.
    pub const fn right(self) -> i32 {
        self.x + self.w as i32
    }

    /// Exclusive bottom edge.
    pub const fn bottom(self) -> i32 {
        self.y + self.h as i32
    }

    /// Number of pixels covered.
    pub const fn area(self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// True when the rectangle covers no pixels.
    pub const fn is_empty(self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Whether `p` lies inside the rectangle.
    pub const fn contains(self, p: Point) -> bool {
        p.x >= self.x && p.y >= self.y && p.x < self.right() && p.y < self.bottom()
    }

    /// Whether `other` lies entirely inside `self`. An empty `other` is
    /// contained by everything.
    pub fn contains_rect(self, other: Rect) -> bool {
        other.is_empty()
            || (other.x >= self.x
                && other.y >= self.y
                && other.right() <= self.right()
                && other.bottom() <= self.bottom())
    }

    /// Whether the two rectangles share at least one pixel.
    pub fn intersects(self, other: Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }

    /// The overlapping area, if any.
    pub fn intersect(self, other: Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let r = self.right().min(other.right());
        let b = self.bottom().min(other.bottom());
        Some(Rect::new(x, y, (r - x) as u32, (b - y) as u32))
    }

    /// Smallest rectangle covering both inputs. Empty inputs are ignored.
    pub fn union(self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let r = self.right().max(other.right());
        let b = self.bottom().max(other.bottom());
        Rect::new(x, y, (r - x) as u32, (b - y) as u32)
    }

    /// Translates the rectangle by `(dx, dy)`.
    pub const fn translate(self, dx: i32, dy: i32) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Shrinks the rectangle by `margin` on every side; returns `EMPTY`
    /// when the margin consumes it entirely.
    pub fn inset(self, margin: i32) -> Rect {
        let w = self.w as i64 - 2 * margin as i64;
        let h = self.h as i64 - 2 * margin as i64;
        if w <= 0 || h <= 0 {
            return Rect::EMPTY;
        }
        Rect::new(self.x + margin, self.y + margin, w as u32, h as u32)
    }

    /// Grows the rectangle by `margin` on every side.
    pub fn outset(self, margin: u32) -> Rect {
        Rect::new(
            self.x - margin as i32,
            self.y - margin as i32,
            self.w + 2 * margin,
            self.h + 2 * margin,
        )
    }

    /// Center point (rounded towards the top-left).
    pub const fn center(self) -> Point {
        Point::new(self.x + (self.w / 2) as i32, self.y + (self.h / 2) as i32)
    }

    /// Clamps a point to lie within the rectangle (closest interior pixel).
    /// Returns the origin for an empty rectangle.
    pub fn clamp_point(self, p: Point) -> Point {
        if self.is_empty() {
            return self.origin();
        }
        Point::new(
            p.x.clamp(self.x, self.right() - 1),
            p.y.clamp(self.y, self.bottom() - 1),
        )
    }

    /// Iterates over every pixel `(x, y)` in row-major order.
    pub fn pixels(self) -> impl Iterator<Item = Point> {
        let (x0, y0, r, b) = (self.x, self.y, self.right(), self.bottom());
        (y0..b).flat_map(move |y| (x0..r).map(move |x| Point::new(x, y)))
    }
}

impl core::fmt::Display for Rect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}+{}+{}", self.w, self.h, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        assert_eq!(Point::new(1, 2) + Point::new(3, 4), Point::new(4, 6));
        assert_eq!(Point::new(5, 5) - Point::new(2, 3), Point::new(3, 2));
        assert_eq!(Point::new(0, 0).dist2(Point::new(3, 4)), 25);
    }

    #[test]
    fn rect_edges_and_area() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.right(), 6);
        assert_eq!(r.bottom(), 8);
        assert_eq!(r.area(), 20);
        assert!(!r.is_empty());
        assert!(Rect::new(1, 1, 0, 5).is_empty());
    }

    #[test]
    fn rect_contains_point() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(9, 9)));
        assert!(!r.contains(Point::new(10, 9)));
        assert!(!r.contains(Point::new(-1, 5)));
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(b), Some(Rect::new(5, 5, 5, 5)));
        let c = Rect::new(10, 0, 5, 5);
        assert_eq!(a.intersect(c), None, "touching edges do not overlap");
        assert!(a.intersect(Rect::EMPTY).is_none());
    }

    #[test]
    fn rect_union_ignores_empty() {
        let a = Rect::new(0, 0, 4, 4);
        assert_eq!(a.union(Rect::EMPTY), a);
        assert_eq!(Rect::EMPTY.union(a), a);
        assert_eq!(a.union(Rect::new(8, 8, 2, 2)), Rect::new(0, 0, 10, 10));
    }

    #[test]
    fn rect_inset_outset() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.inset(2), Rect::new(2, 2, 6, 6));
        assert_eq!(r.inset(5), Rect::EMPTY);
        assert_eq!(r.inset(9), Rect::EMPTY);
        assert_eq!(r.outset(1), Rect::new(-1, -1, 12, 12));
    }

    #[test]
    fn rect_contains_rect() {
        let big = Rect::new(0, 0, 10, 10);
        assert!(big.contains_rect(Rect::new(2, 2, 3, 3)));
        assert!(big.contains_rect(Rect::EMPTY));
        assert!(!big.contains_rect(Rect::new(8, 8, 4, 4)));
    }

    #[test]
    fn rect_from_corners_any_order() {
        let r = Rect::from_corners(Point::new(5, 7), Point::new(1, 2));
        assert_eq!(r, Rect::new(1, 2, 4, 5));
    }

    #[test]
    fn rect_clamp_point() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.clamp_point(Point::new(-5, 20)), Point::new(0, 9));
        assert_eq!(r.clamp_point(Point::new(3, 3)), Point::new(3, 3));
    }

    #[test]
    fn rect_pixel_iteration() {
        let r = Rect::new(1, 1, 2, 2);
        let pts: Vec<_> = r.pixels().collect();
        assert_eq!(
            pts,
            vec![
                Point::new(1, 1),
                Point::new(2, 1),
                Point::new(1, 2),
                Point::new(2, 2)
            ]
        );
    }

    #[test]
    fn rect_center() {
        assert_eq!(Rect::new(0, 0, 10, 10).center(), Point::new(5, 5));
        assert_eq!(Rect::new(2, 2, 3, 3).center(), Point::new(3, 3));
    }
}
