//! # uniint-raster
//!
//! Raster substrate for the *universal interaction* reproduction: geometry,
//! regions, colors, pixel formats, a damage-tracking software framebuffer,
//! drawing primitives with an embedded 5×7 font, scaling filters, and
//! quantization/dithering.
//!
//! In the paper's architecture the **output** half of the universal
//! interaction protocol is "bitmap images"; everything in this crate exists
//! to produce, transport, and adapt those bitmaps:
//!
//! - the window system (`uniint-wsys`) draws widgets through [`draw::Canvas`]
//!   into a [`framebuffer::Framebuffer`], which tracks damage as a
//!   [`region::Region`];
//! - the UniInt server encodes damaged rectangles with the pixel packing in
//!   [`pixel`];
//! - the UniInt proxy's output plug-ins adapt frames to each device with
//!   [`scale`] and [`dither`].
//!
//! ```
//! use uniint_raster::prelude::*;
//! let mut fb = Framebuffer::new(320, 240, Color::LIGHT_GRAY);
//! Canvas::new(&mut fb).text_centered(Rect::new(0, 0, 320, 20), "TV Control", Color::BLACK);
//! let pda = scale(&fb, Size::new(160, 120), ScaleFilter::Box);
//! let lcd = dither_to_format(&pda, PixelFormat::Mono1, DitherMode::FloydSteinberg);
//! assert_eq!(lcd.size(), Size::new(160, 120));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod color;
pub mod dither;
pub mod draw;
pub mod font;
pub mod framebuffer;
pub mod geom;
pub mod pixel;
pub mod region;
pub mod scale;

/// Convenient re-exports of the most used raster types.
pub mod prelude {
    pub use crate::color::{Color, Palette};
    pub use crate::dither::{dither_to_format, dither_to_palette, DitherMode};
    pub use crate::draw::Canvas;
    pub use crate::framebuffer::Framebuffer;
    pub use crate::geom::{Point, Rect, Size};
    pub use crate::pixel::PixelFormat;
    pub use crate::region::Region;
    pub use crate::scale::{scale, scale_to_fit, ScaleFilter};
}
