//! Drawing primitives over a [`Framebuffer`]: lines, rectangles, bevels,
//! circles and bitmap text. This is the rendering back-end the widget
//! toolkit uses.

use crate::color::Color;
use crate::font;
use crate::framebuffer::Framebuffer;
use crate::geom::{Point, Rect};

/// A borrowed drawing context with an optional clip rectangle.
///
/// ```
/// use uniint_raster::color::Color;
/// use uniint_raster::draw::Canvas;
/// use uniint_raster::framebuffer::Framebuffer;
/// use uniint_raster::geom::{Point, Rect};
/// let mut fb = Framebuffer::new(32, 32, Color::BLACK);
/// let mut canvas = Canvas::new(&mut fb);
/// canvas.fill_rect(Rect::new(0, 0, 16, 16), Color::RED);
/// canvas.text(Point::new(1, 20), "ok", Color::WHITE);
/// ```
#[derive(Debug)]
pub struct Canvas<'a> {
    fb: &'a mut Framebuffer,
    clip: Rect,
}

impl<'a> Canvas<'a> {
    /// Creates a canvas covering the whole framebuffer.
    pub fn new(fb: &'a mut Framebuffer) -> Canvas<'a> {
        let clip = fb.bounds();
        Canvas { fb, clip }
    }

    /// Creates a canvas restricted to `clip` (intersected with bounds).
    pub fn with_clip(fb: &'a mut Framebuffer, clip: Rect) -> Canvas<'a> {
        let clip = clip.intersect(fb.bounds()).unwrap_or(Rect::EMPTY);
        Canvas { fb, clip }
    }

    /// The current clip rectangle.
    pub fn clip(&self) -> Rect {
        self.clip
    }

    /// Further restricts the clip for the duration of `f`.
    pub fn clipped<R>(&mut self, clip: Rect, f: impl FnOnce(&mut Canvas<'_>) -> R) -> R {
        let inner_clip = self.clip.intersect(clip).unwrap_or(Rect::EMPTY);
        let mut inner = Canvas {
            fb: self.fb,
            clip: inner_clip,
        };
        f(&mut inner)
    }

    /// Sets one pixel, honoring the clip.
    pub fn pixel(&mut self, p: Point, c: Color) {
        if self.clip.contains(p) {
            self.fb.set_pixel(p, c);
        }
    }

    /// Fills a rectangle, honoring the clip.
    pub fn fill_rect(&mut self, rect: Rect, c: Color) {
        if let Some(r) = rect.intersect(self.clip) {
            self.fb.fill_rect(r, c);
        }
    }

    /// Draws a 1-pixel rectangle outline.
    pub fn stroke_rect(&mut self, rect: Rect, c: Color) {
        if rect.is_empty() {
            return;
        }
        self.hline(rect.y, rect.x, rect.right(), c);
        self.hline(rect.bottom() - 1, rect.x, rect.right(), c);
        self.vline(rect.x, rect.y, rect.bottom(), c);
        self.vline(rect.right() - 1, rect.y, rect.bottom(), c);
    }

    /// Horizontal line on row `y` covering `x0..x1`.
    pub fn hline(&mut self, y: i32, x0: i32, x1: i32, c: Color) {
        let (x0, x1) = (x0.min(x1), x0.max(x1));
        self.fill_rect(Rect::new(x0, y, (x1 - x0) as u32, 1), c);
    }

    /// Vertical line on column `x` covering `y0..y1`.
    pub fn vline(&mut self, x: i32, y0: i32, y1: i32, c: Color) {
        let (y0, y1) = (y0.min(y1), y0.max(y1));
        self.fill_rect(Rect::new(x, y0, 1, (y1 - y0) as u32), c);
    }

    /// Bresenham line between two points.
    pub fn line(&mut self, a: Point, b: Point, c: Color) {
        let (mut x0, mut y0) = (a.x, a.y);
        let (x1, y1) = (b.x, b.y);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.pixel(Point::new(x0, y0), c);
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }

    /// A classic raised/sunken 3-D bevel around `rect`, as every 2002-era
    /// toolkit drew buttons. `raised = false` draws the pressed look.
    pub fn bevel(&mut self, rect: Rect, base: Color, raised: bool) {
        if rect.is_empty() {
            return;
        }
        let (tl, br) = if raised {
            (base.lighten(), base.darken())
        } else {
            (base.darken(), base.lighten())
        };
        self.hline(rect.y, rect.x, rect.right(), tl);
        self.vline(rect.x, rect.y, rect.bottom(), tl);
        self.hline(rect.bottom() - 1, rect.x, rect.right(), br);
        self.vline(rect.right() - 1, rect.y, rect.bottom(), br);
    }

    /// Midpoint circle outline.
    pub fn circle(&mut self, center: Point, radius: i32, c: Color) {
        if radius < 0 {
            return;
        }
        let mut x = radius;
        let mut y = 0;
        let mut err = 1 - radius;
        while x >= y {
            for (px, py) in [
                (x, y),
                (y, x),
                (-y, x),
                (-x, y),
                (-x, -y),
                (-y, -x),
                (y, -x),
                (x, -y),
            ] {
                self.pixel(Point::new(center.x + px, center.y + py), c);
            }
            y += 1;
            if err < 0 {
                err += 2 * y + 1;
            } else {
                x -= 1;
                err += 2 * (y - x) + 1;
            }
        }
    }

    /// Filled circle.
    pub fn fill_circle(&mut self, center: Point, radius: i32, c: Color) {
        if radius < 0 {
            return;
        }
        let r2 = (radius as i64) * (radius as i64);
        for dy in -radius..=radius {
            let half = ((r2 - (dy as i64 * dy as i64)) as f64).sqrt() as i32;
            self.hline(center.y + dy, center.x - half, center.x + half + 1, c);
        }
    }

    /// Renders one line of text with the embedded 5×7 font; `origin` is the
    /// top-left of the first glyph cell. Returns the advance width.
    pub fn text(&mut self, origin: Point, text: &str, c: Color) -> u32 {
        let mut x = origin.x;
        for ch in text.chars() {
            for col in 0..font::GLYPH_WIDTH {
                for row in 0..font::GLYPH_HEIGHT {
                    if font::glyph_pixel(ch, col, row) {
                        self.pixel(Point::new(x + col as i32, origin.y + row as i32), c);
                    }
                }
            }
            x += font::ADVANCE as i32;
        }
        (x - origin.x) as u32
    }

    /// Renders `text` centered inside `rect`.
    pub fn text_centered(&mut self, rect: Rect, text: &str, c: Color) {
        let tw = font::text_width(text);
        let x = rect.x + ((rect.w as i32 - tw as i32) / 2).max(0);
        let y = rect.y + ((rect.h as i32 - font::GLYPH_HEIGHT as i32) / 2).max(0);
        self.clipped(rect, |canvas| {
            canvas.text(Point::new(x, y), text, c);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_color(fb: &Framebuffer, c: Color) -> usize {
        fb.pixels().iter().filter(|&&p| p == c).count()
    }

    #[test]
    fn fill_respects_clip() {
        let mut fb = Framebuffer::new(16, 16, Color::BLACK);
        let mut canvas = Canvas::with_clip(&mut fb, Rect::new(0, 0, 4, 4));
        canvas.fill_rect(Rect::new(0, 0, 16, 16), Color::RED);
        assert_eq!(count_color(&fb, Color::RED), 16);
    }

    #[test]
    fn nested_clip_intersects() {
        let mut fb = Framebuffer::new(16, 16, Color::BLACK);
        let mut canvas = Canvas::with_clip(&mut fb, Rect::new(0, 0, 8, 8));
        canvas.clipped(Rect::new(4, 4, 8, 8), |inner| {
            inner.fill_rect(Rect::new(0, 0, 16, 16), Color::GREEN);
        });
        assert_eq!(count_color(&fb, Color::GREEN), 16);
    }

    #[test]
    fn hline_vline() {
        let mut fb = Framebuffer::new(8, 8, Color::BLACK);
        let mut canvas = Canvas::new(&mut fb);
        canvas.hline(2, 0, 8, Color::WHITE);
        canvas.vline(3, 0, 8, Color::RED);
        assert_eq!(fb.pixel(Point::new(5, 2)), Some(Color::WHITE));
        assert_eq!(fb.pixel(Point::new(3, 5)), Some(Color::RED));
        assert_eq!(
            fb.pixel(Point::new(3, 2)),
            Some(Color::RED),
            "vline drawn after"
        );
    }

    #[test]
    fn line_endpoints_drawn() {
        let mut fb = Framebuffer::new(16, 16, Color::BLACK);
        let mut canvas = Canvas::new(&mut fb);
        canvas.line(Point::new(1, 1), Point::new(12, 9), Color::CYAN);
        assert_eq!(fb.pixel(Point::new(1, 1)), Some(Color::CYAN));
        assert_eq!(fb.pixel(Point::new(12, 9)), Some(Color::CYAN));
    }

    #[test]
    fn stroke_rect_outline_only() {
        let mut fb = Framebuffer::new(8, 8, Color::BLACK);
        let mut canvas = Canvas::new(&mut fb);
        canvas.stroke_rect(Rect::new(1, 1, 5, 5), Color::WHITE);
        assert_eq!(fb.pixel(Point::new(1, 1)), Some(Color::WHITE));
        assert_eq!(fb.pixel(Point::new(3, 3)), Some(Color::BLACK));
        assert_eq!(fb.pixel(Point::new(5, 5)), Some(Color::WHITE));
    }

    #[test]
    fn bevel_raised_vs_sunken() {
        let mut fb = Framebuffer::new(8, 8, Color::GRAY);
        let mut canvas = Canvas::new(&mut fb);
        canvas.bevel(Rect::new(0, 0, 8, 8), Color::GRAY, true);
        let top = fb.pixel(Point::new(3, 0)).unwrap();
        let bottom = fb.pixel(Point::new(3, 7)).unwrap();
        assert!(top.luma() > bottom.luma(), "raised: light on top");
        let mut fb2 = Framebuffer::new(8, 8, Color::GRAY);
        let mut canvas2 = Canvas::new(&mut fb2);
        canvas2.bevel(Rect::new(0, 0, 8, 8), Color::GRAY, false);
        let top2 = fb2.pixel(Point::new(3, 0)).unwrap();
        assert!(top2.luma() < top.luma(), "sunken: dark on top");
    }

    #[test]
    fn text_renders_ink() {
        let mut fb = Framebuffer::new(40, 12, Color::BLACK);
        let mut canvas = Canvas::new(&mut fb);
        let adv = canvas.text(Point::new(0, 0), "Hi", Color::WHITE);
        assert_eq!(adv, 12);
        assert!(count_color(&fb, Color::WHITE) > 5);
    }

    #[test]
    fn text_centered_stays_in_rect() {
        let mut fb = Framebuffer::new(40, 20, Color::BLACK);
        let rect = Rect::new(5, 5, 30, 12);
        let mut canvas = Canvas::new(&mut fb);
        canvas.text_centered(rect, "ab", Color::WHITE);
        for (i, &px) in fb.pixels().iter().enumerate() {
            if px == Color::WHITE {
                let p = Point::new((i % 40) as i32, (i / 40) as i32);
                assert!(rect.contains(p), "ink outside rect at {p}");
            }
        }
    }

    #[test]
    fn circle_and_fill_circle() {
        let mut fb = Framebuffer::new(21, 21, Color::BLACK);
        let mut canvas = Canvas::new(&mut fb);
        canvas.fill_circle(Point::new(10, 10), 5, Color::RED);
        assert_eq!(fb.pixel(Point::new(10, 10)), Some(Color::RED));
        assert_eq!(fb.pixel(Point::new(10, 5)), Some(Color::RED));
        assert_eq!(fb.pixel(Point::new(0, 0)), Some(Color::BLACK));
        canvas = Canvas::new(&mut fb);
        canvas.circle(Point::new(10, 10), 8, Color::WHITE);
        assert_eq!(fb.pixel(Point::new(18, 10)), Some(Color::WHITE));
    }

    #[test]
    fn negative_radius_ignored() {
        let mut fb = Framebuffer::new(8, 8, Color::BLACK);
        let mut canvas = Canvas::new(&mut fb);
        canvas.circle(Point::new(4, 4), -1, Color::WHITE);
        canvas.fill_circle(Point::new(4, 4), -1, Color::WHITE);
        assert_eq!(count_color(&fb, Color::WHITE), 0);
    }
}
