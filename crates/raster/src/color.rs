//! Colors and palettes.
//!
//! The canonical in-memory color is 24-bit RGB ([`Color`]). Output devices
//! with shallower displays (PDA, phone LCD, terminal) get their pixels via
//! the palettes and pixel formats in this crate.

use serde::{Deserialize, Serialize};

/// A 24-bit RGB color.
///
/// ```
/// use uniint_raster::color::Color;
/// let c = Color::rgb(0x12, 0x34, 0x56);
/// assert_eq!(c.to_u32(), 0x123456);
/// assert_eq!(Color::from_u32(0x123456), c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Pure black.
    pub const BLACK: Color = Color::rgb(0, 0, 0);
    /// Pure white.
    pub const WHITE: Color = Color::rgb(255, 255, 255);
    /// Pure red.
    pub const RED: Color = Color::rgb(255, 0, 0);
    /// Pure green.
    pub const GREEN: Color = Color::rgb(0, 255, 0);
    /// Pure blue.
    pub const BLUE: Color = Color::rgb(0, 0, 255);
    /// Mid gray.
    pub const GRAY: Color = Color::rgb(128, 128, 128);
    /// Light gray (classic toolkit chrome).
    pub const LIGHT_GRAY: Color = Color::rgb(200, 200, 200);
    /// Dark gray.
    pub const DARK_GRAY: Color = Color::rgb(64, 64, 64);
    /// Yellow.
    pub const YELLOW: Color = Color::rgb(255, 255, 0);
    /// Cyan.
    pub const CYAN: Color = Color::rgb(0, 255, 255);
    /// Magenta.
    pub const MAGENTA: Color = Color::rgb(255, 0, 255);

    /// Creates a color from channel values.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b }
    }

    /// Creates a gray level.
    pub const fn gray(v: u8) -> Color {
        Color::rgb(v, v, v)
    }

    /// Packs to `0x00RRGGBB`.
    pub const fn to_u32(self) -> u32 {
        ((self.r as u32) << 16) | ((self.g as u32) << 8) | self.b as u32
    }

    /// Unpacks from `0x00RRGGBB`.
    pub const fn from_u32(v: u32) -> Color {
        Color::rgb((v >> 16) as u8, (v >> 8) as u8, v as u8)
    }

    /// ITU-R BT.601 luma, `0..=255`.
    pub fn luma(self) -> u8 {
        // Fixed-point 0.299 R + 0.587 G + 0.114 B.
        ((self.r as u32 * 77 + self.g as u32 * 150 + self.b as u32 * 29) >> 8) as u8
    }

    /// Squared Euclidean distance in RGB space.
    pub fn dist2(self, other: Color) -> u32 {
        let dr = self.r as i32 - other.r as i32;
        let dg = self.g as i32 - other.g as i32;
        let db = self.b as i32 - other.b as i32;
        (dr * dr + dg * dg + db * db) as u32
    }

    /// Linear interpolation between two colors; `t` in `0..=256` where 0 is
    /// `self` and 256 is `other`.
    pub fn lerp(self, other: Color, t: u32) -> Color {
        let t = t.min(256);
        let mix = |a: u8, b: u8| -> u8 { ((a as u32 * (256 - t) + b as u32 * t) >> 8) as u8 };
        Color::rgb(
            mix(self.r, other.r),
            mix(self.g, other.g),
            mix(self.b, other.b),
        )
    }

    /// A lighter version of the color (for bevel highlights).
    pub fn lighten(self) -> Color {
        self.lerp(Color::WHITE, 96)
    }

    /// A darker version of the color (for bevel shadows).
    pub fn darken(self) -> Color {
        self.lerp(Color::BLACK, 96)
    }
}

impl core::fmt::Display for Color {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

impl From<u32> for Color {
    fn from(v: u32) -> Self {
        Color::from_u32(v)
    }
}

impl From<Color> for u32 {
    fn from(c: Color) -> Self {
        c.to_u32()
    }
}

/// An indexed palette of colors, used for shallow output devices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Palette {
    entries: Vec<Color>,
}

impl Palette {
    /// Creates a palette from explicit entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or holds more than 256 colors.
    pub fn new(entries: Vec<Color>) -> Palette {
        assert!(
            !entries.is_empty() && entries.len() <= 256,
            "palette must hold 1..=256 colors"
        );
        Palette { entries }
    }

    /// Black-and-white palette (1-bit displays).
    pub fn mono() -> Palette {
        Palette::new(vec![Color::BLACK, Color::WHITE])
    }

    /// `n`-level grayscale ramp.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > 256`.
    pub fn grayscale(n: usize) -> Palette {
        assert!((2..=256).contains(&n), "grayscale needs 2..=256 levels");
        let entries = (0..n)
            .map(|i| Color::gray((i * 255 / (n - 1)) as u8))
            .collect();
        Palette::new(entries)
    }

    /// The 16-color EGA/VGA palette, typical of early PDA screens.
    pub fn vga16() -> Palette {
        Palette::new(vec![
            Color::rgb(0, 0, 0),
            Color::rgb(128, 0, 0),
            Color::rgb(0, 128, 0),
            Color::rgb(128, 128, 0),
            Color::rgb(0, 0, 128),
            Color::rgb(128, 0, 128),
            Color::rgb(0, 128, 128),
            Color::rgb(192, 192, 192),
            Color::rgb(128, 128, 128),
            Color::rgb(255, 0, 0),
            Color::rgb(0, 255, 0),
            Color::rgb(255, 255, 0),
            Color::rgb(0, 0, 255),
            Color::rgb(255, 0, 255),
            Color::rgb(0, 255, 255),
            Color::rgb(255, 255, 255),
        ])
    }

    /// The 216-color "web-safe" cube (6 levels per channel).
    pub fn websafe() -> Palette {
        let mut entries = Vec::with_capacity(216);
        for r in 0..6 {
            for g in 0..6 {
                for b in 0..6 {
                    entries.push(Color::rgb(r * 51, g * 51, b * 51));
                }
            }
        }
        Palette::new(entries)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: palettes hold at least one entry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The palette entries.
    pub fn colors(&self) -> &[Color] {
        &self.entries
    }

    /// Color at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn color(&self, index: u8) -> Color {
        self.entries[index as usize]
    }

    /// Index of the entry closest (RGB distance) to `c`.
    pub fn nearest(&self, c: Color) -> u8 {
        let mut best = 0usize;
        let mut best_d = u32::MAX;
        for (i, &e) in self.entries.iter().enumerate() {
            let d = c.dist2(e);
            if d < best_d {
                best_d = d;
                best = i;
                if d == 0 {
                    break;
                }
            }
        }
        best as u8
    }

    /// Quantizes `c` to the nearest palette color.
    pub fn quantize(&self, c: Color) -> Color {
        self.color(self.nearest(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for v in [0u32, 0xffffff, 0x123456, 0x00ff00] {
            assert_eq!(Color::from_u32(v).to_u32(), v);
        }
    }

    #[test]
    fn luma_extremes() {
        assert_eq!(Color::BLACK.luma(), 0);
        assert!(Color::WHITE.luma() >= 254);
        assert!(Color::GREEN.luma() > Color::BLUE.luma());
    }

    #[test]
    fn lerp_endpoints() {
        let a = Color::rgb(10, 20, 30);
        let b = Color::rgb(200, 100, 50);
        assert_eq!(a.lerp(b, 0), a);
        assert_eq!(a.lerp(b, 256), b);
        let mid = a.lerp(b, 128);
        assert!(mid.r > a.r && mid.r < b.r);
    }

    #[test]
    fn lighten_darken_move_towards_extremes() {
        let c = Color::rgb(100, 100, 100);
        assert!(c.lighten().r > c.r);
        assert!(c.darken().r < c.r);
    }

    #[test]
    fn mono_palette_nearest() {
        let p = Palette::mono();
        assert_eq!(p.nearest(Color::rgb(10, 10, 10)), 0);
        assert_eq!(p.nearest(Color::rgb(250, 250, 250)), 1);
    }

    #[test]
    fn grayscale_palette_is_ramp() {
        let p = Palette::grayscale(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.color(0), Color::BLACK);
        assert_eq!(p.color(3), Color::WHITE);
        let c1 = p.color(1);
        let c2 = p.color(2);
        assert!(c1.r < c2.r);
    }

    #[test]
    fn vga16_and_websafe_sizes() {
        assert_eq!(Palette::vga16().len(), 16);
        assert_eq!(Palette::websafe().len(), 216);
    }

    #[test]
    fn websafe_quantize_is_idempotent() {
        let p = Palette::websafe();
        let q = p.quantize(Color::rgb(123, 45, 67));
        assert_eq!(p.quantize(q), q);
    }

    #[test]
    fn nearest_exact_match() {
        let p = Palette::vga16();
        for (i, &c) in p.colors().iter().enumerate() {
            assert_eq!(p.nearest(c) as usize, i);
        }
    }

    #[test]
    #[should_panic(expected = "palette must hold")]
    fn empty_palette_panics() {
        Palette::new(vec![]);
    }
}
