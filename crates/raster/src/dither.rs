//! Color quantization and dithering.
//!
//! Shallow output devices (4-bit PDA panels, 1-bit phone LCDs) cannot show
//! 24-bit pixels; the UniInt output plug-ins quantize frames to the device
//! palette, optionally with error-diffusion or ordered dithering so GUI
//! gradients and images stay legible.

use crate::color::{Color, Palette};
use crate::framebuffer::Framebuffer;
use crate::pixel::PixelFormat;
use serde::{Deserialize, Serialize};

/// Dithering algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DitherMode {
    /// Straight nearest-color quantization.
    #[default]
    None,
    /// Floyd–Steinberg error diffusion (serpentine-free, row major).
    FloydSteinberg,
    /// Ordered dithering with a 4×4 Bayer matrix.
    Ordered4x4,
}

impl core::fmt::Display for DitherMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            DitherMode::None => "none",
            DitherMode::FloydSteinberg => "floyd-steinberg",
            DitherMode::Ordered4x4 => "ordered4x4",
        };
        f.write_str(s)
    }
}

/// 4×4 Bayer threshold matrix, values `0..16`.
const BAYER4: [[i32; 4]; 4] = [[0, 8, 2, 10], [12, 4, 14, 6], [3, 11, 1, 9], [15, 7, 13, 5]];

/// Quantizes every pixel of `src` to `palette`, applying `mode`.
/// Returns a new framebuffer whose pixels are all palette colors.
pub fn dither_to_palette(src: &Framebuffer, palette: &Palette, mode: DitherMode) -> Framebuffer {
    let w = src.width() as usize;
    let h = src.height() as usize;
    let mut out = Framebuffer::new(src.width(), src.height(), Color::BLACK);
    let mut result = Vec::with_capacity(w * h);
    match mode {
        DitherMode::None => {
            for &p in src.pixels() {
                result.push(palette.quantize(p));
            }
        }
        DitherMode::Ordered4x4 => {
            // Bias amplitude scaled to the palette's average quantization
            // step so 2-color and 256-color palettes both dither sensibly.
            let amp = (256 / (palette.len().min(64)) as i32).max(8);
            for y in 0..h {
                let row = src.row(y as u32);
                for (x, &p) in row.iter().enumerate() {
                    let t = BAYER4[y % 4][x % 4] - 8; // -8..8
                    let bias = t * amp / 8;
                    let adj = Color::rgb(
                        (p.r as i32 + bias).clamp(0, 255) as u8,
                        (p.g as i32 + bias).clamp(0, 255) as u8,
                        (p.b as i32 + bias).clamp(0, 255) as u8,
                    );
                    result.push(palette.quantize(adj));
                }
            }
        }
        DitherMode::FloydSteinberg => {
            // Per-channel error buffers for the current and next row.
            let mut err_cur = vec![[0i32; 3]; w + 2];
            let mut err_next = vec![[0i32; 3]; w + 2];
            for y in 0..h {
                let row = src.row(y as u32);
                for x in 0..w {
                    let e = err_cur[x + 1];
                    let p = row[x];
                    let adj = Color::rgb(
                        (p.r as i32 + e[0] / 16).clamp(0, 255) as u8,
                        (p.g as i32 + e[1] / 16).clamp(0, 255) as u8,
                        (p.b as i32 + e[2] / 16).clamp(0, 255) as u8,
                    );
                    let q = palette.quantize(adj);
                    result.push(q);
                    let err = [
                        adj.r as i32 - q.r as i32,
                        adj.g as i32 - q.g as i32,
                        adj.b as i32 - q.b as i32,
                    ];
                    for ch in 0..3 {
                        err_cur[x + 2][ch] += err[ch] * 7;
                        err_next[x][ch] += err[ch] * 3;
                        err_next[x + 1][ch] += err[ch] * 5;
                        err_next[x + 2][ch] += err[ch];
                    }
                }
                core::mem::swap(&mut err_cur, &mut err_next);
                err_next.iter_mut().for_each(|e| *e = [0; 3]);
            }
        }
    }
    out.write_rect(out.bounds(), &result);
    out
}

/// Reduces every pixel of `src` to what `format` can represent, dithering
/// with `mode`. True-color formats quantize channel-wise; palette-ish
/// formats (`Gray4`, `Mono1`, `Indexed8`) go through an explicit palette.
pub fn dither_to_format(src: &Framebuffer, format: PixelFormat, mode: DitherMode) -> Framebuffer {
    match format {
        PixelFormat::Mono1 => dither_to_palette(src, &Palette::mono(), mode),
        PixelFormat::Gray4 => dither_to_palette(src, &Palette::grayscale(16), mode),
        PixelFormat::Indexed8 => dither_to_palette(src, &Palette::websafe(), mode),
        PixelFormat::Gray8 => dither_to_palette(src, &Palette::grayscale(256), mode),
        PixelFormat::Rgb888 => src.clone(),
        PixelFormat::Rgb565 | PixelFormat::Rgb444 => {
            // Channel-wise reduction; error diffusion is overkill for >=12bpp
            // GUI content, so only ordered/none modes perturb here.
            let mut out = Framebuffer::new(src.width(), src.height(), Color::BLACK);
            let w = src.width() as usize;
            let mut result = Vec::with_capacity(w * src.height() as usize);
            for (i, &p) in src.pixels().iter().enumerate() {
                let adj = if mode == DitherMode::Ordered4x4 {
                    let x = i % w;
                    let y = i / w;
                    let t = BAYER4[y % 4][x % 4] - 8;
                    let bias = if format == PixelFormat::Rgb444 {
                        t
                    } else {
                        t / 2
                    };
                    Color::rgb(
                        (p.r as i32 + bias).clamp(0, 255) as u8,
                        (p.g as i32 + bias).clamp(0, 255) as u8,
                        (p.b as i32 + bias).clamp(0, 255) as u8,
                    )
                } else {
                    p
                };
                result.push(format.reduce(adj));
            }
            out.write_rect(out.bounds(), &result);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Rect};

    fn gradient(w: u32, h: u32) -> Framebuffer {
        let mut fb = Framebuffer::new(w, h, Color::BLACK);
        for y in 0..h as i32 {
            for x in 0..w as i32 {
                let v = (x * 255 / (w as i32 - 1).max(1)) as u8;
                fb.set_pixel(Point::new(x, y), Color::gray(v));
            }
        }
        fb
    }

    #[test]
    fn none_mode_outputs_only_palette_colors() {
        let src = gradient(32, 8);
        let pal = Palette::grayscale(4);
        let out = dither_to_palette(&src, &pal, DitherMode::None);
        for &p in out.pixels() {
            assert!(pal.colors().contains(&p));
        }
    }

    #[test]
    fn fs_mode_outputs_only_palette_colors() {
        let src = gradient(32, 8);
        let pal = Palette::mono();
        let out = dither_to_palette(&src, &pal, DitherMode::FloydSteinberg);
        for &p in out.pixels() {
            assert!(p == Color::BLACK || p == Color::WHITE);
        }
    }

    #[test]
    fn ordered_mode_outputs_only_palette_colors() {
        let src = gradient(32, 8);
        let pal = Palette::vga16();
        let out = dither_to_palette(&src, &pal, DitherMode::Ordered4x4);
        for &p in out.pixels() {
            assert!(pal.colors().contains(&p));
        }
    }

    #[test]
    fn dither_preserves_mean_brightness() {
        // Mid-gray dithered to mono should be ~50% white.
        let mut src = Framebuffer::new(64, 64, Color::BLACK);
        src.fill_rect(Rect::new(0, 0, 64, 64), Color::gray(128));
        for mode in [DitherMode::FloydSteinberg, DitherMode::Ordered4x4] {
            let out = dither_to_palette(&src, &Palette::mono(), mode);
            let white = out.pixels().iter().filter(|&&p| p == Color::WHITE).count();
            let frac = white as f64 / (64.0 * 64.0);
            assert!(
                (0.35..=0.65).contains(&frac),
                "{mode}: expected ~half white, got {frac}"
            );
        }
    }

    #[test]
    fn none_mode_mid_gray_is_uniform() {
        let mut src = Framebuffer::new(8, 8, Color::BLACK);
        src.fill_rect(Rect::new(0, 0, 8, 8), Color::gray(128));
        let out = dither_to_palette(&src, &Palette::mono(), DitherMode::None);
        let first = out.pixels()[0];
        assert!(out.pixels().iter().all(|&p| p == first));
    }

    #[test]
    fn dither_to_format_rgb888_identity() {
        let src = gradient(16, 4);
        let out = dither_to_format(&src, PixelFormat::Rgb888, DitherMode::FloydSteinberg);
        assert_eq!(out, src);
    }

    #[test]
    fn dither_to_format_reduced_is_representable() {
        let src = gradient(16, 4);
        for f in [
            PixelFormat::Rgb565,
            PixelFormat::Rgb444,
            PixelFormat::Gray8,
            PixelFormat::Gray4,
            PixelFormat::Mono1,
            PixelFormat::Indexed8,
        ] {
            let out = dither_to_format(&src, f, DitherMode::None);
            for &p in out.pixels() {
                assert_eq!(f.reduce(p), p, "{f}: {p} not representable");
            }
        }
    }

    #[test]
    fn black_and_white_are_fixed_points() {
        let mut src = Framebuffer::new(8, 2, Color::BLACK);
        src.fill_rect(Rect::new(4, 0, 4, 2), Color::WHITE);
        for mode in [
            DitherMode::None,
            DitherMode::FloydSteinberg,
            DitherMode::Ordered4x4,
        ] {
            let out = dither_to_palette(&src, &Palette::mono(), mode);
            assert_eq!(out.pixel(Point::new(0, 0)), Some(Color::BLACK), "{mode}");
            assert_eq!(out.pixel(Point::new(7, 0)), Some(Color::WHITE), "{mode}");
        }
    }
}
