//! A 2-D region maintained as a set of disjoint rectangles.
//!
//! Regions are the damage-tracking currency of the window system and the
//! UniInt server: widgets damage regions, the server turns damage into
//! framebuffer-update rectangles. The representation keeps rectangles
//! disjoint at all times and coalesces adjacent bands opportunistically,
//! mirroring the classic X server region code (in spirit, not in layout).

use crate::geom::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A set of pixels represented as disjoint rectangles.
///
/// ```
/// use uniint_raster::geom::Rect;
/// use uniint_raster::region::Region;
/// let mut r = Region::new();
/// r.add(Rect::new(0, 0, 10, 10));
/// r.add(Rect::new(5, 5, 10, 10));
/// assert_eq!(r.area(), 175);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    rects: Vec<Rect>,
}

impl Region {
    /// Creates an empty region.
    pub fn new() -> Self {
        Region { rects: Vec::new() }
    }

    /// Creates a region covering a single rectangle.
    pub fn from_rect(r: Rect) -> Self {
        let mut reg = Region::new();
        reg.add(r);
        reg
    }

    /// True when the region covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Total number of pixels covered.
    pub fn area(&self) -> u64 {
        self.rects.iter().map(|r| r.area()).sum()
    }

    /// Number of disjoint rectangles in the representation.
    pub fn rect_count(&self) -> usize {
        self.rects.len()
    }

    /// The disjoint rectangles making up the region.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Iterates over the disjoint rectangles.
    pub fn iter(&self) -> core::slice::Iter<'_, Rect> {
        self.rects.iter()
    }

    /// Smallest rectangle covering the whole region.
    pub fn bounding_rect(&self) -> Rect {
        self.rects.iter().fold(Rect::EMPTY, |acc, r| acc.union(*r))
    }

    /// Whether `p` is covered.
    pub fn contains(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains(p))
    }

    /// Whether `rect` overlaps the region anywhere.
    pub fn intersects_rect(&self, rect: Rect) -> bool {
        self.rects.iter().any(|r| r.intersects(rect))
    }

    /// Adds a rectangle to the region (set union with one rectangle).
    ///
    /// Keeps the invariant that stored rectangles are pairwise disjoint by
    /// inserting only the parts of `rect` not already covered.
    pub fn add(&mut self, rect: Rect) {
        if rect.is_empty() {
            return;
        }
        // Fast path: fully covered already.
        if self.rects.iter().any(|r| r.contains_rect(rect)) {
            return;
        }
        let mut pending = vec![rect];
        for existing in &self.rects {
            let mut next = Vec::with_capacity(pending.len());
            for p in pending {
                subtract_rect(p, *existing, &mut next);
            }
            pending = next;
            if pending.is_empty() {
                return;
            }
        }
        self.rects.extend(pending);
        self.coalesce();
    }

    /// Set union with another region.
    pub fn union_with(&mut self, other: &Region) {
        for r in &other.rects {
            self.add(*r);
        }
    }

    /// Removes a rectangle from the region (set difference).
    pub fn subtract(&mut self, rect: Rect) {
        if rect.is_empty() || self.rects.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.rects.len());
        for r in &self.rects {
            subtract_rect(*r, rect, &mut out);
        }
        self.rects = out;
    }

    /// Intersects the region with a rectangle (clipping).
    pub fn intersect_rect(&mut self, rect: Rect) {
        self.rects = self
            .rects
            .iter()
            .filter_map(|r| r.intersect(rect))
            .collect();
    }

    /// Returns the intersection of two regions as a new region.
    pub fn intersection(&self, other: &Region) -> Region {
        let mut out = Region::new();
        for a in &self.rects {
            for b in &other.rects {
                if let Some(i) = a.intersect(*b) {
                    out.add(i);
                }
            }
        }
        out
    }

    /// Translates the whole region.
    pub fn translate(&mut self, dx: i32, dy: i32) {
        for r in &mut self.rects {
            *r = r.translate(dx, dy);
        }
    }

    /// Empties the region.
    pub fn clear(&mut self) {
        self.rects.clear();
    }

    /// Drains the region, returning its rectangles and leaving it empty.
    pub fn take(&mut self) -> Vec<Rect> {
        core::mem::take(&mut self.rects)
    }

    /// Builds a region from rectangles the caller guarantees are pairwise
    /// disjoint, skipping the subtract/coalesce machinery of [`add`].
    ///
    /// [`add`] costs O(existing rects) per insertion, which turns
    /// quadratic (plus a cubic coalesce) when tens of thousands of tiny
    /// rects arrive — e.g. a framebuffer diff of dithered noise. Bulk
    /// construction from known-disjoint rects is linear instead.
    ///
    /// [`add`]: Self::add
    pub(crate) fn from_disjoint_rects(rects: Vec<Rect>) -> Region {
        // Checking disjointness is quadratic, so debug builds only verify
        // inputs small enough not to reintroduce the very blowup this
        // constructor exists to avoid.
        debug_assert!(
            rects.len() > 256
                || rects
                    .iter()
                    .enumerate()
                    .all(|(i, a)| rects[i + 1..].iter().all(|b| a.intersect(*b).is_none())),
            "from_disjoint_rects requires pairwise disjoint input"
        );
        Region {
            rects: rects.into_iter().filter(|r| !r.is_empty()).collect(),
        }
    }

    /// Merge pairs of rectangles that tile exactly (share a full edge).
    /// Keeps the representation compact after many small `add`s; purely an
    /// optimization, the covered pixel set is unchanged.
    fn coalesce(&mut self) {
        let mut merged = true;
        while merged && self.rects.len() > 1 {
            merged = false;
            'outer: for i in 0..self.rects.len() {
                for j in (i + 1)..self.rects.len() {
                    if let Some(m) = merge_exact(self.rects[i], self.rects[j]) {
                        self.rects[i] = m;
                        self.rects.swap_remove(j);
                        merged = true;
                        break 'outer;
                    }
                }
            }
        }
    }
}

impl FromIterator<Rect> for Region {
    fn from_iter<T: IntoIterator<Item = Rect>>(iter: T) -> Self {
        let mut reg = Region::new();
        for r in iter {
            reg.add(r);
        }
        reg
    }
}

impl Extend<Rect> for Region {
    fn extend<T: IntoIterator<Item = Rect>>(&mut self, iter: T) {
        for r in iter {
            self.add(r);
        }
    }
}

impl<'a> IntoIterator for &'a Region {
    type Item = &'a Rect;
    type IntoIter = core::slice::Iter<'a, Rect>;
    fn into_iter(self) -> Self::IntoIter {
        self.rects.iter()
    }
}

/// Pushes the parts of `a` not covered by `b` onto `out` (up to 4 pieces).
fn subtract_rect(a: Rect, b: Rect, out: &mut Vec<Rect>) {
    let Some(i) = a.intersect(b) else {
        out.push(a);
        return;
    };
    // Top band.
    if i.y > a.y {
        out.push(Rect::new(a.x, a.y, a.w, (i.y - a.y) as u32));
    }
    // Bottom band.
    if i.bottom() < a.bottom() {
        out.push(Rect::new(
            a.x,
            i.bottom(),
            a.w,
            (a.bottom() - i.bottom()) as u32,
        ));
    }
    // Left band (within i's vertical extent).
    if i.x > a.x {
        out.push(Rect::new(a.x, i.y, (i.x - a.x) as u32, i.h));
    }
    // Right band.
    if i.right() < a.right() {
        out.push(Rect::new(
            i.right(),
            i.y,
            (a.right() - i.right()) as u32,
            i.h,
        ));
    }
}

/// If `a` and `b` tile exactly into a rectangle, returns it.
fn merge_exact(a: Rect, b: Rect) -> Option<Rect> {
    if a.y == b.y && a.h == b.h {
        if a.right() == b.x {
            return Some(Rect::new(a.x, a.y, a.w + b.w, a.h));
        }
        if b.right() == a.x {
            return Some(Rect::new(b.x, b.y, a.w + b.w, a.h));
        }
    }
    if a.x == b.x && a.w == b.w {
        if a.bottom() == b.y {
            return Some(Rect::new(a.x, a.y, a.w, a.h + b.h));
        }
        if b.bottom() == a.y {
            return Some(Rect::new(b.x, b.y, a.w, a.h + b.h));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_disjoint(reg: &Region) {
        let rs = reg.rects();
        for i in 0..rs.len() {
            for j in (i + 1)..rs.len() {
                assert!(
                    !rs[i].intersects(rs[j]),
                    "rects {} and {} overlap",
                    rs[i],
                    rs[j]
                );
            }
        }
    }

    #[test]
    fn empty_region() {
        let r = Region::new();
        assert!(r.is_empty());
        assert_eq!(r.area(), 0);
        assert_eq!(r.bounding_rect(), Rect::EMPTY);
    }

    #[test]
    fn add_disjoint_rects() {
        let mut r = Region::new();
        r.add(Rect::new(0, 0, 5, 5));
        r.add(Rect::new(10, 10, 5, 5));
        assert_eq!(r.area(), 50);
        assert_disjoint(&r);
    }

    #[test]
    fn add_overlapping_counts_once() {
        let mut r = Region::new();
        r.add(Rect::new(0, 0, 10, 10));
        r.add(Rect::new(5, 5, 10, 10));
        assert_eq!(r.area(), 175);
        assert_disjoint(&r);
    }

    #[test]
    fn add_contained_is_noop() {
        let mut r = Region::new();
        r.add(Rect::new(0, 0, 10, 10));
        r.add(Rect::new(2, 2, 3, 3));
        assert_eq!(r.area(), 100);
        assert_eq!(r.rect_count(), 1);
    }

    #[test]
    fn adjacent_rects_coalesce() {
        let mut r = Region::new();
        r.add(Rect::new(0, 0, 5, 10));
        r.add(Rect::new(5, 0, 5, 10));
        assert_eq!(r.rect_count(), 1);
        assert_eq!(r.bounding_rect(), Rect::new(0, 0, 10, 10));
    }

    #[test]
    fn subtract_center_leaves_frame() {
        let mut r = Region::from_rect(Rect::new(0, 0, 10, 10));
        r.subtract(Rect::new(2, 2, 6, 6));
        assert_eq!(r.area(), 100 - 36);
        assert_disjoint(&r);
        assert!(!r.contains(Point::new(5, 5)));
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(9, 9)));
    }

    #[test]
    fn subtract_everything() {
        let mut r = Region::from_rect(Rect::new(0, 0, 10, 10));
        r.subtract(Rect::new(-1, -1, 20, 20));
        assert!(r.is_empty());
    }

    #[test]
    fn intersect_rect_clips() {
        let mut r = Region::new();
        r.add(Rect::new(0, 0, 10, 10));
        r.add(Rect::new(20, 20, 10, 10));
        r.intersect_rect(Rect::new(5, 5, 20, 20));
        assert_eq!(r.area(), 25 + 25);
        assert_disjoint(&r);
    }

    #[test]
    fn intersection_of_regions() {
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        let b = Region::from_rect(Rect::new(5, 5, 10, 10));
        let i = a.intersection(&b);
        assert_eq!(i.area(), 25);
    }

    #[test]
    fn translate_moves_all() {
        let mut r = Region::from_rect(Rect::new(0, 0, 4, 4));
        r.translate(10, 20);
        assert!(r.contains(Point::new(10, 20)));
        assert!(!r.contains(Point::new(0, 0)));
    }

    #[test]
    fn union_with_other_region() {
        let mut a = Region::from_rect(Rect::new(0, 0, 4, 4));
        let b = Region::from_rect(Rect::new(2, 2, 4, 4));
        a.union_with(&b);
        assert_eq!(a.area(), 16 + 16 - 4);
        assert_disjoint(&a);
    }

    #[test]
    fn take_empties() {
        let mut r = Region::from_rect(Rect::new(0, 0, 2, 2));
        let rects = r.take();
        assert_eq!(rects.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn from_iterator() {
        let r: Region = [Rect::new(0, 0, 2, 2), Rect::new(4, 0, 2, 2)]
            .into_iter()
            .collect();
        assert_eq!(r.area(), 8);
    }

    #[test]
    fn subtract_rect_pieces_cover_difference() {
        let a = Rect::new(0, 0, 8, 8);
        let b = Rect::new(3, 3, 2, 2);
        let mut out = Vec::new();
        subtract_rect(a, b, &mut out);
        let total: u64 = out.iter().map(|r| r.area()).sum();
        assert_eq!(total, 64 - 4);
        for p in a.pixels() {
            let in_pieces = out.iter().any(|r| r.contains(p));
            assert_eq!(in_pieces, !b.contains(p), "pixel {p}");
        }
    }
}
