//! Pixel formats and per-pixel packing.
//!
//! The universal interaction protocol negotiates a [`PixelFormat`] per
//! session (like RFB's `SetPixelFormat`); the UniInt proxy converts the
//! server's canonical 24-bit pixels to the format an output device can
//! actually display.

use crate::color::{Color, Palette};
use serde::{Deserialize, Serialize};

/// Wire/display pixel formats supported by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PixelFormat {
    /// 24-bit true color, 8 bits per channel, 3 bytes per pixel.
    Rgb888,
    /// 16-bit true color, 5-6-5 bits, 2 bytes per pixel.
    Rgb565,
    /// 12-bit true color packed into 2 bytes (`0x0RGB`), typical of early
    /// PDA displays.
    Rgb444,
    /// 8-bit grayscale.
    Gray8,
    /// 4-bit grayscale, two pixels per byte (high nibble first).
    Gray4,
    /// 1-bit monochrome, eight pixels per byte (MSB first).
    Mono1,
    /// 8-bit palette indices (palette carried out of band).
    Indexed8,
}

impl PixelFormat {
    /// All formats, useful for exhaustive tests.
    pub const ALL: [PixelFormat; 7] = [
        PixelFormat::Rgb888,
        PixelFormat::Rgb565,
        PixelFormat::Rgb444,
        PixelFormat::Gray8,
        PixelFormat::Gray4,
        PixelFormat::Mono1,
        PixelFormat::Indexed8,
    ];

    /// Bits needed per pixel.
    pub const fn bits_per_pixel(self) -> u32 {
        match self {
            PixelFormat::Rgb888 => 24,
            PixelFormat::Rgb565 => 16,
            PixelFormat::Rgb444 => 16, // packed in 2 bytes
            PixelFormat::Gray8 | PixelFormat::Indexed8 => 8,
            PixelFormat::Gray4 => 4,
            PixelFormat::Mono1 => 1,
        }
    }

    /// Whether the format is true color (no palette needed).
    pub const fn is_true_color(self) -> bool {
        !matches!(self, PixelFormat::Indexed8)
    }

    /// Number of distinct colors representable.
    pub const fn color_count(self) -> u32 {
        match self {
            PixelFormat::Rgb888 => 1 << 24,
            PixelFormat::Rgb565 => 1 << 16,
            PixelFormat::Rgb444 => 1 << 12,
            PixelFormat::Gray8 | PixelFormat::Indexed8 => 256,
            PixelFormat::Gray4 => 16,
            PixelFormat::Mono1 => 2,
        }
    }

    /// Bytes required for a `w`-pixel row (rows are byte-aligned).
    pub const fn row_bytes(self, w: u32) -> usize {
        (w as usize * self.bits_per_pixel() as usize).div_ceil(8)
    }

    /// Bytes required for a `w`×`h` raster.
    pub const fn buffer_bytes(self, w: u32, h: u32) -> usize {
        self.row_bytes(w) * h as usize
    }

    /// A stable wire identifier for format negotiation.
    pub const fn wire_id(self) -> u8 {
        match self {
            PixelFormat::Rgb888 => 0,
            PixelFormat::Rgb565 => 1,
            PixelFormat::Rgb444 => 2,
            PixelFormat::Gray8 => 3,
            PixelFormat::Gray4 => 4,
            PixelFormat::Mono1 => 5,
            PixelFormat::Indexed8 => 6,
        }
    }

    /// Inverse of [`wire_id`](Self::wire_id).
    pub const fn from_wire_id(id: u8) -> Option<PixelFormat> {
        match id {
            0 => Some(PixelFormat::Rgb888),
            1 => Some(PixelFormat::Rgb565),
            2 => Some(PixelFormat::Rgb444),
            3 => Some(PixelFormat::Gray8),
            4 => Some(PixelFormat::Gray4),
            5 => Some(PixelFormat::Mono1),
            6 => Some(PixelFormat::Indexed8),
            _ => None,
        }
    }

    /// Reduces `c` to the nearest color representable in this format
    /// (identity for `Rgb888`; `Indexed8` requires the session palette and
    /// uses web-safe here as the documented default).
    pub fn reduce(self, c: Color) -> Color {
        match self {
            PixelFormat::Rgb888 => c,
            PixelFormat::Rgb565 => {
                let r = c.r & 0xf8;
                let g = c.g & 0xfc;
                let b = c.b & 0xf8;
                // Replicate high bits into low bits so white stays white.
                Color::rgb(r | (r >> 5), g | (g >> 6), b | (b >> 5))
            }
            PixelFormat::Rgb444 => {
                let r = c.r & 0xf0;
                let g = c.g & 0xf0;
                let b = c.b & 0xf0;
                Color::rgb(r | (r >> 4), g | (g >> 4), b | (b >> 4))
            }
            PixelFormat::Gray8 => Color::gray(c.luma()),
            PixelFormat::Gray4 => {
                let l = c.luma() & 0xf0;
                Color::gray(l | (l >> 4))
            }
            PixelFormat::Mono1 => {
                if c.luma() >= 128 {
                    Color::WHITE
                } else {
                    Color::BLACK
                }
            }
            PixelFormat::Indexed8 => Palette::websafe().quantize(c),
        }
    }
}

impl core::fmt::Display for PixelFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PixelFormat::Rgb888 => "rgb888",
            PixelFormat::Rgb565 => "rgb565",
            PixelFormat::Rgb444 => "rgb444",
            PixelFormat::Gray8 => "gray8",
            PixelFormat::Gray4 => "gray4",
            PixelFormat::Mono1 => "mono1",
            PixelFormat::Indexed8 => "indexed8",
        };
        f.write_str(s)
    }
}

/// Packs a row of canonical colors into `format` bytes, appending to `out`.
pub fn pack_row(format: PixelFormat, row: &[Color], palette: Option<&Palette>, out: &mut Vec<u8>) {
    match format {
        PixelFormat::Rgb888 => {
            for c in row {
                out.extend_from_slice(&[c.r, c.g, c.b]);
            }
        }
        PixelFormat::Rgb565 => {
            for c in row {
                let v: u16 =
                    (((c.r as u16) >> 3) << 11) | (((c.g as u16) >> 2) << 5) | ((c.b as u16) >> 3);
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        PixelFormat::Rgb444 => {
            for c in row {
                let v: u16 =
                    (((c.r as u16) >> 4) << 8) | (((c.g as u16) >> 4) << 4) | ((c.b as u16) >> 4);
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        PixelFormat::Gray8 => {
            for c in row {
                out.push(c.luma());
            }
        }
        PixelFormat::Gray4 => {
            let mut i = 0;
            while i < row.len() {
                let hi = row[i].luma() >> 4;
                let lo = if i + 1 < row.len() {
                    row[i + 1].luma() >> 4
                } else {
                    0
                };
                out.push((hi << 4) | lo);
                i += 2;
            }
        }
        PixelFormat::Mono1 => {
            let mut byte = 0u8;
            let mut nbits = 0;
            for c in row {
                byte = (byte << 1) | u8::from(c.luma() >= 128);
                nbits += 1;
                if nbits == 8 {
                    out.push(byte);
                    byte = 0;
                    nbits = 0;
                }
            }
            if nbits > 0 {
                out.push(byte << (8 - nbits));
            }
        }
        PixelFormat::Indexed8 => {
            let default_palette;
            let pal = match palette {
                Some(p) => p,
                None => {
                    default_palette = Palette::websafe();
                    &default_palette
                }
            };
            for c in row {
                out.push(pal.nearest(*c));
            }
        }
    }
}

/// Unpacks a row of `w` pixels from `format` bytes.
///
/// Returns `None` if `bytes` is too short for `w` pixels.
pub fn unpack_row(
    format: PixelFormat,
    bytes: &[u8],
    w: usize,
    palette: Option<&Palette>,
) -> Option<Vec<Color>> {
    if bytes.len() < format.row_bytes(w as u32) {
        return None;
    }
    let mut row = Vec::with_capacity(w);
    match format {
        PixelFormat::Rgb888 => {
            for px in bytes.chunks_exact(3).take(w) {
                row.push(Color::rgb(px[0], px[1], px[2]));
            }
        }
        PixelFormat::Rgb565 => {
            for px in bytes.chunks_exact(2).take(w) {
                let v = u16::from_be_bytes([px[0], px[1]]);
                let r = ((v >> 11) as u8) << 3;
                let g = ((v >> 5) as u8 & 0x3f) << 2;
                let b = (v as u8 & 0x1f) << 3;
                row.push(Color::rgb(r | (r >> 5), g | (g >> 6), b | (b >> 5)));
            }
        }
        PixelFormat::Rgb444 => {
            for px in bytes.chunks_exact(2).take(w) {
                let v = u16::from_be_bytes([px[0], px[1]]);
                let r = ((v >> 8) as u8 & 0x0f) << 4;
                let g = ((v >> 4) as u8 & 0x0f) << 4;
                let b = (v as u8 & 0x0f) << 4;
                row.push(Color::rgb(r | (r >> 4), g | (g >> 4), b | (b >> 4)));
            }
        }
        PixelFormat::Gray8 => {
            for &v in bytes.iter().take(w) {
                row.push(Color::gray(v));
            }
        }
        PixelFormat::Gray4 => {
            for i in 0..w {
                let byte = bytes[i / 2];
                let nib = if i % 2 == 0 { byte >> 4 } else { byte & 0x0f };
                let v = (nib << 4) | nib;
                row.push(Color::gray(v));
            }
        }
        PixelFormat::Mono1 => {
            for i in 0..w {
                let byte = bytes[i / 8];
                let bit = (byte >> (7 - (i % 8))) & 1;
                row.push(if bit == 1 { Color::WHITE } else { Color::BLACK });
            }
        }
        PixelFormat::Indexed8 => {
            let default_palette;
            let pal = match palette {
                Some(p) => p,
                None => {
                    default_palette = Palette::websafe();
                    &default_palette
                }
            };
            for &v in bytes.iter().take(w) {
                let idx = (v as usize).min(pal.len() - 1) as u8;
                row.push(pal.color(idx));
            }
        }
    }
    Some(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_bytes_alignment() {
        assert_eq!(PixelFormat::Rgb888.row_bytes(10), 30);
        assert_eq!(PixelFormat::Mono1.row_bytes(9), 2);
        assert_eq!(PixelFormat::Gray4.row_bytes(3), 2);
        assert_eq!(PixelFormat::Rgb565.row_bytes(4), 8);
    }

    #[test]
    fn wire_id_roundtrip() {
        for f in PixelFormat::ALL {
            assert_eq!(PixelFormat::from_wire_id(f.wire_id()), Some(f));
        }
        assert_eq!(PixelFormat::from_wire_id(200), None);
    }

    #[test]
    fn reduce_is_idempotent() {
        let samples = [
            Color::rgb(13, 200, 77),
            Color::BLACK,
            Color::WHITE,
            Color::rgb(128, 128, 128),
        ];
        for f in PixelFormat::ALL {
            for c in samples {
                let once = f.reduce(c);
                assert_eq!(f.reduce(once), once, "{f} on {c}");
            }
        }
    }

    #[test]
    fn reduce_preserves_extremes() {
        for f in PixelFormat::ALL {
            assert_eq!(f.reduce(Color::BLACK), Color::BLACK, "{f} black");
            assert_eq!(f.reduce(Color::WHITE), Color::WHITE, "{f} white");
        }
    }

    #[test]
    fn pack_unpack_rgb888_exact() {
        let row = vec![Color::rgb(1, 2, 3), Color::rgb(250, 128, 0)];
        let mut bytes = Vec::new();
        pack_row(PixelFormat::Rgb888, &row, None, &mut bytes);
        let back = unpack_row(PixelFormat::Rgb888, &bytes, 2, None).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn pack_unpack_reduced_formats_roundtrip_reduced_colors() {
        let raw = [
            Color::rgb(13, 200, 77),
            Color::rgb(255, 255, 255),
            Color::rgb(0, 0, 0),
            Color::rgb(90, 33, 150),
            Color::rgb(17, 17, 17),
        ];
        for f in [
            PixelFormat::Rgb565,
            PixelFormat::Rgb444,
            PixelFormat::Gray8,
            PixelFormat::Gray4,
            PixelFormat::Mono1,
        ] {
            let reduced: Vec<Color> = raw.iter().map(|&c| f.reduce(c)).collect();
            let mut bytes = Vec::new();
            pack_row(f, &reduced, None, &mut bytes);
            assert_eq!(bytes.len(), f.row_bytes(raw.len() as u32));
            let back = unpack_row(f, &bytes, raw.len(), None).unwrap();
            assert_eq!(back, reduced, "{f}");
        }
    }

    #[test]
    fn indexed_roundtrip_with_palette() {
        let pal = Palette::vga16();
        let row: Vec<Color> = (0..16u8).map(|i| pal.color(i)).collect();
        let mut bytes = Vec::new();
        pack_row(PixelFormat::Indexed8, &row, Some(&pal), &mut bytes);
        let back = unpack_row(PixelFormat::Indexed8, &bytes, 16, Some(&pal)).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn unpack_short_buffer_is_none() {
        assert!(unpack_row(PixelFormat::Rgb888, &[1, 2], 1, None).is_none());
        assert!(unpack_row(PixelFormat::Mono1, &[], 1, None).is_none());
    }

    #[test]
    fn mono_packing_msb_first() {
        let row = vec![
            Color::WHITE,
            Color::BLACK,
            Color::BLACK,
            Color::BLACK,
            Color::BLACK,
            Color::BLACK,
            Color::BLACK,
            Color::WHITE,
        ];
        let mut bytes = Vec::new();
        pack_row(PixelFormat::Mono1, &row, None, &mut bytes);
        assert_eq!(bytes, vec![0b1000_0001]);
    }

    #[test]
    fn mono_partial_byte_padded_low() {
        let row = vec![Color::WHITE, Color::WHITE, Color::BLACK];
        let mut bytes = Vec::new();
        pack_row(PixelFormat::Mono1, &row, None, &mut bytes);
        assert_eq!(bytes, vec![0b1100_0000]);
    }
}
