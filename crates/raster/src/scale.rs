//! Image scaling: the UniInt proxy rescales server frames to each output
//! device's native resolution (TV overscan, QVGA PDA, 128×128 phone LCD...).

use crate::color::Color;
use crate::framebuffer::Framebuffer;
use crate::geom::Size;
use serde::{Deserialize, Serialize};

/// Scaling filter selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ScaleFilter {
    /// Nearest-neighbor: fastest, blockiest. What a 2002 PDA viewer did.
    #[default]
    Nearest,
    /// Bilinear interpolation: smoother, ~4 taps per output pixel.
    Bilinear,
    /// Box filter (area average): best for large downscales such as
    /// 640×480 → 128×128 phone LCDs.
    Box,
}

impl core::fmt::Display for ScaleFilter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ScaleFilter::Nearest => "nearest",
            ScaleFilter::Bilinear => "bilinear",
            ScaleFilter::Box => "box",
        };
        f.write_str(s)
    }
}

/// Scales `src` to exactly `target` using `filter`.
///
/// Returns a clone when the size already matches.
///
/// # Panics
///
/// Panics if `target` is empty.
pub fn scale(src: &Framebuffer, target: Size, filter: ScaleFilter) -> Framebuffer {
    assert!(!target.is_empty(), "scale target must be non-empty");
    if src.size() == target {
        return src.clone();
    }
    match filter {
        ScaleFilter::Nearest => scale_nearest(src, target),
        ScaleFilter::Bilinear => scale_bilinear(src, target),
        ScaleFilter::Box => scale_box(src, target),
    }
}

/// Scales `src` to fit within `bounds` preserving aspect ratio; result is
/// at least 1×1.
pub fn scale_to_fit(src: &Framebuffer, bounds: Size, filter: ScaleFilter) -> Framebuffer {
    assert!(!bounds.is_empty(), "scale bounds must be non-empty");
    let sx = bounds.w as f64 / src.width() as f64;
    let sy = bounds.h as f64 / src.height() as f64;
    let s = sx.min(sy);
    let w = ((src.width() as f64 * s).round() as u32).clamp(1, bounds.w);
    let h = ((src.height() as f64 * s).round() as u32).clamp(1, bounds.h);
    scale(src, Size::new(w, h), filter)
}

fn scale_nearest(src: &Framebuffer, target: Size) -> Framebuffer {
    let mut dst = Framebuffer::new(target.w, target.h, Color::BLACK);
    let mut rows = Vec::with_capacity((target.w * target.h) as usize);
    for y in 0..target.h {
        let sy = (y as u64 * src.height() as u64 / target.h as u64) as u32;
        let row = src.row(sy);
        for x in 0..target.w {
            let sx = (x as u64 * src.width() as u64 / target.w as u64) as usize;
            rows.push(row[sx]);
        }
    }
    dst.write_rect(dst.bounds(), &rows);
    dst
}

fn scale_bilinear(src: &Framebuffer, target: Size) -> Framebuffer {
    let mut dst = Framebuffer::new(target.w, target.h, Color::BLACK);
    let mut out = Vec::with_capacity((target.w * target.h) as usize);
    let sw = src.width() as f64;
    let sh = src.height() as f64;
    for y in 0..target.h {
        // Map pixel centers.
        let fy = ((y as f64 + 0.5) * sh / target.h as f64 - 0.5).max(0.0);
        let y0 = fy.floor() as u32;
        let y1 = (y0 + 1).min(src.height() - 1);
        let ty = ((fy - y0 as f64) * 256.0) as u32;
        let row0 = src.row(y0);
        let row1 = src.row(y1);
        for x in 0..target.w {
            let fx = ((x as f64 + 0.5) * sw / target.w as f64 - 0.5).max(0.0);
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(src.width() as usize - 1);
            let tx = ((fx - x0 as f64) * 256.0) as u32;
            let top = row0[x0].lerp(row0[x1], tx);
            let bot = row1[x0].lerp(row1[x1], tx);
            out.push(top.lerp(bot, ty));
        }
    }
    dst.write_rect(dst.bounds(), &out);
    dst
}

fn scale_box(src: &Framebuffer, target: Size) -> Framebuffer {
    let mut dst = Framebuffer::new(target.w, target.h, Color::BLACK);
    let mut out = Vec::with_capacity((target.w * target.h) as usize);
    for y in 0..target.h {
        let y0 = (y as u64 * src.height() as u64 / target.h as u64) as u32;
        let mut y1 = ((y as u64 + 1) * src.height() as u64 / target.h as u64) as u32;
        if y1 <= y0 {
            y1 = y0 + 1;
        }
        for x in 0..target.w {
            let x0 = (x as u64 * src.width() as u64 / target.w as u64) as u32;
            let mut x1 = ((x as u64 + 1) * src.width() as u64 / target.w as u64) as u32;
            if x1 <= x0 {
                x1 = x0 + 1;
            }
            let (mut r, mut g, mut b) = (0u64, 0u64, 0u64);
            for sy in y0..y1 {
                let row = src.row(sy);
                for sx in x0..x1 {
                    let c = row[sx as usize];
                    r += c.r as u64;
                    g += c.g as u64;
                    b += c.b as u64;
                }
            }
            let n = ((y1 - y0) * (x1 - x0)) as u64;
            out.push(Color::rgb((r / n) as u8, (g / n) as u8, (b / n) as u8));
        }
    }
    dst.write_rect(dst.bounds(), &out);
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Rect};

    fn checkerboard(w: u32, h: u32) -> Framebuffer {
        let mut fb = Framebuffer::new(w, h, Color::BLACK);
        for y in 0..h as i32 {
            for x in 0..w as i32 {
                if (x + y) % 2 == 0 {
                    fb.set_pixel(Point::new(x, y), Color::WHITE);
                }
            }
        }
        fb
    }

    #[test]
    fn identity_scale_is_clone() {
        let src = checkerboard(8, 8);
        for f in [
            ScaleFilter::Nearest,
            ScaleFilter::Bilinear,
            ScaleFilter::Box,
        ] {
            let out = scale(&src, Size::new(8, 8), f);
            assert_eq!(out, src);
        }
    }

    #[test]
    fn upscale_nearest_replicates() {
        let mut src = Framebuffer::new(2, 1, Color::BLACK);
        src.set_pixel(Point::new(1, 0), Color::WHITE);
        let out = scale(&src, Size::new(4, 2), ScaleFilter::Nearest);
        assert_eq!(out.pixel(Point::new(0, 0)), Some(Color::BLACK));
        assert_eq!(out.pixel(Point::new(1, 1)), Some(Color::BLACK));
        assert_eq!(out.pixel(Point::new(2, 0)), Some(Color::WHITE));
        assert_eq!(out.pixel(Point::new(3, 1)), Some(Color::WHITE));
    }

    #[test]
    fn downscale_box_averages() {
        let src = checkerboard(8, 8);
        let out = scale(&src, Size::new(1, 1), ScaleFilter::Box);
        let c = out.pixel(Point::new(0, 0)).unwrap();
        assert!(
            (120..=135).contains(&c.r),
            "average of checkerboard ~127, got {c}"
        );
    }

    #[test]
    fn bilinear_midpoint_blends() {
        let mut src = Framebuffer::new(2, 1, Color::BLACK);
        src.set_pixel(Point::new(1, 0), Color::WHITE);
        let out = scale(&src, Size::new(3, 1), ScaleFilter::Bilinear);
        let mid = out.pixel(Point::new(1, 0)).unwrap();
        assert!(mid.r > 0 && mid.r < 255, "midpoint should blend, got {mid}");
    }

    #[test]
    fn solid_color_survives_all_filters() {
        let mut src = Framebuffer::new(10, 10, Color::BLACK);
        src.fill_rect(Rect::new(0, 0, 10, 10), Color::rgb(40, 90, 200));
        for f in [
            ScaleFilter::Nearest,
            ScaleFilter::Bilinear,
            ScaleFilter::Box,
        ] {
            let out = scale(&src, Size::new(3, 7), f);
            for &p in out.pixels() {
                assert_eq!(p, Color::rgb(40, 90, 200), "{f}");
            }
        }
    }

    #[test]
    fn scale_to_fit_preserves_aspect() {
        let src = Framebuffer::new(100, 50, Color::BLACK);
        let out = scale_to_fit(&src, Size::new(20, 20), ScaleFilter::Nearest);
        assert_eq!(out.size(), Size::new(20, 10));
        let out2 = scale_to_fit(&src, Size::new(200, 20), ScaleFilter::Nearest);
        assert_eq!(out2.size(), Size::new(40, 20));
    }

    #[test]
    fn scale_to_fit_never_zero() {
        let src = Framebuffer::new(1000, 10, Color::BLACK);
        let out = scale_to_fit(&src, Size::new(5, 5), ScaleFilter::Box);
        assert!(out.width() >= 1 && out.height() >= 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_target_panics() {
        let src = Framebuffer::new(4, 4, Color::BLACK);
        scale(&src, Size::ZERO, ScaleFilter::Nearest);
    }
}
