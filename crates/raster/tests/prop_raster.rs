//! Property-based tests for the raster substrate: region algebra laws,
//! pixel packing round-trips, and dither/scale invariants.

use proptest::prelude::*;
use uniint_raster::color::{Color, Palette};
use uniint_raster::dither::{dither_to_palette, DitherMode};
use uniint_raster::framebuffer::Framebuffer;
use uniint_raster::geom::{Point, Rect, Size};
use uniint_raster::pixel::{pack_row, unpack_row, PixelFormat};
use uniint_raster::region::Region;
use uniint_raster::scale::{scale, ScaleFilter};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0i32..40, 0i32..40, 0u32..20, 0u32..20).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

fn arb_color() -> impl Strategy<Value = Color> {
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| Color::rgb(r, g, b))
}

fn arb_fb(max: u32) -> impl Strategy<Value = Framebuffer> {
    (1..=max, 1..=max)
        .prop_flat_map(|(w, h)| {
            (
                Just(w),
                Just(h),
                proptest::collection::vec(arb_color(), (w * h) as usize),
            )
        })
        .prop_map(|(w, h, px)| {
            let mut fb = Framebuffer::new(w, h, Color::BLACK);
            fb.write_rect(Rect::new(0, 0, w, h), &px);
            fb
        })
}

/// Counts the pixels of `rects` covering the probe grid directly.
fn covered(rects: &[Rect], probe: Rect) -> Vec<bool> {
    probe
        .pixels()
        .map(|p| rects.iter().any(|r| r.contains(p)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn region_rects_stay_disjoint(rects in proptest::collection::vec(arb_rect(), 1..12)) {
        let mut reg = Region::new();
        for r in &rects {
            reg.add(*r);
        }
        let rs = reg.rects();
        for i in 0..rs.len() {
            for j in (i + 1)..rs.len() {
                prop_assert!(!rs[i].intersects(rs[j]));
            }
        }
    }

    #[test]
    fn region_union_matches_naive_cover(rects in proptest::collection::vec(arb_rect(), 1..10)) {
        let mut reg = Region::new();
        for r in &rects {
            reg.add(*r);
        }
        let probe = Rect::new(0, 0, 64, 64);
        let naive = covered(&rects, probe);
        for (i, p) in probe.pixels().enumerate() {
            prop_assert_eq!(reg.contains(p), naive[i], "pixel {}", p);
        }
    }

    #[test]
    fn region_subtract_then_contains_false(base in arb_rect(), cut in arb_rect()) {
        let mut reg = Region::from_rect(base);
        reg.subtract(cut);
        for p in cut.pixels() {
            prop_assert!(!reg.contains(p));
        }
        // Area identity: |A \ B| = |A| - |A ∩ B|.
        let overlap = base.intersect(cut).map(|r| r.area()).unwrap_or(0);
        prop_assert_eq!(reg.area(), base.area() - overlap);
    }

    #[test]
    fn region_intersection_commutes(a in arb_rect(), b in arb_rect(), c in arb_rect()) {
        let mut ra = Region::from_rect(a);
        ra.add(b);
        let rc = Region::from_rect(c);
        let i1 = ra.intersection(&rc);
        let i2 = rc.intersection(&ra);
        prop_assert_eq!(i1.area(), i2.area());
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(b);
        prop_assert!(u.contains_rect(a));
        prop_assert!(u.contains_rect(b));
    }

    #[test]
    fn rect_intersect_is_subset(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersect(b) {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
            prop_assert!(!i.is_empty());
        }
    }

    #[test]
    fn pack_unpack_roundtrips_reduced(row in proptest::collection::vec(arb_color(), 1..40)) {
        for f in [
            PixelFormat::Rgb888,
            PixelFormat::Rgb565,
            PixelFormat::Rgb444,
            PixelFormat::Gray8,
            PixelFormat::Gray4,
            PixelFormat::Mono1,
        ] {
            let reduced: Vec<Color> = row.iter().map(|&c| f.reduce(c)).collect();
            let mut bytes = Vec::new();
            pack_row(f, &reduced, None, &mut bytes);
            prop_assert_eq!(bytes.len(), f.row_bytes(row.len() as u32));
            let back = unpack_row(f, &bytes, row.len(), None);
            prop_assert_eq!(back.as_deref(), Some(&reduced[..]), "{}", f);
        }
    }

    #[test]
    fn indexed_pack_roundtrips(row in proptest::collection::vec(arb_color(), 1..40)) {
        let pal = Palette::vga16();
        let quantized: Vec<Color> = row.iter().map(|&c| pal.quantize(c)).collect();
        let mut bytes = Vec::new();
        pack_row(PixelFormat::Indexed8, &quantized, Some(&pal), &mut bytes);
        let back = unpack_row(PixelFormat::Indexed8, &bytes, row.len(), Some(&pal)).unwrap();
        prop_assert_eq!(back, quantized);
    }

    #[test]
    fn reduce_idempotent(c in arb_color()) {
        for f in PixelFormat::ALL {
            let once = f.reduce(c);
            prop_assert_eq!(f.reduce(once), once);
        }
    }

    #[test]
    fn palette_nearest_in_range(c in arb_color()) {
        for pal in [Palette::mono(), Palette::vga16(), Palette::websafe(), Palette::grayscale(7)] {
            let idx = pal.nearest(c);
            prop_assert!((idx as usize) < pal.len());
        }
    }

    #[test]
    fn dither_output_always_in_palette(fb in arb_fb(16)) {
        let pal = Palette::grayscale(4);
        for mode in [DitherMode::None, DitherMode::FloydSteinberg, DitherMode::Ordered4x4] {
            let out = dither_to_palette(&fb, &pal, mode);
            prop_assert_eq!(out.size(), fb.size());
            for &p in out.pixels() {
                prop_assert!(pal.colors().contains(&p), "{} produced {}", mode, p);
            }
        }
    }

    #[test]
    fn scale_dimensions_exact(fb in arb_fb(12), w in 1u32..24, h in 1u32..24) {
        for filter in [ScaleFilter::Nearest, ScaleFilter::Bilinear, ScaleFilter::Box] {
            let out = scale(&fb, Size::new(w, h), filter);
            prop_assert_eq!(out.size(), Size::new(w, h));
        }
    }

    #[test]
    fn scale_output_within_input_range(fb in arb_fb(10), w in 1u32..16, h in 1u32..16) {
        // Every filter's output luma must stay within [min, max] input luma.
        let min = fb.pixels().iter().map(|c| c.luma()).min().unwrap();
        let max = fb.pixels().iter().map(|c| c.luma()).max().unwrap();
        for filter in [ScaleFilter::Nearest, ScaleFilter::Bilinear, ScaleFilter::Box] {
            let out = scale(&fb, Size::new(w, h), filter);
            for p in out.pixels() {
                // Small slack for per-channel rounding in lerp/average.
                prop_assert!(p.luma() as i32 >= min as i32 - 2, "{}", filter);
                prop_assert!(p.luma() as i32 <= max as i32 + 2, "{}", filter);
            }
        }
    }

    #[test]
    fn fb_copy_rect_never_panics(fb in arb_fb(16), src in arb_rect(), dx in -20i32..20, dy in -20i32..20) {
        let mut fb = fb;
        fb.copy_rect(src, Point::new(dx, dy));
    }

    #[test]
    fn fb_read_write_roundtrip(fb in arb_fb(16), r in arb_rect()) {
        let (clipped, data) = fb.read_rect(r);
        if !clipped.is_empty() {
            let mut fb2 = fb.clone();
            fb2.write_rect(clipped, &data);
            prop_assert_eq!(fb2, fb);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn diff_region_is_exact(fb in arb_fb(12), patch in arb_rect(), c in arb_color()) {
        let mut modified = fb.clone();
        modified.fill_rect(patch, c);
        let diff = fb.diff_region(&modified);
        // Every pixel in the diff differs; every pixel outside matches.
        for p in fb.bounds().pixels() {
            let differs = fb.pixel(p) != modified.pixel(p);
            prop_assert_eq!(diff.contains(p), differs, "pixel {}", p);
        }
    }
}
