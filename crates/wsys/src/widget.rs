//! The widget trait implemented by every control in the toolkit.

use crate::event::{Action, KeyEvent, PointerEvent};
use crate::theme::Theme;
use std::any::Any;
use uniint_raster::draw::Canvas;
use uniint_raster::geom::{Rect, Size};

/// Outcome of delivering an event to a widget.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventResult {
    /// Action to report to the application, if any.
    pub action: Option<Action>,
    /// Whether the widget needs repainting.
    pub repaint: bool,
}

impl EventResult {
    /// Nothing happened.
    pub fn ignored() -> EventResult {
        EventResult::default()
    }

    /// Repaint, no action.
    pub fn repaint() -> EventResult {
        EventResult {
            action: None,
            repaint: true,
        }
    }

    /// Emit an action and repaint.
    pub fn action(action: Action) -> EventResult {
        EventResult {
            action: Some(action),
            repaint: true,
        }
    }
}

/// A user-interface control.
///
/// Widgets are owned by a [`crate::ui::Ui`], which assigns their bounds,
/// routes events in widget-local coordinates, manages focus, and collects
/// emitted [`Action`]s. Implementations are plain state machines: no
/// callbacks, no interior threading.
pub trait Widget: std::fmt::Debug + Send {
    /// Paints the widget into `canvas`, whose clip covers `bounds` (in
    /// window coordinates).
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, focused: bool);

    /// The size the widget would like to occupy.
    fn preferred_size(&self, theme: &Theme) -> Size;

    /// Whether the widget participates in keyboard focus traversal.
    fn focusable(&self) -> bool {
        false
    }

    /// Handles a pointer event (widget-local coordinates).
    fn on_pointer(&mut self, _ev: PointerEvent, _bounds: Rect) -> EventResult {
        EventResult::ignored()
    }

    /// Handles a key event while focused.
    fn on_key(&mut self, _ev: KeyEvent) -> EventResult {
        EventResult::ignored()
    }

    /// Called when focus enters or leaves; return true to repaint.
    fn on_focus(&mut self, _gained: bool) -> bool {
        false
    }

    /// Downcasting support for application-side state access.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
