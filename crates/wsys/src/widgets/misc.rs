//! Additional widgets: [`Checkbox`], [`Spinner`] and [`ImageView`].

use crate::event::{Action, KeyEvent, PointerEvent, PointerPhase};
use crate::theme::Theme;
use crate::widget::{EventResult, Widget};
use std::any::Any;
use uniint_protocol::input::KeySym;
use uniint_raster::draw::Canvas;
use uniint_raster::font;
use uniint_raster::framebuffer::Framebuffer;
use uniint_raster::geom::{Point, Rect, Size};
use uniint_raster::scale::{scale_to_fit, ScaleFilter};

/// A labelled checkbox emitting [`Action::Toggled`].
#[derive(Debug, Clone)]
pub struct Checkbox {
    label: String,
    checked: bool,
    enabled: bool,
}

impl Checkbox {
    /// Creates a checkbox.
    pub fn new(label: impl Into<String>, checked: bool) -> Checkbox {
        Checkbox {
            label: label.into(),
            checked,
            enabled: true,
        }
    }

    /// Current state.
    pub fn is_checked(&self) -> bool {
        self.checked
    }

    /// Sets the state silently.
    pub fn set_checked(&mut self, checked: bool) {
        self.checked = checked;
    }

    /// Enables or disables the checkbox.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    fn flip(&mut self) -> EventResult {
        self.checked = !self.checked;
        EventResult::action(Action::Toggled(self.checked))
    }
}

impl Widget for Checkbox {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, focused: bool) {
        canvas.fill_rect(bounds, theme.background);
        let box_size = 11u32;
        let by = bounds.y + (bounds.h as i32 - box_size as i32) / 2;
        let box_rect = Rect::new(bounds.x + 2, by, box_size, box_size);
        canvas.fill_rect(box_rect, theme.text_inverse);
        canvas.bevel(box_rect, theme.chrome, false);
        if self.checked {
            let inner = box_rect.inset(3);
            canvas.fill_rect(
                inner,
                if self.enabled {
                    theme.accent
                } else {
                    theme.disabled
                },
            );
        }
        let text_color = if self.enabled {
            theme.text
        } else {
            theme.disabled
        };
        let tx = box_rect.right() + 4;
        let ty = bounds.y + (bounds.h as i32 - font::GLYPH_HEIGHT as i32) / 2;
        canvas.clipped(bounds, |canvas| {
            canvas.text(Point::new(tx, ty), &self.label, text_color);
        });
        if focused {
            canvas.stroke_rect(bounds, theme.focus);
        }
    }

    fn preferred_size(&self, theme: &Theme) -> Size {
        Size::new(
            15 + font::text_width(&self.label) + 2 * theme.padding,
            font::GLYPH_HEIGHT + 2 * theme.padding,
        )
    }

    fn focusable(&self) -> bool {
        self.enabled
    }

    fn on_pointer(&mut self, ev: PointerEvent, _bounds: Rect) -> EventResult {
        if self.enabled && ev.phase == PointerPhase::Up && ev.inside {
            self.flip()
        } else {
            EventResult::ignored()
        }
    }

    fn on_key(&mut self, ev: KeyEvent) -> EventResult {
        if !self.enabled || !ev.down {
            return EventResult::ignored();
        }
        if ev.sym == KeySym::RETURN || ev.sym == KeySym::from_char(' ') {
            self.flip()
        } else {
            EventResult::ignored()
        }
    }

    fn on_focus(&mut self, _gained: bool) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A numeric up/down field emitting [`Action::ValueChanged`] — the
/// classic channel/temperature spinner.
#[derive(Debug, Clone)]
pub struct Spinner {
    min: i32,
    max: i32,
    value: i32,
    step: i32,
    /// Text suffix shown after the number ("°C", "ch").
    suffix: String,
}

impl Spinner {
    /// Creates a spinner over `min..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max` or `step <= 0`.
    pub fn new(min: i32, max: i32, value: i32, step: i32) -> Spinner {
        assert!(min < max, "spinner range must be non-empty");
        assert!(step > 0, "spinner step must be positive");
        Spinner {
            min,
            max,
            value: value.clamp(min, max),
            step,
            suffix: String::new(),
        }
    }

    /// Adds a unit suffix to the displayed value.
    pub fn with_suffix(mut self, suffix: impl Into<String>) -> Spinner {
        self.suffix = suffix.into();
        self
    }

    /// Current value.
    pub fn value(&self) -> i32 {
        self.value
    }

    /// Sets the value silently, clamped.
    pub fn set_value(&mut self, value: i32) {
        self.value = value.clamp(self.min, self.max);
    }

    fn change_by(&mut self, delta: i32) -> EventResult {
        let v = (self.value + delta).clamp(self.min, self.max);
        if v == self.value {
            return EventResult::ignored();
        }
        self.value = v;
        EventResult::action(Action::ValueChanged(v))
    }

    fn arrow_zones(bounds: Rect) -> (Rect, Rect) {
        let w = 14u32.min(bounds.w / 3);
        let down = Rect::new(0, 0, w, bounds.h);
        let up = Rect::new(bounds.w as i32 - w as i32, 0, w, bounds.h);
        (down, up)
    }
}

impl Widget for Spinner {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, focused: bool) {
        canvas.fill_rect(bounds, theme.text_inverse);
        canvas.bevel(bounds, theme.chrome, false);
        let (down, up) = Self::arrow_zones(bounds);
        let down = down.translate(bounds.x, bounds.y);
        let up = up.translate(bounds.x, bounds.y);
        canvas.fill_rect(down, theme.chrome);
        canvas.bevel(down, theme.chrome, true);
        canvas.text_centered(down, "-", theme.text);
        canvas.fill_rect(up, theme.chrome);
        canvas.bevel(up, theme.chrome, true);
        canvas.text_centered(up, "+", theme.text);
        let mid = Rect::new(
            down.right(),
            bounds.y,
            (up.x - down.right()).max(0) as u32,
            bounds.h,
        );
        canvas.text_centered(mid, &format!("{}{}", self.value, self.suffix), theme.text);
        if focused {
            canvas.stroke_rect(bounds, theme.focus);
        }
    }

    fn preferred_size(&self, theme: &Theme) -> Size {
        Size::new(
            28 + font::text_width(&format!("{}{}", self.max, self.suffix)) + 2 * theme.padding,
            font::GLYPH_HEIGHT + 2 * theme.padding + 2,
        )
    }

    fn focusable(&self) -> bool {
        true
    }

    fn on_pointer(&mut self, ev: PointerEvent, bounds: Rect) -> EventResult {
        if ev.phase != PointerPhase::Down {
            return EventResult::ignored();
        }
        let local = Rect::new(0, 0, bounds.w, bounds.h);
        if !local.contains(ev.pos) {
            return EventResult::ignored();
        }
        let (down, up) = Self::arrow_zones(bounds);
        if down.contains(ev.pos) {
            self.change_by(-self.step)
        } else if up.contains(ev.pos) {
            self.change_by(self.step)
        } else {
            EventResult::ignored()
        }
    }

    fn on_key(&mut self, ev: KeyEvent) -> EventResult {
        if !ev.down {
            return EventResult::ignored();
        }
        match ev.sym {
            s if s == KeySym::UP || s == KeySym::RIGHT => self.change_by(self.step),
            s if s == KeySym::DOWN || s == KeySym::LEFT => self.change_by(-self.step),
            s if s == KeySym::HOME => self.change_by(self.min - self.value),
            s if s == KeySym::END => self.change_by(self.max - self.value),
            _ => EventResult::ignored(),
        }
    }

    fn on_focus(&mut self, _gained: bool) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A non-interactive image display (camera snapshots, logos). The image
/// is aspect-fit into the widget bounds at paint time.
#[derive(Debug, Clone)]
pub struct ImageView {
    image: Option<Framebuffer>,
}

impl ImageView {
    /// Creates an empty image view.
    pub fn new() -> ImageView {
        ImageView { image: None }
    }

    /// Creates a view showing `image`.
    pub fn with_image(image: Framebuffer) -> ImageView {
        ImageView { image: Some(image) }
    }

    /// Replaces the displayed image.
    pub fn set_image(&mut self, image: Framebuffer) {
        self.image = Some(image);
    }

    /// Clears the image.
    pub fn clear_image(&mut self) {
        self.image = None;
    }

    /// Whether an image is present.
    pub fn has_image(&self) -> bool {
        self.image.is_some()
    }
}

impl Default for ImageView {
    fn default() -> Self {
        ImageView::new()
    }
}

impl Widget for ImageView {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, _focused: bool) {
        canvas.fill_rect(bounds, theme.chrome.darken());
        canvas.bevel(bounds, theme.chrome, false);
        let inner = bounds.inset(2);
        match &self.image {
            Some(img) if !inner.is_empty() => {
                let fitted = scale_to_fit(img, inner.size(), ScaleFilter::Box);
                let x = inner.x + (inner.w as i32 - fitted.width() as i32) / 2;
                let y = inner.y + (inner.h as i32 - fitted.height() as i32) / 2;
                canvas.clipped(inner, |canvas| {
                    for yy in 0..fitted.height() {
                        for (xx, &px) in fitted.row(yy).iter().enumerate() {
                            canvas.pixel(Point::new(x + xx as i32, y + yy as i32), px);
                        }
                    }
                });
            }
            _ => {
                canvas.text_centered(inner, "(no image)", theme.disabled);
            }
        }
    }

    fn preferred_size(&self, _theme: &Theme) -> Size {
        match &self.image {
            Some(img) => Size::new(img.width().min(160) + 4, img.height().min(120) + 4),
            None => Size::new(84, 64),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_raster::color::Color;

    fn key(sym: KeySym) -> KeyEvent {
        KeyEvent { down: true, sym }
    }

    #[test]
    fn checkbox_toggles_by_key_and_pointer() {
        let mut c = Checkbox::new("Repeat", false);
        assert_eq!(
            c.on_key(key(KeySym::RETURN)).action,
            Some(Action::Toggled(true))
        );
        let ev = PointerEvent {
            phase: PointerPhase::Up,
            pos: Point::new(5, 5),
            inside: true,
        };
        assert_eq!(
            c.on_pointer(ev, Rect::new(0, 0, 60, 16)).action,
            Some(Action::Toggled(false))
        );
    }

    #[test]
    fn checkbox_disabled_is_inert() {
        let mut c = Checkbox::new("x", true);
        c.set_enabled(false);
        assert!(!c.focusable());
        assert_eq!(c.on_key(key(KeySym::RETURN)), EventResult::ignored());
        assert!(c.is_checked());
    }

    #[test]
    fn spinner_steps_and_clamps() {
        let mut s = Spinner::new(0, 10, 5, 2);
        assert_eq!(
            s.on_key(key(KeySym::UP)).action,
            Some(Action::ValueChanged(7))
        );
        assert_eq!(
            s.on_key(key(KeySym::DOWN)).action,
            Some(Action::ValueChanged(5))
        );
        assert_eq!(
            s.on_key(key(KeySym::END)).action,
            Some(Action::ValueChanged(10))
        );
        assert_eq!(s.on_key(key(KeySym::UP)), EventResult::ignored(), "clamped");
        assert_eq!(
            s.on_key(key(KeySym::HOME)).action,
            Some(Action::ValueChanged(0))
        );
    }

    #[test]
    fn spinner_pointer_arrows() {
        let bounds = Rect::new(0, 0, 80, 18);
        let mut s = Spinner::new(0, 100, 50, 5);
        let down_ev = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(3, 9),
            inside: true,
        };
        assert_eq!(
            s.on_pointer(down_ev, bounds).action,
            Some(Action::ValueChanged(45))
        );
        let up_ev = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(77, 9),
            inside: true,
        };
        assert_eq!(
            s.on_pointer(up_ev, bounds).action,
            Some(Action::ValueChanged(50))
        );
        let mid_ev = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(40, 9),
            inside: true,
        };
        assert_eq!(s.on_pointer(mid_ev, bounds), EventResult::ignored());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn spinner_bad_range_panics() {
        Spinner::new(5, 5, 5, 1);
    }

    #[test]
    fn image_view_paints_image_or_placeholder() {
        let theme = Theme::classic();
        let bounds = Rect::new(0, 0, 60, 40);
        let mut fb1 = Framebuffer::new(60, 40, Color::BLACK);
        ImageView::new().paint(&mut Canvas::new(&mut fb1), bounds, &theme, false);
        let mut img = Framebuffer::new(20, 20, Color::RED);
        img.clear(Color::RED);
        let mut fb2 = Framebuffer::new(60, 40, Color::BLACK);
        ImageView::with_image(img).paint(&mut Canvas::new(&mut fb2), bounds, &theme, false);
        assert_ne!(fb1, fb2);
        let red = fb2.pixels().iter().filter(|&&p| p == Color::RED).count();
        assert!(red > 100, "image pixels shown: {red}");
    }

    #[test]
    fn image_view_state() {
        let mut v = ImageView::new();
        assert!(!v.has_image());
        v.set_image(Framebuffer::new(4, 4, Color::GREEN));
        assert!(v.has_image());
        v.clear_image();
        assert!(!v.has_image());
    }

    #[test]
    fn spinner_suffix_displayed_size() {
        let theme = Theme::classic();
        let bare = Spinner::new(0, 99, 0, 1).preferred_size(&theme);
        let suffixed = Spinner::new(0, 99, 0, 1)
            .with_suffix("°C")
            .preferred_size(&theme);
        assert!(suffixed.w > bare.w);
    }
}
