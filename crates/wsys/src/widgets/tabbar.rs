//! [`TabBar`]: a horizontal row of page tabs emitting
//! [`Action::Selected`].

use crate::event::{Action, KeyEvent, PointerEvent, PointerPhase};
use crate::theme::Theme;
use crate::widget::{EventResult, Widget};
use std::any::Any;
use uniint_protocol::input::KeySym;
use uniint_raster::draw::Canvas;
use uniint_raster::font;
use uniint_raster::geom::{Rect, Size};

/// A tab strip. The selected tab is drawn raised and connected to the
/// content below.
#[derive(Debug, Clone)]
pub struct TabBar {
    labels: Vec<String>,
    selected: usize,
}

impl TabBar {
    /// Creates a tab bar with the first tab selected.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn new(labels: Vec<String>) -> TabBar {
        assert!(!labels.is_empty(), "tab bar needs at least one tab");
        TabBar {
            labels,
            selected: 0,
        }
    }

    /// Tab captions.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Selected tab index.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// Sets the selection silently, clamped to range.
    pub fn set_selected(&mut self, index: usize) {
        self.selected = index.min(self.labels.len() - 1);
    }

    fn tab_width(&self, bounds_w: u32) -> u32 {
        (bounds_w / self.labels.len() as u32).max(8)
    }

    fn select(&mut self, index: usize) -> EventResult {
        if index >= self.labels.len() || index == self.selected {
            return EventResult::ignored();
        }
        self.selected = index;
        EventResult::action(Action::Selected(index))
    }
}

impl Widget for TabBar {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, focused: bool) {
        canvas.fill_rect(bounds, theme.background);
        let tw = self.tab_width(bounds.w);
        for (i, label) in self.labels.iter().enumerate() {
            let x = bounds.x + (i as u32 * tw) as i32;
            let selected = i == self.selected;
            let tab = if selected {
                Rect::new(x, bounds.y, tw, bounds.h)
            } else {
                Rect::new(x, bounds.y + 2, tw, bounds.h.saturating_sub(2))
            };
            let face = if selected {
                theme.chrome.lighten()
            } else {
                theme.chrome
            };
            canvas.fill_rect(tab, face);
            canvas.bevel(tab, face, true);
            let color = if selected { theme.text } else { theme.disabled };
            canvas.text_centered(tab, label, color);
            if selected && focused {
                canvas.stroke_rect(tab.inset(2), theme.focus);
            }
        }
        // Baseline under unselected tabs to suggest the page edge.
        canvas.hline(
            bounds.bottom() - 1,
            bounds.x,
            bounds.right(),
            theme.chrome.darken(),
        );
    }

    fn preferred_size(&self, theme: &Theme) -> Size {
        let widest = self
            .labels
            .iter()
            .map(|l| font::text_width(l))
            .max()
            .unwrap_or(20);
        Size::new(
            (widest + 2 * theme.padding) * self.labels.len() as u32,
            font::GLYPH_HEIGHT + 2 * theme.padding + 2,
        )
    }

    fn focusable(&self) -> bool {
        true
    }

    fn on_pointer(&mut self, ev: PointerEvent, bounds: Rect) -> EventResult {
        if ev.phase != PointerPhase::Down {
            return EventResult::ignored();
        }
        let tw = self.tab_width(bounds.w) as i32;
        if ev.pos.x < 0 {
            return EventResult::ignored();
        }
        self.select((ev.pos.x / tw) as usize)
    }

    fn on_key(&mut self, ev: KeyEvent) -> EventResult {
        if !ev.down {
            return EventResult::ignored();
        }
        match ev.sym {
            s if s == KeySym::LEFT => {
                if self.selected == 0 {
                    EventResult::ignored()
                } else {
                    self.select(self.selected - 1)
                }
            }
            s if s == KeySym::RIGHT => self.select(self.selected + 1),
            s if s == KeySym::HOME => self.select(0),
            s if s == KeySym::END => self.select(self.labels.len() - 1),
            _ => EventResult::ignored(),
        }
    }

    fn on_focus(&mut self, _gained: bool) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_raster::geom::Point;

    fn bar() -> TabBar {
        TabBar::new(vec!["TV".into(), "VCR".into(), "Amp".into()])
    }

    fn key(sym: KeySym) -> KeyEvent {
        KeyEvent { down: true, sym }
    }

    #[test]
    fn arrows_move_selection() {
        let mut t = bar();
        assert_eq!(
            t.on_key(key(KeySym::RIGHT)).action,
            Some(Action::Selected(1))
        );
        assert_eq!(
            t.on_key(key(KeySym::RIGHT)).action,
            Some(Action::Selected(2))
        );
        assert_eq!(
            t.on_key(key(KeySym::RIGHT)),
            EventResult::ignored(),
            "clamped"
        );
        assert_eq!(
            t.on_key(key(KeySym::HOME)).action,
            Some(Action::Selected(0))
        );
        assert_eq!(t.on_key(key(KeySym::LEFT)), EventResult::ignored());
    }

    #[test]
    fn pointer_selects_tab() {
        let mut t = bar();
        let bounds = Rect::new(0, 0, 90, 16); // 30px per tab
        let ev = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(65, 8),
            inside: true,
        };
        assert_eq!(t.on_pointer(ev, bounds).action, Some(Action::Selected(2)));
        // Same tab again: no action.
        let ev2 = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(70, 8),
            inside: true,
        };
        assert_eq!(t.on_pointer(ev2, bounds), EventResult::ignored());
    }

    #[test]
    fn set_selected_clamps() {
        let mut t = bar();
        t.set_selected(99);
        assert_eq!(t.selected(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_tabbar_panics() {
        TabBar::new(vec![]);
    }

    #[test]
    fn paint_differs_by_selection() {
        use uniint_raster::color::Color;
        use uniint_raster::framebuffer::Framebuffer;
        let theme = Theme::classic();
        let bounds = Rect::new(0, 0, 90, 16);
        let mut fb_a = Framebuffer::new(90, 16, Color::WHITE);
        let mut fb_b = Framebuffer::new(90, 16, Color::WHITE);
        bar().paint(&mut Canvas::new(&mut fb_a), bounds, &theme, false);
        let mut t = bar();
        t.set_selected(2);
        t.paint(&mut Canvas::new(&mut fb_b), bounds, &theme, false);
        assert_ne!(fb_a, fb_b);
    }
}
