//! [`TextField`]: single-line text entry (device names, channel numbers).

use crate::event::{Action, KeyEvent, PointerEvent, PointerPhase};
use crate::theme::Theme;
use crate::widget::{EventResult, Widget};
use std::any::Any;
use uniint_protocol::input::KeySym;
use uniint_raster::draw::Canvas;
use uniint_raster::font;
use uniint_raster::geom::{Point, Rect, Size};

/// A single-line editable text field emitting [`Action::TextChanged`] on
/// every edit and [`Action::Submitted`] on Return.
#[derive(Debug, Clone)]
pub struct TextField {
    text: String,
    cursor: usize, // byte offset, always on a char boundary
    max_len: usize,
}

impl TextField {
    /// Creates a field with initial `text` and a maximum of 256 chars.
    pub fn new(text: impl Into<String>) -> TextField {
        let text = text.into();
        let cursor = text.len();
        TextField {
            text,
            cursor,
            max_len: 256,
        }
    }

    /// Restricts the maximum number of characters.
    pub fn with_max_len(mut self, max_len: usize) -> TextField {
        self.max_len = max_len;
        self
    }

    /// Current content.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Replaces the content silently and moves the cursor to the end.
    pub fn set_text(&mut self, text: impl Into<String>) {
        self.text = text.into();
        self.cursor = self.text.len();
    }

    /// Cursor position as a character index.
    pub fn cursor_chars(&self) -> usize {
        self.text[..self.cursor].chars().count()
    }

    fn prev_boundary(&self) -> usize {
        self.text[..self.cursor]
            .char_indices()
            .last()
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn next_boundary(&self) -> usize {
        self.text[self.cursor..]
            .chars()
            .next()
            .map(|c| self.cursor + c.len_utf8())
            .unwrap_or(self.cursor)
    }
}

impl Widget for TextField {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, focused: bool) {
        canvas.fill_rect(bounds, theme.text_inverse);
        canvas.bevel(bounds, theme.chrome, false);
        let inner = bounds.inset(2);
        canvas.clipped(inner, |canvas| {
            let y = inner.y + (inner.h as i32 - font::GLYPH_HEIGHT as i32) / 2;
            canvas.text(Point::new(inner.x + 2, y), &self.text, theme.text);
            if focused {
                let cx = inner.x + 2 + (self.cursor_chars() as u32 * font::ADVANCE) as i32;
                canvas.vline(cx, y - 1, y + font::GLYPH_HEIGHT as i32 + 1, theme.accent);
            }
        });
        if focused {
            canvas.stroke_rect(bounds, theme.focus);
        }
    }

    fn preferred_size(&self, theme: &Theme) -> Size {
        Size::new(100, font::GLYPH_HEIGHT + 2 * theme.padding + 2)
    }

    fn focusable(&self) -> bool {
        true
    }

    fn on_pointer(&mut self, ev: PointerEvent, _bounds: Rect) -> EventResult {
        if ev.phase != PointerPhase::Down {
            return EventResult::ignored();
        }
        // Move the cursor to the clicked character cell.
        let cell = ((ev.pos.x - 4).max(0) as u32 / font::ADVANCE) as usize;
        let mut byte = self.text.len();
        for (n, (i, _)) in self.text.char_indices().enumerate() {
            if n == cell {
                byte = i;
                break;
            }
        }
        self.cursor = byte;
        EventResult::repaint()
    }

    fn on_key(&mut self, ev: KeyEvent) -> EventResult {
        if !ev.down {
            return EventResult::ignored();
        }
        match ev.sym {
            s if s == KeySym::RETURN => EventResult::action(Action::Submitted(self.text.clone())),
            s if s == KeySym::BACKSPACE => {
                if self.cursor == 0 {
                    return EventResult::ignored();
                }
                let p = self.prev_boundary();
                self.text.replace_range(p..self.cursor, "");
                self.cursor = p;
                EventResult::action(Action::TextChanged(self.text.clone()))
            }
            s if s == KeySym::DELETE => {
                if self.cursor >= self.text.len() {
                    return EventResult::ignored();
                }
                let n = self.next_boundary();
                self.text.replace_range(self.cursor..n, "");
                EventResult::action(Action::TextChanged(self.text.clone()))
            }
            s if s == KeySym::LEFT => {
                if self.cursor == 0 {
                    return EventResult::ignored();
                }
                self.cursor = self.prev_boundary();
                EventResult::repaint()
            }
            s if s == KeySym::RIGHT => {
                if self.cursor >= self.text.len() {
                    return EventResult::ignored();
                }
                self.cursor = self.next_boundary();
                EventResult::repaint()
            }
            s if s == KeySym::HOME => {
                self.cursor = 0;
                EventResult::repaint()
            }
            s if s == KeySym::END => {
                self.cursor = self.text.len();
                EventResult::repaint()
            }
            sym => match sym.to_char() {
                Some(c) if !c.is_control() => {
                    if self.text.chars().count() >= self.max_len {
                        return EventResult::ignored();
                    }
                    self.text.insert(self.cursor, c);
                    self.cursor += c.len_utf8();
                    EventResult::action(Action::TextChanged(self.text.clone()))
                }
                _ => EventResult::ignored(),
            },
        }
    }

    fn on_focus(&mut self, _gained: bool) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sym: KeySym) -> KeyEvent {
        KeyEvent { down: true, sym }
    }

    fn type_str(f: &mut TextField, s: &str) {
        for c in s.chars() {
            f.on_key(key(c.into()));
        }
    }

    #[test]
    fn typing_appends() {
        let mut f = TextField::new("");
        type_str(&mut f, "ch 5");
        assert_eq!(f.text(), "ch 5");
    }

    #[test]
    fn typing_emits_text_changed() {
        let mut f = TextField::new("");
        let r = f.on_key(key('a'.into()));
        assert_eq!(r.action, Some(Action::TextChanged("a".into())));
    }

    #[test]
    fn backspace_deletes_before_cursor() {
        let mut f = TextField::new("abc");
        f.on_key(key(KeySym::BACKSPACE));
        assert_eq!(f.text(), "ab");
        f.on_key(key(KeySym::HOME));
        let r = f.on_key(key(KeySym::BACKSPACE));
        assert_eq!(r, EventResult::ignored());
        assert_eq!(f.text(), "ab");
    }

    #[test]
    fn delete_removes_at_cursor() {
        let mut f = TextField::new("abc");
        f.on_key(key(KeySym::HOME));
        f.on_key(key(KeySym::DELETE));
        assert_eq!(f.text(), "bc");
        f.on_key(key(KeySym::END));
        assert_eq!(f.on_key(key(KeySym::DELETE)), EventResult::ignored());
    }

    #[test]
    fn cursor_movement_and_mid_insert() {
        let mut f = TextField::new("ac");
        f.on_key(key(KeySym::LEFT));
        f.on_key(key('b'.into()));
        assert_eq!(f.text(), "abc");
        assert_eq!(f.cursor_chars(), 2);
    }

    #[test]
    fn multibyte_chars_safe() {
        let mut f = TextField::new("");
        type_str(&mut f, "日本語");
        assert_eq!(f.text(), "日本語");
        f.on_key(key(KeySym::LEFT));
        f.on_key(key(KeySym::BACKSPACE));
        assert_eq!(f.text(), "日語");
        f.on_key(key('本'.into()));
        assert_eq!(f.text(), "日本語");
    }

    #[test]
    fn return_submits() {
        let mut f = TextField::new("go");
        let r = f.on_key(key(KeySym::RETURN));
        assert_eq!(r.action, Some(Action::Submitted("go".into())));
        assert_eq!(f.text(), "go", "submit does not clear");
    }

    #[test]
    fn max_len_enforced() {
        let mut f = TextField::new("").with_max_len(3);
        type_str(&mut f, "12345");
        assert_eq!(f.text(), "123");
    }

    #[test]
    fn control_chars_ignored() {
        let mut f = TextField::new("");
        let r = f.on_key(key(KeySym(0x07))); // BEL
        assert_eq!(r, EventResult::ignored());
        assert_eq!(f.text(), "");
    }

    #[test]
    fn pointer_click_moves_cursor() {
        let mut f = TextField::new("hello");
        let ev = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(4 + 2 * font::ADVANCE as i32, 5),
            inside: true,
        };
        f.on_pointer(ev, Rect::new(0, 0, 100, 16));
        assert_eq!(f.cursor_chars(), 2);
    }

    #[test]
    fn set_text_moves_cursor_to_end() {
        let mut f = TextField::new("a");
        f.set_text("wxyz");
        assert_eq!(f.cursor_chars(), 4);
    }
}
