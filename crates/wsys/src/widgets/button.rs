//! Activatable widgets: [`Button`] and [`Toggle`].

use crate::event::{Action, KeyEvent, PointerEvent, PointerPhase};
use crate::theme::Theme;
use crate::widget::{EventResult, Widget};
use std::any::Any;
use uniint_protocol::input::KeySym;
use uniint_raster::draw::Canvas;
use uniint_raster::font;
use uniint_raster::geom::{Rect, Size};

/// A push button emitting [`Action::Clicked`].
#[derive(Debug, Clone)]
pub struct Button {
    caption: String,
    pressed: bool,
    enabled: bool,
}

impl Button {
    /// Creates an enabled button.
    pub fn new(caption: impl Into<String>) -> Button {
        Button {
            caption: caption.into(),
            pressed: false,
            enabled: true,
        }
    }

    /// Button caption.
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// Replaces the caption.
    pub fn set_caption(&mut self, caption: impl Into<String>) {
        self.caption = caption.into();
    }

    /// Whether the button reacts to input.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the button.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.pressed = false;
        }
    }

    /// Whether the button is currently held down.
    pub fn is_pressed(&self) -> bool {
        self.pressed
    }
}

impl Widget for Button {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, focused: bool) {
        canvas.fill_rect(bounds, theme.chrome);
        canvas.bevel(bounds, theme.chrome, !self.pressed);
        let text_color = if self.enabled {
            theme.text
        } else {
            theme.disabled
        };
        let text_bounds = if self.pressed {
            bounds.translate(1, 1)
        } else {
            bounds
        };
        canvas.text_centered(text_bounds, &self.caption, text_color);
        if focused {
            canvas.stroke_rect(bounds.inset(2), theme.focus);
        }
    }

    fn preferred_size(&self, theme: &Theme) -> Size {
        Size::new(
            font::text_width(&self.caption) + 4 * theme.padding,
            font::GLYPH_HEIGHT + 2 * theme.padding + 2,
        )
    }

    fn focusable(&self) -> bool {
        self.enabled
    }

    fn on_pointer(&mut self, ev: PointerEvent, _bounds: Rect) -> EventResult {
        if !self.enabled {
            return EventResult::ignored();
        }
        match ev.phase {
            PointerPhase::Down => {
                self.pressed = true;
                EventResult::repaint()
            }
            PointerPhase::Drag => {
                let was = self.pressed;
                self.pressed = ev.inside;
                if was != self.pressed {
                    EventResult::repaint()
                } else {
                    EventResult::ignored()
                }
            }
            PointerPhase::Up => {
                let fire = self.pressed && ev.inside;
                self.pressed = false;
                if fire {
                    EventResult::action(Action::Clicked)
                } else {
                    EventResult::repaint()
                }
            }
            PointerPhase::Hover => EventResult::ignored(),
        }
    }

    fn on_key(&mut self, ev: KeyEvent) -> EventResult {
        if !self.enabled {
            return EventResult::ignored();
        }
        let activate = ev.sym == KeySym::RETURN || ev.sym == KeySym::from_char(' ');
        if !activate {
            return EventResult::ignored();
        }
        if ev.down {
            self.pressed = true;
            EventResult::repaint()
        } else if self.pressed {
            self.pressed = false;
            EventResult::action(Action::Clicked)
        } else {
            EventResult::ignored()
        }
    }

    fn on_focus(&mut self, gained: bool) -> bool {
        if !gained {
            self.pressed = false;
        }
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A two-state switch emitting [`Action::Toggled`].
#[derive(Debug, Clone)]
pub struct Toggle {
    caption: String,
    on: bool,
    enabled: bool,
}

impl Toggle {
    /// Creates a toggle in the given state.
    pub fn new(caption: impl Into<String>, on: bool) -> Toggle {
        Toggle {
            caption: caption.into(),
            on,
            enabled: true,
        }
    }

    /// Current state.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Sets the state without emitting an action.
    pub fn set_on(&mut self, on: bool) {
        self.on = on;
    }

    /// Caption text.
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// Enables or disables the toggle.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    fn flip(&mut self) -> EventResult {
        self.on = !self.on;
        EventResult::action(Action::Toggled(self.on))
    }
}

impl Widget for Toggle {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, focused: bool) {
        let face = if self.on { theme.accent } else { theme.chrome };
        canvas.fill_rect(bounds, face);
        canvas.bevel(bounds, face, !self.on);
        let text_color = if !self.enabled {
            theme.disabled
        } else if self.on {
            theme.text_inverse
        } else {
            theme.text
        };
        canvas.text_centered(bounds, &self.caption, text_color);
        if focused {
            canvas.stroke_rect(bounds.inset(2), theme.focus);
        }
    }

    fn preferred_size(&self, theme: &Theme) -> Size {
        Size::new(
            font::text_width(&self.caption) + 4 * theme.padding,
            font::GLYPH_HEIGHT + 2 * theme.padding + 2,
        )
    }

    fn focusable(&self) -> bool {
        self.enabled
    }

    fn on_pointer(&mut self, ev: PointerEvent, _bounds: Rect) -> EventResult {
        if !self.enabled {
            return EventResult::ignored();
        }
        if ev.phase == PointerPhase::Up && ev.inside {
            self.flip()
        } else {
            EventResult::ignored()
        }
    }

    fn on_key(&mut self, ev: KeyEvent) -> EventResult {
        if !self.enabled || !ev.down {
            return EventResult::ignored();
        }
        if ev.sym == KeySym::RETURN || ev.sym == KeySym::from_char(' ') {
            self.flip()
        } else {
            EventResult::ignored()
        }
    }

    fn on_focus(&mut self, _gained: bool) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_raster::geom::Point;

    fn pev(phase: PointerPhase, inside: bool) -> PointerEvent {
        PointerEvent {
            phase,
            pos: Point::new(1, 1),
            inside,
        }
    }

    #[test]
    fn click_fires_on_release_inside() {
        let mut b = Button::new("Play");
        let r = b.on_pointer(pev(PointerPhase::Down, true), Rect::new(0, 0, 10, 10));
        assert!(r.repaint && r.action.is_none());
        assert!(b.is_pressed());
        let r = b.on_pointer(pev(PointerPhase::Up, true), Rect::new(0, 0, 10, 10));
        assert_eq!(r.action, Some(Action::Clicked));
        assert!(!b.is_pressed());
    }

    #[test]
    fn release_outside_cancels() {
        let mut b = Button::new("Play");
        b.on_pointer(pev(PointerPhase::Down, true), Rect::new(0, 0, 10, 10));
        b.on_pointer(pev(PointerPhase::Drag, false), Rect::new(0, 0, 10, 10));
        let r = b.on_pointer(pev(PointerPhase::Up, false), Rect::new(0, 0, 10, 10));
        assert_eq!(r.action, None);
    }

    #[test]
    fn disabled_button_inert() {
        let mut b = Button::new("Play");
        b.set_enabled(false);
        assert!(!b.focusable());
        let r = b.on_pointer(pev(PointerPhase::Down, true), Rect::new(0, 0, 10, 10));
        assert_eq!(r, EventResult::ignored());
        let r = b.on_key(KeyEvent {
            down: true,
            sym: KeySym::RETURN,
        });
        assert_eq!(r, EventResult::ignored());
    }

    #[test]
    fn keyboard_activation() {
        let mut b = Button::new("Play");
        let r = b.on_key(KeyEvent {
            down: true,
            sym: KeySym::RETURN,
        });
        assert!(r.repaint);
        let r = b.on_key(KeyEvent {
            down: false,
            sym: KeySym::RETURN,
        });
        assert_eq!(r.action, Some(Action::Clicked));
    }

    #[test]
    fn space_also_activates() {
        let mut b = Button::new("Play");
        b.on_key(KeyEvent {
            down: true,
            sym: ' '.into(),
        });
        let r = b.on_key(KeyEvent {
            down: false,
            sym: ' '.into(),
        });
        assert_eq!(r.action, Some(Action::Clicked));
    }

    #[test]
    fn other_keys_ignored() {
        let mut b = Button::new("Play");
        let r = b.on_key(KeyEvent {
            down: true,
            sym: 'x'.into(),
        });
        assert_eq!(r, EventResult::ignored());
    }

    #[test]
    fn losing_focus_releases_press() {
        let mut b = Button::new("Play");
        b.on_key(KeyEvent {
            down: true,
            sym: KeySym::RETURN,
        });
        assert!(b.is_pressed());
        b.on_focus(false);
        assert!(!b.is_pressed());
        // The release after focus loss must not fire.
        let r = b.on_key(KeyEvent {
            down: false,
            sym: KeySym::RETURN,
        });
        assert_eq!(r.action, None);
    }

    #[test]
    fn toggle_flips_on_click_and_key() {
        let mut t = Toggle::new("Mute", false);
        let r = t.on_pointer(pev(PointerPhase::Up, true), Rect::new(0, 0, 10, 10));
        assert_eq!(r.action, Some(Action::Toggled(true)));
        assert!(t.is_on());
        let r = t.on_key(KeyEvent {
            down: true,
            sym: KeySym::RETURN,
        });
        assert_eq!(r.action, Some(Action::Toggled(false)));
        assert!(!t.is_on());
    }

    #[test]
    fn toggle_set_on_is_silent() {
        let mut t = Toggle::new("Mute", false);
        t.set_on(true);
        assert!(t.is_on());
    }

    #[test]
    fn toggle_paint_differs_by_state() {
        use uniint_raster::color::Color;
        use uniint_raster::framebuffer::Framebuffer;
        let theme = Theme::classic();
        let mut fb_off = Framebuffer::new(40, 16, Color::WHITE);
        let mut fb_on = Framebuffer::new(40, 16, Color::WHITE);
        let bounds = Rect::new(0, 0, 40, 16);
        Toggle::new("M", false).paint(&mut Canvas::new(&mut fb_off), bounds, &theme, false);
        Toggle::new("M", true).paint(&mut Canvas::new(&mut fb_on), bounds, &theme, false);
        assert_ne!(fb_off, fb_on);
    }
}
