//! [`ListBox`]: a scrollable single-selection list (channel lists, track
//! lists, appliance pickers).

use crate::event::{Action, KeyEvent, PointerEvent, PointerPhase};
use crate::theme::Theme;
use crate::widget::{EventResult, Widget};
use std::any::Any;
use uniint_protocol::input::KeySym;
use uniint_raster::draw::Canvas;
use uniint_raster::font;
use uniint_raster::geom::{Point, Rect, Size};

/// Pixel height of one list row.
const ROW_H: u32 = font::GLYPH_HEIGHT + 4;

/// A single-selection list emitting [`Action::Selected`].
#[derive(Debug, Clone)]
pub struct ListBox {
    items: Vec<String>,
    selected: Option<usize>,
    scroll: usize,
}

impl ListBox {
    /// Creates a list with nothing selected.
    pub fn new(items: Vec<String>) -> ListBox {
        ListBox {
            items,
            selected: None,
            scroll: 0,
        }
    }

    /// The items.
    pub fn items(&self) -> &[String] {
        &self.items
    }

    /// Replaces all items, clearing the selection if out of range.
    pub fn set_items(&mut self, items: Vec<String>) {
        if let Some(s) = self.selected {
            if s >= items.len() {
                self.selected = None;
            }
        }
        self.scroll = self.scroll.min(items.len().saturating_sub(1));
        self.items = items;
    }

    /// Currently selected row.
    pub fn selected(&self) -> Option<usize> {
        self.selected
    }

    /// Sets the selection silently, clamping out-of-range to `None`.
    pub fn set_selected(&mut self, index: Option<usize>) {
        self.selected = index.filter(|&i| i < self.items.len());
    }

    /// First visible row (scroll offset).
    pub fn scroll(&self) -> usize {
        self.scroll
    }

    fn rows_visible(bounds: Rect) -> usize {
        (bounds.h.saturating_sub(4) / ROW_H).max(1) as usize
    }

    fn select(&mut self, index: usize, bounds: Rect) -> EventResult {
        if index >= self.items.len() {
            return EventResult::ignored();
        }
        let vis = Self::rows_visible(bounds);
        if index < self.scroll {
            self.scroll = index;
        } else if index >= self.scroll + vis {
            self.scroll = index + 1 - vis;
        }
        if self.selected == Some(index) {
            return EventResult::repaint();
        }
        self.selected = Some(index);
        EventResult::action(Action::Selected(index))
    }
}

impl Widget for ListBox {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, focused: bool) {
        canvas.fill_rect(bounds, theme.text_inverse);
        canvas.bevel(bounds, theme.chrome, false);
        let inner = bounds.inset(2);
        canvas.clipped(inner, |canvas| {
            for (row, item) in self.items.iter().enumerate().skip(self.scroll) {
                let y = inner.y + ((row - self.scroll) as u32 * ROW_H) as i32;
                if y >= inner.bottom() {
                    break;
                }
                let row_rect = Rect::new(inner.x, y, inner.w, ROW_H);
                let selected = self.selected == Some(row);
                if selected {
                    canvas.fill_rect(row_rect, theme.accent);
                }
                let color = if selected {
                    theme.text_inverse
                } else {
                    theme.text
                };
                canvas.text(Point::new(inner.x + 3, y + 2), item, color);
            }
        });
        if focused {
            canvas.stroke_rect(bounds, theme.focus);
        }
    }

    fn preferred_size(&self, theme: &Theme) -> Size {
        let w = self
            .items
            .iter()
            .map(|s| font::text_width(s))
            .max()
            .unwrap_or(40)
            + 2 * theme.padding
            + 6;
        let h = (self.items.len().clamp(2, 6) as u32) * ROW_H + 4;
        Size::new(w, h)
    }

    fn focusable(&self) -> bool {
        true
    }

    fn on_pointer(&mut self, ev: PointerEvent, bounds: Rect) -> EventResult {
        if ev.phase != PointerPhase::Down {
            return EventResult::ignored();
        }
        let local_bounds = Rect::new(0, 0, bounds.w, bounds.h);
        if !local_bounds.contains(ev.pos) {
            return EventResult::ignored();
        }
        let row = self.scroll + ((ev.pos.y - 2).max(0) as u32 / ROW_H) as usize;
        self.select(row, bounds)
    }

    fn on_key(&mut self, ev: KeyEvent) -> EventResult {
        if !ev.down || self.items.is_empty() {
            return EventResult::ignored();
        }
        // Key handlers see a nominal 6-row viewport; pointer paths use real
        // bounds. Exact scroll is re-clamped at paint time.
        let nominal = Rect::new(0, 0, 100, 6 * ROW_H + 4);
        match ev.sym {
            s if s == KeySym::UP => {
                let cur = self.selected.unwrap_or(0);
                self.select(
                    cur.saturating_sub(usize::from(self.selected.is_some())),
                    nominal,
                )
            }
            s if s == KeySym::DOWN => {
                let next = match self.selected {
                    None => 0,
                    Some(i) => (i + 1).min(self.items.len() - 1),
                };
                self.select(next, nominal)
            }
            s if s == KeySym::HOME => self.select(0, nominal),
            s if s == KeySym::END => self.select(self.items.len() - 1, nominal),
            _ => EventResult::ignored(),
        }
    }

    fn on_focus(&mut self, _gained: bool) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(n: usize) -> ListBox {
        ListBox::new((0..n).map(|i| format!("item {i}")).collect())
    }

    fn key(sym: KeySym) -> KeyEvent {
        KeyEvent { down: true, sym }
    }

    #[test]
    fn down_selects_first_then_advances() {
        let mut l = list(3);
        assert_eq!(
            l.on_key(key(KeySym::DOWN)).action,
            Some(Action::Selected(0))
        );
        assert_eq!(
            l.on_key(key(KeySym::DOWN)).action,
            Some(Action::Selected(1))
        );
        assert_eq!(
            l.on_key(key(KeySym::DOWN)).action,
            Some(Action::Selected(2))
        );
        // Clamped at end: repaint but no action.
        assert_eq!(l.on_key(key(KeySym::DOWN)).action, None);
        assert_eq!(l.selected(), Some(2));
    }

    #[test]
    fn up_moves_back_and_clamps() {
        let mut l = list(3);
        l.set_selected(Some(2));
        assert_eq!(l.on_key(key(KeySym::UP)).action, Some(Action::Selected(1)));
        l.set_selected(Some(0));
        assert_eq!(l.on_key(key(KeySym::UP)).action, None);
    }

    #[test]
    fn home_end() {
        let mut l = list(10);
        assert_eq!(l.on_key(key(KeySym::END)).action, Some(Action::Selected(9)));
        assert_eq!(
            l.on_key(key(KeySym::HOME)).action,
            Some(Action::Selected(0))
        );
    }

    #[test]
    fn selection_scrolls_viewport() {
        let mut l = list(30);
        l.on_key(key(KeySym::END));
        assert!(l.scroll() > 0, "selecting the last row must scroll");
        l.on_key(key(KeySym::HOME));
        assert_eq!(l.scroll(), 0);
    }

    #[test]
    fn pointer_selects_row() {
        let mut l = list(5);
        let bounds = Rect::new(0, 0, 80, 80);
        let ev = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(10, 2 + ROW_H as i32 + 1),
            inside: true,
        };
        assert_eq!(l.on_pointer(ev, bounds).action, Some(Action::Selected(1)));
    }

    #[test]
    fn pointer_past_items_ignored() {
        let mut l = list(2);
        let bounds = Rect::new(0, 0, 80, 200);
        let ev = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(10, 150),
            inside: true,
        };
        assert_eq!(l.on_pointer(ev, bounds), EventResult::ignored());
    }

    #[test]
    fn reselect_same_row_no_action() {
        let mut l = list(3);
        l.on_key(key(KeySym::DOWN));
        let bounds = Rect::new(0, 0, 80, 80);
        let ev = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(5, 3),
            inside: true,
        };
        let r = l.on_pointer(ev, bounds);
        assert_eq!(r.action, None, "same row: no duplicate Selected action");
        assert!(r.repaint);
    }

    #[test]
    fn set_items_fixes_selection() {
        let mut l = list(5);
        l.set_selected(Some(4));
        l.set_items(vec!["only".into()]);
        assert_eq!(l.selected(), None);
        assert_eq!(l.items().len(), 1);
    }

    #[test]
    fn empty_list_keys_ignored() {
        let mut l = list(0);
        assert_eq!(l.on_key(key(KeySym::DOWN)), EventResult::ignored());
    }
}
