//! Non-interactive widgets: [`Label`], [`Separator`] and [`ProgressBar`].

use crate::event::Action;
use crate::theme::Theme;
use crate::widget::Widget;
use std::any::Any;
use uniint_raster::draw::Canvas;
use uniint_raster::font;
use uniint_raster::geom::{Rect, Size};

/// Horizontal text alignment inside a widget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Flush left.
    Left,
    /// Centered.
    #[default]
    Center,
    /// Flush right.
    Right,
}

/// A line of static text.
#[derive(Debug, Clone)]
pub struct Label {
    text: String,
    align: Align,
}

impl Label {
    /// Creates a centered label.
    pub fn new(text: impl Into<String>) -> Label {
        Label {
            text: text.into(),
            align: Align::Center,
        }
    }

    /// Creates a label with explicit alignment.
    pub fn with_align(text: impl Into<String>, align: Align) -> Label {
        Label {
            text: text.into(),
            align,
        }
    }

    /// Current text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Replaces the text.
    pub fn set_text(&mut self, text: impl Into<String>) {
        self.text = text.into();
    }
}

impl Widget for Label {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, _focused: bool) {
        let tw = font::text_width(&self.text) as i32;
        let x = match self.align {
            Align::Left => bounds.x,
            Align::Center => bounds.x + (bounds.w as i32 - tw) / 2,
            Align::Right => bounds.right() - tw,
        };
        let y = bounds.y + (bounds.h as i32 - font::GLYPH_HEIGHT as i32) / 2;
        canvas.clipped(bounds, |canvas| {
            canvas.text(
                uniint_raster::geom::Point::new(x.max(bounds.x), y),
                &self.text,
                theme.text,
            );
        });
    }

    fn preferred_size(&self, theme: &Theme) -> Size {
        Size::new(
            font::text_width(&self.text) + 2 * theme.padding,
            font::LINE_HEIGHT + 2,
        )
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A thin horizontal rule.
#[derive(Debug, Clone, Default)]
pub struct Separator;

impl Separator {
    /// Creates a separator.
    pub fn new() -> Separator {
        Separator
    }
}

impl Widget for Separator {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, _focused: bool) {
        let y = bounds.y + bounds.h as i32 / 2;
        canvas.hline(y, bounds.x, bounds.right(), theme.chrome.darken());
        canvas.hline(y + 1, bounds.x, bounds.right(), theme.chrome.lighten());
    }

    fn preferred_size(&self, _theme: &Theme) -> Size {
        Size::new(16, 4)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A read-only progress/level meter (volume bars, timers).
#[derive(Debug, Clone)]
pub struct ProgressBar {
    min: i32,
    max: i32,
    value: i32,
}

impl ProgressBar {
    /// Creates a meter over `min..=max` starting at `value` (clamped).
    ///
    /// # Panics
    ///
    /// Panics if `min >= max`.
    pub fn new(min: i32, max: i32, value: i32) -> ProgressBar {
        assert!(min < max, "progress range must be non-empty");
        ProgressBar {
            min,
            max,
            value: value.clamp(min, max),
        }
    }

    /// Current value.
    pub fn value(&self) -> i32 {
        self.value
    }

    /// Sets the value, clamped to the range.
    pub fn set_value(&mut self, value: i32) {
        self.value = value.clamp(self.min, self.max);
    }

    /// Fraction filled in `0..=1`.
    pub fn fraction(&self) -> f64 {
        (self.value - self.min) as f64 / (self.max - self.min) as f64
    }
}

impl Widget for ProgressBar {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, _focused: bool) {
        canvas.fill_rect(bounds, theme.chrome.darken());
        canvas.bevel(bounds, theme.chrome, false);
        let inner = bounds.inset(2);
        let filled = (inner.w as f64 * self.fraction()) as u32;
        if filled > 0 {
            canvas.fill_rect(Rect::new(inner.x, inner.y, filled, inner.h), theme.accent);
        }
    }

    fn preferred_size(&self, _theme: &Theme) -> Size {
        Size::new(64, 12)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// Suppress unused import warning: Action is part of the widgets' shared
// vocabulary even though these three never emit one.
const _: Option<Action> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_raster::color::Color;
    use uniint_raster::framebuffer::Framebuffer;

    #[test]
    fn label_text_accessors() {
        let mut l = Label::new("TV");
        assert_eq!(l.text(), "TV");
        l.set_text("VCR");
        assert_eq!(l.text(), "VCR");
    }

    #[test]
    fn label_paints_ink_within_bounds() {
        let mut fb = Framebuffer::new(60, 20, Color::WHITE);
        let theme = Theme::classic();
        let bounds = Rect::new(5, 5, 50, 12);
        let label = Label::new("hi");
        label.paint(&mut Canvas::new(&mut fb), bounds, &theme, false);
        let mut ink = 0;
        for (i, &p) in fb.pixels().iter().enumerate() {
            if p == theme.text {
                ink += 1;
                let pt = uniint_raster::geom::Point::new((i % 60) as i32, (i / 60) as i32);
                assert!(bounds.contains(pt), "ink outside bounds at {pt}");
            }
        }
        assert!(ink > 4);
    }

    #[test]
    fn label_preferred_size_tracks_text() {
        let theme = Theme::classic();
        assert!(
            Label::new("long caption").preferred_size(&theme).w
                > Label::new("x").preferred_size(&theme).w
        );
    }

    #[test]
    fn progress_clamps() {
        let mut p = ProgressBar::new(0, 10, 99);
        assert_eq!(p.value(), 10);
        p.set_value(-5);
        assert_eq!(p.value(), 0);
        assert_eq!(p.fraction(), 0.0);
        p.set_value(5);
        assert!((p.fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn progress_empty_range_panics() {
        ProgressBar::new(5, 5, 5);
    }

    #[test]
    fn progress_paints_accent_proportional() {
        let theme = Theme::classic();
        let mut fb = Framebuffer::new(100, 12, Color::WHITE);
        let p = ProgressBar::new(0, 100, 50);
        p.paint(
            &mut Canvas::new(&mut fb),
            Rect::new(0, 0, 100, 12),
            &theme,
            false,
        );
        let accented = fb.pixels().iter().filter(|&&c| c == theme.accent).count();
        assert!(
            accented > 200,
            "half-filled bar should paint accent: {accented}"
        );
    }

    #[test]
    fn widgets_are_not_focusable() {
        assert!(!Label::new("x").focusable());
        assert!(!Separator::new().focusable());
        assert!(!ProgressBar::new(0, 1, 0).focusable());
    }
}
