//! The widget set: labels, buttons, toggles, sliders, lists and text
//! fields — the vocabulary appliance control panels are built from.

pub mod button;
pub mod label;
pub mod listbox;
pub mod misc;
pub mod slider;
pub mod tabbar;
pub mod textfield;

pub use button::{Button, Toggle};
pub use label::{Align, Label, ProgressBar, Separator};
pub use listbox::ListBox;
pub use misc::{Checkbox, ImageView, Spinner};
pub use slider::Slider;
pub use tabbar::TabBar;
pub use textfield::TextField;
