//! [`Slider`]: a horizontal ranged control (volume, channel, brightness).

use crate::event::{Action, KeyEvent, PointerEvent, PointerPhase};
use crate::theme::Theme;
use crate::widget::{EventResult, Widget};
use std::any::Any;
use uniint_protocol::input::KeySym;
use uniint_raster::draw::Canvas;
use uniint_raster::geom::{Rect, Size};

/// A horizontal slider emitting [`Action::ValueChanged`].
#[derive(Debug, Clone)]
pub struct Slider {
    min: i32,
    max: i32,
    value: i32,
    step: i32,
    dragging: bool,
}

impl Slider {
    /// Creates a slider over `min..=max` with arrow-key step `step`.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max` or `step <= 0`.
    pub fn new(min: i32, max: i32, value: i32, step: i32) -> Slider {
        assert!(min < max, "slider range must be non-empty");
        assert!(step > 0, "slider step must be positive");
        Slider {
            min,
            max,
            value: value.clamp(min, max),
            step,
            dragging: false,
        }
    }

    /// Current value.
    pub fn value(&self) -> i32 {
        self.value
    }

    /// Sets the value silently (no action emitted), clamped.
    pub fn set_value(&mut self, value: i32) {
        self.value = value.clamp(self.min, self.max);
    }

    /// Range minimum.
    pub fn min(&self) -> i32 {
        self.min
    }

    /// Range maximum.
    pub fn max(&self) -> i32 {
        self.max
    }

    fn value_at(&self, x: i32, bounds_w: u32) -> i32 {
        let usable = bounds_w.saturating_sub(8).max(1) as i64;
        let rel = (x - 4).clamp(0, usable as i32) as i64;
        (self.min as i64 + rel * (self.max - self.min) as i64 / usable) as i32
    }

    fn knob_x(&self, bounds_w: u32) -> i32 {
        let usable = bounds_w.saturating_sub(8).max(1) as i64;
        4 + (usable * (self.value - self.min) as i64 / (self.max - self.min) as i64) as i32
    }

    fn change_to(&mut self, v: i32) -> EventResult {
        let v = v.clamp(self.min, self.max);
        if v == self.value {
            return EventResult::ignored();
        }
        self.value = v;
        EventResult::action(Action::ValueChanged(v))
    }
}

impl Widget for Slider {
    fn paint(&self, canvas: &mut Canvas<'_>, bounds: Rect, theme: &Theme, focused: bool) {
        canvas.fill_rect(bounds, theme.background);
        // Track.
        let track_y = bounds.y + bounds.h as i32 / 2 - 2;
        let track = Rect::new(bounds.x + 2, track_y, bounds.w.saturating_sub(4), 4);
        canvas.fill_rect(track, theme.chrome.darken());
        canvas.bevel(track, theme.chrome, false);
        // Filled portion.
        let kx = self.knob_x(bounds.w);
        let filled = Rect::new(track.x, track.y + 1, (kx - 2).max(0) as u32, 2);
        canvas.fill_rect(filled, theme.accent);
        // Knob.
        let knob = Rect::new(
            bounds.x + kx - 3,
            bounds.y + 2,
            7,
            bounds.h.saturating_sub(4),
        );
        canvas.fill_rect(knob, theme.chrome);
        canvas.bevel(knob, theme.chrome, !self.dragging);
        if focused {
            canvas.stroke_rect(bounds, theme.focus);
        }
    }

    fn preferred_size(&self, _theme: &Theme) -> Size {
        Size::new(80, 16)
    }

    fn focusable(&self) -> bool {
        true
    }

    fn on_pointer(&mut self, ev: PointerEvent, bounds: Rect) -> EventResult {
        match ev.phase {
            PointerPhase::Down => {
                self.dragging = true;
                let mut r = self.change_to(self.value_at(ev.pos.x, bounds.w));
                r.repaint = true;
                r
            }
            PointerPhase::Drag if self.dragging => {
                self.change_to(self.value_at(ev.pos.x, bounds.w))
            }
            PointerPhase::Up => {
                self.dragging = false;
                EventResult::repaint()
            }
            _ => EventResult::ignored(),
        }
    }

    fn on_key(&mut self, ev: KeyEvent) -> EventResult {
        if !ev.down {
            return EventResult::ignored();
        }
        match ev.sym {
            s if s == KeySym::LEFT => self.change_to(self.value - self.step),
            s if s == KeySym::RIGHT => self.change_to(self.value + self.step),
            s if s == KeySym::HOME => self.change_to(self.min),
            s if s == KeySym::END => self.change_to(self.max),
            _ => EventResult::ignored(),
        }
    }

    fn on_focus(&mut self, gained: bool) -> bool {
        if !gained {
            self.dragging = false;
        }
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_raster::geom::Point;

    fn pev(phase: PointerPhase, x: i32) -> PointerEvent {
        PointerEvent {
            phase,
            pos: Point::new(x, 8),
            inside: true,
        }
    }

    #[test]
    fn arrow_keys_step() {
        let mut s = Slider::new(0, 100, 50, 5);
        let r = s.on_key(KeyEvent {
            down: true,
            sym: KeySym::RIGHT,
        });
        assert_eq!(r.action, Some(Action::ValueChanged(55)));
        let r = s.on_key(KeyEvent {
            down: true,
            sym: KeySym::LEFT,
        });
        assert_eq!(r.action, Some(Action::ValueChanged(50)));
    }

    #[test]
    fn home_end_jump() {
        let mut s = Slider::new(-10, 10, 0, 1);
        assert_eq!(
            s.on_key(KeyEvent {
                down: true,
                sym: KeySym::END
            })
            .action,
            Some(Action::ValueChanged(10))
        );
        assert_eq!(
            s.on_key(KeyEvent {
                down: true,
                sym: KeySym::HOME
            })
            .action,
            Some(Action::ValueChanged(-10))
        );
    }

    #[test]
    fn clamped_at_ends_no_action() {
        let mut s = Slider::new(0, 10, 10, 3);
        let r = s.on_key(KeyEvent {
            down: true,
            sym: KeySym::RIGHT,
        });
        assert_eq!(r, EventResult::ignored());
    }

    #[test]
    fn key_release_ignored() {
        let mut s = Slider::new(0, 10, 5, 1);
        let r = s.on_key(KeyEvent {
            down: false,
            sym: KeySym::RIGHT,
        });
        assert_eq!(r, EventResult::ignored());
    }

    #[test]
    fn pointer_down_seeks() {
        let bounds = Rect::new(0, 0, 108, 16); // usable = 100
        let mut s = Slider::new(0, 100, 0, 1);
        let r = s.on_pointer(pev(PointerPhase::Down, 54), bounds);
        assert_eq!(r.action, Some(Action::ValueChanged(50)));
        let r = s.on_pointer(pev(PointerPhase::Drag, 104), bounds);
        assert_eq!(r.action, Some(Action::ValueChanged(100)));
        let r = s.on_pointer(pev(PointerPhase::Up, 104), bounds);
        assert_eq!(r.action, None);
    }

    #[test]
    fn drag_without_press_ignored() {
        let mut s = Slider::new(0, 100, 0, 1);
        let r = s.on_pointer(pev(PointerPhase::Drag, 50), Rect::new(0, 0, 108, 16));
        assert_eq!(r, EventResult::ignored());
    }

    #[test]
    fn drag_beyond_ends_clamps() {
        let bounds = Rect::new(0, 0, 108, 16);
        let mut s = Slider::new(0, 100, 50, 1);
        s.on_pointer(pev(PointerPhase::Down, 54), bounds);
        let r = s.on_pointer(pev(PointerPhase::Drag, -50), bounds);
        assert_eq!(r.action, Some(Action::ValueChanged(0)));
    }

    #[test]
    fn set_value_is_silent_and_clamped() {
        let mut s = Slider::new(0, 10, 5, 1);
        s.set_value(100);
        assert_eq!(s.value(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        Slider::new(0, 10, 0, 0);
    }

    #[test]
    fn knob_position_monotone() {
        let s0 = Slider::new(0, 100, 0, 1);
        let s50 = Slider::new(0, 100, 50, 1);
        let s100 = Slider::new(0, 100, 100, 1);
        assert!(s0.knob_x(100) < s50.knob_x(100));
        assert!(s50.knob_x(100) < s100.knob_x(100));
    }
}
