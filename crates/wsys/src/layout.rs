//! Rectangle-splitting layout helpers.
//!
//! The toolkit keeps layout explicit: applications carve a window area
//! into cells with these helpers and place widgets into the cells.

use uniint_raster::geom::Rect;

/// How one cell of a split is sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// Exactly this many pixels.
    Fixed(u32),
    /// A share of the remaining space proportional to the weight.
    Weight(u32),
}

fn split(total: u32, cells: &[Cell], spacing: u32) -> Vec<u32> {
    let n = cells.len() as u32;
    if n == 0 {
        return Vec::new();
    }
    let gaps = spacing * (n - 1);
    let fixed: u32 = cells
        .iter()
        .map(|c| if let Cell::Fixed(px) = c { *px } else { 0 })
        .sum();
    let weight_total: u32 = cells
        .iter()
        .map(|c| if let Cell::Weight(w) = c { *w } else { 0 })
        .sum();
    let avail = total.saturating_sub(fixed + gaps);
    let mut out = Vec::with_capacity(cells.len());
    let mut used = 0u32;
    let mut weight_seen = 0u32;
    for c in cells {
        match c {
            Cell::Fixed(px) => out.push(*px),
            Cell::Weight(w) => {
                // Distribute rounding so the weights sum exactly to avail.
                weight_seen += w;
                let target = if weight_total == 0 {
                    0
                } else {
                    (avail as u64 * weight_seen as u64 / weight_total as u64) as u32
                };
                out.push(target - used);
                used = target;
            }
        }
    }
    out
}

/// Splits `area` into vertically stacked rows.
pub fn rows(area: Rect, cells: &[Cell], spacing: u32) -> Vec<Rect> {
    let heights = split(area.h, cells, spacing);
    let mut y = area.y;
    heights
        .into_iter()
        .map(|h| {
            let r = Rect::new(area.x, y, area.w, h);
            y += h as i32 + spacing as i32;
            r
        })
        .collect()
}

/// Splits `area` into horizontally arranged columns.
pub fn columns(area: Rect, cells: &[Cell], spacing: u32) -> Vec<Rect> {
    let widths = split(area.w, cells, spacing);
    let mut x = area.x;
    widths
        .into_iter()
        .map(|w| {
            let r = Rect::new(x, area.y, w, area.h);
            x += w as i32 + spacing as i32;
            r
        })
        .collect()
}

/// Splits `area` into an `ncols`×`nrows` grid of equal cells, row-major.
pub fn grid(area: Rect, ncols: usize, nrows: usize, spacing: u32) -> Vec<Rect> {
    let row_cells = vec![Cell::Weight(1); nrows];
    let col_cells = vec![Cell::Weight(1); ncols];
    rows(area, &row_cells, spacing)
        .into_iter()
        .flat_map(|r| columns(r, &col_cells, spacing))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_fill_exactly() {
        let rs = rows(Rect::new(0, 0, 100, 100), &[Cell::Weight(1); 3], 0);
        assert_eq!(rs.len(), 3);
        let total: u32 = rs.iter().map(|r| r.h).sum();
        assert_eq!(total, 100, "no pixel lost to rounding");
        assert_eq!(rs[0].y, 0);
        assert_eq!(rs[2].bottom(), 100);
    }

    #[test]
    fn fixed_and_weight_mix() {
        let rs = rows(
            Rect::new(0, 0, 100, 100),
            &[Cell::Fixed(20), Cell::Weight(1), Cell::Weight(3)],
            0,
        );
        assert_eq!(rs[0].h, 20);
        assert_eq!(rs[1].h, 20);
        assert_eq!(rs[2].h, 60);
    }

    #[test]
    fn spacing_subtracted() {
        let rs = rows(
            Rect::new(0, 0, 10, 32),
            &[Cell::Weight(1), Cell::Weight(1)],
            2,
        );
        assert_eq!(rs[0].h + rs[1].h, 30);
        assert_eq!(rs[1].y, rs[0].bottom() + 2);
    }

    #[test]
    fn columns_split_width() {
        let cs = columns(Rect::new(5, 5, 90, 20), &[Cell::Weight(1); 3], 0);
        assert_eq!(cs.len(), 3);
        assert!(cs.iter().all(|c| c.h == 20 && c.y == 5));
        assert_eq!(cs[2].right(), 95);
    }

    #[test]
    fn grid_is_row_major() {
        let g = grid(Rect::new(0, 0, 40, 20), 2, 2, 0);
        assert_eq!(g.len(), 4);
        assert_eq!(g[0].origin(), uniint_raster::geom::Point::new(0, 0));
        assert_eq!(g[1].origin(), uniint_raster::geom::Point::new(20, 0));
        assert_eq!(g[2].origin(), uniint_raster::geom::Point::new(0, 10));
    }

    #[test]
    fn grid_cells_disjoint() {
        let g = grid(Rect::new(0, 0, 97, 53), 3, 4, 2);
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                assert!(!g[i].intersects(g[j]), "{} vs {}", g[i], g[j]);
            }
        }
    }

    #[test]
    fn empty_cells_empty_result() {
        assert!(rows(Rect::new(0, 0, 10, 10), &[], 2).is_empty());
    }

    #[test]
    fn overconstrained_degrades_gracefully() {
        let rs = rows(
            Rect::new(0, 0, 10, 10),
            &[Cell::Fixed(8), Cell::Fixed(8)],
            0,
        );
        assert_eq!(
            rs.len(),
            2,
            "fixed cells keep their size even if they overflow"
        );
        assert_eq!(rs[0].h, 8);
        assert_eq!(rs[1].h, 8);
    }
}
