//! # uniint-wsys
//!
//! A small retained-mode window system and widget toolkit — the stand-in
//! for "traditional graphical user interface systems such as Java AWT or
//! GTK+" in the ICDCS 2002 universal-interaction architecture.
//!
//! Appliance applications build control panels out of [`widgets`], place
//! them in a [`ui::Ui`] window with [`layout`] helpers, and never learn
//! which interaction device the user holds: the window renders into a
//! damage-tracked framebuffer that the UniInt server exports as bitmap
//! updates, and input arrives as universal keyboard/pointer events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod layout;
pub mod theme;
pub mod ui;
pub mod widget;
pub mod widgets;

/// Convenient re-exports of the toolkit surface.
pub mod prelude {
    pub use crate::event::{Action, ActionEvent, WidgetId};
    pub use crate::layout::{columns, grid, rows, Cell};
    pub use crate::theme::Theme;
    pub use crate::ui::Ui;
    pub use crate::widget::Widget;
    pub use crate::widgets::{
        Align, Button, Checkbox, ImageView, Label, ListBox, ProgressBar, Separator, Slider,
        Spinner, TabBar, TextField, Toggle,
    };
}
