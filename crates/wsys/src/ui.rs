//! The window: widget ownership, input routing, focus management, and
//! damage-driven rendering into a framebuffer.

use crate::event::{Action, ActionEvent, KeyEvent, PointerEvent, PointerPhase, WidgetId};
use crate::theme::Theme;
use crate::widget::Widget;
use uniint_protocol::input::{ButtonMask, InputEvent, KeySym};
use uniint_raster::draw::Canvas;
use uniint_raster::framebuffer::Framebuffer;
use uniint_raster::geom::{Point, Rect, Size};

#[derive(Debug)]
struct Node {
    id: WidgetId,
    rect: Rect,
    widget: Box<dyn Widget>,
    visible: bool,
}

/// A single top-level window: the unit an appliance application renders
/// its control panel into, and the unit the UniInt server exports.
///
/// ```
/// use uniint_wsys::prelude::*;
/// use uniint_raster::geom::Rect;
/// let mut ui = Ui::new(160, 120, Theme::classic(), "demo");
/// let power = ui.add(Button::new("Power"), Rect::new(10, 10, 60, 20));
/// ui.render();
/// // A stylus tap lands as universal pointer events:
/// for ev in uniint_protocol::input::InputEvent::click(40, 20) {
///     ui.dispatch(ev);
/// }
/// let actions = ui.take_actions();
/// assert_eq!(actions.len(), 1);
/// assert_eq!(actions[0].widget, power);
/// ```
#[derive(Debug)]
pub struct Ui {
    fb: Framebuffer,
    theme: Theme,
    title: String,
    nodes: Vec<Node>,
    next_id: WidgetId,
    focus: Option<WidgetId>,
    grab: Option<WidgetId>,
    buttons: ButtonMask,
    pointer: Point,
    actions: Vec<ActionEvent>,
    dirty: Vec<WidgetId>,
    all_dirty: bool,
    bell: bool,
    shortcuts: Vec<(KeySym, WidgetId)>,
}

impl Ui {
    /// Creates an empty window of the given size.
    pub fn new(width: u32, height: u32, theme: Theme, title: impl Into<String>) -> Ui {
        Ui {
            fb: Framebuffer::new(width, height, theme.background),
            theme,
            title: title.into(),
            nodes: Vec::new(),
            next_id: 1,
            focus: None,
            grab: None,
            buttons: ButtonMask::NONE,
            pointer: Point::ORIGIN,
            actions: Vec::new(),
            dirty: Vec::new(),
            all_dirty: true,
            bell: false,
            shortcuts: Vec::new(),
        }
    }

    /// Window title (exported as the protocol desktop name).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The theme widgets paint with.
    pub fn theme(&self) -> &Theme {
        &self.theme
    }

    /// Window size.
    pub fn size(&self) -> Size {
        self.fb.size()
    }

    /// Read access to the rendered framebuffer.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Mutable framebuffer access (for the server's damage drain).
    pub fn framebuffer_mut(&mut self) -> &mut Framebuffer {
        &mut self.fb
    }

    /// Adds a widget at `rect`, returning its id. Widgets must not
    /// overlap; hit-testing picks the last-added widget at a point.
    pub fn add(&mut self, widget: impl Widget + 'static, rect: Rect) -> WidgetId {
        let id = self.next_id;
        self.next_id += 1;
        self.nodes.push(Node {
            id,
            rect,
            widget: Box::new(widget),
            visible: true,
        });
        self.dirty.push(id);
        if self.focus.is_none() && self.nodes.last().unwrap().widget.focusable() {
            self.set_focus(Some(id));
        }
        id
    }

    /// Removes a widget. Returns true when it existed.
    pub fn remove(&mut self, id: WidgetId) -> bool {
        let Some(idx) = self.index_of(id) else {
            return false;
        };
        let rect = self.nodes[idx].rect;
        self.nodes.remove(idx);
        if self.focus == Some(id) {
            self.focus = None;
        }
        if self.grab == Some(id) {
            self.grab = None;
        }
        // Repaint the hole the widget leaves.
        self.fb.fill_rect(rect, self.theme.background);
        true
    }

    /// Removes every widget and clears the window.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.shortcuts.clear();
        self.focus = None;
        self.grab = None;
        self.all_dirty = true;
    }

    /// Binds a key to a widget: when no focused widget consumes the key,
    /// pressing it activates `id` as if Return were tapped on it (the
    /// toolkit's mnemonic mechanism; remote-controller and voice plug-ins
    /// rely on it for one-key commands like Power).
    pub fn bind_shortcut(&mut self, sym: KeySym, id: WidgetId) {
        self.shortcuts.retain(|(s, _)| *s != sym);
        self.shortcuts.push((sym, id));
    }

    /// Number of widgets.
    pub fn widget_count(&self) -> usize {
        self.nodes.len()
    }

    /// All widget ids in insertion order.
    pub fn widget_ids(&self) -> Vec<WidgetId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// The bounds of a widget.
    pub fn widget_rect(&self, id: WidgetId) -> Option<Rect> {
        self.index_of(id).map(|i| self.nodes[i].rect)
    }

    /// Moves/resizes a widget.
    pub fn set_widget_rect(&mut self, id: WidgetId, rect: Rect) {
        if let Some(i) = self.index_of(id) {
            let old = self.nodes[i].rect;
            self.nodes[i].rect = rect;
            self.fb.fill_rect(old, self.theme.background);
            self.dirty.push(id);
        }
    }

    /// Shows or hides a widget.
    pub fn set_visible(&mut self, id: WidgetId, visible: bool) {
        if let Some(i) = self.index_of(id) {
            if self.nodes[i].visible != visible {
                self.nodes[i].visible = visible;
                let rect = self.nodes[i].rect;
                self.fb.fill_rect(rect, self.theme.background);
                self.dirty.push(id);
            }
        }
    }

    /// Typed read access to a widget.
    pub fn widget<T: 'static>(&self, id: WidgetId) -> Option<&T> {
        self.index_of(id)
            .and_then(|i| self.nodes[i].widget.as_any().downcast_ref())
    }

    /// Typed mutable access; conservatively marks the widget dirty.
    pub fn widget_mut<T: 'static>(&mut self, id: WidgetId) -> Option<&mut T> {
        let i = self.index_of(id)?;
        self.dirty.push(id);
        self.nodes[i].widget.as_any_mut().downcast_mut()
    }

    /// Currently focused widget.
    pub fn focused(&self) -> Option<WidgetId> {
        self.focus
    }

    /// Explicitly moves focus (or clears it with `None`).
    pub fn set_focus(&mut self, id: Option<WidgetId>) {
        if self.focus == id {
            return;
        }
        if let Some(old) = self.focus {
            if let Some(i) = self.index_of(old) {
                if self.nodes[i].widget.on_focus(false) {
                    self.dirty.push(old);
                }
            }
        }
        self.focus = id;
        if let Some(new) = id {
            if let Some(i) = self.index_of(new) {
                if self.nodes[i].widget.on_focus(true) {
                    self.dirty.push(new);
                }
            }
        }
    }

    /// Rings the window bell (exported by the server as a Bell message).
    pub fn ring_bell(&mut self) {
        self.bell = true;
    }

    /// Drains the bell flag.
    pub fn take_bell(&mut self) -> bool {
        core::mem::take(&mut self.bell)
    }

    /// Resizes the window, marking everything dirty.
    pub fn resize(&mut self, width: u32, height: u32) {
        self.fb = Framebuffer::new(width, height, self.theme.background);
        self.all_dirty = true;
    }

    /// Delivers one universal input event.
    pub fn dispatch(&mut self, event: InputEvent) {
        match event {
            InputEvent::Pointer { x, y, buttons } => {
                self.dispatch_pointer(Point::new(x as i32, y as i32), buttons)
            }
            InputEvent::Key { down, sym } => self.dispatch_key(KeyEvent { down, sym }),
        }
    }

    /// Drains actions emitted since the last call.
    pub fn take_actions(&mut self) -> Vec<ActionEvent> {
        core::mem::take(&mut self.actions)
    }

    /// Repaints dirty widgets into the framebuffer. Returns true when any
    /// pixel may have changed (i.e. damage was produced).
    pub fn render(&mut self) -> bool {
        if self.all_dirty {
            self.fb.clear(self.theme.background);
            self.dirty.clear();
            let focus = self.focus;
            for n in &mut self.nodes {
                if n.visible {
                    let mut canvas = Canvas::with_clip(&mut self.fb, n.rect);
                    n.widget
                        .paint(&mut canvas, n.rect, &self.theme, focus == Some(n.id));
                }
            }
            self.all_dirty = false;
            return true;
        }
        if self.dirty.is_empty() {
            return false;
        }
        let mut ids = core::mem::take(&mut self.dirty);
        ids.sort_unstable();
        ids.dedup();
        let focus = self.focus;
        let mut painted = false;
        for id in ids {
            let Some(i) = self.nodes.iter().position(|n| n.id == id) else {
                continue;
            };
            let rect = self.nodes[i].rect;
            if !self.nodes[i].visible {
                continue;
            }
            self.fb.fill_rect(rect, self.theme.background);
            let n = &mut self.nodes[i];
            let mut canvas = Canvas::with_clip(&mut self.fb, rect);
            n.widget
                .paint(&mut canvas, rect, &self.theme, focus == Some(id));
            painted = true;
        }
        painted
    }

    fn index_of(&self, id: WidgetId) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    fn hit_test(&self, p: Point) -> Option<WidgetId> {
        self.nodes
            .iter()
            .rev()
            .find(|n| n.visible && n.rect.contains(p))
            .map(|n| n.id)
    }

    fn deliver_pointer(&mut self, id: WidgetId, phase: PointerPhase, pos: Point) {
        let Some(i) = self.index_of(id) else { return };
        let rect = self.nodes[i].rect;
        let local = pos - rect.origin();
        let ev = PointerEvent {
            phase,
            pos: local,
            inside: rect.contains(pos),
        };
        let result = self.nodes[i].widget.on_pointer(ev, rect);
        if result.repaint {
            self.dirty.push(id);
        }
        if let Some(action) = result.action {
            self.push_action(id, action);
        }
    }

    fn dispatch_pointer(&mut self, pos: Point, buttons: ButtonMask) {
        let was_down = self.buttons.contains(ButtonMask::LEFT);
        let is_down = buttons.contains(ButtonMask::LEFT);
        self.pointer = pos;
        self.buttons = buttons;
        if !was_down && is_down {
            // Press: focus and grab the widget under the pointer.
            if let Some(id) = self.hit_test(pos) {
                let focusable = self
                    .index_of(id)
                    .map(|i| self.nodes[i].widget.focusable())
                    .unwrap_or(false);
                if focusable {
                    self.set_focus(Some(id));
                }
                self.grab = Some(id);
                self.deliver_pointer(id, PointerPhase::Down, pos);
            }
        } else if was_down && is_down {
            if let Some(id) = self.grab {
                self.deliver_pointer(id, PointerPhase::Drag, pos);
            }
        } else if was_down && !is_down {
            if let Some(id) = self.grab.take() {
                self.deliver_pointer(id, PointerPhase::Up, pos);
            }
        } else if let Some(id) = self.hit_test(pos) {
            self.deliver_pointer(id, PointerPhase::Hover, pos);
        }
    }

    fn dispatch_key(&mut self, ev: KeyEvent) {
        // Focused widget gets first refusal.
        if let Some(id) = self.focus {
            if let Some(i) = self.index_of(id) {
                let result = self.nodes[i].widget.on_key(ev);
                let consumed = result.repaint || result.action.is_some();
                if result.repaint {
                    self.dirty.push(id);
                }
                if let Some(action) = result.action {
                    self.push_action(id, action);
                }
                if consumed {
                    return;
                }
            }
        }
        if ev.down {
            // Mnemonic shortcuts before focus traversal.
            if let Some(&(_, id)) = self.shortcuts.iter().find(|(s, _)| *s == ev.sym) {
                if let Some(i) = self.index_of(id) {
                    for phase in [true, false] {
                        let r = self.nodes[i].widget.on_key(KeyEvent {
                            down: phase,
                            sym: KeySym::RETURN,
                        });
                        if r.repaint {
                            self.dirty.push(id);
                        }
                        if let Some(action) = r.action {
                            self.push_action(id, action);
                        }
                    }
                    return;
                }
            }
            // Focus traversal on unconsumed navigation keys.
            match ev.sym {
                s if s == KeySym::TAB || s == KeySym::DOWN || s == KeySym::RIGHT => {
                    self.move_focus(1)
                }
                s if s == KeySym::UP || s == KeySym::LEFT => self.move_focus(-1),
                _ => {}
            }
        }
    }

    fn move_focus(&mut self, dir: i32) {
        let focusables: Vec<WidgetId> = self
            .nodes
            .iter()
            .filter(|n| n.visible && n.widget.focusable())
            .map(|n| n.id)
            .collect();
        if focusables.is_empty() {
            return;
        }
        let next = match self
            .focus
            .and_then(|f| focusables.iter().position(|&x| x == f))
        {
            None => 0,
            Some(cur) => (cur as i32 + dir).rem_euclid(focusables.len() as i32) as usize,
        };
        self.set_focus(Some(focusables[next]));
    }

    fn push_action(&mut self, widget: WidgetId, action: Action) {
        self.actions.push(ActionEvent { widget, action });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widgets::button::{Button, Toggle};
    use crate::widgets::label::Label;
    use crate::widgets::slider::Slider;

    fn click(ui: &mut Ui, x: u16, y: u16) {
        for ev in InputEvent::click(x, y) {
            ui.dispatch(ev);
        }
    }

    fn tap(ui: &mut Ui, sym: KeySym) {
        for ev in InputEvent::key_tap(sym) {
            ui.dispatch(ev);
        }
    }

    fn three_button_ui() -> (Ui, WidgetId, WidgetId, WidgetId) {
        let mut ui = Ui::new(200, 100, Theme::classic(), "t");
        let a = ui.add(Button::new("A"), Rect::new(0, 0, 50, 20));
        let b = ui.add(Button::new("B"), Rect::new(60, 0, 50, 20));
        let c = ui.add(Button::new("C"), Rect::new(120, 0, 50, 20));
        (ui, a, b, c)
    }

    #[test]
    fn click_fires_action_on_target() {
        let (mut ui, _a, b, _c) = three_button_ui();
        click(&mut ui, 70, 10);
        let acts = ui.take_actions();
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].widget, b);
        assert_eq!(acts[0].action, Action::Clicked);
    }

    #[test]
    fn click_on_background_is_noop() {
        let (mut ui, ..) = three_button_ui();
        click(&mut ui, 10, 90);
        assert!(ui.take_actions().is_empty());
    }

    #[test]
    fn first_focusable_gets_focus() {
        let mut ui = Ui::new(100, 100, Theme::classic(), "t");
        ui.add(Label::new("title"), Rect::new(0, 0, 100, 10));
        let b = ui.add(Button::new("B"), Rect::new(0, 20, 50, 20));
        assert_eq!(ui.focused(), Some(b));
    }

    #[test]
    fn tab_cycles_focus() {
        let (mut ui, a, b, c) = three_button_ui();
        assert_eq!(ui.focused(), Some(a));
        tap(&mut ui, KeySym::TAB);
        assert_eq!(ui.focused(), Some(b));
        tap(&mut ui, KeySym::TAB);
        assert_eq!(ui.focused(), Some(c));
        tap(&mut ui, KeySym::TAB);
        assert_eq!(ui.focused(), Some(a), "wraps around");
    }

    #[test]
    fn arrows_move_focus_when_unconsumed() {
        let (mut ui, a, b, _c) = three_button_ui();
        tap(&mut ui, KeySym::RIGHT);
        assert_eq!(ui.focused(), Some(b));
        tap(&mut ui, KeySym::LEFT);
        assert_eq!(ui.focused(), Some(a));
    }

    #[test]
    fn slider_consumes_arrows_instead_of_moving_focus() {
        let mut ui = Ui::new(200, 100, Theme::classic(), "t");
        let s = ui.add(Slider::new(0, 10, 5, 1), Rect::new(0, 0, 100, 16));
        let _b = ui.add(Button::new("B"), Rect::new(0, 30, 50, 20));
        assert_eq!(ui.focused(), Some(s));
        tap(&mut ui, KeySym::RIGHT);
        assert_eq!(ui.focused(), Some(s), "slider keeps focus");
        assert_eq!(
            ui.take_actions().pop().unwrap().action,
            Action::ValueChanged(6)
        );
    }

    #[test]
    fn return_activates_focused_button() {
        let (mut ui, a, ..) = three_button_ui();
        tap(&mut ui, KeySym::RETURN);
        let acts = ui.take_actions();
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].widget, a);
    }

    #[test]
    fn pointer_press_moves_focus() {
        let (mut ui, _a, _b, c) = three_button_ui();
        click(&mut ui, 130, 5);
        assert_eq!(ui.focused(), Some(c));
    }

    #[test]
    fn render_clears_dirty() {
        let (mut ui, ..) = three_button_ui();
        assert!(ui.render(), "first render paints everything");
        ui.framebuffer_mut().take_damage();
        assert!(!ui.render(), "nothing dirty");
        click(&mut ui, 10, 10);
        assert!(ui.render());
        assert!(ui.framebuffer().is_damaged());
    }

    #[test]
    fn widget_downcast_access() {
        let mut ui = Ui::new(100, 50, Theme::classic(), "t");
        let l = ui.add(Label::new("before"), Rect::new(0, 0, 100, 12));
        assert_eq!(ui.widget::<Label>(l).unwrap().text(), "before");
        ui.widget_mut::<Label>(l).unwrap().set_text("after");
        assert_eq!(ui.widget::<Label>(l).unwrap().text(), "after");
        assert!(
            ui.widget::<Button>(l).is_none(),
            "wrong type downcast fails"
        );
    }

    #[test]
    fn remove_widget() {
        let (mut ui, a, b, _c) = three_button_ui();
        assert!(ui.remove(a));
        assert!(!ui.remove(a), "double remove is false");
        assert_eq!(ui.widget_count(), 2);
        assert_eq!(ui.focused(), None, "focus cleared with widget");
        click(&mut ui, 70, 10);
        assert_eq!(ui.take_actions()[0].widget, b, "others still work");
    }

    #[test]
    fn hidden_widget_not_hit() {
        let (mut ui, a, ..) = three_button_ui();
        ui.set_visible(a, false);
        click(&mut ui, 10, 10);
        assert!(ui.take_actions().is_empty());
    }

    #[test]
    fn toggle_via_keyboard_roundtrip() {
        let mut ui = Ui::new(100, 50, Theme::classic(), "t");
        let t = ui.add(Toggle::new("Mute", false), Rect::new(0, 0, 60, 20));
        tap(&mut ui, KeySym::RETURN);
        assert_eq!(ui.take_actions()[0].action, Action::Toggled(true));
        assert!(ui.widget::<Toggle>(t).unwrap().is_on());
    }

    #[test]
    fn drag_slider_with_pointer() {
        let mut ui = Ui::new(200, 50, Theme::classic(), "t");
        let s = ui.add(Slider::new(0, 100, 0, 1), Rect::new(0, 0, 108, 16));
        ui.dispatch(InputEvent::Pointer {
            x: 54,
            y: 8,
            buttons: ButtonMask::LEFT,
        });
        ui.dispatch(InputEvent::Pointer {
            x: 104,
            y: 8,
            buttons: ButtonMask::LEFT,
        });
        ui.dispatch(InputEvent::Pointer {
            x: 104,
            y: 8,
            buttons: ButtonMask::NONE,
        });
        let vals: Vec<_> = ui
            .take_actions()
            .into_iter()
            .map(|a| match a.action {
                Action::ValueChanged(v) => v,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(vals, vec![50, 100]);
        assert_eq!(ui.widget::<Slider>(s).unwrap().value(), 100);
    }

    #[test]
    fn grab_keeps_delivery_outside_bounds() {
        let mut ui = Ui::new(200, 50, Theme::classic(), "t");
        let b = ui.add(Button::new("B"), Rect::new(0, 0, 50, 20));
        ui.dispatch(InputEvent::Pointer {
            x: 10,
            y: 10,
            buttons: ButtonMask::LEFT,
        });
        // Drag far outside, then release outside: no click.
        ui.dispatch(InputEvent::Pointer {
            x: 190,
            y: 40,
            buttons: ButtonMask::LEFT,
        });
        ui.dispatch(InputEvent::Pointer {
            x: 190,
            y: 40,
            buttons: ButtonMask::NONE,
        });
        assert!(ui.take_actions().is_empty());
        assert!(!ui.widget::<Button>(b).unwrap().is_pressed());
    }

    #[test]
    fn resize_marks_all_dirty() {
        let (mut ui, ..) = three_button_ui();
        ui.render();
        ui.resize(300, 200);
        assert_eq!(ui.size(), Size::new(300, 200));
        assert!(ui.render());
    }

    #[test]
    fn bell_drains() {
        let mut ui = Ui::new(10, 10, Theme::classic(), "t");
        assert!(!ui.take_bell());
        ui.ring_bell();
        assert!(ui.take_bell());
        assert!(!ui.take_bell());
    }

    #[test]
    fn clear_removes_everything() {
        let (mut ui, ..) = three_button_ui();
        ui.clear();
        assert_eq!(ui.widget_count(), 0);
        assert_eq!(ui.focused(), None);
        assert!(ui.render());
    }
}

#[cfg(test)]
mod shortcut_tests {
    use super::*;
    use crate::widgets::button::Button;
    use crate::widgets::textfield::TextField;
    use uniint_raster::geom::Rect;

    #[test]
    fn shortcut_activates_widget() {
        let mut ui = Ui::new(100, 60, crate::theme::Theme::classic(), "t");
        let _other = ui.add(Button::new("A"), Rect::new(0, 0, 40, 20));
        let power = ui.add(Button::new("Power"), Rect::new(0, 30, 40, 20));
        ui.bind_shortcut(KeySym::from_char('p'), power);
        for ev in InputEvent::key_tap('p'.into()) {
            ui.dispatch(ev);
        }
        let acts = ui.take_actions();
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].widget, power);
    }

    #[test]
    fn focused_widget_consumes_before_shortcut() {
        let mut ui = Ui::new(100, 60, crate::theme::Theme::classic(), "t");
        let field = ui.add(TextField::new(""), Rect::new(0, 0, 80, 16));
        let power = ui.add(Button::new("Power"), Rect::new(0, 30, 40, 20));
        ui.bind_shortcut(KeySym::from_char('p'), power);
        assert_eq!(ui.focused(), Some(field));
        for ev in InputEvent::key_tap('p'.into()) {
            ui.dispatch(ev);
        }
        // The text field typed 'p'; the power button did not fire.
        let acts = ui.take_actions();
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].widget, field);
    }

    #[test]
    fn rebinding_replaces() {
        let mut ui = Ui::new(100, 60, crate::theme::Theme::classic(), "t");
        let a = ui.add(Button::new("A"), Rect::new(0, 0, 40, 20));
        let b = ui.add(Button::new("B"), Rect::new(50, 0, 40, 20));
        ui.set_focus(None);
        ui.bind_shortcut(KeySym::from_char('x'), a);
        ui.bind_shortcut(KeySym::from_char('x'), b);
        for ev in InputEvent::key_tap('x'.into()) {
            ui.dispatch(ev);
        }
        assert_eq!(ui.take_actions()[0].widget, b);
    }
}
