//! Widget-level events and the actions widgets emit back to applications.

use uniint_protocol::input::KeySym;
use uniint_raster::geom::Point;

/// Identifier of a widget inside one [`crate::ui::Ui`].
pub type WidgetId = u32;

/// Pointer interaction delivered to a widget, with coordinates already
/// translated to the widget's local space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerPhase {
    /// Primary button pressed inside the widget.
    Down,
    /// Pointer moved while the widget holds the grab.
    Drag,
    /// Primary button released (widget had the grab).
    Up,
    /// Pointer moved with no button held.
    Hover,
}

/// A pointer event in widget-local coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerEvent {
    /// Interaction phase.
    pub phase: PointerPhase,
    /// Position relative to the widget's top-left corner.
    pub pos: Point,
    /// Whether `pos` lies inside the widget bounds (drags may leave).
    pub inside: bool,
}

/// What happened, reported by widgets to the application.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// A button was activated.
    Clicked,
    /// A toggle changed state.
    Toggled(bool),
    /// A slider (or other ranged widget) changed value.
    ValueChanged(i32),
    /// A list row was selected.
    Selected(usize),
    /// A text field's content changed.
    TextChanged(String),
    /// A text field was committed with Return.
    Submitted(String),
}

/// An action tagged with the widget that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionEvent {
    /// The emitting widget.
    pub widget: WidgetId,
    /// What it reported.
    pub action: Action,
}

/// A key event as seen by a focused widget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyEvent {
    /// True for press, false for release.
    pub down: bool,
    /// The key.
    pub sym: KeySym,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_event_carries_widget() {
        let e = ActionEvent {
            widget: 7,
            action: Action::Clicked,
        };
        assert_eq!(e.widget, 7);
        assert_eq!(e.action, Action::Clicked);
    }

    #[test]
    fn pointer_event_fields() {
        let e = PointerEvent {
            phase: PointerPhase::Down,
            pos: Point::new(3, 4),
            inside: true,
        };
        assert!(e.inside);
        assert_eq!(e.phase, PointerPhase::Down);
    }
}
