//! Toolkit theme: the colors and metrics every widget paints with.

use serde::{Deserialize, Serialize};
use uniint_raster::color::Color;

/// Colors and metrics shared by all widgets of a window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Theme {
    /// Window background.
    pub background: Color,
    /// Widget chrome (button faces, slider tracks).
    pub chrome: Color,
    /// Primary text color.
    pub text: Color,
    /// Text on accented surfaces.
    pub text_inverse: Color,
    /// Accent for active/selected elements.
    pub accent: Color,
    /// Disabled text/chrome.
    pub disabled: Color,
    /// Focus outline color.
    pub focus: Color,
    /// Inner padding of buttons and fields, pixels.
    pub padding: u32,
    /// Default spacing between widgets, pixels.
    pub spacing: u32,
}

impl Theme {
    /// The light gray "1990s toolkit" look, the Java AWT default of the
    /// paper's era.
    pub fn classic() -> Theme {
        Theme {
            background: Color::rgb(214, 214, 206),
            chrome: Color::rgb(198, 198, 190),
            text: Color::BLACK,
            text_inverse: Color::WHITE,
            accent: Color::rgb(0, 60, 116),
            disabled: Color::rgb(128, 128, 120),
            focus: Color::rgb(230, 120, 0),
            padding: 4,
            spacing: 6,
        }
    }

    /// High-contrast theme for TV output at a distance.
    pub fn tv() -> Theme {
        Theme {
            background: Color::rgb(10, 10, 40),
            chrome: Color::rgb(30, 30, 80),
            text: Color::WHITE,
            text_inverse: Color::BLACK,
            accent: Color::rgb(255, 200, 0),
            disabled: Color::rgb(90, 90, 110),
            focus: Color::rgb(255, 200, 0),
            padding: 6,
            spacing: 8,
        }
    }
}

impl Default for Theme {
    fn default() -> Self {
        Theme::classic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_classic() {
        assert_eq!(Theme::default(), Theme::classic());
    }

    #[test]
    fn themes_differ() {
        assert_ne!(Theme::classic(), Theme::tv());
    }

    #[test]
    fn tv_theme_is_high_contrast() {
        let t = Theme::tv();
        let d = t.text.dist2(t.background);
        assert!(d > 100_000, "TV text/background contrast too low: {d}");
    }
}
