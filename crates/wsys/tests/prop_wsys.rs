//! Property tests for the window system: arbitrary event storms on
//! arbitrary widget soups must never panic, and focus/action invariants
//! must hold.

use proptest::prelude::*;
use uniint_protocol::input::{ButtonMask, InputEvent, KeySym};
use uniint_raster::geom::Rect;
use uniint_wsys::prelude::*;

#[derive(Debug, Clone)]
enum Spec {
    Label,
    Button,
    Toggle,
    Slider,
    Checkbox,
    Spinner,
    List,
    Text,
    Progress,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    prop_oneof![
        Just(Spec::Label),
        Just(Spec::Button),
        Just(Spec::Toggle),
        Just(Spec::Slider),
        Just(Spec::Checkbox),
        Just(Spec::Spinner),
        Just(Spec::List),
        Just(Spec::Text),
        Just(Spec::Progress),
    ]
}

fn build_ui(specs: &[Spec]) -> Ui {
    let mut ui = Ui::new(240, 40 + specs.len() as u32 * 24, Theme::classic(), "prop");
    for (i, s) in specs.iter().enumerate() {
        let rect = Rect::new(4, 4 + (i as i32) * 24, 200, 20);
        match s {
            Spec::Label => ui.add(Label::new(format!("label {i}")), rect),
            Spec::Button => ui.add(Button::new(format!("btn {i}")), rect),
            Spec::Toggle => ui.add(Toggle::new("tog", i % 2 == 0), rect),
            Spec::Slider => ui.add(Slider::new(0, 100, 50, 5), rect),
            Spec::Checkbox => ui.add(Checkbox::new("chk", false), rect),
            Spec::Spinner => ui.add(Spinner::new(-10, 10, 0, 1), rect),
            Spec::List => ui.add(
                ListBox::new((0..4).map(|k| format!("row {k}")).collect()),
                Rect::new(4, 4 + (i as i32) * 24, 200, 22),
            ),
            Spec::Text => ui.add(TextField::new("ab"), rect),
            Spec::Progress => ui.add(ProgressBar::new(0, 10, 3), rect),
        };
    }
    ui
}

fn arb_event() -> impl Strategy<Value = InputEvent> {
    prop_oneof![
        (0u16..260, 0u16..400, 0u8..8).prop_map(|(x, y, b)| InputEvent::Pointer {
            x,
            y,
            buttons: ButtonMask(b)
        }),
        (any::<bool>(), 0u32..0x180).prop_map(|(down, s)| InputEvent::Key {
            down,
            sym: KeySym(s)
        }),
        (any::<bool>(),).prop_map(|(down,)| InputEvent::Key {
            down,
            sym: KeySym::TAB
        }),
        (any::<bool>(),).prop_map(|(down,)| InputEvent::Key {
            down,
            sym: KeySym::RETURN
        }),
        (any::<bool>(),).prop_map(|(down,)| InputEvent::Key {
            down,
            sym: KeySym::DOWN
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn event_storm_never_panics(
        specs in proptest::collection::vec(arb_spec(), 1..8),
        events in proptest::collection::vec(arb_event(), 0..80),
    ) {
        let mut ui = build_ui(&specs);
        ui.render();
        for ev in events {
            ui.dispatch(ev);
            ui.render();
        }
        // Post-conditions: focus (if any) points at an existing,
        // focusable widget.
        if let Some(f) = ui.focused() {
            prop_assert!(ui.widget_ids().contains(&f));
        }
        let _ = ui.take_actions();
    }

    #[test]
    fn render_is_idempotent_without_events(specs in proptest::collection::vec(arb_spec(), 1..8)) {
        let mut ui = build_ui(&specs);
        ui.render();
        ui.framebuffer_mut().take_damage();
        let before = ui.framebuffer().clone();
        prop_assert!(!ui.render(), "second render must be a no-op");
        prop_assert_eq!(&before, ui.framebuffer());
    }

    #[test]
    fn tab_always_lands_on_focusable(specs in proptest::collection::vec(arb_spec(), 1..8), taps in 1usize..12) {
        let mut ui = build_ui(&specs);
        for _ in 0..taps {
            for ev in InputEvent::key_tap(KeySym::TAB) {
                ui.dispatch(ev);
            }
        }
        // After any number of tabs, either nothing is focusable or the
        // focused widget exists.
        if let Some(f) = ui.focused() {
            prop_assert!(ui.widget_ids().contains(&f));
        }
    }

    #[test]
    fn actions_only_from_existing_widgets(
        specs in proptest::collection::vec(arb_spec(), 1..8),
        events in proptest::collection::vec(arb_event(), 0..60),
    ) {
        let mut ui = build_ui(&specs);
        let ids = ui.widget_ids();
        for ev in events {
            ui.dispatch(ev);
        }
        for a in ui.take_actions() {
            prop_assert!(ids.contains(&a.widget));
        }
    }

    #[test]
    fn remove_mid_storm_is_safe(
        specs in proptest::collection::vec(arb_spec(), 2..8),
        events in proptest::collection::vec(arb_event(), 1..40),
        kill in 0usize..8,
    ) {
        let mut ui = build_ui(&specs);
        let ids = ui.widget_ids();
        let victim = ids[kill % ids.len()];
        let kill_at = 3.min(events.len() - 1);
        for (i, ev) in events.into_iter().enumerate() {
            if i == kill_at {
                ui.remove(victim);
            }
            ui.dispatch(ev);
            ui.render();
        }
        prop_assert!(!ui.widget_ids().contains(&victim));
    }
}
