//! Device-level chaos: scripted plug-in faults, the dual of
//! `uniint_netsim::fault` for the device boundary.
//!
//! Where `netsim::fault::FaultSchedule` corrupts the *link* (loss bursts,
//! flaps, latency spikes), [`DeviceFaultSchedule`] corrupts the *device*:
//! its plug-ins panic, stall, emit garbage or storm events on scripted
//! call indices. Both are seeded and fully deterministic, so a chaos run
//! that fails reproduces exactly from its seed.
//!
//! # Schedule format
//!
//! A schedule maps **call indices** (0-based, counted separately for
//! input `translate` and output `adapt` calls) to faults:
//!
//! ```
//! use uniint_devices::chaos::{DeviceFaultSchedule, Fault};
//! let sched = DeviceFaultSchedule::new()
//!     .panic_on_input(2)        // 3rd translate call panics
//!     .stall_on_adapt(0)        // 1st adapt call spins until its budget dies
//!     .garbage_on_input(5)      // 6th translate returns out-of-range pointers
//!     .storm_on_input(7, 500)   // 8th translate repeats its events 500×
//!     .die_after_inputs(10);    // device stops responding afterwards
//! assert_eq!(sched.input_fault(2), Some(Fault::Panic));
//! ```
//!
//! Faults on indices never reached simply do not fire — schedules are
//! scripts, not invariants. Injected stalls burn the supervisor's step
//! budget via [`uniint_core::supervisor::consume_fuel`], so they are
//! finite under supervision and a no-op without it.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniint_core::coordinator::InteractionDevice;
use uniint_core::plugin::{DeviceEvent, DeviceFrame, InputContext, InputPlugin, OutputPlugin};
use uniint_core::supervisor::consume_fuel;
use uniint_protocol::input::{ButtonMask, InputEvent};
use uniint_raster::color::Color;
use uniint_raster::framebuffer::Framebuffer;
use uniint_telemetry::journal::Journal;
use uniint_telemetry::registry::{Counter, Registry};

/// One scripted plug-in fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The plug-in call panics.
    Panic,
    /// The call spins until the supervisor's step budget is exhausted.
    Stall,
    /// The call returns invalid data: far out-of-range pointer events,
    /// or a frame larger than the device's declared screen.
    Garbage,
    /// The call returns its events repeated this many times (input only;
    /// on adapt it behaves like a clean call).
    Storm(u32),
}

/// Scripted faults for one device, by plug-in call index.
#[derive(Debug, Clone, Default)]
pub struct DeviceFaultSchedule {
    input: BTreeMap<u64, Fault>,
    adapt: BTreeMap<u64, Fault>,
    die_after: Option<u64>,
}

impl DeviceFaultSchedule {
    /// An empty schedule (the device behaves perfectly).
    pub fn new() -> DeviceFaultSchedule {
        DeviceFaultSchedule::default()
    }

    /// The `n`-th `translate` call panics.
    pub fn panic_on_input(mut self, n: u64) -> DeviceFaultSchedule {
        self.input.insert(n, Fault::Panic);
        self
    }

    /// The `n`-th `translate` call stalls.
    pub fn stall_on_input(mut self, n: u64) -> DeviceFaultSchedule {
        self.input.insert(n, Fault::Stall);
        self
    }

    /// The `n`-th `translate` call returns out-of-range pointer events.
    pub fn garbage_on_input(mut self, n: u64) -> DeviceFaultSchedule {
        self.input.insert(n, Fault::Garbage);
        self
    }

    /// The `n`-th `translate` call repeats its events `k` times.
    pub fn storm_on_input(mut self, n: u64, k: u32) -> DeviceFaultSchedule {
        self.input.insert(n, Fault::Storm(k));
        self
    }

    /// The `n`-th `adapt` call panics.
    pub fn panic_on_adapt(mut self, n: u64) -> DeviceFaultSchedule {
        self.adapt.insert(n, Fault::Panic);
        self
    }

    /// The `n`-th `adapt` call stalls.
    pub fn stall_on_adapt(mut self, n: u64) -> DeviceFaultSchedule {
        self.adapt.insert(n, Fault::Stall);
        self
    }

    /// The `n`-th `adapt` call returns an oversized frame.
    pub fn garbage_on_adapt(mut self, n: u64) -> DeviceFaultSchedule {
        self.adapt.insert(n, Fault::Garbage);
        self
    }

    /// After `n` `translate` calls the device goes silent: later calls
    /// return nothing (the harness should also stop heartbeating it).
    pub fn die_after_inputs(mut self, n: u64) -> DeviceFaultSchedule {
        self.die_after = Some(n);
        self
    }

    /// The fault scripted for `translate` call `n`, if any.
    pub fn input_fault(&self, n: u64) -> Option<Fault> {
        self.input.get(&n).copied()
    }

    /// The fault scripted for `adapt` call `n`, if any.
    pub fn adapt_fault(&self, n: u64) -> Option<Fault> {
        self.adapt.get(&n).copied()
    }
}

/// Pre-registered telemetry handles for one chaos-wrapped device.
#[derive(Debug)]
struct ChaosTelemetry {
    faults_injected: Counter,
    journal: Journal,
}

#[derive(Debug)]
struct FaultyState {
    schedule: DeviceFaultSchedule,
    input_calls: u64,
    adapt_calls: u64,
    rng: StdRng,
    telemetry: Option<ChaosTelemetry>,
}

impl FaultyState {
    fn dead(&self) -> bool {
        self.schedule
            .die_after
            .is_some_and(|n| self.input_calls >= n)
    }

    /// Counts and journals one scripted fault as it fires.
    fn note_fault(&self, site: &str, n: u64, fault: Fault) {
        if let Some(t) = &self.telemetry {
            t.faults_injected.inc();
            t.journal
                .record("chaos.fault", format!("{site} call {n}: {fault:?}"));
        }
    }
}

/// Observer handle onto a [`FaultyDevice`]'s shared state, for test
/// assertions (how far did the script get, is the device dead).
#[derive(Debug, Clone)]
pub struct FaultyHandle(Arc<Mutex<FaultyState>>);

impl FaultyHandle {
    /// Whether the scripted death point has been reached.
    pub fn is_dead(&self) -> bool {
        self.0.lock().map(|s| s.dead()).unwrap_or(true)
    }

    /// `translate` calls made so far (across plug-in re-uploads).
    pub fn input_calls(&self) -> u64 {
        self.0.lock().map(|s| s.input_calls).unwrap_or(0)
    }

    /// `adapt` calls made so far (across plug-in re-uploads).
    pub fn adapt_calls(&self) -> u64 {
        self.0.lock().map(|s| s.adapt_calls).unwrap_or(0)
    }
}

/// Wraps an [`InteractionDevice`] so the plug-ins it uploads misbehave
/// per `schedule`. Call counters live in the wrapper and persist across
/// plug-in re-uploads (quarantine → readmission → fresh factory call),
/// so a schedule indexes the device's lifetime, not one plug-in's.
pub struct FaultyDevice;

impl FaultyDevice {
    /// Applies `schedule` to `device`'s plug-ins. `seed` drives the
    /// garbage generator, keeping runs bit-reproducible.
    pub fn wrap(
        device: InteractionDevice,
        schedule: DeviceFaultSchedule,
        seed: u64,
    ) -> (InteractionDevice, FaultyHandle) {
        FaultyDevice::wrap_inner(device, schedule, seed, None)
    }

    /// Like [`FaultyDevice::wrap`], but records every fired fault into
    /// `registry`: counter `chaos.faults_injected` plus a `chaos.fault`
    /// journal event naming the call site, index and fault kind.
    pub fn wrap_with_telemetry(
        device: InteractionDevice,
        schedule: DeviceFaultSchedule,
        seed: u64,
        registry: &Registry,
    ) -> (InteractionDevice, FaultyHandle) {
        let telemetry = ChaosTelemetry {
            faults_injected: registry.counter("chaos.faults_injected"),
            journal: registry.journal().clone(),
        };
        FaultyDevice::wrap_inner(device, schedule, seed, Some(telemetry))
    }

    fn wrap_inner(
        device: InteractionDevice,
        schedule: DeviceFaultSchedule,
        seed: u64,
        telemetry: Option<ChaosTelemetry>,
    ) -> (InteractionDevice, FaultyHandle) {
        let state = Arc::new(Mutex::new(FaultyState {
            schedule,
            input_calls: 0,
            adapt_calls: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x000f_a017_dead_beef),
            telemetry,
        }));
        let handle = FaultyHandle(state.clone());
        let in_state = state.clone();
        let device = device.map_input_factory(move |f| {
            let state = in_state.clone();
            Box::new(move || {
                Box::new(FaultyInput {
                    state: state.clone(),
                    inner: f(),
                })
            })
        });
        let device = device.map_output_factory(move |f| {
            let state = state.clone();
            Box::new(move || {
                Box::new(FaultyOutput {
                    state: state.clone(),
                    inner: f(),
                })
            })
        });
        (device, handle)
    }
}

/// Spins the supervisor's step budget away (finite under supervision,
/// immediate exit without one).
fn burn_budget() {
    while consume_fuel(1024) {}
}

#[derive(Debug)]
struct FaultyInput {
    state: Arc<Mutex<FaultyState>>,
    inner: Box<dyn InputPlugin>,
}

impl InputPlugin for FaultyInput {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn translate(&mut self, ev: &DeviceEvent, ctx: &InputContext) -> Vec<InputEvent> {
        let (fault, garbage_xy) = {
            let Ok(mut s) = self.state.lock() else {
                return Vec::new();
            };
            if s.dead() {
                return Vec::new();
            }
            let n = s.input_calls;
            s.input_calls += 1;
            let fault = s.schedule.input_fault(n);
            if let Some(f) = fault {
                s.note_fault("translate", n, f);
            }
            // Pre-draw garbage coordinates while the lock is held so the
            // RNG consumption order stays deterministic.
            let xy = if fault == Some(Fault::Garbage) {
                (0..4)
                    .map(|_| {
                        (
                            u16::MAX - s.rng.gen_range(0..128u16),
                            u16::MAX - s.rng.gen_range(0..128u16),
                        )
                    })
                    .collect()
            } else {
                Vec::new()
            };
            (fault, xy)
        };
        match fault {
            Some(Fault::Panic) => panic!("injected plug-in panic (scripted chaos)"),
            Some(Fault::Stall) => {
                burn_budget();
                Vec::new()
            }
            Some(Fault::Garbage) => garbage_xy
                .into_iter()
                .map(|(x, y)| InputEvent::Pointer {
                    x,
                    y,
                    buttons: ButtonMask::NONE,
                })
                .collect(),
            Some(Fault::Storm(k)) => {
                let base = self.inner.translate(ev, ctx);
                let mut out = Vec::with_capacity(base.len() * k as usize);
                for _ in 0..k.max(1) {
                    out.extend(base.iter().copied());
                }
                out
            }
            None => self.inner.translate(ev, ctx),
        }
    }
}

#[derive(Debug)]
struct FaultyOutput {
    state: Arc<Mutex<FaultyState>>,
    inner: Box<dyn OutputPlugin>,
}

impl OutputPlugin for FaultyOutput {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn caps(&self) -> uniint_core::plugin::OutputCaps {
        self.inner.caps()
    }

    fn adapt(&mut self, server_frame: &Framebuffer) -> DeviceFrame {
        let fault = {
            let Ok(mut s) = self.state.lock() else {
                return self.inner.adapt(server_frame);
            };
            let n = s.adapt_calls;
            s.adapt_calls += 1;
            let fault = s.schedule.adapt_fault(n);
            if let Some(f) = fault {
                s.note_fault("adapt", n, f);
            }
            fault
        };
        match fault {
            Some(Fault::Panic) => panic!("injected plug-in panic (scripted chaos)"),
            Some(Fault::Stall) => {
                burn_budget();
                self.inner.adapt(server_frame)
            }
            Some(Fault::Garbage) => {
                // Twice the declared screen: the supervisor must reject it.
                let caps = self.inner.caps();
                let fb =
                    Framebuffer::new(caps.size.w.max(1) * 2, caps.size.h.max(1) * 2, Color::WHITE);
                DeviceFrame::new(fb, caps.format, 0)
            }
            Some(Fault::Storm(_)) | None => self.inner.adapt(server_frame),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimPda;
    use uniint_core::prelude::{Supervisor, UniIntProxy};
    use uniint_core::proxy::MAX_EVENTS_PER_DEVICE_EVENT;
    use uniint_protocol::message::ServerMessage;
    use uniint_raster::pixel::PixelFormat;

    fn connected_proxy() -> UniIntProxy {
        let mut p = UniIntProxy::new("p");
        p.handle_server(&ServerMessage::Init {
            version: 1,
            width: 240,
            height: 320,
            format: PixelFormat::Rgb888,
            name: "t".into(),
        })
        .unwrap();
        p
    }

    #[test]
    fn scripted_panic_fires_on_exact_call() {
        let (dev, _h) = FaultyDevice::wrap(
            SimPda::interaction_device("pda"),
            DeviceFaultSchedule::new().panic_on_input(1),
            7,
        );
        let mut proxy = connected_proxy();
        let mut coord = uniint_core::coordinator::Coordinator::new(
            uniint_core::context::UserProfile::neutral("u"),
            uniint_core::context::Situation::idle("z"),
        );
        let mut sup = Supervisor::new(7);
        coord.register(sup.supervise(dev), &mut proxy);
        // Call 0 clean, call 1 panics (contained), call 2 clean again.
        let tap = SimPda::tap(10, 10);
        assert!(!proxy.device_input(&tap[0]).is_empty());
        assert!(proxy.device_input(&tap[1]).is_empty(), "panic contained");
        let tap2 = SimPda::tap(10, 10);
        assert!(!proxy.device_input(&tap2[0]).is_empty());
        sup.tick(0, &mut coord, &mut proxy);
        assert_eq!(sup.stats().plugin_panics, 1);
    }

    #[test]
    fn garbage_events_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let (dev, _h) = FaultyDevice::wrap(
                SimPda::interaction_device("pda"),
                DeviceFaultSchedule::new().garbage_on_input(0),
                seed,
            );
            let mut proxy = connected_proxy();
            let mut coord = uniint_core::coordinator::Coordinator::new(
                uniint_core::context::UserProfile::neutral("u"),
                uniint_core::context::Situation::idle("z"),
            );
            coord.register(dev, &mut proxy);
            // Unsupervised here: garbage passes through; capture it.
            proxy.device_input(&DeviceEvent::StylusDown { x: 1, y: 1 })
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seed, different garbage");
    }

    #[test]
    fn storm_is_capped_by_proxy_flood_protection() {
        let (dev, _h) = FaultyDevice::wrap(
            SimPda::interaction_device("pda"),
            DeviceFaultSchedule::new().storm_on_input(0, 5000),
            7,
        );
        let mut proxy = connected_proxy();
        let mut coord = uniint_core::coordinator::Coordinator::new(
            uniint_core::context::UserProfile::neutral("u"),
            uniint_core::context::Situation::idle("z"),
        );
        coord.register(dev, &mut proxy);
        let msgs = proxy.device_input(&DeviceEvent::StylusDown { x: 5, y: 5 });
        assert!(msgs.len() <= MAX_EVENTS_PER_DEVICE_EVENT);
        let st = proxy.stats();
        assert!(st.events_coalesced + st.flood_dropped > 0, "{st:?}");
    }

    #[test]
    fn death_silences_input() {
        let (dev, h) = FaultyDevice::wrap(
            SimPda::interaction_device("pda"),
            DeviceFaultSchedule::new().die_after_inputs(2),
            7,
        );
        let mut proxy = connected_proxy();
        let mut coord = uniint_core::coordinator::Coordinator::new(
            uniint_core::context::UserProfile::neutral("u"),
            uniint_core::context::Situation::idle("z"),
        );
        coord.register(dev, &mut proxy);
        let tap = SimPda::tap(10, 10);
        assert!(!proxy.device_input(&tap[0]).is_empty());
        assert!(!proxy.device_input(&tap[1]).is_empty());
        assert!(h.is_dead());
        assert!(
            proxy.device_input(&tap[0]).is_empty(),
            "dead device is mute"
        );
        assert_eq!(h.input_calls(), 2, "dead calls are not counted");
    }

    #[test]
    fn telemetry_counts_and_journals_fired_faults() {
        let registry = Registry::new();
        let (dev, _h) = FaultyDevice::wrap_with_telemetry(
            SimPda::interaction_device("pda"),
            DeviceFaultSchedule::new()
                .garbage_on_input(0)
                .storm_on_input(1, 3),
            7,
            &registry,
        );
        let mut proxy = connected_proxy();
        let mut coord = uniint_core::coordinator::Coordinator::new(
            uniint_core::context::UserProfile::neutral("u"),
            uniint_core::context::Situation::idle("z"),
        );
        coord.register(dev, &mut proxy);
        let tap = SimPda::tap(10, 10);
        proxy.device_input(&tap[0]); // garbage fires
        proxy.device_input(&tap[1]); // storm fires
        let tap2 = SimPda::tap(10, 10);
        proxy.device_input(&tap2[0]); // clean: no fault scripted
        assert_eq!(registry.counter("chaos.faults_injected").get(), 2);
        let events = registry.journal().events();
        let chaos: Vec<_> = events.iter().filter(|e| e.name == "chaos.fault").collect();
        assert_eq!(chaos.len(), 2);
        assert!(chaos[0].detail.contains("translate call 0: Garbage"));
        assert!(chaos[1].detail.contains("translate call 1: Storm(3)"));
    }

    #[test]
    fn stall_without_supervisor_is_noop() {
        let (dev, _h) = FaultyDevice::wrap(
            SimPda::interaction_device("pda"),
            DeviceFaultSchedule::new().stall_on_input(0),
            7,
        );
        let mut proxy = connected_proxy();
        let mut coord = uniint_core::coordinator::Coordinator::new(
            uniint_core::context::UserProfile::neutral("u"),
            uniint_core::context::Situation::idle("z"),
        );
        coord.register(dev, &mut proxy);
        // Unsupervised: consume_fuel returns false immediately, so this
        // returns (empty) instead of hanging the test suite.
        assert!(proxy
            .device_input(&DeviceEvent::StylusDown { x: 1, y: 1 })
            .is_empty());
    }
}
