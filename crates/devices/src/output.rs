//! Output plug-ins: adapt server bitmaps to each display device.

use uniint_core::plugin::{DeviceFrame, OutputCaps, OutputPlugin};
use uniint_raster::dither::{dither_to_format, DitherMode};
use uniint_raster::framebuffer::Framebuffer;
use uniint_raster::geom::Size;
use uniint_raster::pixel::PixelFormat;
use uniint_raster::scale::{scale_to_fit, ScaleFilter};

/// A generic screen plug-in: aspect-fit scale, then depth reduction with
/// dithering, parameterized by the device's [`OutputCaps`]. Keeps the
/// previously adapted frame to report the changed region, so partial-
/// refresh device links only ship deltas.
#[derive(Debug, Clone)]
pub struct ScreenPlugin {
    kind: &'static str,
    caps: OutputCaps,
    last: Option<Framebuffer>,
}

impl ScreenPlugin {
    /// Creates a screen plug-in with explicit capabilities.
    pub fn new(kind: &'static str, caps: OutputCaps) -> ScreenPlugin {
        ScreenPlugin {
            kind,
            caps,
            last: None,
        }
    }

    /// A 2002-era PDA: QVGA portrait, 12-bit color, box downscale with
    /// ordered dithering.
    pub fn pda() -> ScreenPlugin {
        ScreenPlugin::new(
            "pda-screen",
            OutputCaps {
                size: Size::new(240, 320),
                format: PixelFormat::Rgb444,
                dither: DitherMode::Ordered4x4,
                scale: ScaleFilter::Box,
            },
        )
    }

    /// A cellular-phone LCD: 128×128, 1-bit, error-diffusion dithering so
    /// panels stay legible.
    pub fn phone_lcd() -> ScreenPlugin {
        ScreenPlugin::new(
            "phone-lcd",
            OutputCaps {
                size: Size::new(128, 128),
                format: PixelFormat::Mono1,
                dither: DitherMode::FloydSteinberg,
                scale: ScaleFilter::Box,
            },
        )
    }

    /// A television used as the output surface: VGA, full color, bilinear.
    pub fn tv() -> ScreenPlugin {
        ScreenPlugin::new(
            "tv-screen",
            OutputCaps {
                size: Size::new(640, 480),
                format: PixelFormat::Rgb888,
                dither: DitherMode::None,
                scale: ScaleFilter::Bilinear,
            },
        )
    }

    /// A grayscale wearable eyepiece.
    pub fn eyepiece() -> ScreenPlugin {
        ScreenPlugin::new(
            "eyepiece",
            OutputCaps {
                size: Size::new(160, 120),
                format: PixelFormat::Gray4,
                dither: DitherMode::Ordered4x4,
                scale: ScaleFilter::Box,
            },
        )
    }
}

impl OutputPlugin for ScreenPlugin {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn caps(&self) -> OutputCaps {
        self.caps
    }

    fn adapt(&mut self, server_frame: &Framebuffer) -> DeviceFrame {
        let scaled = scale_to_fit(server_frame, self.caps.size, self.caps.scale);
        let reduced = dither_to_format(&scaled, self.caps.format, self.caps.dither);
        let wire_bytes = self
            .caps
            .format
            .buffer_bytes(reduced.width(), reduced.height());
        let mut out = DeviceFrame::new(reduced.clone(), self.caps.format, wire_bytes);
        if let Some(last) = &self.last {
            if last.size() == reduced.size() {
                out = out.with_changed(last.diff_region(&reduced));
            }
        }
        self.last = Some(reduced);
        out
    }
}

/// Character ramp from dark to light used by [`ascii_art`].
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a framebuffer as ASCII art, one character per pixel. Used by
/// the terminal output device and handy for debugging panels in tests.
pub fn ascii_art(fb: &Framebuffer) -> String {
    let mut out = String::with_capacity((fb.width() as usize + 1) * fb.height() as usize);
    for y in 0..fb.height() {
        for &px in fb.row(y) {
            let idx = px.luma() as usize * (RAMP.len() - 1) / 255;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// A text terminal as an output device: the frame is downscaled to one
/// pixel per character cell and rendered with [`ascii_art`].
#[derive(Debug, Clone)]
pub struct TerminalPlugin {
    cols: u32,
    rows: u32,
}

impl TerminalPlugin {
    /// Creates a terminal plug-in; defaults are 80×24.
    pub fn new(cols: u32, rows: u32) -> TerminalPlugin {
        TerminalPlugin {
            cols: cols.max(2),
            rows: rows.max(2),
        }
    }

    /// The classic 80×24 terminal.
    pub fn standard() -> TerminalPlugin {
        TerminalPlugin::new(80, 24)
    }

    /// Renders the adapted frame to text.
    pub fn render_text(&self, frame: &DeviceFrame) -> String {
        ascii_art(&frame.frame)
    }
}

impl OutputPlugin for TerminalPlugin {
    fn kind(&self) -> &'static str {
        "terminal"
    }

    fn caps(&self) -> OutputCaps {
        OutputCaps {
            size: Size::new(self.cols, self.rows),
            format: PixelFormat::Gray8,
            dither: DitherMode::None,
            scale: ScaleFilter::Box,
        }
    }

    fn adapt(&mut self, server_frame: &Framebuffer) -> DeviceFrame {
        // Characters are ~2x taller than wide; compensate by halving rows
        // during the fit so shapes stay recognizable.
        let scaled = scale_to_fit(
            server_frame,
            Size::new(self.cols, self.rows),
            ScaleFilter::Box,
        );
        let gray = dither_to_format(&scaled, PixelFormat::Gray8, DitherMode::None);
        // One byte per character over the wire.
        let wire_bytes = (gray.width() * gray.height()) as usize;
        DeviceFrame::new(gray, PixelFormat::Gray8, wire_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_raster::color::Color;
    use uniint_raster::geom::{Point, Rect};

    fn server_frame() -> Framebuffer {
        let mut fb = Framebuffer::new(320, 240, Color::LIGHT_GRAY);
        fb.fill_rect(Rect::new(20, 20, 100, 60), Color::BLUE);
        fb.fill_rect(Rect::new(200, 100, 80, 80), Color::BLACK);
        fb
    }

    #[test]
    fn pda_adapt_dimensions_and_depth() {
        let mut p = ScreenPlugin::pda();
        let out = p.adapt(&server_frame());
        // 320x240 fit into 240x320 → 240x180.
        assert_eq!(out.frame.size(), Size::new(240, 180));
        assert_eq!(out.format, PixelFormat::Rgb444);
        for &px in out.frame.pixels() {
            assert_eq!(PixelFormat::Rgb444.reduce(px), px);
        }
        assert_eq!(out.wire_bytes, PixelFormat::Rgb444.buffer_bytes(240, 180));
    }

    #[test]
    fn phone_lcd_is_monochrome() {
        let mut p = ScreenPlugin::phone_lcd();
        let out = p.adapt(&server_frame());
        assert!(out.frame.width() <= 128 && out.frame.height() <= 128);
        for &px in out.frame.pixels() {
            assert!(px == Color::BLACK || px == Color::WHITE);
        }
    }

    #[test]
    fn tv_keeps_colors() {
        let mut p = ScreenPlugin::tv();
        let out = p.adapt(&server_frame());
        assert_eq!(out.format, PixelFormat::Rgb888);
        assert_eq!(out.frame.size(), Size::new(640, 480));
    }

    #[test]
    fn wire_bytes_ordering_matches_device_class() {
        let frame = server_frame();
        let tv = ScreenPlugin::tv().adapt(&frame).wire_bytes;
        let pda = ScreenPlugin::pda().adapt(&frame).wire_bytes;
        let phone = ScreenPlugin::phone_lcd().adapt(&frame).wire_bytes;
        assert!(tv > pda, "tv {tv} vs pda {pda}");
        assert!(pda > phone, "pda {pda} vs phone {phone}");
    }

    #[test]
    fn ascii_art_shape() {
        let mut fb = Framebuffer::new(4, 2, Color::BLACK);
        fb.set_pixel(Point::new(0, 0), Color::WHITE);
        let art = ascii_art(&fb);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 4);
        assert_eq!(&art[0..1], "@");
        assert_eq!(&lines[1][0..1], " ");
    }

    #[test]
    fn terminal_renders_text() {
        let mut p = TerminalPlugin::standard();
        let out = p.adapt(&server_frame());
        let text = p.render_text(&out);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() <= 24);
        assert!(lines[0].len() <= 80);
        // Dark square must show as dark characters somewhere.
        assert!(text.contains(' '));
    }

    #[test]
    fn terminal_minimum_size_clamped() {
        let p = TerminalPlugin::new(0, 0);
        assert_eq!(p.caps().size, Size::new(2, 2));
    }

    #[test]
    fn adapt_is_deterministic() {
        let frame = server_frame();
        let a = ScreenPlugin::phone_lcd().adapt(&frame);
        let b = ScreenPlugin::phone_lcd().adapt(&frame);
        assert_eq!(a.frame, b.frame);
    }
}

#[cfg(test)]
mod delta_tests {
    use super::*;
    use uniint_raster::color::Color;
    use uniint_raster::geom::Rect;

    #[test]
    fn first_frame_is_fully_changed() {
        let mut p = ScreenPlugin::tv();
        let fb = Framebuffer::new(320, 240, Color::GRAY);
        let out = p.adapt(&fb);
        assert_eq!(out.changed.area(), out.frame.size().area());
        assert_eq!(out.delta_bytes(), out.wire_bytes);
    }

    #[test]
    fn unchanged_frame_has_empty_delta() {
        let mut p = ScreenPlugin::tv();
        let fb = Framebuffer::new(320, 240, Color::GRAY);
        p.adapt(&fb);
        let out = p.adapt(&fb);
        assert!(out.changed.is_empty());
        assert_eq!(out.delta_bytes(), 0);
        assert!(out.wire_bytes > 0, "full-frame accounting unchanged");
    }

    #[test]
    fn small_change_yields_small_delta() {
        let mut p = ScreenPlugin::tv();
        let mut fb = Framebuffer::new(640, 480, Color::GRAY);
        p.adapt(&fb);
        fb.fill_rect(Rect::new(10, 10, 40, 12), Color::BLACK);
        let out = p.adapt(&fb);
        assert!(!out.changed.is_empty());
        assert!(
            out.delta_bytes() < out.wire_bytes / 10,
            "delta {} much smaller than full {}",
            out.delta_bytes(),
            out.wire_bytes
        );
    }

    #[test]
    fn resize_falls_back_to_full_change() {
        let mut p = ScreenPlugin::tv();
        p.adapt(&Framebuffer::new(320, 240, Color::GRAY));
        // Different server aspect → different device frame size → full.
        let out = p.adapt(&Framebuffer::new(100, 300, Color::GRAY));
        assert_eq!(out.changed.area(), out.frame.size().area());
    }
}
