//! Simulated interaction devices: front-ends that emit [`DeviceEvent`]s
//! the way real hardware would, plus ready-made
//! [`uniint_core::coordinator::InteractionDevice`] registrations bundling
//! descriptor + plug-in factories.

use crate::input::{GesturePlugin, KeypadPlugin, RemotePlugin, StylusPlugin, VoicePlugin};
use crate::output::{ScreenPlugin, TerminalPlugin};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniint_core::context::{DeviceDescriptor, InputModality, OutputProfile};
use uniint_core::coordinator::InteractionDevice;
use uniint_core::plugin::{DeviceEvent, Gesture, Nav, RemoteKey};
use uniint_raster::geom::Size;

/// A simulated PDA: stylus input + QVGA screen.
#[derive(Debug, Default)]
pub struct SimPda;

impl SimPda {
    /// Event sequence for a stylus tap at `(x, y)` (device coordinates).
    pub fn tap(x: u16, y: u16) -> Vec<DeviceEvent> {
        vec![
            DeviceEvent::StylusDown { x, y },
            DeviceEvent::StylusUp { x, y },
        ]
    }

    /// Event sequence for a drag from `from` to `to` with `steps`
    /// intermediate moves.
    pub fn drag(from: (u16, u16), to: (u16, u16), steps: u16) -> Vec<DeviceEvent> {
        let mut out = vec![DeviceEvent::StylusDown {
            x: from.0,
            y: from.1,
        }];
        for i in 1..=steps {
            let x = from.0 as i32 + (to.0 as i32 - from.0 as i32) * i as i32 / steps.max(1) as i32;
            let y = from.1 as i32 + (to.1 as i32 - from.1 as i32) * i as i32 / steps.max(1) as i32;
            out.push(DeviceEvent::StylusMove {
                x: x as u16,
                y: y as u16,
            });
        }
        out.push(DeviceEvent::StylusUp { x: to.0, y: to.1 });
        out
    }

    /// The coordinator registration for this PDA.
    pub fn interaction_device(id: &str) -> InteractionDevice {
        InteractionDevice::new(
            DeviceDescriptor::carried(id, "PDA")
                .with_input(InputModality::Stylus)
                .with_output(OutputProfile {
                    size: Size::new(240, 320),
                    depth_bits: 12,
                    far_readable: false,
                }),
        )
        .with_input_factory(Box::new(|| Box::new(StylusPlugin::new())))
        .with_output_factory(Box::new(|| Box::new(ScreenPlugin::pda())))
    }
}

/// A simulated cellular phone: 12-key pad + tiny mono LCD.
#[derive(Debug, Default)]
pub struct SimPhone;

impl SimPhone {
    /// Maps a physical key label to its device event, mirroring 2002
    /// phone conventions: `2/4/6/8` double as a D-pad, `5` selects, `C`
    /// clears, digits type through when a text field has focus.
    pub fn press(label: char) -> Option<DeviceEvent> {
        match label {
            '2' => Some(DeviceEvent::KeypadNav(Nav::Up)),
            '4' => Some(DeviceEvent::KeypadNav(Nav::Left)),
            '6' => Some(DeviceEvent::KeypadNav(Nav::Right)),
            '8' => Some(DeviceEvent::KeypadNav(Nav::Down)),
            '5' => Some(DeviceEvent::KeypadSelect),
            'C' | 'c' => Some(DeviceEvent::KeypadBack),
            d @ '0'..='9' => Some(DeviceEvent::KeypadDigit(d as u8 - b'0')),
            _ => None,
        }
    }

    /// A digit pressed while in "typing" mode (bypasses the D-pad
    /// overloading of 2/4/5/6/8).
    pub fn type_digit(d: u8) -> DeviceEvent {
        DeviceEvent::KeypadDigit(d.min(9))
    }

    /// The coordinator registration for this phone.
    pub fn interaction_device(id: &str) -> InteractionDevice {
        InteractionDevice::new(
            DeviceDescriptor::carried(id, "Cell Phone")
                .with_input(InputModality::Keypad)
                .with_output(OutputProfile {
                    size: Size::new(128, 128),
                    depth_bits: 1,
                    far_readable: false,
                }),
        )
        .with_input_factory(Box::new(|| Box::new(KeypadPlugin::new())))
        .with_output_factory(Box::new(|| Box::new(ScreenPlugin::phone_lcd())))
    }
}

/// A simulated speech recognizer with noise-dependent word accuracy.
/// Deterministic for a given seed, so failure-injection tests are
/// reproducible.
#[derive(Debug)]
pub struct VoiceRecognizer {
    rng: StdRng,
    /// Per-word recognition probability in `0..=1`.
    accuracy: f64,
}

impl VoiceRecognizer {
    /// Creates a recognizer; `accuracy` is the per-word probability of
    /// correct recognition (clamped to `0..=1`).
    pub fn new(seed: u64, accuracy: f64) -> VoiceRecognizer {
        VoiceRecognizer {
            rng: StdRng::seed_from_u64(seed),
            accuracy: accuracy.clamp(0.0, 1.0),
        }
    }

    /// A studio-quality recognizer that never misses.
    pub fn perfect() -> VoiceRecognizer {
        VoiceRecognizer::new(0, 1.0)
    }

    /// "Hears" an utterance: each word survives with the configured
    /// accuracy, otherwise it is dropped (the dominant 2002 failure mode).
    /// Returns the device event, or `None` when nothing survived.
    pub fn hear(&mut self, utterance: &str) -> Option<DeviceEvent> {
        let kept: Vec<&str> = utterance
            .split_whitespace()
            .filter(|_| self.accuracy >= 1.0 || self.rng.gen_bool(self.accuracy))
            .collect();
        if kept.is_empty() {
            None
        } else {
            Some(DeviceEvent::Voice(kept.join(" ")))
        }
    }

    /// The coordinator registration for a fixed microphone in `zone`.
    pub fn interaction_device(id: &str, zone: &str) -> InteractionDevice {
        InteractionDevice::new(
            DeviceDescriptor::fixed(id, "Microphone", zone).with_input(InputModality::Voice),
        )
        .with_input_factory(Box::new(|| Box::new(VoicePlugin::new())))
    }
}

/// A simulated infrared remote controller.
#[derive(Debug, Default)]
pub struct SimRemote;

impl SimRemote {
    /// A button press.
    pub fn press(key: RemoteKey) -> DeviceEvent {
        DeviceEvent::Remote(key)
    }

    /// The coordinator registration for a remote living in `zone`.
    pub fn interaction_device(id: &str, zone: &str) -> InteractionDevice {
        InteractionDevice::new(
            DeviceDescriptor::fixed(id, "IR Remote", zone).with_input(InputModality::RemoteButtons),
        )
        .with_input_factory(Box::new(|| Box::new(RemotePlugin::new())))
    }
}

/// A simulated gesture wearable (ring/wristband).
#[derive(Debug, Default)]
pub struct SimWearable;

impl SimWearable {
    /// A recognized gesture.
    pub fn gesture(g: Gesture) -> DeviceEvent {
        DeviceEvent::Gesture(g)
    }

    /// The coordinator registration (carried, input + tiny eyepiece).
    pub fn interaction_device(id: &str) -> InteractionDevice {
        InteractionDevice::new(
            DeviceDescriptor::carried(id, "Gesture Wearable")
                .with_input(InputModality::Gesture)
                .with_output(OutputProfile {
                    size: Size::new(160, 120),
                    depth_bits: 4,
                    far_readable: false,
                }),
        )
        .with_input_factory(Box::new(|| Box::new(GesturePlugin::new())))
        .with_output_factory(Box::new(|| Box::new(ScreenPlugin::eyepiece())))
    }
}

/// A television registered as an output-only interaction device in `zone`.
pub fn tv_interaction_device(id: &str, zone: &str) -> InteractionDevice {
    InteractionDevice::new(DeviceDescriptor::fixed(id, "Television", zone).with_output(
        OutputProfile {
            size: Size::new(640, 480),
            depth_bits: 24,
            far_readable: true,
        },
    ))
    .with_output_factory(Box::new(|| Box::new(ScreenPlugin::tv())))
}

/// A text terminal registered as an output-only device in `zone`.
pub fn terminal_interaction_device(id: &str, zone: &str) -> InteractionDevice {
    InteractionDevice::new(DeviceDescriptor::fixed(id, "Terminal", zone).with_output(
        OutputProfile {
            size: Size::new(80, 24),
            depth_bits: 8,
            far_readable: false,
        },
    ))
    .with_output_factory(Box::new(|| Box::new(TerminalPlugin::standard())))
}

/// Every simulated device in one home, for examples and benches:
/// PDA + phone + wearable carried; mic, remote and TV in the zones given.
pub fn standard_home(kitchen: &str, living_room: &str) -> Vec<InteractionDevice> {
    vec![
        SimPda::interaction_device("pda-1"),
        SimPhone::interaction_device("phone-1"),
        SimWearable::interaction_device("wearable-1"),
        VoiceRecognizer::interaction_device("mic-kitchen", kitchen),
        SimRemote::interaction_device("remote-lr", living_room),
        tv_interaction_device("tv-lr", living_room),
        terminal_interaction_device("term-kitchen", kitchen),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pda_tap_is_down_up() {
        let evs = SimPda::tap(10, 20);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0], DeviceEvent::StylusDown { x: 10, y: 20 });
        assert_eq!(evs[1], DeviceEvent::StylusUp { x: 10, y: 20 });
    }

    #[test]
    fn pda_drag_monotone() {
        let evs = SimPda::drag((0, 0), (10, 10), 5);
        assert_eq!(evs.len(), 7);
        assert!(matches!(evs[0], DeviceEvent::StylusDown { .. }));
        assert!(matches!(evs[6], DeviceEvent::StylusUp { x: 10, y: 10 }));
    }

    #[test]
    fn phone_keymap() {
        assert_eq!(SimPhone::press('2'), Some(DeviceEvent::KeypadNav(Nav::Up)));
        assert_eq!(SimPhone::press('5'), Some(DeviceEvent::KeypadSelect));
        assert_eq!(SimPhone::press('1'), Some(DeviceEvent::KeypadDigit(1)));
        assert_eq!(SimPhone::press('C'), Some(DeviceEvent::KeypadBack));
        assert_eq!(SimPhone::press('x'), None);
    }

    #[test]
    fn perfect_recognizer_keeps_everything() {
        let mut r = VoiceRecognizer::perfect();
        assert_eq!(
            r.hear("volume up"),
            Some(DeviceEvent::Voice("volume up".into()))
        );
    }

    #[test]
    fn zero_accuracy_hears_nothing() {
        let mut r = VoiceRecognizer::new(1, 0.0);
        assert_eq!(r.hear("select"), None);
    }

    #[test]
    fn noisy_recognizer_deterministic_per_seed() {
        let hear_all = |seed| {
            let mut r = VoiceRecognizer::new(seed, 0.5);
            (0..20).map(|_| r.hear("next select")).collect::<Vec<_>>()
        };
        assert_eq!(hear_all(7), hear_all(7));
    }

    #[test]
    fn standard_home_ids_unique() {
        let home = standard_home("kitchen", "living-room");
        let mut ids: Vec<_> = home.iter().map(|d| d.descriptor().id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), home.len());
    }

    #[test]
    fn registrations_have_expected_factories() {
        let pda = SimPda::interaction_device("p");
        assert!(pda.descriptor().input.is_some());
        assert!(pda.descriptor().output.is_some());
        let mic = VoiceRecognizer::interaction_device("m", "kitchen");
        assert!(mic.descriptor().input.is_some());
        assert!(mic.descriptor().output.is_none());
        let tv = tv_interaction_device("tv", "lr");
        assert!(tv.descriptor().input.is_none());
        assert!(tv.descriptor().output.is_some());
    }
}
