//! Input plug-ins: the modules interaction devices upload to the UniInt
//! proxy. Each translates one device's native event vocabulary into
//! universal keyboard/pointer events — the proxy never learns device
//! specifics.

use uniint_core::plugin::{DeviceEvent, Gesture, InputContext, InputPlugin, Nav, RemoteKey};
use uniint_protocol::input::{ButtonMask, InputEvent, KeySym};

fn nav_sym(nav: Nav) -> KeySym {
    match nav {
        Nav::Up => KeySym::UP,
        Nav::Down => KeySym::DOWN,
        Nav::Left => KeySym::LEFT,
        Nav::Right => KeySym::RIGHT,
    }
}

/// PDA stylus: taps and drags, mapped from the PDA's screen coordinates
/// into the server framebuffer space.
#[derive(Debug, Default)]
pub struct StylusPlugin {
    down: bool,
}

impl StylusPlugin {
    /// Creates the plug-in.
    pub fn new() -> StylusPlugin {
        StylusPlugin::default()
    }
}

impl InputPlugin for StylusPlugin {
    fn kind(&self) -> &'static str {
        "pda-stylus"
    }

    fn translate(&mut self, ev: &DeviceEvent, ctx: &InputContext) -> Vec<InputEvent> {
        match ev {
            DeviceEvent::StylusDown { x, y } => {
                self.down = true;
                let (sx, sy) = ctx.to_server(*x, *y);
                vec![InputEvent::Pointer {
                    x: sx,
                    y: sy,
                    buttons: ButtonMask::LEFT,
                }]
            }
            DeviceEvent::StylusMove { x, y } => {
                let (sx, sy) = ctx.to_server(*x, *y);
                let buttons = if self.down {
                    ButtonMask::LEFT
                } else {
                    ButtonMask::NONE
                };
                vec![InputEvent::Pointer {
                    x: sx,
                    y: sy,
                    buttons,
                }]
            }
            DeviceEvent::StylusUp { x, y } => {
                self.down = false;
                let (sx, sy) = ctx.to_server(*x, *y);
                vec![InputEvent::Pointer {
                    x: sx,
                    y: sy,
                    buttons: ButtonMask::NONE,
                }]
            }
            _ => Vec::new(),
        }
    }
}

/// Cellular-phone keypad: navigation keys move focus, the center key
/// activates, digits type through, back erases.
#[derive(Debug, Default)]
pub struct KeypadPlugin;

impl KeypadPlugin {
    /// Creates the plug-in.
    pub fn new() -> KeypadPlugin {
        KeypadPlugin
    }
}

impl InputPlugin for KeypadPlugin {
    fn kind(&self) -> &'static str {
        "phone-keypad"
    }

    fn translate(&mut self, ev: &DeviceEvent, _ctx: &InputContext) -> Vec<InputEvent> {
        match ev {
            DeviceEvent::KeypadNav(nav) => InputEvent::key_tap(nav_sym(*nav)).to_vec(),
            DeviceEvent::KeypadSelect => InputEvent::key_tap(KeySym::RETURN).to_vec(),
            DeviceEvent::KeypadBack => InputEvent::key_tap(KeySym::BACKSPACE).to_vec(),
            DeviceEvent::KeypadDigit(d) if *d <= 9 => {
                InputEvent::key_tap(KeySym::from_char((b'0' + d) as char)).to_vec()
            }
            _ => Vec::new(),
        }
    }
}

/// Voice commands: a small command-and-control grammar over recognized
/// utterances. Everything reduces to keyboard events — the appliance GUI
/// is driven through focus traversal and mnemonics, never modified for
/// voice (the paper's third characteristic).
#[derive(Debug, Default)]
pub struct VoicePlugin;

impl VoicePlugin {
    /// Creates the plug-in.
    pub fn new() -> VoicePlugin {
        VoicePlugin
    }

    fn word_events(word: &str) -> Vec<InputEvent> {
        let tap = |s: KeySym| InputEvent::key_tap(s).to_vec();
        match word {
            "next" => tap(KeySym::TAB),
            "previous" | "prev" | "back" => tap(KeySym::UP),
            "select" | "ok" | "press" | "push" | "activate" => tap(KeySym::RETURN),
            "up" => tap(KeySym::UP),
            "down" => tap(KeySym::DOWN),
            "left" | "less" | "decrease" | "lower" | "quieter" => tap(KeySym::LEFT),
            "right" | "more" | "increase" | "raise" | "louder" => tap(KeySym::RIGHT),
            "cancel" | "escape" => tap(KeySym::ESCAPE),
            "zero" => tap('0'.into()),
            "one" => tap('1'.into()),
            "two" => tap('2'.into()),
            "three" => tap('3'.into()),
            "four" => tap('4'.into()),
            "five" => tap('5'.into()),
            "six" => tap('6'.into()),
            "seven" => tap('7'.into()),
            "eight" => tap('8'.into()),
            "nine" => tap('9'.into()),
            w if w.len() == 1 && w.chars().all(|c| c.is_ascii_alphanumeric()) => {
                tap(w.chars().next().expect("one char").into())
            }
            _ => Vec::new(),
        }
    }
}

impl InputPlugin for VoicePlugin {
    fn kind(&self) -> &'static str {
        "voice"
    }

    fn translate(&mut self, ev: &DeviceEvent, _ctx: &InputContext) -> Vec<InputEvent> {
        let DeviceEvent::Voice(utterance) = ev else {
            return Vec::new();
        };
        utterance
            .to_lowercase()
            .split_whitespace()
            .flat_map(Self::word_events)
            .collect()
    }
}

/// Wearable gestures: swipes navigate, fist selects, palm cancels,
/// circling cycles focus.
#[derive(Debug, Default)]
pub struct GesturePlugin;

impl GesturePlugin {
    /// Creates the plug-in.
    pub fn new() -> GesturePlugin {
        GesturePlugin
    }
}

impl InputPlugin for GesturePlugin {
    fn kind(&self) -> &'static str {
        "gesture-wearable"
    }

    fn translate(&mut self, ev: &DeviceEvent, _ctx: &InputContext) -> Vec<InputEvent> {
        let DeviceEvent::Gesture(g) = ev else {
            return Vec::new();
        };
        let sym = match g {
            Gesture::Swipe(nav) => nav_sym(*nav),
            Gesture::Fist => KeySym::RETURN,
            Gesture::Palm => KeySym::ESCAPE,
            Gesture::Circle => KeySym::TAB,
        };
        InputEvent::key_tap(sym).to_vec()
    }
}

/// Infrared remote controller. Channel keys navigate vertically, volume
/// keys horizontally (driving the focused slider), Ok activates, and the
/// dedicated buttons emit mnemonic characters the appliance panel binds
/// with [`bind_shortcut`](uniint_wsys::ui::Ui::bind_shortcut): `p` for
/// power, `m` for mute.
#[derive(Debug, Default)]
pub struct RemotePlugin;

impl RemotePlugin {
    /// Creates the plug-in.
    pub fn new() -> RemotePlugin {
        RemotePlugin
    }
}

impl InputPlugin for RemotePlugin {
    fn kind(&self) -> &'static str {
        "ir-remote"
    }

    fn translate(&mut self, ev: &DeviceEvent, _ctx: &InputContext) -> Vec<InputEvent> {
        let DeviceEvent::Remote(key) = ev else {
            return Vec::new();
        };
        let sym = match key {
            RemoteKey::Power => KeySym::from_char('p'),
            RemoteKey::Mute => KeySym::from_char('m'),
            RemoteKey::ChannelUp => KeySym::UP,
            RemoteKey::ChannelDown => KeySym::DOWN,
            RemoteKey::VolumeUp => KeySym::RIGHT,
            RemoteKey::VolumeDown => KeySym::LEFT,
            RemoteKey::Ok => KeySym::RETURN,
            RemoteKey::Menu => KeySym::TAB,
            RemoteKey::Digit(d) if *d <= 9 => KeySym::from_char((b'0' + d) as char),
            RemoteKey::Digit(_) => return Vec::new(),
        };
        InputEvent::key_tap(sym).to_vec()
    }
}

/// Full keyboard passthrough (desktop thin-client viewer).
#[derive(Debug, Default)]
pub struct KeyboardPlugin;

impl KeyboardPlugin {
    /// Creates the plug-in.
    pub fn new() -> KeyboardPlugin {
        KeyboardPlugin
    }
}

impl InputPlugin for KeyboardPlugin {
    fn kind(&self) -> &'static str {
        "keyboard"
    }

    fn translate(&mut self, ev: &DeviceEvent, _ctx: &InputContext) -> Vec<InputEvent> {
        match ev {
            DeviceEvent::Char(c) => InputEvent::key_tap((*c).into()).to_vec(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniint_raster::geom::Size;

    fn ctx() -> InputContext {
        InputContext {
            server_size: Size::new(320, 240),
            device_view: Size::new(160, 120),
        }
    }

    #[test]
    fn stylus_full_tap_sequence() {
        let mut p = StylusPlugin::new();
        let down = p.translate(&DeviceEvent::StylusDown { x: 80, y: 60 }, &ctx());
        assert_eq!(
            down,
            vec![InputEvent::Pointer {
                x: 160,
                y: 120,
                buttons: ButtonMask::LEFT
            }]
        );
        let mv = p.translate(&DeviceEvent::StylusMove { x: 81, y: 60 }, &ctx());
        assert!(matches!(
            mv[0],
            InputEvent::Pointer {
                buttons: ButtonMask::LEFT,
                ..
            }
        ));
        let up = p.translate(&DeviceEvent::StylusUp { x: 81, y: 60 }, &ctx());
        assert!(matches!(
            up[0],
            InputEvent::Pointer {
                buttons: ButtonMask::NONE,
                ..
            }
        ));
    }

    #[test]
    fn stylus_hover_after_up() {
        let mut p = StylusPlugin::new();
        let mv = p.translate(&DeviceEvent::StylusMove { x: 10, y: 10 }, &ctx());
        assert!(matches!(
            mv[0],
            InputEvent::Pointer {
                buttons: ButtonMask::NONE,
                ..
            }
        ));
    }

    #[test]
    fn stylus_ignores_foreign_events() {
        let mut p = StylusPlugin::new();
        assert!(p.translate(&DeviceEvent::KeypadSelect, &ctx()).is_empty());
    }

    #[test]
    fn keypad_mapping() {
        let mut p = KeypadPlugin::new();
        let nav = p.translate(&DeviceEvent::KeypadNav(Nav::Down), &ctx());
        assert_eq!(
            nav[0],
            InputEvent::Key {
                down: true,
                sym: KeySym::DOWN
            }
        );
        let sel = p.translate(&DeviceEvent::KeypadSelect, &ctx());
        assert_eq!(
            sel[0],
            InputEvent::Key {
                down: true,
                sym: KeySym::RETURN
            }
        );
        let digit = p.translate(&DeviceEvent::KeypadDigit(7), &ctx());
        assert_eq!(
            digit[0],
            InputEvent::Key {
                down: true,
                sym: '7'.into()
            }
        );
        assert!(p
            .translate(&DeviceEvent::KeypadDigit(12), &ctx())
            .is_empty());
    }

    #[test]
    fn voice_navigation_grammar() {
        let mut p = VoicePlugin::new();
        let evs = p.translate(&DeviceEvent::Voice("next next select".into()), &ctx());
        assert_eq!(evs.len(), 6, "three taps = six key events");
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: KeySym::TAB
            }
        );
        assert_eq!(
            evs[4],
            InputEvent::Key {
                down: true,
                sym: KeySym::RETURN
            }
        );
    }

    #[test]
    fn voice_numbers_and_synonyms() {
        let mut p = VoicePlugin::new();
        let evs = p.translate(&DeviceEvent::Voice("Channel Five".into()), &ctx());
        // "channel" is not in the grammar (dropped), "five" types '5'.
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: '5'.into()
            }
        );
        let evs = p.translate(&DeviceEvent::Voice("louder".into()), &ctx());
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: KeySym::RIGHT
            }
        );
    }

    #[test]
    fn voice_unknown_utterance_drops() {
        let mut p = VoicePlugin::new();
        assert!(p
            .translate(&DeviceEvent::Voice("please do the thing".into()), &ctx())
            .is_empty());
    }

    #[test]
    fn gesture_mapping() {
        let mut p = GesturePlugin::new();
        let evs = p.translate(&DeviceEvent::Gesture(Gesture::Swipe(Nav::Left)), &ctx());
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: KeySym::LEFT
            }
        );
        let evs = p.translate(&DeviceEvent::Gesture(Gesture::Fist), &ctx());
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: KeySym::RETURN
            }
        );
        let evs = p.translate(&DeviceEvent::Gesture(Gesture::Circle), &ctx());
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: KeySym::TAB
            }
        );
    }

    #[test]
    fn remote_mapping() {
        let mut p = RemotePlugin::new();
        let evs = p.translate(&DeviceEvent::Remote(RemoteKey::Power), &ctx());
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: 'p'.into()
            }
        );
        let evs = p.translate(&DeviceEvent::Remote(RemoteKey::VolumeUp), &ctx());
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: KeySym::RIGHT
            }
        );
        let evs = p.translate(&DeviceEvent::Remote(RemoteKey::Digit(3)), &ctx());
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: '3'.into()
            }
        );
        assert!(p
            .translate(&DeviceEvent::Remote(RemoteKey::Digit(10)), &ctx())
            .is_empty());
    }

    #[test]
    fn keyboard_passthrough() {
        let mut p = KeyboardPlugin::new();
        let evs = p.translate(&DeviceEvent::Char('Q'), &ctx());
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0],
            InputEvent::Key {
                down: true,
                sym: 'Q'.into()
            }
        );
    }

    #[test]
    fn every_plugin_is_total() {
        // No plug-in may panic on any event kind.
        let all_events = [
            DeviceEvent::StylusDown { x: 0, y: 0 },
            DeviceEvent::StylusMove { x: 0, y: 0 },
            DeviceEvent::StylusUp { x: 0, y: 0 },
            DeviceEvent::KeypadDigit(5),
            DeviceEvent::KeypadNav(Nav::Up),
            DeviceEvent::KeypadSelect,
            DeviceEvent::KeypadBack,
            DeviceEvent::Voice("hello".into()),
            DeviceEvent::Gesture(Gesture::Palm),
            DeviceEvent::Remote(RemoteKey::Menu),
            DeviceEvent::Char('x'),
        ];
        let mut plugins: Vec<Box<dyn InputPlugin>> = vec![
            Box::new(StylusPlugin::new()),
            Box::new(KeypadPlugin::new()),
            Box::new(VoicePlugin::new()),
            Box::new(GesturePlugin::new()),
            Box::new(RemotePlugin::new()),
            Box::new(KeyboardPlugin::new()),
        ];
        for p in &mut plugins {
            for ev in &all_events {
                let _ = p.translate(ev, &ctx());
            }
        }
    }
}
